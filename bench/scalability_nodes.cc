// Scalability sweep (the paper's headline design goal, Sections I/II.A.4:
// "Sedna is built for an infrastructure with hundreds or thousands of
// servers" and "the most important result is a ZooKeeper like service
// will not obstruct Sedna's read and write efficiency").
//
// Grows the data-node count with one closed-loop client per node (the
// paper's clients == servers rule) while the ZooKeeper ensemble stays at
// 3 members. Reports aggregate write/read throughput; the shape to verify
// is near-linear scaling — the fixed-size coordination tier must not
// flatten the curve.
#include <cstdio>
#include <vector>

#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct Point {
  std::uint32_t nodes = 0;
  double write_kops = 0;
  double read_kops = 0;
  double zk_share = 0;  // fraction of messages that touched ZooKeeper
};

Point run_scale(std::uint32_t data_nodes, std::uint64_t ops_per_client) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cfg.data_nodes = data_nodes;
  cfg.cluster.total_vnodes = 1024;
  cluster::SednaCluster cluster(cfg);
  Point p;
  p.nodes = data_nodes;
  if (!cluster.boot().ok()) return p;

  const std::uint32_t clients = data_nodes;
  std::vector<cluster::SednaClient*> client_ptrs;
  for (std::uint32_t c = 0; c < clients; ++c) {
    client_ptrs.push_back(&cluster.make_client());
  }
  std::vector<workload::KvWorkload> workloads;
  for (std::uint32_t c = 0; c < clients; ++c) {
    workloads.emplace_back(
        workload::KvWorkloadConfig{14, 20, 77 ^ (c * 131ULL)});
  }

  const std::uint64_t zk_msgs_before =
      cluster.zk_member(0).commits_applied();
  auto run_phase = [&](bool write_phase) {
    const SimTime start = cluster.sim().now();
    std::uint32_t finished = 0;
    std::vector<std::unique_ptr<workload::ClosedLoopDriver>> drivers;
    for (std::uint32_t c = 0; c < clients; ++c) {
      drivers.push_back(std::make_unique<workload::ClosedLoopDriver>(
          ops_per_client,
          [&, c](std::uint64_t i, const std::function<void()>& done) {
            const std::string key = workloads[c].key(i);
            if (write_phase) {
              client_ptrs[c]->write_latest(
                  key, workloads[c].value(),
                  [done](const Status&) { done(); });
            } else {
              client_ptrs[c]->read_latest(
                  key, [done](const Result<store::VersionedValue>&) {
                    done();
                  });
            }
          }));
    }
    for (auto& d : drivers) d->start([&finished] { ++finished; });
    cluster.run_until([&] { return finished == clients; });
    const double secs =
        static_cast<double>(cluster.sim().now() - start) / 1e6;
    return static_cast<double>(clients * ops_per_client) / secs / 1000.0;
  };

  p.write_kops = run_phase(true);
  p.read_kops = run_phase(false);
  // ZooKeeper involvement in the data phases: committed ops (metadata
  // writes) after boot. Reads served from member-local trees are cheap;
  // commits are the scarce resource.
  p.zk_share = static_cast<double>(cluster.zk_member(0).commits_applied() -
                                   zk_msgs_before);
  return p;
}

}  // namespace

int main() {
  std::printf("Scalability: aggregate throughput vs data-node count "
              "(3 ZooKeeper members fixed, clients == nodes)\n\n");
  std::printf("%-8s %14s %14s %20s\n", "nodes", "write_kops", "read_kops",
              "zk_commits_in_run");

  std::FILE* csv = std::fopen(sedna::out_path("scalability_nodes.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "nodes,write_kops,read_kops,zk_commits\n");

  constexpr std::uint64_t kOpsPerClient = 3000;
  std::vector<Point> points;
  for (std::uint32_t nodes : {3u, 6u, 12u, 24u}) {
    points.push_back(run_scale(nodes, kOpsPerClient));
    const Point& p = points.back();
    std::printf("%-8u %14.1f %14.1f %20.0f\n", p.nodes, p.write_kops,
                p.read_kops, p.zk_share);
    if (csv) {
      std::fprintf(csv, "%u,%.2f,%.2f,%.0f\n", p.nodes, p.write_kops,
                   p.read_kops, p.zk_share);
    }
  }
  if (csv) std::fclose(csv);

  // Shape: 8x the nodes must give clearly super-constant throughput —
  // near-linear means >= 4x here — and ZooKeeper commit volume during the
  // data phases stays negligible (metadata-only, no data-path commits).
  const double write_scaling = points.back().write_kops / points[0].write_kops;
  const double read_scaling = points.back().read_kops / points[0].read_kops;
  const bool zk_quiet = points.back().zk_share < 100;
  std::printf("\nshape: write throughput x%.1f from 3->24 nodes "
              "(expect >= 4)\n", write_scaling);
  std::printf("shape: read  throughput x%.1f from 3->24 nodes "
              "(expect >= 4)\n", read_scaling);
  std::printf("shape: zookeeper commits during data phases < 100: %s\n",
              zk_quiet ? "yes" : "NO");
  return (write_scaling >= 4.0 && read_scaling >= 4.0 && zk_quiet) ? 0 : 1;
}
