// Figure 8: R/W speed with nine concurrent clients vs one client (Sedna).
//
// Paper finding to reproduce (Section VI.A.2): "the I/O performance
// indeed reduce[s] when there are more concurrent read/write clients ...
// however, the overall throughput is larger than one client" — per-client
// completion time rises under contention while aggregate ops/s grows.
#include <cstdio>

#include "fig_common.h"

int main() {
  using namespace sedna::bench;
  const auto checkpoints = default_checkpoints();
  const std::uint64_t total = checkpoints.back();

  std::printf("Reproducing Fig. 8: nine clients vs one client (Sedna)\n");
  const SweepResult one = run_sedna_sweep(1, total, checkpoints);
  const SweepResult nine = run_sedna_sweep(9, total, checkpoints);

  emit_figure(
      "Fig 8 — time spend (simulated ms) vs R/W operations",
      "fig8.csv", checkpoints,
      {{"one_write", &one.write_ms},
       {"one_read", &one.read_ms},
       {"nine_write", &nine.write_ms},
       {"nine_read", &nine.read_ms}});

  const double slow_w = nine.write_ms.at(total) / one.write_ms.at(total);
  const double slow_r = nine.read_ms.at(total) / one.read_ms.at(total);
  // Aggregate throughput: 9 clients × total ops / their elapsed time,
  // vs 1 × total / elapsed.
  const double thr_one = static_cast<double>(total) / one.write_ms.at(total);
  const double thr_nine =
      9.0 * static_cast<double>(total) / nine.write_ms.at(total);
  std::printf("\nshape: nine/one write slowdown = %.2fx (expect > 1)\n",
              slow_w);
  std::printf("shape: nine/one read slowdown  = %.2fx (expect > 1)\n",
              slow_r);
  std::printf("shape: aggregate write throughput nine/one = %.2fx"
              " (expect > 1)\n", thr_nine / thr_one);
  return (slow_w > 1.0 && slow_r > 1.0 && thr_nine > thr_one) ? 0 : 1;
}
