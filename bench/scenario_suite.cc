// Open-loop chaos scenario suite: proves the overload-safe request path.
//
// The figure benches are closed-loop — they can never push the cluster
// past saturation, so they cannot exercise admission control, deadline
// propagation, or retry budgets at all. This suite drives the paper
// testbed with *open-loop* arrival curves (workload/open_loop.h) through
// four chaos scenarios plus a metastability ablation, and gates on the
// goodput/availability *shape* over time:
//
//   flash-crowd       a pulse of traffic on a tiny key range: bystander
//                     goodput stays >= 70% of pre-pulse during the crowd
//                     and fully recovers within 2 s of it ending; the
//                     overload-shedding alert fires and resolves.
//   diurnal-wave      a slow offered-load wave cresting above cluster
//                     capacity: troughs stay ~lossless, the crest keeps a
//                     goodput floor instead of collapsing.
//   rolling-restart   crash/restart every data node in sequence under
//                     load: read availability >= 99%.
//   zone-partition    split the data nodes into two zones (ZooKeeper
//                     reachable from both): coordinators stranded with a
//                     minority of replicas keep serving stale-tagged
//                     reads; staleness stops once the partition heals.
//   lost-update       LWW vs DVV ablation: pairs of RMW racers append
//                     op-ids to shared keys across a zone partition.
//                     Timestamp LWW demonstrably drops acked updates
//                     (lost > 0); dotted-version-vector causal puts lose
//                     exactly zero. Emits out/ablation_dvv.csv.
//   metastability     the same overload pulse with defenses ON vs OFF:
//                     with bounded queues + deadlines + retry budgets the
//                     cluster recovers after the pulse; with the legacy
//                     unbounded/unbudgeted path, retry amplification
//                     (3 attempts/op) keeps demand above capacity forever
//                     and goodput never comes back — the classic
//                     metastable failure this PR exists to prevent.
//
// Everything is driven by the shared seeded sim RNG: two runs of this
// binary produce byte-identical CSVs (gated in tests/run_all.sh).
// Artifacts: out/scenario_suite.csv (per-window series for every
// scenario) and out/scenario_suite_metrics.prom (exposition dump of the
// flash-crowd cluster, including the node.shed.* counters).

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fig_common.h"
#include "cluster/admin.h"
#include "cluster/monitor.h"
#include "common/outdir.h"
#include "workload/open_loop.h"

namespace {

using namespace sedna;          // NOLINT
using namespace sedna::cluster; // NOLINT
using workload::OpenLoopConfig;
using workload::OpenLoopDriver;
using workload::RatePoint;

constexpr std::size_t kKeys = 2048;
constexpr std::size_t kClients = 8;
constexpr SimDuration kWindow = sim_ms(100);

std::string key_for(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%05zu", i);
  return buf;
}

/// Which overload defenses a scenario's cluster runs with. The chaos
/// scenarios use everything; the metastability ablation toggles all of
/// it off to reproduce the legacy request path.
struct Defenses {
  bool on = true;
};

struct Harness {
  std::unique_ptr<SednaCluster> cluster;
  std::vector<SednaClient*> clients;

  [[nodiscard]] sim::Simulation& sim() { return cluster->sim(); }

  [[nodiscard]] std::uint64_t total_sheds() const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cluster->data_node_count(); ++i) {
      n += cluster->node(i).shed_queue_full() +
           cluster->node(i).shed_deadline();
    }
    return n;
  }

  [[nodiscard]] std::uint64_t client_counter(const std::string& name) const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cluster->client_count(); ++i) {
      const auto& counters = cluster->client(i).metrics().counters();
      const auto it = counters.find(name);
      if (it != counters.end()) n += it->second.value();
    }
    return n;
  }

  [[nodiscard]] std::uint64_t node_counter(const std::string& name) const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cluster->data_node_count(); ++i) {
      const auto& counters = cluster->node(i).metrics().counters();
      const auto it = counters.find(name);
      if (it != counters.end()) n += it->second.value();
    }
    return n;
  }
};

Harness make_harness(std::uint64_t seed, Defenses defenses) {
  SednaClusterConfig cfg = bench::paper_cluster_config();
  cfg.seed = seed;
  // Fast failure detection so scenarios play out in seconds of sim time.
  cfg.node_template.host.rpc_timeout_us = 10'000;
  cfg.client_template.op_timeout_us = 30'000;
  cfg.client_template.max_attempts = 3;
  if (defenses.on) {
    cfg.node_template.host.max_ingress_queue = 96;
    cfg.node_template.degraded_reads = true;
    // Consistency auditor rides along with the defended configuration:
    // every stale serve carries a measured bound, and sampled acked
    // writes get t-visibility probes.
    cfg.node_template.audit.enabled = true;
    cfg.client_template.op_deadline_us = 90'000;
    // Refill 0.3: sustained retries up to ~30% of fresh traffic — enough
    // headroom to ride out a crashed primary (1/6 of ops need one retry)
    // while still capping retry amplification well below the 3x the
    // attempt limit would otherwise allow.
    cfg.client_template.retry_budget_capacity = 20.0;
    cfg.client_template.retry_budget_refill = 0.3;
  }

  Harness h;
  h.cluster = std::make_unique<SednaCluster>(cfg);
  if (!h.cluster->boot().ok()) {
    std::fprintf(stderr, "scenario_suite: cluster failed to boot\n");
    std::exit(2);
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    h.clients.push_back(&h.cluster->make_client());
  }
  // Preload the key space so the open-loop read phases always hit.
  const std::string value(20, 'v');
  std::size_t next = 0;
  while (next < kKeys) {
    const std::size_t batch_end = std::min(next + 128, kKeys);
    std::size_t done = 0;
    const std::size_t batch = batch_end - next;
    for (; next < batch_end; ++next) {
      h.clients[next % kClients]->write_latest(
          key_for(next), value, [&done](const Status&) { ++done; });
    }
    h.cluster->run_until([&] { return done == batch; });
  }
  return h;
}

/// Uniform-read issue function over [0, universe) via the shared sim RNG.
OpenLoopDriver::IssueFn read_issue(Harness& h, std::size_t universe,
                                   std::size_t base = 0) {
  return [&h, universe, base](std::uint64_t seq,
                              const std::function<void(bool)>& done) {
    const std::size_t k = base + h.sim().rng().next_below(universe);
    h.clients[seq % h.clients.size()]->read_latest(
        key_for(k),
        [done](const Result<store::VersionedValue>& r) { done(r.ok()); });
  };
}

/// 80/20 read/write mix over the full key space.
OpenLoopDriver::IssueFn mixed_issue(Harness& h) {
  return [&h](std::uint64_t seq, const std::function<void(bool)>& done) {
    const std::size_t k = h.sim().rng().next_below(kKeys);
    SednaClient& c = *h.clients[seq % h.clients.size()];
    if (seq % 5 == 4) {
      c.write_latest(key_for(k), std::string(20, 'w'),
                     [done](const Status& st) { done(st.ok()); });
    } else {
      c.read_latest(key_for(k), [done](const Result<store::VersionedValue>&
                                           r) { done(r.ok()); });
    }
  };
}

// ---- reporting --------------------------------------------------------------

std::string g_csv = "scenario,window,t_ms,issued,ok,failed,goodput_ops\n";
int g_failures = 0;

void dump_windows(const std::string& scenario, const OpenLoopDriver& d) {
  char buf[160];
  for (std::size_t w = 0; w < d.windows().size(); ++w) {
    const auto& win = d.windows()[w];
    std::snprintf(buf, sizeof buf, "%s,%zu,%llu,%llu,%llu,%llu,%.1f\n",
                  scenario.c_str(), w,
                  static_cast<unsigned long long>(w * kWindow / 1000),
                  static_cast<unsigned long long>(win.issued),
                  static_cast<unsigned long long>(win.ok),
                  static_cast<unsigned long long>(win.failed),
                  d.goodput_at(w));
    g_csv += buf;
  }
}

void gate(const std::string& scenario, const std::string& what, bool pass,
          const std::string& detail) {
  std::printf("  [%s] %s: %s (%s)\n", pass ? "PASS" : "FAIL",
              scenario.c_str(), what.c_str(), detail.c_str());
  if (!pass) ++g_failures;
}

std::string fmt2(double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f ops/s", a, b);
  return buf;
}

/// Window index range [from_ms, to_ms) → driver window indices.
std::size_t win(std::uint64_t ms) { return ms * 1000 / kWindow; }

// ---- scenarios --------------------------------------------------------------

void flash_crowd(std::uint64_t seed) {
  std::printf("\n=== flash crowd (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  Harness h = make_harness(seed, Defenses{true});
  MonitorConfig mc;
  mc.sample_interval = sim_ms(100);
  ClusterMonitor& monitor = h.cluster->enable_monitor(mc);

  // Bystanders: uniform reads over the whole key space. Crowd: a pulse
  // aimed at 4 keys — a handful of vnodes, so a minority of nodes takes
  // the brunt as coordinators while the rest of the cluster stays sane.
  OpenLoopConfig base_cfg;
  base_cfg.curve = {{0, 6000}};
  base_cfg.duration = sim_sec(6);
  base_cfg.window = kWindow;
  OpenLoopDriver base(h.sim(), base_cfg, read_issue(h, kKeys));

  OpenLoopConfig crowd_cfg;
  crowd_cfg.curve = {{0, 0}, {sim_sec(2), 6500}, {sim_ms(3200), 0}};
  crowd_cfg.duration = sim_sec(6);
  crowd_cfg.window = kWindow;
  OpenLoopDriver crowd(h.sim(), crowd_cfg, read_issue(h, 4));

  base.start();
  crowd.start();
  h.cluster->run_for(sim_sec(6) + sim_ms(300));  // +drain

  const double pre = base.mean_goodput(win(500), win(2000));
  const double during = base.mean_goodput(win(2100), win(3100));
  const double post = base.mean_goodput(win(5200), win(6000));
  gate("flash-crowd", "bystander goodput >= 70% of pre-pulse during crowd",
       during >= 0.7 * pre, fmt2(during, pre));
  gate("flash-crowd", "full recovery <= 2 s after the pulse",
       post >= 0.9 * pre, fmt2(post, pre));
  gate("flash-crowd", "overload shed work instead of queueing it",
       h.total_sheds() > 0,
       "sheds=" + std::to_string(h.total_sheds()));

  bool fired = false, resolved = false;
  for (const AlertEvent& e : monitor.alerts().events()) {
    if (e.rule != "overload-shedding") continue;
    if (e.fired) fired = true;
    else if (fired) resolved = true;
  }
  gate("flash-crowd", "overload-shedding alert fired then resolved",
       fired && resolved,
       std::string("fired=") + (fired ? "y" : "n") +
           " resolved=" + (resolved ? "y" : "n"));

  dump_windows("flash_crowd_base", base);
  dump_windows("flash_crowd_crowd", crowd);

  // Exposition dump for promlint: this cluster exercised every new
  // counter (sheds, stale reads, budget refusals may be zero but the
  // families exist once touched).
  ClusterInspector inspector(*h.cluster);
  if (std::FILE* f =
          std::fopen(out_path("scenario_suite_metrics.prom").c_str(), "w")) {
    std::fputs(inspector.metrics_text().c_str(), f);
    std::fclose(f);
  }
}

void diurnal_wave(std::uint64_t seed) {
  std::printf("\n=== diurnal wave (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  Harness h = make_harness(seed, Defenses{true});
  MonitorConfig mc;
  mc.sample_interval = sim_ms(100);
  h.cluster->enable_monitor(mc);

  OpenLoopConfig cfg;
  cfg.curve = {{0, 1500},          {sim_ms(800), 4000},
               {sim_ms(1600), 9000}, {sim_ms(2400), 14000},
               {sim_ms(3200), 9000}, {sim_ms(4000), 4000},
               {sim_ms(4800), 1500}};
  cfg.duration = sim_ms(5600);
  cfg.window = kWindow;
  OpenLoopDriver wave(h.sim(), cfg, mixed_issue(h));
  wave.start();
  h.cluster->run_for(sim_ms(5600) + sim_ms(300));

  const double trough_in = wave.mean_goodput(win(300), win(800));
  const double crest = wave.mean_goodput(win(2500), win(3200));
  const double trough_out = wave.mean_goodput(win(5000), win(5600));
  gate("diurnal-wave", "inbound trough ~lossless", trough_in >= 0.95 * 1500,
       fmt2(trough_in, 1500));
  gate("diurnal-wave", "crest keeps a goodput floor past saturation",
       crest >= 8000, fmt2(crest, 14000));
  gate("diurnal-wave", "outbound trough ~lossless (no hysteresis)",
       trough_out >= 0.95 * 1500, fmt2(trough_out, 1500));

  dump_windows("diurnal_wave", wave);
}

void rolling_restart(std::uint64_t seed) {
  std::printf("\n=== rolling restart (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  Harness h = make_harness(seed, Defenses{true});

  OpenLoopConfig cfg;
  cfg.curve = {{0, 4000}};
  cfg.duration = sim_sec(12);
  cfg.window = kWindow;
  std::map<StatusCode, std::uint64_t> fail_codes;
  OpenLoopDriver reads(
      h.sim(), cfg,
      [&h, &fail_codes](std::uint64_t seq,
                        const std::function<void(bool)>& done) {
        const std::size_t k = h.sim().rng().next_below(kKeys);
        h.clients[seq % h.clients.size()]->read_latest(
            key_for(k), [&fail_codes, done](
                            const Result<store::VersionedValue>& r) {
              if (!r.ok()) ++fail_codes[r.status().code()];
              done(r.ok());
            });
      });
  reads.start();

  h.cluster->run_for(sim_ms(800));
  for (std::size_t i = 0; i < h.cluster->data_node_count(); ++i) {
    h.cluster->crash_node(i);
    h.cluster->run_for(sim_ms(300));
    h.cluster->restart_node(i);  // waits until the node reports ready
    h.cluster->run_for(sim_ms(300));
  }
  h.cluster->run_for(sim_ms(500));

  const double settled =
      static_cast<double>(reads.succeeded() + reads.failed());
  const double availability =
      settled > 0 ? static_cast<double>(reads.succeeded()) / settled : 0.0;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.4f (%llu/%llu settled)", availability,
                static_cast<unsigned long long>(reads.succeeded()),
                static_cast<unsigned long long>(settled));
  gate("rolling-restart", "read availability >= 99%", availability >= 0.99,
       buf);
  for (const auto& [code, n] : fail_codes) {
    std::printf("    failures with %s: %llu\n", std::string(to_string(code)).c_str(),
                static_cast<unsigned long long>(n));
  }

  dump_windows("rolling_restart", reads);
}

void zone_partition(std::uint64_t seed) {
  std::printf("\n=== zone partition (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  Harness h = make_harness(seed, Defenses{true});
  MonitorConfig mc;
  mc.sample_interval = sim_ms(100);
  h.cluster->enable_monitor(mc);

  OpenLoopConfig cfg;
  cfg.curve = {{0, 4000}};
  cfg.duration = sim_sec(6);
  cfg.window = kWindow;
  OpenLoopDriver reads(h.sim(), cfg, read_issue(h, kKeys));
  reads.start();

  // Side stream of writes: the visibility probes sample *acked* writes,
  // so the scenario needs a write population to audit. Kept out of the
  // gated goodput stream — writes stranded away from a W-quorum during
  // the partition legitimately fail.
  OpenLoopConfig wcfg;
  wcfg.curve = {{0, 400}};
  wcfg.duration = sim_sec(6);
  wcfg.window = kWindow;
  OpenLoopDriver writes(
      h.sim(), wcfg,
      [&h](std::uint64_t seq, const std::function<void(bool)>& done) {
        const std::size_t k = h.sim().rng().next_below(kKeys);
        h.clients[seq % h.clients.size()]->write_latest(
            key_for(k), std::string(20, 'w'),
            [done](const Status& st) { done(st.ok()); });
      });
  writes.start();

  // Zone A = first half of the data nodes, zone B = second half. Only
  // data-node links are cut: clients and ZooKeeper see both zones, so
  // there is no lease churn — just coordinators stranded away from their
  // replica majorities.
  const std::vector<NodeId> ids = h.cluster->data_ids();
  const std::size_t half = ids.size() / 2;
  h.cluster->run_for(sim_sec(2));
  h.cluster->flight_recorder().record(
      h.sim().now(), "chaos", "bench", "partition",
      "data-data links cut between zone halves");
  for (std::size_t a = 0; a < half; ++a) {
    for (std::size_t b = half; b < ids.size(); ++b) {
      h.cluster->network().partition(ids[a], ids[b]);
    }
  }
  h.cluster->run_for(sim_ms(2500));
  const std::uint64_t stale_during = h.client_counter("client.stale_reads");
  const SimTime heal_time = h.sim().now();
  h.cluster->flight_recorder().record(heal_time, "chaos", "bench", "heal",
                                      "all links restored");
  h.cluster->network().heal_all();
  h.cluster->run_for(sim_ms(700));
  const std::uint64_t stale_settled = h.client_counter("client.stale_reads");
  h.cluster->run_for(sim_ms(800) + sim_ms(300));
  const std::uint64_t stale_end = h.client_counter("client.stale_reads");

  gate("zone-partition", "stale-tagged reads served during the partition",
       stale_during > 0, "stale_reads=" + std::to_string(stale_during));
  const double part_avail_num = reads.mean_goodput(win(2200), win(4400));
  gate("zone-partition", "goodput holds >= 90% through the partition",
       part_avail_num >= 0.9 * 4000, fmt2(part_avail_num, 4000));
  gate("zone-partition", "staleness stops once the partition heals",
       stale_end == stale_settled,
       "post-heal delta=" + std::to_string(stale_end - stale_settled));

  // Consistency-observability gates: every stale read the minority zone
  // served must have carried a measured staleness bound, the visibility
  // probes must actually have run, and no write acked *after* the heal
  // may be invisible on any replica at the final probe offset.
  // (Partition-era acked writes may legitimately lag past the probe
  // horizon — hinted handoff backs off up to seconds — so those are
  // reported but not gated.)
  const std::uint64_t unbounded = h.client_counter("client.stale_unbounded");
  gate("zone-partition", "every stale read carried a staleness bound",
       stale_during > 0 && unbounded == 0,
       "stale=" + std::to_string(stale_during) +
           " unbounded=" + std::to_string(unbounded));
  const std::uint64_t probe_rounds = h.node_counter("audit.probe_rounds");
  gate("zone-partition", "t-visibility probes sampled acked writes",
       probe_rounds > 0, "probe_rounds=" + std::to_string(probe_rounds));
  std::uint64_t pre_heal_violations = 0, post_heal_violations = 0;
  for (std::size_t i = 0; i < h.cluster->data_node_count(); ++i) {
    const ConsistencyAuditor* aud = h.cluster->node(i).auditor();
    if (aud == nullptr) continue;
    for (const auto& v : aud->violations()) {
      if (v.acked_at >= heal_time) ++post_heal_violations;
      else ++pre_heal_violations;
    }
  }
  gate("zone-partition",
       "zero visibility violations for writes acked after heal",
       post_heal_violations == 0,
       "post_heal=" + std::to_string(post_heal_violations) +
           " partition_era=" + std::to_string(pre_heal_violations));

  dump_windows("zone_partition", reads);
  dump_windows("zone_partition_writes", writes);

  // Artifacts: the t-visibility curve, the flight-recorder journal, and
  // the incident report on stdout (all byte-diffed across double runs).
  ClusterInspector inspector(*h.cluster);
  if (std::FILE* f =
          std::fopen(out_path("scenario_consistency.csv").c_str(), "w")) {
    std::fputs(inspector.visibility_csv().c_str(), f);
    std::fclose(f);
  }
  if (std::FILE* f =
          std::fopen(out_path("scenario_incidents.csv").c_str(), "w")) {
    std::fputs(inspector.incidents_csv().c_str(), f);
    std::fclose(f);
  }
  std::printf("  (consistency: scenario_consistency.csv, incidents: "
              "scenario_incidents.csv)\n");
  std::printf("%s", inspector.incident_report("zone partition").c_str());
}

// ---- lost-update ablation (LWW vs DVV) --------------------------------------
//
// The causal-versioning gate: pairs of read-modify-write racers append
// their op-ids to shared keys while a zone partition splits the replica
// sets. Every *acked* append must survive into the final converged read.
// Under timestamp LWW two racers that read the same base overwrite each
// other — one acked op-id vanishes; divergent partition halves reconcile
// by timestamp and drop one side wholesale. Under DVVs the racers become
// siblings, the next contextual writer folds both in, and the final
// sibling-union read retains every acked id.

std::vector<std::string> split_ids(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string join_ids(const std::set<std::string>& ids) {
  std::string out;
  for (const auto& id : ids) {
    if (!out.empty()) out += ',';
    out += id;
  }
  return out;
}

struct LostUpdateArm {
  std::uint64_t acked = 0;
  std::uint64_t lost = 0;
  std::uint64_t sibling_reads = 0;
  std::uint64_t conflicts_resolved = 0;
};

LostUpdateArm lost_update_arm(std::uint64_t seed, bool causal) {
  Harness h = make_harness(seed, Defenses{true});
  constexpr std::size_t kShared = 16;
  constexpr int kRounds = 12;

  auto shared_key = [](std::size_t k) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "c%03zu", k);
    return std::string(buf);
  };
  auto opid = [](int round, std::size_t key, int writer) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "r%02d.k%02zu.w%d", round, key, writer);
    return std::string(buf);
  };

  // Acked op-ids per key — the ground-truth write history the final read
  // is checked against.
  std::vector<std::set<std::string>> acked(kShared);

  const std::vector<NodeId> ids = h.cluster->data_ids();
  const std::size_t half = ids.size() / 2;

  for (int round = 0; round < kRounds; ++round) {
    // Rounds 4..7 run split in two zones (same cut as zone_partition:
    // data-data links only, so both halves keep coordinating).
    if (round == 4) {
      for (std::size_t a = 0; a < half; ++a) {
        for (std::size_t b = half; b < ids.size(); ++b) {
          h.cluster->network().partition(ids[a], ids[b]);
        }
      }
    }
    if (round == 8) h.cluster->network().heal_all();

    std::size_t done = 0;
    for (std::size_t k = 0; k < kShared; ++k) {
      for (int w = 0; w < 2; ++w) {
        SednaClient* c = h.clients[(k * 2 + w) % h.clients.size()];
        const std::string key = shared_key(k);
        const std::string id = opid(round, k, w);
        if (causal) {
          c->get_causal(
              key, [&acked, &done, c, key, id, k](
                       const Result<SednaClient::CausalRead>& r) {
                std::set<std::string> idset;
                store::VersionVector ctx;
                if (r.ok()) {
                  ctx = r->ctx;
                  for (const auto& sib : r->siblings) {
                    for (auto& t : split_ids(sib.value)) {
                      idset.insert(std::move(t));
                    }
                  }
                }
                idset.insert(id);
                c->put_causal(key, join_ids(idset), ctx,
                              [&acked, &done, id, k](
                                  const Status& st,
                                  const store::VersionVector&) {
                                if (st.ok()) acked[k].insert(id);
                                ++done;
                              });
              });
        } else {
          c->read_latest(
              key, [&acked, &done, c, key, id, k](
                       const Result<store::VersionedValue>& r) {
                std::set<std::string> idset;
                if (r.ok()) {
                  for (auto& t : split_ids(r->value)) {
                    idset.insert(std::move(t));
                  }
                }
                idset.insert(id);
                c->write_latest(key, join_ids(idset),
                                [&acked, &done, id, k](const Status& st) {
                                  if (st.ok()) acked[k].insert(id);
                                  ++done;
                                });
              });
        }
      }
    }
    h.cluster->run_until([&] { return done == kShared * 2; });
  }

  // Settle: hint replay and anti-entropy converge the healed halves.
  h.cluster->network().heal_all();
  h.cluster->run_for(sim_sec(2));

  LostUpdateArm out;
  for (std::size_t k = 0; k < kShared; ++k) {
    std::set<std::string> present;
    std::size_t done = 0;
    SednaClient* c = h.clients[0];
    if (causal) {
      c->get_causal(shared_key(k),
                    [&present, &done, c](
                        const Result<SednaClient::CausalRead>& r) {
                      if (r.ok()) {
                        for (const auto& sib : r->siblings) {
                          for (auto& t : split_ids(sib.value)) {
                            present.insert(std::move(t));
                          }
                        }
                        // Exercise the pluggable resolver path too.
                        (void)c->resolve(*r);
                      }
                      ++done;
                    });
    } else {
      c->read_latest(shared_key(k),
                     [&present, &done](const Result<store::VersionedValue>&
                                           r) {
                       if (r.ok()) {
                         for (auto& t : split_ids(r->value)) {
                           present.insert(std::move(t));
                         }
                       }
                       ++done;
                     });
    }
    h.cluster->run_until([&] { return done == 1; });
    for (const auto& id : acked[k]) {
      ++out.acked;
      if (present.count(id) == 0) ++out.lost;
    }
  }
  out.sibling_reads = h.client_counter("client.sibling_reads");
  out.conflicts_resolved = h.client_counter("client.conflicts_resolved");

  if (causal) {
    // Exposition dump for promlint: this cluster exercised the causal
    // metric families (sibling reads, conflict resolutions, causal
    // repairs) for real.
    ClusterInspector inspector(*h.cluster);
    if (std::FILE* f = std::fopen(
            out_path("ablation_dvv_metrics.prom").c_str(), "w")) {
      std::fputs(inspector.metrics_text().c_str(), f);
      std::fclose(f);
    }
  }
  return out;
}

void lost_update(std::uint64_t seed) {
  std::printf("\n=== lost-update ablation (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  const LostUpdateArm lww = lost_update_arm(seed, /*causal=*/false);
  const LostUpdateArm dvv = lost_update_arm(seed, /*causal=*/true);

  gate("lost-update", "LWW drops acked updates under race+partition",
       lww.lost > 0,
       "lost=" + std::to_string(lww.lost) + "/" + std::to_string(lww.acked));
  gate("lost-update", "DVV retains every acked update", dvv.lost == 0,
       "lost=" + std::to_string(dvv.lost) + "/" + std::to_string(dvv.acked));
  gate("lost-update", "concurrent siblings surfaced to readers",
       dvv.sibling_reads > 0,
       "sibling_reads=" + std::to_string(dvv.sibling_reads) +
           " conflicts_resolved=" + std::to_string(dvv.conflicts_resolved));

  std::string csv = "mode,acked,lost,sibling_reads,conflicts_resolved\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "lww,%llu,%llu,%llu,%llu\n",
                static_cast<unsigned long long>(lww.acked),
                static_cast<unsigned long long>(lww.lost),
                static_cast<unsigned long long>(lww.sibling_reads),
                static_cast<unsigned long long>(lww.conflicts_resolved));
  csv += buf;
  std::snprintf(buf, sizeof buf, "dvv,%llu,%llu,%llu,%llu\n",
                static_cast<unsigned long long>(dvv.acked),
                static_cast<unsigned long long>(dvv.lost),
                static_cast<unsigned long long>(dvv.sibling_reads),
                static_cast<unsigned long long>(dvv.conflicts_resolved));
  csv += buf;
  if (std::FILE* f = std::fopen(out_path("ablation_dvv.csv").c_str(), "w")) {
    std::fputs(csv.c_str(), f);
    std::fclose(f);
    std::printf("  (ablation: ablation_dvv.csv)\n");
  }
}

void metastability(std::uint64_t seed) {
  std::printf("\n=== metastability ablation (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));

  auto run_arm = [&](bool defenses_on) {
    Harness h = make_harness(seed, Defenses{defenses_on});
    OpenLoopConfig cfg;
    cfg.curve = {{0, 7000}, {sim_sec(2), 22000}, {sim_ms(3200), 7000}};
    cfg.duration = sim_sec(9);
    cfg.window = kWindow;
    auto driver = std::make_unique<OpenLoopDriver>(h.sim(), cfg,
                                                   read_issue(h, kKeys));
    driver->start();
    h.cluster->run_for(sim_sec(9) + sim_ms(300));
    const double pre = driver->mean_goodput(win(1000), win(2000));
    const double late = driver->mean_goodput(win(7000), win(9000));
    dump_windows(defenses_on ? "metastable_defenses_on"
                             : "metastable_defenses_off",
                 *driver);
    return std::make_pair(pre, late);
  };

  const auto [on_pre, on_late] = run_arm(true);
  const auto [off_pre, off_late] = run_arm(false);

  gate("metastability", "defenses ON: goodput recovers after the pulse",
       on_late >= 0.8 * on_pre, fmt2(on_late, on_pre));
  gate("metastability",
       "defenses OFF: retry amplification sustains the collapse",
       off_late <= 0.3 * off_pre, fmt2(off_late, off_pre));
}

}  // namespace

int main() {
  std::printf("Sedna open-loop chaos scenario suite\n");
  flash_crowd(2012);
  diurnal_wave(2012);
  rolling_restart(2012);
  zone_partition(2012);
  lost_update(2012);
  metastability(2012);

  if (std::FILE* f = std::fopen(out_path("scenario_suite.csv").c_str(), "w")) {
    std::fputs(g_csv.c_str(), f);
    std::fclose(f);
    // Name only: stdout is byte-diffed across runs with different out dirs.
    std::printf("\n(window series: scenario_suite.csv)\n");
  }

  if (g_failures > 0) {
    std::printf("\n%d gate(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
