// Figure 7(b): W/R speed, Sedna vs Memcached writing/reading each datum
// ONCE.
//
// Paper finding to reproduce (Section VI.A.1): "Sedna performance is
// quite stable, and slightly slower than original write-once Memcached
// performance" — Sedna pays for 3 replicas + quorum; plain Memcached does
// a single unreplicated round trip.
#include <cstdio>

#include "fig_common.h"

int main() {
  using namespace sedna::bench;
  const auto checkpoints = default_checkpoints();
  const std::uint64_t total = checkpoints.back();

  std::printf("Reproducing Fig. 7(b): Memcached(1) vs. Sedna, 1 client\n");
  const SweepResult sedna = run_sedna_sweep(1, total, checkpoints);
  const SweepResult mc1 = run_memcached_sweep(1, total, 1, checkpoints);

  emit_figure(
      "Fig 7(b) — time spend (simulated ms) vs W/R operations",
      "fig7b.csv", checkpoints,
      {{"sedna_write", &sedna.write_ms},
       {"sedna_read", &sedna.read_ms},
       {"memcached1_write", &mc1.write_ms},
       {"memcached1_read", &mc1.read_ms}});

  // Shape check: write-once Memcached is faster, but Sedna stays within a
  // small constant factor (it does N=3 replication + quorum, not 3x the
  // client round trips).
  const double ratio_w = sedna.write_ms.at(total) / mc1.write_ms.at(total);
  const double ratio_r = sedna.read_ms.at(total) / mc1.read_ms.at(total);
  std::printf("\nshape: sedna_write/memcached1_write = %.2f"
              " (expect > 1, < 3)\n", ratio_w);
  std::printf("shape: sedna_read/memcached1_read  = %.2f"
              " (expect > 1, < 3)\n", ratio_r);
  return (ratio_w > 1.0 && ratio_w < 3.0 && ratio_r > 1.0 && ratio_r < 3.0)
             ? 0
             : 1;
}
