// Shared harness for the figure-reproduction benches.
//
// Reproduces the measurement protocol of Section VI.A on the simulated
// testbed: 9 servers (3 run ZooKeeper), 1 GbE / sub-ms RTT, 20-byte keys
// and values, closed-loop clients, write-everything-then-read-everything.
// "Time spend" is simulated milliseconds; each sweep records the elapsed
// time at every checkpoint (10k, 20k, ... ops) during a single run, which
// is exactly how a wall-clock measurement of a closed loop behaves.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/outdir.h"
#include "baseline/memcache.h"
#include "cluster/sedna_cluster.h"
#include "workload/closed_loop.h"
#include "workload/kv_workload.h"

namespace sedna::bench {

struct SweepResult {
  /// checkpoint (ops) → elapsed simulated ms.
  std::map<std::uint64_t, double> write_ms;
  std::map<std::uint64_t, double> read_ms;
};

inline std::vector<std::uint64_t> default_checkpoints() {
  return {10000, 20000, 30000, 40000, 50000, 60000};
}

/// Per-message server CPU cost used by the figure benches. ~80 us per
/// request matches the 2012 testbed (kernel TCP + memcached dispatch on a
/// 2.53 GHz core ≈ 12k requests/s/core) and is what makes nine concurrent
/// clients visibly contend in Fig. 8 (measured slowdown ≈ 1.18x, matching
/// the paper's nine-vs-one gap).
constexpr SimDuration kPaperServiceUs = 80;

/// Paper testbed parameters (DESIGN.md §6).
inline cluster::SednaClusterConfig paper_cluster_config() {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 1024;  // ~170 vnodes per real node
  cfg.cluster.replicas = 3;
  cfg.cluster.read_quorum = 2;
  cfg.cluster.write_quorum = 2;
  cfg.node_template.host.base_service_us = kPaperServiceUs;
  cfg.client_template.host.base_service_us = kPaperServiceUs;
  return cfg;
}

/// Runs `clients` concurrent closed-loop clients, each performing
/// `total_ops` write_latest ops then `total_ops` read_latest ops over the
/// same keys. Reported times are the mean across clients of the elapsed
/// time at each checkpoint.
inline SweepResult run_sedna_sweep(std::uint32_t clients,
                                   std::uint64_t total_ops,
                                   const std::vector<std::uint64_t>&
                                       checkpoints,
                                   std::uint64_t seed = 2012) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cfg.seed = seed;
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "sedna cluster failed to boot\n");
    return {};
  }

  std::vector<cluster::SednaClient*> client_ptrs;
  for (std::uint32_t c = 0; c < clients; ++c) {
    client_ptrs.push_back(&cluster.make_client());
  }

  // Every client uses its own key space (the paper runs one load program
  // per client machine).
  std::vector<workload::KvWorkload> workloads;
  for (std::uint32_t c = 0; c < clients; ++c) {
    workloads.emplace_back(
        workload::KvWorkloadConfig{14, 20, seed ^ (c * 7919ULL)});
  }

  SweepResult result;
  auto run_phase = [&](bool write_phase) {
    const SimTime phase_start = cluster.sim().now();
    // Per-client checkpoint recordings.
    std::vector<std::map<std::uint64_t, SimTime>> marks(clients);
    std::vector<std::unique_ptr<workload::ClosedLoopDriver>> drivers;
    std::uint32_t finished = 0;

    for (std::uint32_t c = 0; c < clients; ++c) {
      auto issue = [&, c](std::uint64_t i,
                          const std::function<void()>& done) {
        const std::string key = workloads[c].key(i);
        auto record = [&, c, i, done]() {
          for (std::uint64_t cp : checkpoints) {
            if (i + 1 == cp) marks[c][cp] = cluster.sim().now();
          }
          done();
        };
        if (write_phase) {
          client_ptrs[c]->write_latest(key, workloads[c].value(),
                                       [record](const Status&) { record(); });
        } else {
          client_ptrs[c]->read_latest(
              key,
              [record](const Result<store::VersionedValue>&) { record(); });
        }
      };
      drivers.push_back(std::make_unique<workload::ClosedLoopDriver>(
          total_ops, issue));
    }
    for (auto& d : drivers) {
      d->start([&finished] { ++finished; });
    }
    cluster.run_until([&] { return finished == clients; });

    auto& out = write_phase ? result.write_ms : result.read_ms;
    for (std::uint64_t cp : checkpoints) {
      double sum = 0;
      std::uint32_t have = 0;
      for (std::uint32_t c = 0; c < clients; ++c) {
        const auto it = marks[c].find(cp);
        if (it != marks[c].end()) {
          sum += static_cast<double>(it->second - phase_start) / 1000.0;
          ++have;
        }
      }
      if (have > 0) out[cp] = sum / have;
    }
  };

  run_phase(/*write_phase=*/true);
  run_phase(/*write_phase=*/false);
  return result;
}

/// Same protocol against the memcached baseline: 9 cache servers, client
/// writes/reads each key `copies` times sequentially (copies=1 → Fig 7b
/// mode, copies=3 → Fig 7a mode).
inline SweepResult run_memcached_sweep(std::uint32_t clients,
                                       std::uint64_t total_ops,
                                       std::uint32_t copies,
                                       const std::vector<std::uint64_t>&
                                           checkpoints,
                                       std::uint64_t seed = 2012) {
  sim::Simulation simulation(seed);
  sim::Network net(simulation, {});

  sim::HostConfig host_cfg;
  host_cfg.base_service_us = kPaperServiceUs;

  std::vector<std::unique_ptr<baseline::MemcacheNode>> servers;
  std::vector<NodeId> server_ids;
  for (NodeId id = 100; id < 109; ++id) {  // 9 servers, as in the paper
    servers.push_back(std::make_unique<baseline::MemcacheNode>(
        net, id, store::LocalStoreConfig{}, host_cfg));
    server_ids.push_back(id);
  }

  std::vector<std::unique_ptr<baseline::MemcacheClient>> client_hosts;
  for (std::uint32_t c = 0; c < clients; ++c) {
    baseline::MemcacheClientConfig ccfg;
    ccfg.servers = server_ids;
    ccfg.host = host_cfg;
    client_hosts.push_back(std::make_unique<baseline::MemcacheClient>(
        net, 1000 + c, ccfg));
  }

  std::vector<workload::KvWorkload> workloads;
  for (std::uint32_t c = 0; c < clients; ++c) {
    workloads.emplace_back(
        workload::KvWorkloadConfig{14, 20, seed ^ (c * 7919ULL)});
  }

  SweepResult result;
  auto run_phase = [&](bool write_phase) {
    const SimTime phase_start = simulation.now();
    std::vector<std::map<std::uint64_t, SimTime>> marks(clients);
    std::vector<std::unique_ptr<workload::ClosedLoopDriver>> drivers;
    std::uint32_t finished = 0;

    for (std::uint32_t c = 0; c < clients; ++c) {
      auto issue = [&, c](std::uint64_t i,
                          const std::function<void()>& done) {
        const std::string key = workloads[c].key(i);
        auto record = [&, c, i, done]() {
          for (std::uint64_t cp : checkpoints) {
            if (i + 1 == cp) marks[c][cp] = simulation.now();
          }
          done();
        };
        if (write_phase) {
          client_hosts[c]->set_n(key, workloads[c].value(), copies,
                                 [record](const Status&) { record(); });
        } else {
          client_hosts[c]->get_n(
              key, copies,
              [record](const Result<std::string>&) { record(); });
        }
      };
      drivers.push_back(std::make_unique<workload::ClosedLoopDriver>(
          total_ops, issue));
    }
    for (auto& d : drivers) {
      d->start([&finished] { ++finished; });
    }
    while (finished < clients && simulation.step()) {
    }

    auto& out = write_phase ? result.write_ms : result.read_ms;
    for (std::uint64_t cp : checkpoints) {
      double sum = 0;
      std::uint32_t have = 0;
      for (std::uint32_t c = 0; c < clients; ++c) {
        const auto it = marks[c].find(cp);
        if (it != marks[c].end()) {
          sum += static_cast<double>(it->second - phase_start) / 1000.0;
          ++have;
        }
      }
      if (have > 0) out[cp] = sum / have;
    }
  };

  run_phase(true);
  run_phase(false);
  return result;
}

/// Prints a paper-style table and writes a CSV under out_dir()
/// ($SEDNA_OUT_DIR, default ./out). `csv_path` is the bare file name.
inline void emit_figure(const std::string& title, const std::string& csv_name,
                        const std::vector<std::uint64_t>& checkpoints,
                        const std::vector<std::pair<std::string,
                                                    const std::map<
                                                        std::uint64_t,
                                                        double>*>>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-10s", "ops");
  for (const auto& [name, data] : series) std::printf("  %18s", name.c_str());
  std::printf("\n");
  for (std::uint64_t cp : checkpoints) {
    std::printf("%-10llu", static_cast<unsigned long long>(cp));
    for (const auto& [name, data] : series) {
      const auto it = data->find(cp);
      if (it != data->end()) {
        std::printf("  %18.1f", it->second);
      } else {
        std::printf("  %18s", "-");
      }
    }
    std::printf("\n");
  }

  const std::string csv_path = out_path(csv_name);
  if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
    std::fprintf(f, "ops");
    for (const auto& [name, data] : series) std::fprintf(f, ",%s", name.c_str());
    std::fprintf(f, "\n");
    for (std::uint64_t cp : checkpoints) {
      std::fprintf(f, "%llu", static_cast<unsigned long long>(cp));
      for (const auto& [name, data] : series) {
        const auto it = data->find(cp);
        std::fprintf(f, ",%.3f", it != data->end() ? it->second : 0.0);
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
    std::printf("(csv: %s)\n", csv_path.c_str());
  }
}

}  // namespace sedna::bench
