// Trigger-system bench (Sections IV–V claims): end-to-end freshness of the
// trigger pipeline and the effect of interval-based flow control on
// trigger cycles.
//
// Part 1 — pipeline freshness: a writer streams updates into a hooked
// table; a job re-emits each processed update. Measures activations per
// written update and the write→activation delay (the "interval between
// the newly data sprawled and indexed should be short" requirement).
//
// Part 2 — ripple suppression: a two-job cycle (A watches /ping, writes
// /pong; B watches /pong, writes /ping) runs for a fixed window at
// several trigger intervals. Without throttling the cycle doubles each
// round and floods the cluster (Section IV.B); the interval caps it.
#include <cstdio>
#include <map>

#include "fig_common.h"
#include "trigger/service.h"

using namespace sedna;
using namespace sedna::bench;

int main() {
  std::printf("Trigger pipeline bench\n\n");

  // ---- Part 1: freshness -------------------------------------------------
  {
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;
    trigger::TriggerService triggers(cluster);

    auto delays = std::make_shared<std::vector<double>>();
    auto write_times = std::make_shared<std::map<std::string, SimTime>>();
    {
      trigger::Job::Config jc;
      jc.name = "bench";
      jc.trigger_interval = sim_ms(20);
      trigger::DataHooks hooks;
      hooks.add("stream");
      auto action = std::make_shared<trigger::FunctionAction>(
          [&cluster, delays, write_times](const std::string& key,
                                          const std::vector<std::string>&,
                                          trigger::ResultWriter&) {
            const auto it = write_times->find(key);
            if (it != write_times->end()) {
              delays->push_back(
                  static_cast<double>(cluster.sim().now() - it->second) /
                  1000.0);
            }
          });
      triggers.schedule(std::make_shared<trigger::Job>(
          jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
          action));
    }

    auto& client = cluster.make_client();
    constexpr std::uint64_t kUpdates = 2000;
    std::uint64_t finished = 0;
    workload::ClosedLoopDriver writer(
        kUpdates, [&](std::uint64_t i, const std::function<void()>& done) {
          const std::string key = "stream/t/k" + std::to_string(i);
          (*write_times)[key] = cluster.sim().now();
          client.write_latest(key, "u", [done](const Status&) { done(); });
        });
    writer.start([&] { ++finished; });
    cluster.run_until([&] { return finished == 1; });
    cluster.run_for(sim_ms(500));

    const auto stats = triggers.aggregate_stats();
    double mean_delay = 0;
    for (double d : *delays) mean_delay += d;
    if (!delays->empty()) mean_delay /= delays->size();
    std::printf("Part 1 — pipeline freshness (%llu streamed updates):\n",
                static_cast<unsigned long long>(kUpdates));
    std::printf("  activations=%llu (exactly once per update: %s)\n",
                static_cast<unsigned long long>(stats.activations),
                stats.activations == kUpdates ? "yes" : "NO");
    std::printf("  mean write->activation delay = %.1f ms "
                "(scan interval 20 ms)\n", mean_delay);
    if (stats.activations != kUpdates || mean_delay > 100.0) return 1;
  }

  // ---- Part 2: ripple suppression ---------------------------------------
  std::printf("\nPart 2 — trigger-cycle flood vs trigger interval "
              "(2 s window):\n");
  std::printf("%-18s %16s %12s\n", "interval_ms", "activations",
              "writes/s");
  std::FILE* csv = std::fopen(sedna::out_path("trigger_pipeline.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "interval_ms,activations,cluster_writes\n");

  std::map<std::uint64_t, std::uint64_t> activations_by_interval;
  for (SimDuration interval : {sim_ms(25), sim_ms(100), sim_ms(400)}) {
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;
    trigger::TriggerService triggers(cluster);

    auto make_stage = [&](const std::string& name, const std::string& in,
                          const std::string& out) {
      trigger::Job::Config jc;
      jc.name = name;
      jc.trigger_interval = interval;
      trigger::DataHooks hooks;
      hooks.add(in);
      auto action = std::make_shared<trigger::FunctionAction>(
          [out](const std::string&, const std::vector<std::string>& v,
                trigger::ResultWriter& writer) {
            writer.put(out + "/t/k", v.empty() ? "x" : v[0]);
          });
      triggers.schedule(std::make_shared<trigger::Job>(
          jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
          action));
    };
    make_stage("cycle-a", "ping", "pong");
    make_stage("cycle-b", "pong", "ping");

    auto& client = cluster.make_client();
    cluster.write_latest(client, "ping/t/k", "go");
    const std::uint64_t writes_before = [&] {
      std::uint64_t n = 0;
      for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
        n += cluster.node(i).local_store().stats().sets;
      }
      return n;
    }();
    cluster.run_for(sim_sec(2));
    std::uint64_t writes_after = 0;
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      writes_after += cluster.node(i).local_store().stats().sets;
    }

    const auto stats = triggers.aggregate_stats();
    activations_by_interval[interval] = stats.activations;
    std::printf("%-18llu %16llu %12.0f\n",
                static_cast<unsigned long long>(interval / 1000),
                static_cast<unsigned long long>(stats.activations),
                static_cast<double>(writes_after - writes_before) / 2.0);
    if (csv) {
      std::fprintf(csv, "%llu,%llu,%llu\n",
                   static_cast<unsigned long long>(interval / 1000),
                   static_cast<unsigned long long>(stats.activations),
                   static_cast<unsigned long long>(writes_after -
                                                   writes_before));
    }
  }
  if (csv) std::fclose(csv);

  // Shape: activation volume scales inversely with the interval — the
  // cycle is bounded by flow control, not by cluster capacity.
  const bool bounded =
      activations_by_interval[sim_ms(25)] >
          activations_by_interval[sim_ms(100)] &&
      activations_by_interval[sim_ms(100)] >
          activations_by_interval[sim_ms(400)] &&
      activations_by_interval[sim_ms(25)] < 400;  // not exponential
  std::printf("\nshape: cycle activations bounded by trigger interval: %s\n",
              bounded ? "yes" : "NO");
  return bounded ? 0 : 1;
}
