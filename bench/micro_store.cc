// Microbenchmarks (google-benchmark, real threads, wall-clock): the
// LocalStore engine, ring lookups, codec and checksum primitives. These
// are the per-operation costs underneath every simulated service time.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/codec.h"
#include "common/crc32.h"
#include "ring/rebalancer.h"
#include "ring/vnode_table.h"
#include "store/local_store.h"
#include "workload/kv_workload.h"

namespace {

using sedna::store::LocalStore;
using sedna::store::LocalStoreConfig;
using sedna::workload::KvWorkload;

void BM_StoreSet(benchmark::State& state) {
  LocalStore store;
  KvWorkload wl;
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.set(wl.key(i % 100000), wl.value());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_StoreSet);

void BM_StoreGetHit(benchmark::State& state) {
  LocalStore store;
  KvWorkload wl;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    store.set(wl.key(i), wl.value());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(wl.key(i % 100000)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_StoreGetHit);

void BM_StoreGetMiss(benchmark::State& state) {
  LocalStore store;
  KvWorkload wl;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(wl.key(i % 100000)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_StoreGetMiss);

void BM_StoreWriteLatestLww(benchmark::State& state) {
  LocalStore store;
  KvWorkload wl;
  std::uint64_t ts = 1;
  for (auto _ : state) {
    store.write_latest(wl.key(ts % 4096), wl.value(), ts);
    ++ts;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ts));
}
BENCHMARK(BM_StoreWriteLatestLww);

void BM_StoreWriteAll(benchmark::State& state) {
  LocalStore store;
  KvWorkload wl;
  std::uint64_t ts = 1;
  for (auto _ : state) {
    store.write_all(wl.key(ts % 4096), ts % 9, wl.value(), ts);
    ++ts;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ts));
}
BENCHMARK(BM_StoreWriteAll);

void BM_StoreCas(benchmark::State& state) {
  LocalStore store;
  store.set("k", "v0");
  for (auto _ : state) {
    auto got = store.gets("k");
    benchmark::DoNotOptimize(store.cas("k", "v1", got->second));
  }
}
BENCHMARK(BM_StoreCas);

void BM_StoreSetWithChangeCapture(benchmark::State& state) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  KvWorkload wl;
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.set(wl.key(i % 4096), wl.value());
    if ((++i & 0x3ff) == 0) {
      benchmark::DoNotOptimize(store.drain_changes());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_StoreSetWithChangeCapture);

void BM_StoreEvictionUnderBudget(benchmark::State& state) {
  LocalStoreConfig cfg;
  cfg.memory_budget_bytes = 1 << 20;  // 1 MiB forces steady-state eviction
  LocalStore store(cfg);
  KvWorkload wl;
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.set(wl.key(i), wl.value());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.counters["evictions"] =
      static_cast<double>(store.stats().evictions);
}
BENCHMARK(BM_StoreEvictionUnderBudget);

void BM_StoreConcurrentSet(benchmark::State& state) {
  static LocalStore* store = nullptr;
  if (state.thread_index() == 0) {
    LocalStoreConfig cfg;
    cfg.shards = 16;
    store = new LocalStore(cfg);
  }
  KvWorkload wl{{14, 20, static_cast<std::uint64_t>(state.thread_index())}};
  std::uint64_t i = 0;
  for (auto _ : state) {
    store->set(wl.key(i % 65536), wl.value());
    ++i;
  }
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_StoreConcurrentSet)->Threads(1)->Threads(2)->Threads(4);

void BM_RingLookup(benchmark::State& state) {
  std::vector<sedna::NodeId> nodes;
  for (sedna::NodeId n = 0; n < 16; ++n) nodes.push_back(n);
  const auto table = sedna::ring::Rebalancer::initial_assignment(
      static_cast<std::uint32_t>(state.range(0)), 3, nodes);
  KvWorkload wl;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.replicas_for_key(wl.key(i++ % 10000)));
  }
}
BENCHMARK(BM_RingLookup)->Arg(1024)->Arg(8192)->Arg(100000);

void BM_CodecRoundTrip(benchmark::State& state) {
  KvWorkload wl;
  for (auto _ : state) {
    sedna::BinaryWriter w;
    w.put_u8(1);
    w.put_string(wl.key(7));
    w.put_string(wl.value());
    w.put_u64(123456789);
    const std::string buf = std::move(w).take();
    sedna::BinaryReader r(buf);
    benchmark::DoNotOptimize(r.get_u8());
    benchmark::DoNotOptimize(r.get_string());
    benchmark::DoNotOptimize(r.get_string());
    benchmark::DoNotOptimize(r.get_u64());
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_Crc32(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(sedna::crc32(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
