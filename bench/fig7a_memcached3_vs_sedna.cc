// Figure 7(a): W/R speed, Sedna vs Memcached writing/reading each datum
// THREE times sequentially.
//
// Paper finding to reproduce (Section VI.A.1): "Sedna has better W/R
// performance than Memcached [x3] ... because three times read and write
// in Sedna were issued and processed parallel, but in Memcached these
// reads and writes requests were issued sequentially." Expect every curve
// ~linear in op count, with both Sedna series clearly below both
// Memcached(3) series.
#include <cstdio>

#include "fig_common.h"

int main() {
  using namespace sedna::bench;
  const auto checkpoints = default_checkpoints();
  const std::uint64_t total = checkpoints.back();

  std::printf("Reproducing Fig. 7(a): Memcached(3) vs. Sedna, 1 client\n");
  const SweepResult sedna = run_sedna_sweep(1, total, checkpoints);
  const SweepResult mc3 = run_memcached_sweep(1, total, 3, checkpoints);

  emit_figure(
      "Fig 7(a) — time spend (simulated ms) vs W/R operations",
      "fig7a.csv", checkpoints,
      {{"sedna_write", &sedna.write_ms},
       {"sedna_read", &sedna.read_ms},
       {"memcached3_write", &mc3.write_ms},
       {"memcached3_read", &mc3.read_ms}});

  // Shape check the paper reports: Sedna beats sequential-x3 Memcached.
  const double sw = sedna.write_ms.at(total);
  const double mw = mc3.write_ms.at(total);
  const double sr = sedna.read_ms.at(total);
  const double mr = mc3.read_ms.at(total);
  std::printf("\nshape: sedna_write/memcached3_write = %.2f (expect < 1)\n",
              sw / mw);
  std::printf("shape: sedna_read/memcached3_read  = %.2f (expect < 1)\n",
              sr / mr);
  return (sw < mw && sr < mr) ? 0 : 1;
}
