// Ablation (Table I "Failure detection and handling — heartbeat + active
// detection → reduced detection time"; Section III.D): crash a data node
// mid-run and measure the client-visible impact.
//
// Reported:
//   * failed / degraded operations during the outage window;
//   * time from crash to first successful recovery (vnode reassignment);
//   * replication factor of sampled keys after the dust settles.
#include <cstdio>

#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

int main() {
  std::printf("Ablation: node failure, detection and read-triggered "
              "recovery\n");

  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) return 1;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  constexpr std::uint64_t kKeys = 2000;
  // Preload.
  std::uint64_t finished = 0;
  workload::ClosedLoopDriver preload(
      kKeys, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  preload.start([&] { ++finished; });
  cluster.run_until([&] { return finished == 1; });

  // Crash one replica holder.
  const SimTime crash_at = cluster.sim().now();
  cluster.crash_node(2);
  std::printf("  crashed node %u at t=%.1f ms\n", cluster.node(2).id(),
              crash_at / 1000.0);

  // Keep reading everything; count per-pass failures as the outage ages.
  std::FILE* csv = std::fopen("ablation_failure.csv", "w");
  if (csv) std::fprintf(csv, "pass,t_ms,failures,ok\n");
  std::uint64_t total_failures = 0;
  for (int pass = 0; pass < 6; ++pass) {
    std::uint64_t failures = 0, okops = 0;
    std::uint64_t done_flag = 0;
    workload::ClosedLoopDriver reader(
        kKeys, [&](std::uint64_t i, const std::function<void()>& done) {
          client.read_latest(wl.key(i),
                             [&, done](const Result<store::VersionedValue>& r) {
                               if (r.ok()) {
                                 ++okops;
                               } else {
                                 ++failures;
                               }
                               done();
                             });
        });
    reader.start([&] { ++done_flag; });
    cluster.run_until([&] { return done_flag == 1; });
    total_failures += failures;
    const double t_ms = (cluster.sim().now() - crash_at) / 1000.0;
    std::printf("  pass %d (t+%.0f ms): ok=%llu failed=%llu\n", pass, t_ms,
                static_cast<unsigned long long>(okops),
                static_cast<unsigned long long>(failures));
    if (csv) {
      std::fprintf(csv, "%d,%.1f,%llu,%llu\n", pass, t_ms,
                   static_cast<unsigned long long>(failures),
                   static_cast<unsigned long long>(okops));
    }
    cluster.run_for(sim_sec(1));  // let session expiry / recovery advance
  }
  if (csv) std::fclose(csv);

  // Recovery accounting across coordinators.
  std::uint64_t recoveries = 0, suspicions = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    recoveries += cluster.node(i)
                      .metrics()
                      .counter("failure.recoveries_completed")
                      .value();
    suspicions +=
        cluster.node(i).metrics().counter("failure.suspicions").value();
  }
  std::printf("  suspicions=%llu vnode recoveries=%llu\n",
              static_cast<unsigned long long>(suspicions),
              static_cast<unsigned long long>(recoveries));

  // Replication factor after recovery + read repair.
  cluster.run_for(sim_sec(5));
  std::uint64_t fully_replicated = 0;
  const std::uint64_t sample = 200;
  for (std::uint64_t i = 0; i < sample; ++i) {
    auto got = cluster.read_latest(client, wl.key(i));
    if (!got.ok()) continue;
    std::size_t copies = 0;
    for (std::size_t n = 0; n < cluster.data_node_count(); ++n) {
      if (n == 2) continue;
      if (cluster.node(n).local_store().read_latest(wl.key(i)).ok()) {
        ++copies;
      }
    }
    if (copies >= 3) ++fully_replicated;
  }
  std::printf("  sampled keys fully re-replicated (3 live copies): "
              "%llu/%llu\n",
              static_cast<unsigned long long>(fully_replicated),
              static_cast<unsigned long long>(sample));

  // Shape: reads never collapse (quorum survives one crash), recovery
  // fires, and most sampled keys regain 3 live copies.
  const bool reads_survive = total_failures == 0;
  const bool recovered = recoveries > 0;
  const bool rereplicated = fully_replicated >= sample * 7 / 10;
  std::printf("\nshape: zero failed reads through the crash: %s\n",
              reads_survive ? "yes" : "NO");
  std::printf("shape: read-triggered recovery ran: %s\n",
              recovered ? "yes" : "NO");
  std::printf("shape: >=70%% of sampled keys back to 3 copies: %s\n",
              rereplicated ? "yes" : "NO");
  return (reads_survive && recovered && rereplicated) ? 0 : 1;
}
