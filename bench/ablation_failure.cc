// Ablation (Table I "Failure detection and handling — heartbeat + active
// detection → reduced detection time"; Section III.D): crash a data node
// mid-run and measure the client-visible impact.
//
// Reported:
//   * failed / degraded operations during the outage window;
//   * time from crash to first successful recovery (vnode reassignment);
//   * replication factor of sampled keys after the dust settles.
//
// Second experiment ("repair" ablation): isolate one replica holder
// behind a partition while a batch of keys is written, heal, then watch
// the under-replicated count with ZERO reads in flight. With the repair
// subsystem on (hinted handoff + Merkle anti-entropy) the count converges
// to 0; with it off the hole persists indefinitely, because read repair —
// the only remaining mechanism — never fires for cold keys.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/admin.h"
#include "common/critical_path.h"
#include "common/trace.h"
#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

bool run_repair_ablation() {
  std::printf("\nAblation: repair subsystem (hints + anti-entropy) after a "
              "healed partition, zero reads\n");
  std::FILE* csv = std::fopen(sedna::out_path("ablation_repair.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "mode,sample,t_ms,under_replicated\n");

  bool on_converged = false;
  bool off_stuck = false;
  for (int mode = 0; mode < 2; ++mode) {
    const bool repair = mode == 1;
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    // Small ring + fast daemons so a full anti-entropy sweep fits in a
    // few samples (32 replica vnodes per node at 8 per 250 ms round).
    cfg.cluster.total_vnodes = 64;
    if (repair) {
      cfg.node_template.hint_replay_interval = sim_ms(100);
      cfg.node_template.hint_backoff_initial = sim_ms(50);
      cfg.node_template.hint_backoff_max = sim_ms(500);
      cfg.node_template.anti_entropy_interval = sim_ms(250);
      cfg.node_template.anti_entropy_vnodes_per_round = 8;
    } else {
      cfg.node_template.hint_max_queued = 0;
      cfg.node_template.anti_entropy_interval = 0;
    }
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return false;
    auto& client = cluster.make_client();

    // Isolate one replica holder from the other data nodes only: its
    // ZooKeeper session stays alive, so the failure detector never fires
    // and nothing reassigns its vnodes — the under-replication is
    // exactly the cold-key hole the repair subsystem exists to close.
    const NodeId victim = cluster.node(2).id();
    for (NodeId other : cluster.data_ids()) {
      if (other != victim) cluster.network().partition(victim, other);
    }

    constexpr int kAblKeys = 500;
    std::vector<std::string> keys;
    keys.reserve(kAblKeys);
    for (int i = 0; i < kAblKeys; ++i) {
      keys.push_back("rk-" + std::to_string(i));
      if (!cluster.write_latest(client, keys.back(), "v").ok()) {
        std::printf("  [%s] write %d failed\n", repair ? "on" : "off", i);
        return false;
      }
    }
    cluster.network().heal_all();
    const SimTime heal_at = cluster.sim().now();

    cluster::ClusterInspector inspector(cluster);
    std::size_t low = 0;
    for (int s = 0; s < 8; ++s) {
      low = inspector.under_replicated(keys, 3);
      const double t_ms = (cluster.sim().now() - heal_at) / 1000.0;
      std::printf("  [repair %s] t+%.0f ms: under-replicated %zu/%d\n",
                  repair ? "on " : "off", t_ms, low, kAblKeys);
      if (csv) {
        std::fprintf(csv, "%s,%d,%.1f,%zu\n", repair ? "on" : "off", s,
                     t_ms, low);
      }
      cluster.run_for(sim_ms(500));
    }

    if (repair) {
      std::uint64_t hints = 0, ae_keys = 0;
      for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
        auto& m = cluster.node(i).metrics();
        hints += m.counter("coordinator.hints_delivered").value();
        ae_keys += m.counter("antientropy.keys_pushed").value() +
                   m.counter("antientropy.keys_pulled").value();
      }
      std::printf("  [repair on ] hints delivered=%llu, keys repaired by "
                  "anti-entropy=%llu\n",
                  static_cast<unsigned long long>(hints),
                  static_cast<unsigned long long>(ae_keys));
      on_converged = low == 0;
    } else {
      off_stuck = low > 0;
    }
  }
  if (csv) std::fclose(csv);

  std::printf("shape: repair-on converges to 0 under-replicated: %s\n",
              on_converged ? "yes" : "NO");
  std::printf("shape: repair-off leaves the hole open: %s\n",
              off_stuck ? "yes" : "NO");
  return on_converged && off_stuck;
}

}  // namespace

int main() {
  std::printf("Ablation: node failure, detection and read-triggered "
              "recovery\n");

  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) return 1;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  constexpr std::uint64_t kKeys = 2000;
  // Preload.
  std::uint64_t finished = 0;
  workload::ClosedLoopDriver preload(
      kKeys, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  preload.start([&] { ++finished; });
  cluster.run_until([&] { return finished == 1; });

  // Crash one replica holder.
  const SimTime crash_at = cluster.sim().now();
  cluster.crash_node(2);
  std::printf("  crashed node %u at t=%.1f ms\n", cluster.node(2).id(),
              crash_at / 1000.0);

  // Keep reading everything; count per-pass failures as the outage ages.
  // Each pass is also traced: the per-stage p99 attribution CSV shows the
  // dominant tail cause flipping from retry (requests burning the client
  // timeout against the dead coordinator) back to plain service time once
  // recovery reroutes the ring.
  Tracer& tracer = cluster.sim().tracer();
  AttributionAggregator agg;
  tracer.set_on_trace_finished(
      [&](TraceId id, const Tracer::TraceRecord& rec) {
        if (rec.op.rfind("client.", 0) != 0) return;
        agg.observe(id, rec);
      });
  std::FILE* csv = std::fopen(sedna::out_path("ablation_failure.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "pass,t_ms,failures,ok\n");
  std::FILE* att = std::fopen(sedna::out_path("ablation_failure_attribution.csv").c_str(), "w");
  if (att) {
    std::fprintf(att, "pass,t_ms,ops,p99_total_us");
    for (std::size_t s = 1; s < kTraceStageCount; ++s) {
      std::fprintf(att, ",p99_%s_us", to_string(static_cast<TraceStage>(s)));
    }
    std::fprintf(att, ",tail_dominant,min_coverage\n");
  }
  TraceStage first_dom = TraceStage::kUnknown;
  TraceStage last_dom = TraceStage::kUnknown;
  double worst_cov = 1.0;
  std::uint64_t total_failures = 0;
  for (int pass = 0; pass < 6; ++pass) {
    agg.reset();
    tracer.set_enabled(true);
    std::uint64_t failures = 0, okops = 0;
    std::uint64_t done_flag = 0;
    workload::ClosedLoopDriver reader(
        kKeys, [&](std::uint64_t i, const std::function<void()>& done) {
          client.read_latest(wl.key(i),
                             [&, done](const Result<store::VersionedValue>& r) {
                               if (r.ok()) {
                                 ++okops;
                               } else {
                                 ++failures;
                               }
                               done();
                             });
        });
    reader.start([&] { ++done_flag; });
    cluster.run_until([&] { return done_flag == 1; });
    tracer.set_enabled(false);
    total_failures += failures;
    const double t_ms = (cluster.sim().now() - crash_at) / 1000.0;
    const TraceStage dom = agg.tail_dominant(0.10);
    if (pass == 0) first_dom = dom;
    last_dom = dom;
    worst_cov = std::min(worst_cov, agg.min_coverage());
    std::printf("  pass %d (t+%.0f ms): ok=%llu failed=%llu "
                "tail-dominant=%s p99=%lluus cov>=%.4f\n",
                pass, t_ms, static_cast<unsigned long long>(okops),
                static_cast<unsigned long long>(failures), to_string(dom),
                static_cast<unsigned long long>(agg.total_p99()),
                agg.min_coverage());
    if (csv) {
      std::fprintf(csv, "%d,%.1f,%llu,%llu\n", pass, t_ms,
                   static_cast<unsigned long long>(failures),
                   static_cast<unsigned long long>(okops));
    }
    if (att) {
      std::fprintf(att, "%d,%.1f,%zu,%llu", pass, t_ms, agg.count(),
                   static_cast<unsigned long long>(agg.total_p99()));
      for (std::size_t s = 1; s < kTraceStageCount; ++s) {
        std::fprintf(att, ",%llu",
                     static_cast<unsigned long long>(
                         agg.stage_p99(static_cast<TraceStage>(s))));
      }
      std::fprintf(att, ",%s,%.4f\n", to_string(dom), agg.min_coverage());
    }
    cluster.run_for(sim_sec(1));  // let session expiry / recovery advance
  }
  if (csv) std::fclose(csv);
  if (att) std::fclose(att);

  // Recovery accounting across coordinators.
  std::uint64_t recoveries = 0, suspicions = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    recoveries += cluster.node(i)
                      .metrics()
                      .counter("failure.recoveries_completed")
                      .value();
    suspicions +=
        cluster.node(i).metrics().counter("failure.suspicions").value();
  }
  std::printf("  suspicions=%llu vnode recoveries=%llu\n",
              static_cast<unsigned long long>(suspicions),
              static_cast<unsigned long long>(recoveries));

  // Replication factor after recovery + read repair.
  cluster.run_for(sim_sec(5));
  std::uint64_t fully_replicated = 0;
  const std::uint64_t sample = 200;
  for (std::uint64_t i = 0; i < sample; ++i) {
    auto got = cluster.read_latest(client, wl.key(i));
    if (!got.ok()) continue;
    std::size_t copies = 0;
    for (std::size_t n = 0; n < cluster.data_node_count(); ++n) {
      if (n == 2) continue;
      if (cluster.node(n).local_store().read_latest(wl.key(i)).ok()) {
        ++copies;
      }
    }
    if (copies >= 3) ++fully_replicated;
  }
  std::printf("  sampled keys fully re-replicated (3 live copies): "
              "%llu/%llu\n",
              static_cast<unsigned long long>(fully_replicated),
              static_cast<unsigned long long>(sample));

  // Shape: reads never collapse (quorum survives one crash), recovery
  // fires, and most sampled keys regain 3 live copies.
  const bool reads_survive = total_failures == 0;
  const bool recovered = recoveries > 0;
  const bool rereplicated = fully_replicated >= sample * 7 / 10;
  const bool attribution_flips =
      (first_dom == TraceStage::kRetry ||
       first_dom == TraceStage::kHintReplay) &&
      last_dom == TraceStage::kService && worst_cov >= 0.95;
  std::printf("\nshape: zero failed reads through the crash: %s\n",
              reads_survive ? "yes" : "NO");
  std::printf("shape: read-triggered recovery ran: %s\n",
              recovered ? "yes" : "NO");
  std::printf("shape: >=70%% of sampled keys back to 3 copies: %s\n",
              rereplicated ? "yes" : "NO");
  std::printf("shape: tail cause flips %s -> %s (cov>=%.4f): %s\n",
              to_string(first_dom), to_string(last_dom), worst_cov,
              attribution_flips ? "yes" : "NO");

  const bool repair_ok = run_repair_ablation();
  return (reads_survive && recovered && rereplicated && attribution_flips &&
          repair_ok)
             ? 0
             : 1;
}
