// YCSB-style workload mixes over Sedna (standard KV evaluation beyond the
// paper's single write-then-read mix). One closed-loop client per mix on
// the paper testbed; reports per-op latency and throughput.
//
// Expected shape: Sedna's quorum paths are symmetric — a read contacts
// all N replicas and waits for R agreeing replies, a write contacts all N
// and waits for W acks — so per-op cost is essentially MIX-INSENSITIVE.
// This mirrors the paper's Fig. 7, where the Sedna write and read curves
// lie on top of each other. (Contrast with a primary-copy design, where
// update-heavy mixes pay extra.)
#include <algorithm>
#include <cstdio>

#include "fig_common.h"
#include "workload/ycsb.h"

using namespace sedna;
using namespace sedna::bench;
using workload::YcsbMix;
using workload::YcsbOp;

namespace {

struct MixResult {
  double ops_per_sec = 0;
  double us_per_op = 0;
};

MixResult run_mix(YcsbMix mix, std::uint64_t ops) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cluster::SednaCluster cluster(cfg);
  MixResult out;
  if (!cluster.boot().ok()) return out;
  auto& client = cluster.make_client();

  workload::YcsbConfig wcfg;
  wcfg.mix = mix;
  workload::YcsbWorkload wl(wcfg);

  // Preload.
  std::uint32_t phase = 0;
  workload::ClosedLoopDriver loader(
      wcfg.records, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.load_key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  loader.start([&] { ++phase; });
  cluster.run_until([&] { return phase == 1; });

  // Measured phase.
  const SimTime start = cluster.sim().now();
  phase = 0;
  workload::ClosedLoopDriver driver(
      ops, [&](std::uint64_t, const std::function<void()>& done) {
        const YcsbOp op = wl.next();
        switch (op.kind) {
          case YcsbOp::Kind::kRead:
            client.read_latest(op.key,
                               [done](const Result<store::VersionedValue>&) {
                                 done();
                               });
            break;
          case YcsbOp::Kind::kUpdate:
          case YcsbOp::Kind::kInsert:
            client.write_latest(op.key, wl.value(),
                                [done](const Status&) { done(); });
            break;
        }
      });
  driver.start([&] { ++phase; });
  cluster.run_until([&] { return phase == 1; });

  const double secs = static_cast<double>(cluster.sim().now() - start) / 1e6;
  out.ops_per_sec = static_cast<double>(ops) / secs;
  out.us_per_op = secs * 1e6 / static_cast<double>(ops);
  return out;
}

}  // namespace

int main() {
  std::printf("YCSB-style mixes on Sedna (1 client, paper testbed, "
              "2000 records, 5000 ops)\n\n");
  std::printf("%-18s %14s %12s\n", "mix", "ops/s", "us/op");

  std::FILE* csv = std::fopen(sedna::out_path("ycsb_mix.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "mix,ops_per_sec,us_per_op\n");

  constexpr std::uint64_t kOps = 5000;
  MixResult results[4];
  const YcsbMix mixes[] = {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC,
                           YcsbMix::kD};
  for (int i = 0; i < 4; ++i) {
    results[i] = run_mix(mixes[i], kOps);
    std::printf("%-18s %14.0f %12.1f\n", workload::to_string(mixes[i]),
                results[i].ops_per_sec, results[i].us_per_op);
    if (csv) {
      std::fprintf(csv, "%s,%.1f,%.2f\n", workload::to_string(mixes[i]),
                   results[i].ops_per_sec, results[i].us_per_op);
    }
  }
  if (csv) std::fclose(csv);

  // Shape: mix-insensitivity — every mix within 10% of every other
  // (symmetric R/W quorums, matching the overlapping Sedna write/read
  // curves of Fig. 7).
  double lo = results[0].ops_per_sec, hi = results[0].ops_per_sec;
  for (const auto& r : results) {
    lo = std::min(lo, r.ops_per_sec);
    hi = std::max(hi, r.ops_per_sec);
  }
  const bool flat = hi <= lo * 1.10;
  std::printf("\nshape: throughput mix-insensitive (max/min = %.3f,"
              " expect <= 1.10): %s\n", hi / lo, flat ? "yes" : "NO");
  return flat ? 0 : 1;
}
