// Hot-key skew bench: what the per-vnode status + imbalance table
// machinery (Section III.B) actually observes under realistic access
// skew, and how the ring dilutes it.
//
// Drives uniform and zipf-distributed read workloads over the same data
// and reports the per-node write/read imbalance (CV) plus the share of
// accesses hitting the hottest vnode and hottest node. The paper's
// motivating workloads (tweets, social graphs) are zipfian; the imbalance
// table is the instrument a balancer needs to notice it.
#include <cstdio>
#include <map>

#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct SkewResult {
  double node_read_cv = 0;
  double hottest_node_share = 0;
  double hottest_vnode_share = 0;
};

SkewResult run_skew(double zipf_exponent, std::uint64_t reads,
                    std::uint64_t universe) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cfg.cluster.total_vnodes = 1024;
  cluster::SednaCluster cluster(cfg);
  SkewResult out;
  if (!cluster.boot().ok()) return out;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  // Load the universe.
  std::uint32_t phase_done = 0;
  workload::ClosedLoopDriver loader(
      universe, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  loader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Read under the requested skew (exponent 0 => uniform).
  ZipfGenerator zipf(universe, zipf_exponent <= 0 ? 0.01 : zipf_exponent,
                     99);
  Rng uniform(99);
  phase_done = 0;
  workload::ClosedLoopDriver reader(
      reads, [&](std::uint64_t, const std::function<void()>& done) {
        const std::uint64_t idx =
            zipf_exponent <= 0
                ? uniform.next_below(universe)
                : static_cast<std::uint64_t>(zipf.next());
        client.read_latest(wl.key(idx),
                           [done](const Result<store::VersionedValue>&) {
                             done();
                           });
      });
  reader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Aggregate per-node and per-vnode read frequency from the status
  // tables the nodes keep (Section III.B).
  ring::ImbalanceTable table;
  std::map<VnodeId, std::uint64_t> vnode_reads;
  std::uint64_t total = 0, hottest_node = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& node = cluster.node(i);
    ring::RealNodeLoad row;
    row.node = node.id();
    const auto& status = node.vnode_status();
    for (std::size_t v = 0; v < status.size(); ++v) {
      row.reads += status[v].reads;
      vnode_reads[static_cast<VnodeId>(v)] += status[v].reads;
    }
    table.update(row);
    total += row.reads;
    hottest_node = std::max(hottest_node, row.reads);
  }
  std::uint64_t hottest_vnode = 0;
  for (const auto& [v, r] : vnode_reads) {
    hottest_vnode = std::max(hottest_vnode, r);
  }
  out.node_read_cv = table.imbalance(&ring::RealNodeLoad::reads);
  out.hottest_node_share =
      total ? static_cast<double>(hottest_node) / total : 0;
  out.hottest_vnode_share =
      total ? static_cast<double>(hottest_vnode) / total : 0;
  return out;
}

}  // namespace

int main() {
  std::printf("Hot-key skew: what the imbalance table observes "
              "(10k reads over 2k keys)\n\n");
  std::printf("%-14s %14s %18s %19s\n", "workload", "node_read_cv",
              "hottest_node_pct", "hottest_vnode_pct");

  std::FILE* csv = std::fopen("hotkey_skew.csv", "w");
  if (csv) std::fprintf(csv, "workload,node_cv,node_share,vnode_share\n");

  const SkewResult uniform = run_skew(0.0, 10000, 2000);
  const SkewResult zipf1 = run_skew(0.99, 10000, 2000);
  const SkewResult zipf15 = run_skew(1.5, 10000, 2000);

  auto row = [&](const char* name, const SkewResult& r) {
    std::printf("%-14s %14.3f %17.1f%% %18.1f%%\n", name, r.node_read_cv,
                100 * r.hottest_node_share, 100 * r.hottest_vnode_share);
    if (csv) {
      std::fprintf(csv, "%s,%.4f,%.4f,%.4f\n", name, r.node_read_cv,
                   r.hottest_node_share, r.hottest_vnode_share);
    }
  };
  row("uniform", uniform);
  row("zipf-0.99", zipf1);
  row("zipf-1.5", zipf15);
  if (csv) std::fclose(csv);

  // Shape: skew concentrates traffic on single vnodes far more than on
  // whole nodes — many vnodes per node dilute hot keys across the
  // cluster, which is precisely the virtual-node argument; and the
  // imbalance table's CV visibly grows with skew, giving the balancer its
  // signal.
  const bool cv_grows = zipf15.node_read_cv > uniform.node_read_cv;
  const bool vnodes_dilute =
      zipf15.hottest_node_share < 3 * zipf15.hottest_vnode_share + 0.34;
  std::printf("\nshape: read CV grows with skew: %s\n",
              cv_grows ? "yes" : "NO");
  std::printf("shape: node share stays well under concentrated vnode "
              "share x3 + uniform floor: %s\n",
              vnodes_dilute ? "yes" : "NO");
  return (cv_grows && vnodes_dilute) ? 0 : 1;
}
