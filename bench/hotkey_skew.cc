// Hot-key skew bench: what the per-vnode status + imbalance table
// machinery (Section III.B) actually observes under realistic access
// skew, and how the ring dilutes it.
//
// Drives uniform and zipf-distributed read workloads over the same data
// and reports the per-node write/read imbalance (CV) plus the share of
// accesses hitting the hottest vnode and hottest node. The paper's
// motivating workloads (tweets, social graphs) are zipfian; the imbalance
// table is the instrument a balancer needs to notice it.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/heavy_hitters.h"
#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct SkewResult {
  double node_read_cv = 0;
  double hottest_node_share = 0;
  double hottest_vnode_share = 0;
  /// Detected-vs-true top-8 hot keys: the coordinators' SpaceSaving
  /// sketches against the driver's exact per-key read counts.
  double hot_precision = 0;
  double hot_recall = 0;
};

constexpr std::size_t kTopK = 8;

/// Top-k keys by count (desc), key (asc) — the same order the sketch's
/// top() uses, so ground truth and detection break ties identically.
std::vector<std::string> top_keys(
    const std::map<std::string, std::uint64_t>& counts, std::size_t k) {
  std::vector<std::pair<std::string, std::uint64_t>> rows(counts.begin(),
                                                          counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (auto& [key, count] : rows) keys.push_back(key);
  return keys;
}

SkewResult run_skew(double zipf_exponent, std::uint64_t reads,
                    std::uint64_t universe) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cfg.cluster.total_vnodes = 1024;
  cluster::SednaCluster cluster(cfg);
  SkewResult out;
  if (!cluster.boot().ok()) return out;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  // Load the universe.
  std::uint32_t phase_done = 0;
  workload::ClosedLoopDriver loader(
      universe, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  loader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Read under the requested skew (exponent 0 => uniform).
  ZipfGenerator zipf(universe, zipf_exponent <= 0 ? 0.01 : zipf_exponent,
                     99);
  Rng uniform(99);
  phase_done = 0;
  std::map<std::string, std::uint64_t> true_reads;  // exact ground truth
  workload::ClosedLoopDriver reader(
      reads, [&](std::uint64_t, const std::function<void()>& done) {
        const std::uint64_t idx =
            zipf_exponent <= 0
                ? uniform.next_below(universe)
                : static_cast<std::uint64_t>(zipf.next());
        ++true_reads[wl.key(idx)];
        client.read_latest(wl.key(idx),
                           [done](const Result<store::VersionedValue>&) {
                             done();
                           });
      });
  reader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Aggregate per-node and per-vnode read frequency from the status
  // tables the nodes keep (Section III.B).
  ring::ImbalanceTable table;
  std::map<VnodeId, std::uint64_t> vnode_reads;
  std::uint64_t total = 0, hottest_node = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& node = cluster.node(i);
    ring::RealNodeLoad row;
    row.node = node.id();
    const auto& status = node.vnode_status();
    for (std::size_t v = 0; v < status.size(); ++v) {
      row.reads += status[v].reads;
      vnode_reads[static_cast<VnodeId>(v)] += status[v].reads;
    }
    table.update(row);
    total += row.reads;
    hottest_node = std::max(hottest_node, row.reads);
  }
  std::uint64_t hottest_vnode = 0;
  for (const auto& [v, r] : vnode_reads) {
    hottest_vnode = std::max(hottest_vnode, r);
  }
  out.node_read_cv = table.imbalance(&ring::RealNodeLoad::reads);
  out.hottest_node_share =
      total ? static_cast<double>(hottest_node) / total : 0;
  out.hottest_vnode_share =
      total ? static_cast<double>(hottest_vnode) / total : 0;

  // Hot-key detection quality: merge every coordinator's SpaceSaving
  // sketch by summing counts, take the top-8, and compare against the
  // exact top-8 of the driver's own tally. (Writes during the load phase
  // also hit the sketches — once per key, uniform noise the heavy
  // hitters tower over.)
  std::map<std::string, std::uint64_t> merged;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    for (const auto& e : cluster.node(i).hot_keys().entries()) {
      merged[e.key] += e.count;
    }
  }
  const auto truth = top_keys(true_reads, kTopK);
  const auto detected = top_keys(merged, kTopK);
  const std::set<std::string> truth_set(truth.begin(), truth.end());
  std::size_t hits = 0;
  for (const auto& key : detected) hits += truth_set.count(key);
  out.hot_precision =
      detected.empty() ? 0 : static_cast<double>(hits) / detected.size();
  out.hot_recall =
      truth.empty() ? 0 : static_cast<double>(hits) / truth.size();
  return out;
}

}  // namespace

int main() {
  std::printf("Hot-key skew: what the imbalance table observes "
              "(10k reads over 2k keys)\n\n");
  std::printf("%-14s %14s %18s %19s %9s %9s\n", "workload", "node_read_cv",
              "hottest_node_pct", "hottest_vnode_pct", "hot_prec",
              "hot_rec");

  std::FILE* csv = std::fopen("hotkey_skew.csv", "w");
  if (csv) {
    std::fprintf(csv, "workload,node_cv,node_share,vnode_share,"
                      "hot_precision,hot_recall\n");
  }

  const SkewResult uniform = run_skew(0.0, 10000, 2000);
  const SkewResult zipf1 = run_skew(0.99, 10000, 2000);
  const SkewResult zipf15 = run_skew(1.5, 10000, 2000);

  auto row = [&](const char* name, const SkewResult& r) {
    std::printf("%-14s %14.3f %17.1f%% %18.1f%% %9.2f %9.2f\n", name,
                r.node_read_cv, 100 * r.hottest_node_share,
                100 * r.hottest_vnode_share, r.hot_precision, r.hot_recall);
    if (csv) {
      std::fprintf(csv, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n", name,
                   r.node_read_cv, r.hottest_node_share,
                   r.hottest_vnode_share, r.hot_precision, r.hot_recall);
    }
  };
  row("uniform", uniform);
  row("zipf-0.99", zipf1);
  row("zipf-1.5", zipf15);
  if (csv) std::fclose(csv);

  // Shape: skew concentrates traffic on single vnodes far more than on
  // whole nodes — many vnodes per node dilute hot keys across the
  // cluster, which is precisely the virtual-node argument; and the
  // imbalance table's CV visibly grows with skew, giving the balancer its
  // signal.
  const bool cv_grows = zipf15.node_read_cv > uniform.node_read_cv;
  const bool vnodes_dilute =
      zipf15.hottest_node_share < 3 * zipf15.hottest_vnode_share + 0.34;
  // Under strong skew the merged sketches must pin the true heavy
  // hitters; uniform traffic has no heavy hitters, so its columns are
  // reported but not gated.
  const bool sketch_finds_hot =
      zipf15.hot_precision >= 0.75 && zipf1.hot_precision >= 0.75;
  std::printf("\nshape: read CV grows with skew: %s\n",
              cv_grows ? "yes" : "NO");
  std::printf("shape: node share stays well under concentrated vnode "
              "share x3 + uniform floor: %s\n",
              vnodes_dilute ? "yes" : "NO");
  std::printf("shape: sketch top-8 precision >= 0.75 under zipf: %s\n",
              sketch_finds_hot ? "yes" : "NO");
  return (cv_grows && vnodes_dilute && sketch_finds_hot) ? 0 : 1;
}
