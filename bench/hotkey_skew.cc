// Hot-key skew bench: what the per-vnode status + imbalance table
// machinery (Section III.B) actually observes under realistic access
// skew, and how the ring dilutes it.
//
// Drives uniform and zipf-distributed read workloads over the same data
// and reports the per-node write/read imbalance (CV) plus the share of
// accesses hitting the hottest vnode and hottest node. The paper's
// motivating workloads (tweets, social graphs) are zipfian; the imbalance
// table is the instrument a balancer needs to notice it.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/critical_path.h"
#include "common/heavy_hitters.h"
#include "common/trace.h"
#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct SkewResult {
  double node_read_cv = 0;
  double hottest_node_share = 0;
  double hottest_vnode_share = 0;
  /// Detected-vs-true top-8 hot keys: the coordinators' SpaceSaving
  /// sketches against the driver's exact per-key read counts.
  double hot_precision = 0;
  double hot_recall = 0;
  /// Critical-path attribution of the traced read phase.
  std::size_t traced_ops = 0;
  std::uint64_t p99_total_us = 0;
  std::uint64_t p99_stage_us[kTraceStageCount] = {};
  TraceStage tail_dominant = TraceStage::kUnknown;
  double min_coverage = 1.0;
};

constexpr std::size_t kTopK = 8;

/// Top-k keys by count (desc), key (asc) — the same order the sketch's
/// top() uses, so ground truth and detection break ties identically.
std::vector<std::string> top_keys(
    const std::map<std::string, std::uint64_t>& counts, std::size_t k) {
  std::vector<std::pair<std::string, std::uint64_t>> rows(counts.begin(),
                                                          counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (auto& [key, count] : rows) keys.push_back(key);
  return keys;
}

SkewResult run_skew(double zipf_exponent, std::uint64_t reads,
                    std::uint64_t universe) {
  cluster::SednaClusterConfig cfg = paper_cluster_config();
  cfg.cluster.total_vnodes = 1024;
  cluster::SednaCluster cluster(cfg);
  SkewResult out;
  if (!cluster.boot().ok()) return out;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  // Load the universe.
  std::uint32_t phase_done = 0;
  workload::ClosedLoopDriver loader(
      universe, [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  loader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Read under the requested skew (exponent 0 => uniform), with every
  // read traced and attributed on its critical path as it finishes.
  AttributionAggregator agg;
  cluster.sim().tracer().set_on_trace_finished(
      [&](TraceId id, const Tracer::TraceRecord& rec) {
        if (rec.op.rfind("client.", 0) != 0) return;
        agg.observe(id, rec);
      });
  cluster.sim().tracer().set_enabled(true);
  ZipfGenerator zipf(universe, zipf_exponent <= 0 ? 0.01 : zipf_exponent,
                     99);
  Rng uniform(99);
  phase_done = 0;
  std::map<std::string, std::uint64_t> true_reads;  // exact ground truth
  workload::ClosedLoopDriver reader(
      reads, [&](std::uint64_t, const std::function<void()>& done) {
        const std::uint64_t idx =
            zipf_exponent <= 0
                ? uniform.next_below(universe)
                : static_cast<std::uint64_t>(zipf.next());
        ++true_reads[wl.key(idx)];
        client.read_latest(wl.key(idx),
                           [done](const Result<store::VersionedValue>&) {
                             done();
                           });
      });
  reader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });
  cluster.sim().tracer().set_enabled(false);
  out.traced_ops = agg.count();
  out.p99_total_us = agg.total_p99();
  for (std::size_t s = 0; s < kTraceStageCount; ++s) {
    out.p99_stage_us[s] = agg.stage_p99(static_cast<TraceStage>(s));
  }
  out.tail_dominant = agg.tail_dominant(0.10);
  out.min_coverage = agg.min_coverage();

  // Aggregate per-node and per-vnode read frequency from the status
  // tables the nodes keep (Section III.B).
  ring::ImbalanceTable table;
  std::map<VnodeId, std::uint64_t> vnode_reads;
  std::uint64_t total = 0, hottest_node = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& node = cluster.node(i);
    ring::RealNodeLoad row;
    row.node = node.id();
    const auto& status = node.vnode_status();
    for (std::size_t v = 0; v < status.size(); ++v) {
      row.reads += status[v].reads;
      vnode_reads[static_cast<VnodeId>(v)] += status[v].reads;
    }
    table.update(row);
    total += row.reads;
    hottest_node = std::max(hottest_node, row.reads);
  }
  std::uint64_t hottest_vnode = 0;
  for (const auto& [v, r] : vnode_reads) {
    hottest_vnode = std::max(hottest_vnode, r);
  }
  out.node_read_cv = table.imbalance(&ring::RealNodeLoad::reads);
  out.hottest_node_share =
      total ? static_cast<double>(hottest_node) / total : 0;
  out.hottest_vnode_share =
      total ? static_cast<double>(hottest_vnode) / total : 0;

  // Hot-key detection quality: merge every coordinator's SpaceSaving
  // sketch by summing counts, take the top-8, and compare against the
  // exact top-8 of the driver's own tally. (Writes during the load phase
  // also hit the sketches — once per key, uniform noise the heavy
  // hitters tower over.)
  std::map<std::string, std::uint64_t> merged;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    for (const auto& e : cluster.node(i).hot_keys().entries()) {
      merged[e.key] += e.count;
    }
  }
  const auto truth = top_keys(true_reads, kTopK);
  const auto detected = top_keys(merged, kTopK);
  const std::set<std::string> truth_set(truth.begin(), truth.end());
  std::size_t hits = 0;
  for (const auto& key : detected) hits += truth_set.count(key);
  out.hot_precision =
      detected.empty() ? 0 : static_cast<double>(hits) / detected.size();
  out.hot_recall =
      truth.empty() ? 0 : static_cast<double>(hits) / truth.size();
  return out;
}

// ---- rebalancer ablation -------------------------------------------------
//
// Same zipfian read pressure, now against a 64-node ring, with the
// traffic-aware rebalancer switched off and on. The warmup phase gives
// the control loop (telemetry windows -> leader plan -> migrations) time
// to act; the measurement phase then records per-node coordinator read
// load and client-observed read latency from an identical, freshly-seeded
// zipf stream. The gate is the tentpole claim: the per-node load CV under
// skew is strictly lower with the rebalancer on.

struct AblationResult {
  double node_read_cv = 0;
  double p99_read_us = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rounds = 0;
};

constexpr std::uint64_t kAblationUniverse = 2000;
constexpr std::uint64_t kAblationWarmupReads = 20000;
constexpr std::uint64_t kAblationMeasureReads = 10000;

AblationResult run_rebalance_ablation(bool enabled) {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 64;
  cfg.cluster.total_vnodes = 1024;  // 16 vnodes per real node
  cfg.cluster.replicas = 3;
  cfg.cluster.read_quorum = 2;
  cfg.cluster.write_quorum = 2;
  cfg.seed = 2012;
  cfg.node_template.host.base_service_us = kPaperServiceUs;
  cfg.client_template.host.base_service_us = kPaperServiceUs;
  cfg.node_template.load_report_interval = sim_ms(500);
  if (enabled) {
    cfg.node_template.traffic_rebalance_interval = sim_sec(2);
    cfg.node_template.traffic_rebalance.cv_trigger = 0.2;
    cfg.node_template.traffic_rebalance.vnode_cooldown = sim_sec(4);
    cfg.node_template.traffic_rebalance.max_moves_per_round = 8;
  }
  cluster::SednaCluster cluster(cfg);
  AblationResult out;
  if (!cluster.boot().ok()) return out;
  auto& client = cluster.make_client();
  workload::KvWorkload wl;

  std::uint32_t phase_done = 0;
  workload::ClosedLoopDriver loader(
      kAblationUniverse,
      [&](std::uint64_t i, const std::function<void()>& done) {
        client.write_latest(wl.key(i), wl.value(),
                            [done](const Status&) { done(); });
      });
  loader.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Warmup under skew: with the rebalancer enabled this is where the
  // leader observes the imbalance and migrates hot vnodes.
  ZipfGenerator warm_zipf(kAblationUniverse, 0.99, 99);
  phase_done = 0;
  workload::ClosedLoopDriver warmup(
      kAblationWarmupReads,
      [&](std::uint64_t, const std::function<void()>& done) {
        const auto idx = static_cast<std::uint64_t>(warm_zipf.next());
        client.read_latest(wl.key(idx),
                           [done](const Result<store::VersionedValue>&) {
                             done();
                           });
      });
  warmup.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // Per-node coordinator read counts before the measurement window.
  auto node_reads = [&](std::size_t i) {
    std::uint64_t reads = 0;
    for (const auto& vs : cluster.node(i).vnode_status()) reads += vs.reads;
    return reads;
  };
  std::vector<std::uint64_t> before(cluster.data_node_count());
  for (std::size_t i = 0; i < before.size(); ++i) before[i] = node_reads(i);

  // Measurement window: identical zipf stream, fresh latency tally.
  ZipfGenerator measure_zipf(kAblationUniverse, 0.99, 991);
  std::vector<double> latencies;
  latencies.reserve(kAblationMeasureReads);
  phase_done = 0;
  workload::ClosedLoopDriver measure(
      kAblationMeasureReads,
      [&](std::uint64_t, const std::function<void()>& done) {
        const auto idx = static_cast<std::uint64_t>(measure_zipf.next());
        const SimTime t0 = cluster.sim().now();
        client.read_latest(wl.key(idx),
                           [&, t0, done](
                               const Result<store::VersionedValue>&) {
                             latencies.push_back(static_cast<double>(
                                 cluster.sim().now() - t0));
                             done();
                           });
      });
  measure.start([&] { ++phase_done; });
  cluster.run_until([&] { return phase_done == 1; });

  // CV of the measurement-window read load across all 64 nodes. A vnode
  // that migrated mid-window splits its traffic between old and new
  // owner, which is exactly the load each node really carried.
  double mean = 0;
  std::vector<double> deltas(before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    deltas[i] = static_cast<double>(node_reads(i) - before[i]);
    mean += deltas[i];
  }
  mean /= static_cast<double>(deltas.size());
  double var = 0;
  for (double d : deltas) var += (d - mean) * (d - mean);
  var /= static_cast<double>(deltas.size());
  out.node_read_cv = mean > 0 ? std::sqrt(var) / mean : 0;

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    out.p99_read_us =
        latencies[static_cast<std::size_t>(0.99 *
                                           (latencies.size() - 1))];
  }
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& m = cluster.node(i).metrics();
    out.migrations += m.counter("rebalance.migrations_completed").value();
    out.rounds += m.counter("rebalance.traffic_rounds").value();
  }
  return out;
}

int run_rebalance_mode() {
  std::printf("Rebalancer ablation: 64 nodes, zipf-0.99 reads over %llu "
              "keys (%llu warmup + %llu measured)\n\n",
              static_cast<unsigned long long>(kAblationUniverse),
              static_cast<unsigned long long>(kAblationWarmupReads),
              static_cast<unsigned long long>(kAblationMeasureReads));
  std::printf("%-12s %14s %12s %12s %8s\n", "rebalancer", "node_read_cv",
              "p99_read_us", "migrations", "rounds");

  const AblationResult off = run_rebalance_ablation(false);
  const AblationResult on = run_rebalance_ablation(true);

  std::FILE* csv = std::fopen(sedna::out_path("ablation_rebalance.csv").c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "rebalancer,node_read_cv,p99_read_us,migrations,rounds\n");
  }
  auto row = [&](const char* name, const AblationResult& r) {
    std::printf("%-12s %14.3f %12.1f %12llu %8llu\n", name, r.node_read_cv,
                r.p99_read_us, static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.rounds));
    if (csv) {
      std::fprintf(csv, "%s,%.4f,%.1f,%llu,%llu\n", name, r.node_read_cv,
                   r.p99_read_us,
                   static_cast<unsigned long long>(r.migrations),
                   static_cast<unsigned long long>(r.rounds));
    }
  };
  row("off", off);
  row("on", on);
  if (csv) std::fclose(csv);

  // Shape gates: the control loop actually ran, actually migrated, and
  // the per-node load CV under skew strictly improved.
  const bool loop_ran = on.rounds >= 1 && on.migrations >= 1;
  const bool baseline_clean = off.migrations == 0;
  const bool cv_improves = on.node_read_cv < off.node_read_cv;
  std::printf("\nshape: rebalancer planned and completed migrations: %s\n",
              loop_ran ? "yes" : "NO");
  std::printf("shape: control run performed no migrations: %s\n",
              baseline_clean ? "yes" : "NO");
  std::printf("shape: node read CV strictly lower with rebalancer on: %s "
              "(%.3f -> %.3f)\n",
              cv_improves ? "yes" : "NO", off.node_read_cv,
              on.node_read_cv);
  return (loop_ran && baseline_clean && cv_improves) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "rebalance") {
    return run_rebalance_mode();
  }
  std::printf("Hot-key skew: what the imbalance table observes "
              "(10k reads over 2k keys)\n\n");
  std::printf("%-14s %14s %18s %19s %9s %9s\n", "workload", "node_read_cv",
              "hottest_node_pct", "hottest_vnode_pct", "hot_prec",
              "hot_rec");

  std::FILE* csv = std::fopen(sedna::out_path("hotkey_skew.csv").c_str(), "w");
  if (csv) {
    std::fprintf(csv, "workload,node_cv,node_share,vnode_share,"
                      "hot_precision,hot_recall\n");
  }

  const SkewResult uniform = run_skew(0.0, 10000, 2000);
  const SkewResult zipf1 = run_skew(0.99, 10000, 2000);
  const SkewResult zipf15 = run_skew(1.5, 10000, 2000);

  // Per-stage p99 attribution of the traced read phases: under pure
  // skew (no failures) the tail must be service/queue time, never retry.
  std::FILE* att = std::fopen(sedna::out_path("hotkey_skew_attribution.csv").c_str(), "w");
  if (att) {
    std::fprintf(att, "workload,ops,p99_total_us");
    for (std::size_t s = 1; s < kTraceStageCount; ++s) {
      std::fprintf(att, ",p99_%s_us", to_string(static_cast<TraceStage>(s)));
    }
    std::fprintf(att, ",tail_dominant,min_coverage\n");
  }

  auto row = [&](const char* name, const SkewResult& r) {
    std::printf("%-14s %14.3f %17.1f%% %18.1f%% %9.2f %9.2f\n", name,
                r.node_read_cv, 100 * r.hottest_node_share,
                100 * r.hottest_vnode_share, r.hot_precision, r.hot_recall);
    std::printf("  attribution: %zu ops, p99=%lluus, tail dominant=%s, "
                "min coverage=%.4f\n",
                r.traced_ops,
                static_cast<unsigned long long>(r.p99_total_us),
                to_string(r.tail_dominant), r.min_coverage);
    if (csv) {
      std::fprintf(csv, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n", name,
                   r.node_read_cv, r.hottest_node_share,
                   r.hottest_vnode_share, r.hot_precision, r.hot_recall);
    }
    if (att) {
      std::fprintf(att, "%s,%zu,%llu", name, r.traced_ops,
                   static_cast<unsigned long long>(r.p99_total_us));
      for (std::size_t s = 1; s < kTraceStageCount; ++s) {
        std::fprintf(att, ",%llu",
                     static_cast<unsigned long long>(r.p99_stage_us[s]));
      }
      std::fprintf(att, ",%s,%.4f\n", to_string(r.tail_dominant),
                   r.min_coverage);
    }
  };
  row("uniform", uniform);
  row("zipf-0.99", zipf1);
  row("zipf-1.5", zipf15);
  if (csv) std::fclose(csv);
  if (att) std::fclose(att);

  // Shape: skew concentrates traffic on single vnodes far more than on
  // whole nodes — many vnodes per node dilute hot keys across the
  // cluster, which is precisely the virtual-node argument; and the
  // imbalance table's CV visibly grows with skew, giving the balancer its
  // signal.
  const bool cv_grows = zipf15.node_read_cv > uniform.node_read_cv;
  const bool vnodes_dilute =
      zipf15.hottest_node_share < 3 * zipf15.hottest_vnode_share + 0.34;
  // Under strong skew the merged sketches must pin the true heavy
  // hitters; uniform traffic has no heavy hitters, so its columns are
  // reported but not gated.
  const bool sketch_finds_hot =
      zipf15.hot_precision >= 0.75 && zipf1.hot_precision >= 0.75;
  // A failure-free skew run must attribute >=95% of every read and must
  // not blame the tail on retries — there are none to blame.
  const bool attribution_sane =
      uniform.min_coverage >= 0.95 && zipf1.min_coverage >= 0.95 &&
      zipf15.min_coverage >= 0.95 &&
      zipf15.tail_dominant != TraceStage::kRetry;
  std::printf("\nshape: read CV grows with skew: %s\n",
              cv_grows ? "yes" : "NO");
  std::printf("shape: node share stays well under concentrated vnode "
              "share x3 + uniform floor: %s\n",
              vnodes_dilute ? "yes" : "NO");
  std::printf("shape: sketch top-8 precision >= 0.75 under zipf: %s\n",
              sketch_finds_hot ? "yes" : "NO");
  std::printf("shape: attribution covers >=95%% with no retry tail: %s\n",
              attribution_sane ? "yes" : "NO");
  return (cv_grows && vnodes_dilute && sketch_finds_hot && attribution_sane)
             ? 0
             : 1;
}
