// Ablation (Section III.E, situation 1): "lots of creation operations
// will take a long time when the virtual nodes number is large, but it
// only happens once when the Sedna cluster firstly starts up."
//
// Measures first-boot cost — ZooKeeper znode creation for the whole vnode
// table plus node start — as the vnode count grows, and contrasts it with
// the steady-state cost those vnodes buy (journal syncs stay O(changes)).
#include <cstdio>

#include "common/outdir.h"
#include "cluster/sedna_cluster.h"

using namespace sedna;
using namespace sedna::cluster;

int main() {
  std::printf("Ablation: first-boot cost vs virtual-node count "
              "(one-time, Section III.E)\n\n");
  std::printf("%-10s %16s %18s %14s\n", "vnodes", "boot_ms(sim)",
              "zk_commits", "boot_msgs");

  std::FILE* csv = std::fopen(sedna::out_path("ablation_bootstrap.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "vnodes,boot_ms,zk_commits,messages\n");

  double prev_boot = 0;
  std::uint32_t prev_vnodes = 0;
  bool monotone = true;
  for (std::uint32_t vnodes : {256u, 1024u, 4096u, 16384u}) {
    SednaClusterConfig cfg;
    cfg.zk_members = 3;
    cfg.data_nodes = 6;
    cfg.cluster.total_vnodes = vnodes;
    SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;

    const double boot_ms = cluster.sim().now() / 1000.0;
    const std::uint64_t commits = cluster.zk_member(0).commits_applied();
    const std::uint64_t msgs = cluster.network().messages_sent();
    std::printf("%-10u %16.1f %18llu %14llu\n", vnodes, boot_ms,
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(msgs));
    if (csv) {
      std::fprintf(csv, "%u,%.1f,%llu,%llu\n", vnodes, boot_ms,
                   static_cast<unsigned long long>(commits),
                   static_cast<unsigned long long>(msgs));
    }
    if (prev_vnodes != 0 && boot_ms < prev_boot) monotone = false;
    prev_boot = boot_ms;
    prev_vnodes = vnodes;
  }
  if (csv) std::fclose(csv);

  // Shape: boot cost grows with the vnode count (roughly linearly — one
  // quorum commit per vnode znode), confirming why the count is fixed at
  // creation and the cost paid exactly once.
  std::printf("\nshape: boot cost grows with vnode count: %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
