// Ablation (Table I "Node management — ZooKeeper sub-cluster"; Section
// III.E): metadata refresh strategies under churn.
//
// Compares, for a population of watcher hosts tracking one znode while a
// writer updates it:
//   * adaptive lease (Sedna's choice: halve when busy, double when quiet);
//   * fixed short lease (fresh but chatty);
//   * fixed long lease (quiet but stale);
//   * ZooKeeper watches (the "network storm" Sedna avoids — every change
//     fans out to every watcher, who then re-reads AND re-registers).
//
// Reported: ZooKeeper messages consumed and mean staleness observed.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/outdir.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "zk/zk_client.h"
#include "zk/zk_server.h"

using namespace sedna;

namespace {

constexpr const char* kPath = "/meta/hot";
constexpr int kWatchers = 24;
constexpr SimDuration kRunFor = sim_sec(120);

class WatcherHost : public sim::Host {
 public:
  enum class Mode { kAdaptiveLease, kFixedLease, kWatch };

  WatcherHost(sim::Network& net, NodeId id, std::vector<NodeId> ensemble,
              Mode mode, SimDuration fixed_lease)
      : sim::Host(net, id),
        mode_(mode),
        zk_(*this, [&] {
          zk::ZkClientConfig cfg;
          cfg.ensemble = std::move(ensemble);
          if (mode == Mode::kFixedLease) {
            cfg.lease_initial = fixed_lease;
            cfg.lease_min = fixed_lease;
            cfg.lease_max = fixed_lease;
          }
          return cfg;
        }()) {}

  void start() {
    zk_.connect([this](const Status& st) {
      if (!st.ok()) return;
      if (mode_ == Mode::kWatch) {
        arm_watch();
      } else {
        poll();
      }
    });
  }

  /// Marks a change of the authoritative value. The watcher is now stale
  /// until it next observes a version >= this one; the catch-up lag is
  /// the staleness we report.
  void note_truth(std::uint64_t version, SimTime at) {
    truth_version_ = version;
    if (!pending_) {
      pending_ = true;
      pending_since_ = at;  // first unobserved change starts the clock
    }
  }

  [[nodiscard]] double mean_staleness_ms() const {
    return observations_ == 0
               ? 0.0
               : total_staleness_us_ / 1000.0 / observations_;
  }

 protected:
  void on_message(const sim::Message& msg) override {
    if (msg.type == zk::kMsgWatchEvent) zk_.on_watch_event(msg.payload);
  }

 public:
  zk::ZkClient& zk() { return zk_; }

 private:
  void poll() {
    // Lease-paced cached read; on expiry the cache refetches.
    zk_.cached_get(kPath, [this](const auto& got) {
      if (got.ok()) observe(got.value().second.version);
      // Feed the adaptive controller: did this fetch reveal a change?
      if (mode_ == Mode::kAdaptiveLease) {
        const bool changed =
            got.ok() &&
            got.value().second.version != last_seen_version_;
        zk_.note_sync_changes(changed ? 1 : 0);
      }
      if (got.ok()) {
        last_seen_version_ =
            static_cast<std::uint64_t>(got.value().second.version);
      }
      sim().schedule(zk_.current_lease(), [this] { poll(); });
    });
  }

  void arm_watch() {
    zk_.get_and_watch(
        kPath,
        [this](const auto& got) {
          if (got.ok()) observe(got.value().second.version);
        },
        [this](const zk::WatchEventMsg&) { arm_watch(); });
  }

  void observe(std::int64_t version) {
    if (pending_ && static_cast<std::uint64_t>(version) >= truth_version_) {
      // Caught up with everything outstanding: the lag ran from the first
      // unobserved change until now.
      total_staleness_us_ +=
          static_cast<double>(sim().now() - pending_since_);
      ++observations_;
      pending_ = false;
    }
  }

  Mode mode_;
  zk::ZkClient zk_;
  std::uint64_t truth_version_ = 0;
  std::uint64_t last_seen_version_ = 0;
  bool pending_ = false;
  SimTime pending_since_ = 0;
  double total_staleness_us_ = 0;
  std::uint64_t observations_ = 0;
};

struct RunResult {
  std::uint64_t zk_messages = 0;
  double staleness_ms = 0;
};

RunResult run_mode(WatcherHost::Mode mode, SimDuration fixed_lease,
                   SimDuration write_period) {
  sim::Simulation simulation(7);
  sim::Network net(simulation);
  std::vector<NodeId> ensemble = {0, 1, 2};
  zk::ZkServerConfig scfg;
  scfg.ensemble = ensemble;
  std::vector<std::unique_ptr<zk::ZkServer>> servers;
  for (NodeId id : ensemble) {
    servers.push_back(std::make_unique<zk::ZkServer>(net, id, scfg));
    servers.back()->start();
  }
  simulation.run_for(sim_ms(5));

  // Writer host creates the znode then updates it periodically.
  class WriterHost : public sim::Host {
   public:
    WriterHost(sim::Network& net, NodeId id, std::vector<NodeId> ensemble)
        : sim::Host(net, id), zk_(*this, [&] {
            zk::ZkClientConfig cfg;
            cfg.ensemble = std::move(ensemble);
            return cfg;
          }()) {}
    zk::ZkClient& zk() { return zk_; }

   protected:
    void on_message(const sim::Message& msg) override {
      if (msg.type == zk::kMsgWatchEvent) zk_.on_watch_event(msg.payload);
    }

   private:
    zk::ZkClient zk_;
  };
  WriterHost writer(net, 50, ensemble);
  bool writer_ready = false;
  writer.zk().connect([&](const Status&) {
    writer.zk().create("/meta", "", zk::CreateMode::kPersistent,
                       [&](const auto&) {
                         writer.zk().create(kPath, "v0",
                                            zk::CreateMode::kPersistent,
                                            [&](const auto&) {
                                              writer_ready = true;
                                            });
                       });
  });
  while (!writer_ready && simulation.step()) {
  }

  std::vector<std::unique_ptr<WatcherHost>> watchers;
  for (int i = 0; i < kWatchers; ++i) {
    watchers.push_back(std::make_unique<WatcherHost>(
        net, 100 + i, ensemble, mode, fixed_lease));
    watchers.back()->start();
  }

  std::uint64_t version = 0;
  simulation.schedule_periodic(write_period, [&] {
    ++version;
    writer.zk().set(kPath, "v" + std::to_string(version), -1,
                    [](const auto&) {});
    for (auto& w : watchers) w->note_truth(version, simulation.now());
  });

  const std::uint64_t msgs_before = net.messages_sent();
  simulation.run_until(simulation.now() + kRunFor);

  RunResult result;
  result.zk_messages = net.messages_sent() - msgs_before;
  for (const auto& w : watchers) result.staleness_ms += w->mean_staleness_ms();
  result.staleness_ms /= kWatchers;
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: metadata refresh strategy (%d watchers, 120 s,"
              " znode changing every 2 s then every 100 ms)\n\n", kWatchers);
  std::printf("%-22s %14s %16s\n", "strategy", "zk_messages",
              "staleness_ms");

  std::FILE* csv = std::fopen(sedna::out_path("ablation_zk_lease.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "strategy,write_period_ms,messages,staleness_ms\n");

  bool ok = true;
  for (SimDuration period : {sim_sec(2), sim_ms(100)}) {
    std::printf("-- change period %llu ms --\n",
                static_cast<unsigned long long>(period / 1000));
    const RunResult adaptive =
        run_mode(WatcherHost::Mode::kAdaptiveLease, 0, period);
    const RunResult fixed_short =
        run_mode(WatcherHost::Mode::kFixedLease, sim_ms(250), period);
    const RunResult fixed_long =
        run_mode(WatcherHost::Mode::kFixedLease, sim_sec(8), period);
    const RunResult watch = run_mode(WatcherHost::Mode::kWatch, 0, period);

    auto row = [&](const char* name, const RunResult& r) {
      std::printf("%-22s %14llu %16.1f\n", name,
                  static_cast<unsigned long long>(r.zk_messages),
                  r.staleness_ms);
      if (csv) {
        std::fprintf(csv, "%s,%llu,%llu,%.2f\n", name,
                     static_cast<unsigned long long>(period / 1000),
                     static_cast<unsigned long long>(r.zk_messages),
                     r.staleness_ms);
      }
    };
    row("adaptive_lease", adaptive);
    row("fixed_lease_250ms", fixed_short);
    row("fixed_lease_8s", fixed_long);
    row("zk_watches", watch);

    // Shape: the adaptive lease sits between the fixed extremes on
    // message cost while staying fresher than the long lease.
    if (!(adaptive.zk_messages <= fixed_short.zk_messages &&
          adaptive.staleness_ms <= fixed_long.staleness_ms + 1.0)) {
      ok = false;
    }
  }
  if (csv) std::fclose(csv);
  std::printf("\nshape: adaptive lease cheaper than short lease and "
              "fresher than long lease: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
