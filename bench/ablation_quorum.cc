// Ablation (Table I "Replication — eventually consistent quorum → higher
// R/W speed, flexible policy"): how the (N, R, W) choice trades write
// latency against read latency, under the paper's constraints R + W > N
// and W > N/2 (Section III.C).
#include <cstdio>

#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct QuorumPoint {
  std::uint32_t n, r, w;
  double write_ms = 0;
  double read_ms = 0;
};

}  // namespace

int main() {
  std::printf("Ablation: quorum configuration (N,R,W) vs latency\n");
  const std::uint64_t ops = 5000;
  const std::vector<std::uint64_t> cps = {ops};

  std::vector<QuorumPoint> points = {
      {3, 2, 2, 0, 0},  // the paper's default
      {3, 1, 3, 0, 0},  // fast reads, slow writes
      {3, 3, 2, 0, 0},  // slow reads
      {5, 3, 3, 0, 0},  // wider replication
  };

  std::FILE* csv = std::fopen(sedna::out_path("ablation_quorum.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "n,r,w,write_ms_per_kop,read_ms_per_kop\n");

  for (auto& p : points) {
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    cfg.cluster.replicas = p.n;
    cfg.cluster.read_quorum = p.r;
    cfg.cluster.write_quorum = p.w;
    if (!cfg.cluster.quorum_valid()) {
      std::printf("  (%u,%u,%u) invalid per Section III.C constraints\n",
                  p.n, p.r, p.w);
      continue;
    }
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;
    auto& client = cluster.make_client();
    workload::KvWorkload wl;

    SimTime t0 = cluster.sim().now();
    std::uint64_t done_ops = 0;
    workload::ClosedLoopDriver writer(
        ops, [&](std::uint64_t i, const std::function<void()>& done) {
          client.write_latest(wl.key(i), wl.value(),
                              [done](const Status&) { done(); });
        });
    writer.start([&] { ++done_ops; });
    cluster.run_until([&] { return done_ops == 1; });
    p.write_ms = static_cast<double>(cluster.sim().now() - t0) / 1000.0;

    t0 = cluster.sim().now();
    done_ops = 0;
    workload::ClosedLoopDriver reader(
        ops, [&](std::uint64_t i, const std::function<void()>& done) {
          client.read_latest(
              wl.key(i),
              [done](const Result<store::VersionedValue>&) { done(); });
        });
    reader.start([&] { ++done_ops; });
    cluster.run_until([&] { return done_ops == 1; });
    p.read_ms = static_cast<double>(cluster.sim().now() - t0) / 1000.0;

    std::printf("  N=%u R=%u W=%u: write %.1f ms/kop, read %.1f ms/kop\n",
                p.n, p.r, p.w, p.write_ms / (ops / 1000.0),
                p.read_ms / (ops / 1000.0));
    if (csv) {
      std::fprintf(csv, "%u,%u,%u,%.3f,%.3f\n", p.n, p.r, p.w,
                   p.write_ms / (ops / 1000.0), p.read_ms / (ops / 1000.0));
    }
  }
  if (csv) std::fclose(csv);

  // Shape: W=3 writes wait for the slowest replica → slower than W=2;
  // R=1 reads settle on the first reply → faster than R=2... but Sedna
  // reads still contact all N, so the difference shows in waiting, not
  // fan-out. N=5 costs more than N=3 for the same (R,W) style.
  const bool w3_slower = points[1].write_ms > points[0].write_ms;
  const bool r1_faster = points[1].read_ms <= points[0].read_ms;
  std::printf("\nshape: W=3 writes slower than W=2: %s\n",
              w3_slower ? "yes" : "NO");
  std::printf("shape: R=1 reads not slower than R=2: %s\n",
              r1_faster ? "yes" : "NO");

  // ---- staleness vs R (consistency auditor) ----------------------------
  //
  // The speed half of the R trade-off is measured above; this measures
  // the *consistency* half via the auditor's staleness-exposure window:
  // a read that settles after R replies answers without hearing the
  // other N-R replicas, and stays exposed to contradiction until their
  // testimony lands. R=1 answers on the first (local) reply and carries
  // a full remote round-trip of exposure; R=2 waits for one remote, so
  // only the reply spread remains; R=3 hears everyone before answering,
  // so its exposure is zero by construction. The mean exposure must
  // shrink strictly as R grows. Version lag (replies strictly newer than
  // the served value) rides along in the CSV: on this clean network the
  // coordinator is the key's owner and always holds the freshest copy,
  // so behind-reads stay 0 — the partition scenarios are where they show.
  std::printf("\nAblation: staleness vs read quorum (N=3, contended)\n");
  struct StalePoint {
    std::uint32_t r, w;
    std::uint64_t audited = 0;
    std::uint64_t behind = 0;
    std::uint64_t lag_sum = 0;
    std::uint64_t lag_count = 0;
    [[nodiscard]] double frac() const {
      return audited == 0 ? 0.0
                          : static_cast<double>(behind) /
                                static_cast<double>(audited);
    }
    [[nodiscard]] double mean_lag() const {
      return lag_count == 0 ? 0.0
                            : static_cast<double>(lag_sum) /
                                  static_cast<double>(lag_count);
    }
  };
  std::vector<StalePoint> stale_points = {{1, 3}, {2, 2}, {3, 2}};
  constexpr std::uint64_t kContendedOps = 4000;
  constexpr std::size_t kHotKeys = 32;

  for (auto& sp : stale_points) {
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    cfg.cluster.replicas = 3;
    cfg.cluster.read_quorum = sp.r;
    cfg.cluster.write_quorum = sp.w;
    cfg.node_template.audit.enabled = true;
    // No visibility probes here: the phase measures read-path staleness
    // only, and probe RPCs would skew the racing reads' timing.
    cfg.node_template.audit.probe_sample_every = 0;
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;
    auto& client = cluster.make_client();

    auto hot_key = [](std::uint64_t i) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "s%03llu",
                    static_cast<unsigned long long>(i % kHotKeys));
      return std::string(buf);
    };
    // Preload so every read hits.
    std::size_t preloaded = 0;
    for (std::size_t k = 0; k < kHotKeys; ++k) {
      client.write_latest(hot_key(k), "base",
                          [&preloaded](const Status&) { ++preloaded; });
    }
    cluster.run_until([&] { return preloaded == kHotKeys; });

    std::uint64_t all_done = 0;
    workload::ClosedLoopDriver racer(
        kContendedOps, [&](std::uint64_t i, const std::function<void()>& done) {
          // Unawaited write racing the awaited read on the same hot key.
          client.write_latest(hot_key(i), "v" + std::to_string(i),
                              [](const Status&) {});
          client.read_latest(
              hot_key(i),
              [done](const Result<store::VersionedValue>&) { done(); });
        });
    racer.start([&] { ++all_done; });
    cluster.run_until([&] { return all_done == 1; });
    // Let straggler replies land so every read's audit sample finalizes.
    cluster.run_for(sim_ms(50));

    for (std::size_t n = 0; n < cluster.data_node_count(); ++n) {
      const auto& counters = cluster.node(n).metrics().counters();
      const auto audited = counters.find("audit.reads_audited");
      if (audited != counters.end()) sp.audited += audited->second.value();
      const auto behind = counters.find("audit.reads_behind");
      if (behind != counters.end()) sp.behind += behind->second.value();
      const auto& histos = cluster.node(n).metrics().histograms();
      const auto lag = histos.find("audit.confirm_lag_us");
      if (lag != histos.end()) {
        sp.lag_sum += lag->second.sum();
        sp.lag_count += lag->second.count();
      }
    }
    std::printf(
        "  R=%u W=%u: exposure %.1f us mean, %llu/%llu reads behind\n",
        sp.r, sp.w, sp.mean_lag(),
        static_cast<unsigned long long>(sp.behind),
        static_cast<unsigned long long>(sp.audited));
  }

  if (std::FILE* scsv =
          std::fopen(sedna::out_path("ablation_staleness.csv").c_str(), "w")) {
    std::fprintf(scsv,
                 "n,r,w,reads_audited,reads_behind,behind_frac,"
                 "mean_exposure_us\n");
    for (const auto& sp : stale_points) {
      std::fprintf(scsv, "3,%u,%u,%llu,%llu,%.6f,%.3f\n", sp.r, sp.w,
                   static_cast<unsigned long long>(sp.audited),
                   static_cast<unsigned long long>(sp.behind), sp.frac(),
                   sp.mean_lag());
    }
    std::fclose(scsv);
  }

  const bool monotone =
      stale_points[0].mean_lag() > stale_points[1].mean_lag() &&
      stale_points[1].mean_lag() > stale_points[2].mean_lag();
  std::printf(
      "shape: staleness exposure strictly shrinks R=1 -> R=2 -> R=3: %s\n",
      monotone ? "yes" : "NO");
  return (w3_slower && r1_faster && monotone) ? 0 : 1;
}
