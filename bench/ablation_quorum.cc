// Ablation (Table I "Replication — eventually consistent quorum → higher
// R/W speed, flexible policy"): how the (N, R, W) choice trades write
// latency against read latency, under the paper's constraints R + W > N
// and W > N/2 (Section III.C).
#include <cstdio>

#include "fig_common.h"

using namespace sedna;
using namespace sedna::bench;

namespace {

struct QuorumPoint {
  std::uint32_t n, r, w;
  double write_ms = 0;
  double read_ms = 0;
};

}  // namespace

int main() {
  std::printf("Ablation: quorum configuration (N,R,W) vs latency\n");
  const std::uint64_t ops = 5000;
  const std::vector<std::uint64_t> cps = {ops};

  std::vector<QuorumPoint> points = {
      {3, 2, 2, 0, 0},  // the paper's default
      {3, 1, 3, 0, 0},  // fast reads, slow writes
      {3, 3, 2, 0, 0},  // slow reads
      {5, 3, 3, 0, 0},  // wider replication
  };

  std::FILE* csv = std::fopen(sedna::out_path("ablation_quorum.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "n,r,w,write_ms_per_kop,read_ms_per_kop\n");

  for (auto& p : points) {
    cluster::SednaClusterConfig cfg = paper_cluster_config();
    cfg.cluster.replicas = p.n;
    cfg.cluster.read_quorum = p.r;
    cfg.cluster.write_quorum = p.w;
    if (!cfg.cluster.quorum_valid()) {
      std::printf("  (%u,%u,%u) invalid per Section III.C constraints\n",
                  p.n, p.r, p.w);
      continue;
    }
    cluster::SednaCluster cluster(cfg);
    if (!cluster.boot().ok()) return 1;
    auto& client = cluster.make_client();
    workload::KvWorkload wl;

    SimTime t0 = cluster.sim().now();
    std::uint64_t done_ops = 0;
    workload::ClosedLoopDriver writer(
        ops, [&](std::uint64_t i, const std::function<void()>& done) {
          client.write_latest(wl.key(i), wl.value(),
                              [done](const Status&) { done(); });
        });
    writer.start([&] { ++done_ops; });
    cluster.run_until([&] { return done_ops == 1; });
    p.write_ms = static_cast<double>(cluster.sim().now() - t0) / 1000.0;

    t0 = cluster.sim().now();
    done_ops = 0;
    workload::ClosedLoopDriver reader(
        ops, [&](std::uint64_t i, const std::function<void()>& done) {
          client.read_latest(
              wl.key(i),
              [done](const Result<store::VersionedValue>&) { done(); });
        });
    reader.start([&] { ++done_ops; });
    cluster.run_until([&] { return done_ops == 1; });
    p.read_ms = static_cast<double>(cluster.sim().now() - t0) / 1000.0;

    std::printf("  N=%u R=%u W=%u: write %.1f ms/kop, read %.1f ms/kop\n",
                p.n, p.r, p.w, p.write_ms / (ops / 1000.0),
                p.read_ms / (ops / 1000.0));
    if (csv) {
      std::fprintf(csv, "%u,%u,%u,%.3f,%.3f\n", p.n, p.r, p.w,
                   p.write_ms / (ops / 1000.0), p.read_ms / (ops / 1000.0));
    }
  }
  if (csv) std::fclose(csv);

  // Shape: W=3 writes wait for the slowest replica → slower than W=2;
  // R=1 reads settle on the first reply → faster than R=2... but Sedna
  // reads still contact all N, so the difference shows in waiting, not
  // fan-out. N=5 costs more than N=3 for the same (R,W) style.
  const bool w3_slower = points[1].write_ms > points[0].write_ms;
  const bool r1_faster = points[1].read_ms <= points[0].read_ms;
  std::printf("\nshape: W=3 writes slower than W=2: %s\n",
              w3_slower ? "yes" : "NO");
  std::printf("shape: R=1 reads not slower than R=2: %s\n",
              r1_faster ? "yes" : "NO");
  return (w3_slower && r1_faster) ? 0 : 1;
}
