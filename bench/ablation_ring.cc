// Ablation (Table I "Partitioning — consistent hashing + virtual nodes →
// incremental scalability"): how the virtual-node count affects load
// balance and how little data moves on membership changes.
//
// Sweeps vnode counts × cluster sizes and reports:
//   * key-placement imbalance (coefficient of variation of keys/node);
//   * fraction of vnodes (≈ data) moved when one node joins — the
//     consistent-hashing promise is ≈ 1/(n+1), against the ~50% a naive
//     mod-n rehash would move;
//   * fraction moved when one node leaves.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/outdir.h"
#include "ring/rebalancer.h"
#include "ring/vnode_table.h"
#include "workload/kv_workload.h"

using namespace sedna;
using ring::Rebalancer;
using ring::VnodeTable;

namespace {

double key_imbalance(const VnodeTable& table, std::uint64_t keys) {
  workload::KvWorkload wl;
  std::map<NodeId, std::uint64_t> per_node;
  for (std::uint64_t i = 0; i < keys; ++i) {
    const auto owner = table.owner(table.vnode_for_key(wl.key(i)));
    ++per_node[owner];
  }
  double mean = 0;
  for (const auto& [node, count] : per_node) {
    mean += static_cast<double>(count);
  }
  mean /= static_cast<double>(per_node.size());
  double var = 0;
  for (const auto& [node, count] : per_node) {
    const double d = static_cast<double>(count) - mean;
    var += d * d;
  }
  var /= static_cast<double>(per_node.size());
  return std::sqrt(var) / mean;
}

}  // namespace

int main() {
  std::printf("Ablation: virtual-node count vs balance and movement\n");
  std::printf("%-8s %-8s %12s %14s %14s\n", "nodes", "vnodes",
              "key_cv", "join_moved%", "leave_moved%");

  std::FILE* csv = std::fopen(sedna::out_path("ablation_ring.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "nodes,vnodes,key_cv,join_moved,leave_moved\n");

  bool sane = true;
  for (std::uint32_t nodes : {4u, 8u, 16u, 64u}) {
    for (std::uint32_t vnodes : {64u, 256u, 1024u, 8192u}) {
      if (vnodes < nodes) continue;
      std::vector<NodeId> ids;
      for (std::uint32_t i = 0; i < nodes; ++i) ids.push_back(100 + i);
      VnodeTable table = Rebalancer::initial_assignment(vnodes, 3, ids);

      const double cv = key_imbalance(table, 20000);

      // Join movement.
      VnodeTable joined = table;
      Rebalancer::apply(joined, Rebalancer::plan_join(joined, 900));
      const double join_moved =
          100.0 * VnodeTable::moved_vnodes(table, joined) / vnodes;

      // Leave movement.
      VnodeTable left = table;
      Rebalancer::apply(left, Rebalancer::plan_leave(left, ids[0]));
      const double leave_moved =
          100.0 * VnodeTable::moved_vnodes(table, left) / vnodes;

      std::printf("%-8u %-8u %12.4f %13.1f%% %13.1f%%\n", nodes, vnodes,
                  cv, join_moved, leave_moved);
      if (csv) {
        std::fprintf(csv, "%u,%u,%.5f,%.3f,%.3f\n", nodes, vnodes, cv,
                     join_moved, leave_moved);
      }

      // Consistency-hash sanity: join moves ≈ 100/(n+1) percent, never
      // the ~(1 - 1/n)·100 a naive rehash would.
      const double ideal = 100.0 / (nodes + 1);
      if (join_moved > 2.5 * ideal + 5.0) sane = false;
      // Leaving a node moves exactly its share.
      if (leave_moved > 100.0 / nodes + 5.0) sane = false;
    }
  }
  if (csv) std::fclose(csv);
  std::printf("\nshape: join/leave movement stays near the consistent-"
              "hashing ideal: %s\n", sane ? "yes" : "NO");
  return sane ? 0 : 1;
}
