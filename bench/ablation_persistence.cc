// Ablation (Table I "Persistency strategy — periodically flush or
// write-ahead logs according [to] users' needs → different speed and
// availability"): real-file measurement of the strategies' costs and what
// each recovers after a crash.
//
// This bench uses wall-clock time (the persistence layer does real I/O;
// the store runs outside the simulator here).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/outdir.h"
#include "store/local_store.h"
#include "wal/persistence.h"
#include "workload/kv_workload.h"

using namespace sedna;
using Clock = std::chrono::steady_clock;

namespace {

struct ModeResult {
  double ns_per_write = 0;
  std::uint64_t recovered = 0;
};

ModeResult run_mode(wal::PersistMode mode, bool sync_each,
                    std::uint64_t writes, std::uint64_t flush_every) {
  const std::string dir =
      "/tmp/sedna_persist_bench_" + std::to_string(static_cast<int>(mode)) +
      (sync_each ? "_sync" : "_nosync");
  std::filesystem::remove_all(dir);

  workload::KvWorkload wl;
  ModeResult result;
  {
    store::LocalStore store;
    wal::PersistenceConfig pcfg;
    pcfg.mode = mode;
    pcfg.dir = dir;
    pcfg.sync_each_write = sync_each;
    wal::PersistenceManager pm(pcfg, store);
    if (!pm.start().ok()) return result;

    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < writes; ++i) {
      const std::string key = wl.key(i);
      store.write_latest(key, wl.value(), i + 1);
      pm.on_write_latest(key, wl.value(), i + 1, 0);
      if (mode == wal::PersistMode::kPeriodicFlush && flush_every != 0 &&
          (i + 1) % flush_every == 0) {
        pm.flush_snapshot();
      }
    }
    const auto t1 = Clock::now();
    result.ns_per_write =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count() /
        static_cast<double>(writes);
    // "Crash": the store object dies here without a final flush; only
    // what already hit the files survives.
  }

  // Recover into a fresh store.
  store::LocalStore recovered_store;
  wal::PersistenceConfig pcfg;
  pcfg.mode = mode;
  pcfg.dir = dir;
  wal::PersistenceManager pm(pcfg, recovered_store);
  if (pm.start().ok()) {
    auto n = pm.recover();
    if (n.ok()) result.recovered = recovered_store.size();
  }
  std::filesystem::remove_all(dir);
  return result;
}

}  // namespace

int main() {
  // Not a multiple of the flush interval: the crash must strand a tail of
  // writes after the last snapshot, or the flush strategy looks lossless.
  constexpr std::uint64_t kWrites = 22000;
  std::printf("Ablation: persistency strategy (real file I/O, %llu writes,"
              " crash, recover)\n\n",
              static_cast<unsigned long long>(kWrites));
  std::printf("%-28s %14s %18s\n", "strategy", "ns/write",
              "recovered_items");

  const ModeResult none =
      run_mode(wal::PersistMode::kNone, false, kWrites, 0);
  const ModeResult flush =
      run_mode(wal::PersistMode::kPeriodicFlush, false, kWrites, 5000);
  const ModeResult walbuf =
      run_mode(wal::PersistMode::kWal, false, kWrites, 0);
  const ModeResult walsync =
      run_mode(wal::PersistMode::kWal, true, kWrites, 0);

  std::FILE* csv = std::fopen(sedna::out_path("ablation_persistence.csv").c_str(), "w");
  if (csv) std::fprintf(csv, "strategy,ns_per_write,recovered\n");
  auto row = [&](const char* name, const ModeResult& r) {
    std::printf("%-28s %14.0f %18llu\n", name, r.ns_per_write,
                static_cast<unsigned long long>(r.recovered));
    if (csv) {
      std::fprintf(csv, "%s,%.1f,%llu\n", name, r.ns_per_write,
                   static_cast<unsigned long long>(r.recovered));
    }
  };
  row("memory_only", none);
  row("periodic_flush_5k", flush);
  row("wal_buffered", walbuf);
  row("wal_fsync_each", walsync);
  if (csv) std::fclose(csv);

  // Shape (the paper's "different speed and availability"):
  //   memory-only is fastest and recovers nothing; the periodic flush
  //   recovers up to the last snapshot; the WAL recovers everything that
  //   was appended; syncing each write costs the most.
  const bool speed_order = none.ns_per_write <= walbuf.ns_per_write &&
                           walbuf.ns_per_write <= walsync.ns_per_write;
  const bool avail_order = none.recovered == 0 &&
                           flush.recovered >= 5000 &&
                           flush.recovered < kWrites &&
                           walbuf.recovered == kWrites;
  std::printf("\nshape: speed none <= wal <= wal+sync: %s\n",
              speed_order ? "yes" : "NO");
  std::printf("shape: availability none < periodic-flush < wal: %s\n",
              avail_order ? "yes" : "NO");
  return (speed_order && avail_order) ? 0 : 1;
}
