// Simulated server: a CPU-serialized message handler with an RPC layer.
//
// CPU model: each host owns one logical core (the testbed's dual-core Xeons
// ran one Sedna service each); incoming messages queue behind `cpu_free_`
// and each costs a (seeded, jittered) service time. This serialization is
// what produces the Fig. 8 behaviour — nine concurrent clients slow each
// other down at the replicas while aggregate throughput rises.
//
// RPC: call() tags a message with a fresh rpc_id and arms a timeout timer.
// The callback receives kOk plus the response payload, or kTimeout with an
// empty payload when the peer crashed, the network dropped the message, or
// the peer simply never answered. This is precisely the failure evidence
// the paper's read/write paths act on (Section III.C).
//
// Tracing: each host carries a current TraceContext. Incoming requests set
// it from the message; every call() opens an RPC span under it (ended with
// "ok"/"timeout"/"crashed") and stamps the outgoing message so the
// receiver's spans parent correctly; RPC callbacks run under the context
// saved at call time, so a whole async quorum exchange stays on one span
// tree. All of it is a no-op while the simulation's Tracer is disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace sedna::sim {

struct HostConfig {
  /// Mean CPU cost of handling one message (hash + store op + reply build).
  /// ~8 us matches the era's Memcached at roughly 100k ops/s/core.
  SimDuration base_service_us = 8;
  /// Uniform jitter fraction applied to each service time.
  double service_jitter_frac = 0.25;
  /// Default RPC timeout.
  SimDuration rpc_timeout_us = 50 * 1000;
};

class Host {
 public:
  using RpcCallback =
      std::function<void(const Status&, const std::string& payload)>;

  Host(Network& net, NodeId id, HostConfig config = {})
      : net_(net), id_(id), config_(config) {
    net_.attach(id_, this);
  }
  virtual ~Host() {
    // Invalidate every event lambda that still points at this host (CPU
    // dispatches, RPC timeouts): hosts may die while the simulation runs
    // on (e.g. a short-lived bootstrap client).
    *live_ = false;
    for (auto& [rpc_id, pending] : pending_) pending.timeout.cancel();
    net_.detach(id_);
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Simulation& sim() const { return net_.sim(); }
  [[nodiscard]] SimTime now() const { return net_.sim().now(); }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Crash the host: stop receiving, forget pending RPCs (their remote
  /// responses will be dropped by the network anyway). Recover with
  /// restart(); subclasses override on_crash/on_restart for state effects.
  void crash() {
    alive_ = false;
    net_.set_node_up(id_, false);
    for (auto& [rpc_id, pending] : pending_) {
      pending.timeout.cancel();
      tracer().end(pending.rpc_span, now(), "crashed");
    }
    pending_.clear();
    trace_ctx_ = {};
    on_crash();
  }
  void restart() {
    alive_ = true;
    net_.set_node_up(id_, true);
    cpu_free_ = sim().now();
    on_restart();
  }

  /// Entry point used by Network: queue the message behind the CPU.
  void deliver(const Message& msg) {
    if (!alive_) return;
    const SimTime arrival = sim().now();
    const SimTime start = std::max(arrival, cpu_free_);
    const SimDuration cost = service_cost(msg);
    cpu_free_ = start + cost;
    Message copy = msg;
    sim().schedule(cpu_free_ - sim().now(),
                   [this, live = live_, m = std::move(copy), arrival, start,
                    cost]() mutable {
                     if (*live && alive_) dispatch(m, arrival, start, cost);
                   });
  }

  /// Issues a request and arms a timeout.
  void call(NodeId to, MessageType type, std::string payload,
            RpcCallback cb) {
    call_with_timeout(to, type, std::move(payload), config_.rpc_timeout_us,
                      std::move(cb));
  }

  void call_with_timeout(NodeId to, MessageType type, std::string payload,
                         SimDuration timeout, RpcCallback cb) {
    const std::uint64_t rpc_id = next_rpc_id_++;
    const TraceContext caller_ctx = trace_ctx_;
    const SpanId rpc_span = tracer().begin(caller_ctx, rpc_span_name(type),
                                           id_, now(), rpc_span_stage(type));
    auto timer = sim().schedule(timeout, [this, live = live_, rpc_id]() {
      if (!*live) return;
      auto it = pending_.find(rpc_id);
      if (it == pending_.end()) return;
      Pending pending = std::move(it->second);
      pending_.erase(it);
      tracer().end(pending.rpc_span, now(), "timeout");
      trace_ctx_ = pending.ctx;
      pending.callback(Status::Timeout(), {});
    });
    pending_.emplace(rpc_id,
                     Pending{std::move(cb), timer, caller_ctx, rpc_span});
    Message msg{id_, to, type, rpc_id, /*is_response=*/false,
                std::move(payload)};
    msg.trace_id = caller_ctx.trace_id;
    msg.span_id = rpc_span != 0 ? rpc_span : caller_ctx.span_id;
    net_.send(std::move(msg));
  }

  /// One-way message; no response expected.
  void send_oneway(NodeId to, MessageType type, std::string payload) {
    Message msg{id_, to, type, /*rpc_id=*/0, /*is_response=*/false,
                std::move(payload)};
    msg.trace_id = trace_ctx_.trace_id;
    msg.span_id = trace_ctx_.span_id;
    net_.send(std::move(msg));
  }

  /// Replies to a request received in on_message().
  void reply(const Message& request, std::string payload) {
    Message msg{id_, request.from, request.type, request.rpc_id,
                /*is_response=*/true, std::move(payload)};
    msg.trace_id = trace_ctx_.trace_id;
    msg.span_id = trace_ctx_.span_id;
    net_.send(std::move(msg));
  }

  [[nodiscard]] std::size_t pending_rpcs() const { return pending_.size(); }

  // ---- tracing ----------------------------------------------------------
  [[nodiscard]] Tracer& tracer() const { return sim().tracer(); }
  [[nodiscard]] TraceContext trace_context() const { return trace_ctx_; }
  void set_trace_context(TraceContext ctx) { trace_ctx_ = ctx; }

  /// Opens a fresh trace rooted at this host and makes it current.
  TraceContext begin_trace(const std::string& name,
                           TraceStage stage = TraceStage::kUnknown) {
    trace_ctx_ = tracer().start_trace(name, id_, now(), stage);
    return trace_ctx_;
  }
  /// Child span of the current context. Does not change the context.
  SpanId begin_span(const std::string& name,
                    TraceStage stage = TraceStage::kUnknown) {
    return tracer().begin(trace_ctx_, name, id_, now(), stage);
  }
  /// Makes `span` the current context; returns the previous context so
  /// the caller can restore it after issuing nested work.
  TraceContext enter_span(SpanId span) {
    const TraceContext prev = trace_ctx_;
    if (span != 0) trace_ctx_ = TraceContext{prev.trace_id, span};
    return prev;
  }
  void end_span(SpanId span, const std::string& status = "ok") {
    tracer().end(span, now(), status);
  }
  /// Zero-duration annotation under the current context.
  void instant_span(const std::string& name,
                    const std::string& status = "ok",
                    TraceStage stage = TraceStage::kUnknown) {
    tracer().instant(trace_ctx_, name, id_, now(), status, stage);
  }

 protected:
  /// Handles a request or one-way message. Responses are routed to RPC
  /// callbacks before reaching this.
  virtual void on_message(const Message& msg) = 0;

  virtual void on_crash() {}
  virtual void on_restart() {}

  /// Name given to the span opened around an outgoing RPC. Subclasses
  /// that know their protocol override this with readable names.
  [[nodiscard]] virtual std::string rpc_span_name(MessageType type) const {
    return "rpc.t" + std::to_string(type);
  }

  /// Attribution stage for an outgoing RPC span. The base host only knows
  /// "it went over the wire"; protocol subclasses override this alongside
  /// rpc_span_name (replica fan-out → service, ZooKeeper → zk, ...).
  [[nodiscard]] virtual TraceStage rpc_span_stage(MessageType type) const {
    (void)type;
    return TraceStage::kNet;
  }

  /// CPU cost model; override for per-type costs.
  virtual SimDuration service_cost(const Message& msg) {
    (void)msg;
    const double jitter =
        1.0 + config_.service_jitter_frac * (2.0 * sim().rng().next_double() -
                                             1.0);
    const double cost =
        static_cast<double>(config_.base_service_us) * jitter;
    return cost < 1.0 ? 1 : static_cast<SimDuration>(cost);
  }

 private:
  struct Pending {
    RpcCallback callback;
    TimerHandle timeout;
    /// Caller's trace context at call time; restored for the callback.
    TraceContext ctx;
    /// Span covering the request/response round trip (0 when untraced).
    SpanId rpc_span = 0;
  };

  void dispatch(const Message& msg, SimTime arrival, SimTime start,
                SimDuration cost) {
    if (msg.is_response) {
      auto it = pending_.find(msg.rpc_id);
      if (it == pending_.end()) return;  // response raced its own timeout
      Pending pending = std::move(it->second);
      pending.timeout.cancel();
      pending_.erase(it);
      // The response's queue/service time belongs under the RPC span it
      // answers — its stamped span id points at the *caller side* context
      // whose span may already be closed.
      record_cpu_spans(TraceContext{msg.trace_id, pending.rpc_span}, arrival,
                       start, cost);
      tracer().end(pending.rpc_span, now(), "ok");
      trace_ctx_ = pending.ctx;
      pending.callback(Status::Ok(), msg.payload);
      return;
    }
    record_cpu_spans(TraceContext{msg.trace_id, msg.span_id}, arrival, start,
                     cost);
    trace_ctx_ = TraceContext{msg.trace_id, msg.span_id};
    on_message(msg);
  }

  /// Records the CPU queue wait and service time of one handled message
  /// as closed child spans. Emitted at dispatch time so a host that
  /// crashes with messages queued never reports phantom CPU work.
  void record_cpu_spans(const TraceContext& parent, SimTime arrival,
                        SimTime start, SimDuration cost) {
    if (!parent.active() || parent.span_id == 0) return;
    Tracer& t = tracer();
    if (start > arrival) {
      const SpanId queue =
          t.begin(parent, "cpu.queue", id_, arrival, TraceStage::kQueue);
      t.end(queue, start, "ok");
    }
    const SpanId svc =
        t.begin(parent, "cpu.service", id_, start, TraceStage::kService);
    t.end(svc, start + cost, "ok");
  }

  Network& net_;
  NodeId id_;
  HostConfig config_;
  /// Shared liveness token: lambdas queued in the simulation check it so
  /// a destroyed host is never dereferenced.
  std::shared_ptr<bool> live_ = std::make_shared<bool>(true);
  bool alive_ = true;
  SimTime cpu_free_ = 0;
  std::uint64_t next_rpc_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  TraceContext trace_ctx_;
};

}  // namespace sedna::sim
