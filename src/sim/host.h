// Simulated server: a CPU-serialized message handler with an RPC layer.
//
// CPU model: each host owns one logical core (the testbed's dual-core Xeons
// ran one Sedna service each); incoming messages wait in a real ingress
// queue and each costs a (seeded, jittered) service time. This
// serialization is what produces the Fig. 8 behaviour — nine concurrent
// clients slow each other down at the replicas while aggregate throughput
// rises.
//
// Overload safety: the ingress queue is priority-classed (0 = most
// important) and optionally bounded. When `max_ingress_queue` is set,
// requests arriving above their class's admission threshold are *shed* at
// delivery — the subclass's on_shed() hook decides whether to answer with
// an explicit kOverloaded reply — and requests whose stamped deadline
// (Message::deadline) has already expired are shed at dequeue time without
// consuming any CPU. Responses are never shed: they complete work the
// host already paid for. With the bound disabled (the default) and a
// single priority class the queue degenerates to exactly the old FIFO
// timeline, byte for byte.
//
// RPC: call() tags a message with a fresh rpc_id and arms a timeout timer.
// The callback receives kOk plus the response payload, or kTimeout with an
// empty payload when the peer crashed, the network dropped the message, or
// the peer simply never answered. This is precisely the failure evidence
// the paper's read/write paths act on (Section III.C).
//
// Tracing: each host carries a current TraceContext. Incoming requests set
// it from the message; every call() opens an RPC span under it (ended with
// "ok"/"timeout"/"crashed") and stamps the outgoing message so the
// receiver's spans parent correctly; RPC callbacks run under the context
// saved at call time, so a whole async quorum exchange stays on one span
// tree. All of it is a no-op while the simulation's Tracer is disabled.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace sedna::sim {

/// Ingress priority classes (0 served first). The data-path convention:
/// client reads > client writes > repair/anti-entropy > migration.
inline constexpr std::size_t kHostPriorities = 4;

/// Why a message was shed instead of serviced.
enum class ShedReason : std::uint8_t {
  /// Admission control: the ingress queue was at this class's threshold.
  kQueueFull = 0,
  /// The message's stamped deadline expired while it waited in queue.
  kDeadlineExceeded = 1,
};

struct HostConfig {
  /// Mean CPU cost of handling one message (hash + store op + reply build).
  /// ~8 us matches the era's Memcached at roughly 100k ops/s/core.
  SimDuration base_service_us = 8;
  /// Uniform jitter fraction applied to each service time.
  double service_jitter_frac = 0.25;
  /// Default RPC timeout.
  SimDuration rpc_timeout_us = 50 * 1000;
  /// Bounded ingress queue: maximum queued messages before *requests*
  /// start being shed (responses are always admitted). Priority class p
  /// is admitted only while the queue holds fewer than
  /// max_ingress_queue·(4-p)/4 messages, so background classes lose
  /// their slots first as the queue fills. 0 = unbounded (legacy model).
  std::size_t max_ingress_queue = 0;
};

class Host {
 public:
  using RpcCallback =
      std::function<void(const Status&, const std::string& payload)>;

  Host(Network& net, NodeId id, HostConfig config = {})
      : net_(net), id_(id), config_(config) {
    net_.attach(id_, this);
  }
  virtual ~Host() {
    // Invalidate every event lambda that still points at this host (CPU
    // dispatches, RPC timeouts): hosts may die while the simulation runs
    // on (e.g. a short-lived bootstrap client).
    *live_ = false;
    for (auto& [rpc_id, pending] : pending_) pending.timeout.cancel();
    net_.detach(id_);
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Simulation& sim() const { return net_.sim(); }
  [[nodiscard]] SimTime now() const { return net_.sim().now(); }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Crash the host: stop receiving, drop the ingress queue, forget
  /// pending RPCs (their remote responses will be dropped by the network
  /// anyway). Recover with restart(); subclasses override
  /// on_crash/on_restart for state effects.
  void crash() {
    alive_ = false;
    net_.set_node_up(id_, false);
    for (auto& [rpc_id, pending] : pending_) {
      pending.timeout.cancel();
      tracer().end(pending.rpc_span, now(), "crashed");
    }
    pending_.clear();
    for (auto& q : queues_) q.clear();
    queued_ = 0;
    cpu_busy_ = false;
    ++cpu_epoch_;  // orphan any in-flight service completion event
    trace_ctx_ = {};
    on_crash();
  }
  void restart() {
    alive_ = true;
    net_.set_node_up(id_, true);
    on_restart();
  }

  /// Entry point used by Network: admit (or shed) the message, then queue
  /// it behind the CPU in its priority class.
  void deliver(const Message& msg) {
    if (!alive_) return;
    const std::size_t prio = clamp_priority(message_priority(msg));
    if (!msg.is_response && config_.max_ingress_queue > 0) {
      const std::size_t cap = config_.max_ingress_queue *
                              (kHostPriorities - prio) / kHostPriorities;
      if (queued_ >= (cap == 0 ? 1 : cap)) {
        ++shed_queue_full_;
        on_shed(msg, ShedReason::kQueueFull);
        return;
      }
    }
    // Service cost is drawn at arrival (not at dequeue) so the shared RNG
    // stream is consumed in network-delivery order — the same order the
    // pre-queue timeline model used.
    QueuedMessage item;
    item.msg = msg;
    item.arrival = sim().now();
    item.cost = service_cost(msg);
    queues_[prio].push_back(std::move(item));
    ++queued_;
    if (!cpu_busy_) start_next();
  }

  /// Issues a request and arms a timeout.
  void call(NodeId to, MessageType type, std::string payload,
            RpcCallback cb) {
    call_with_timeout(to, type, std::move(payload), config_.rpc_timeout_us,
                      std::move(cb));
  }

  /// `deadline` (absolute, 0 = none) is stamped on the outgoing message so
  /// every downstream host may shed the work once it cannot finish in time.
  void call_with_timeout(NodeId to, MessageType type, std::string payload,
                         SimDuration timeout, RpcCallback cb,
                         SimTime deadline = 0) {
    const std::uint64_t rpc_id = next_rpc_id_++;
    const TraceContext caller_ctx = trace_ctx_;
    const SpanId rpc_span = tracer().begin(caller_ctx, rpc_span_name(type),
                                           id_, now(), rpc_span_stage(type));
    auto timer = sim().schedule(timeout, [this, live = live_, rpc_id]() {
      if (!*live) return;
      auto it = pending_.find(rpc_id);
      if (it == pending_.end()) return;
      Pending pending = std::move(it->second);
      pending_.erase(it);
      tracer().end(pending.rpc_span, now(), "timeout");
      trace_ctx_ = pending.ctx;
      pending.callback(Status::Timeout(), {});
    });
    pending_.emplace(rpc_id,
                     Pending{std::move(cb), timer, caller_ctx, rpc_span});
    Message msg{id_, to, type, rpc_id, /*is_response=*/false,
                std::move(payload)};
    msg.trace_id = caller_ctx.trace_id;
    msg.span_id = rpc_span != 0 ? rpc_span : caller_ctx.span_id;
    msg.deadline = deadline;
    net_.send(std::move(msg));
  }

  /// One-way message; no response expected.
  void send_oneway(NodeId to, MessageType type, std::string payload) {
    Message msg{id_, to, type, /*rpc_id=*/0, /*is_response=*/false,
                std::move(payload)};
    msg.trace_id = trace_ctx_.trace_id;
    msg.span_id = trace_ctx_.span_id;
    net_.send(std::move(msg));
  }

  /// Replies to a request received in on_message().
  void reply(const Message& request, std::string payload) {
    Message msg{id_, request.from, request.type, request.rpc_id,
                /*is_response=*/true, std::move(payload)};
    msg.trace_id = trace_ctx_.trace_id;
    msg.span_id = trace_ctx_.span_id;
    net_.send(std::move(msg));
  }

  [[nodiscard]] std::size_t pending_rpcs() const { return pending_.size(); }

  // ---- overload introspection -------------------------------------------
  /// Messages currently waiting in the ingress queue (all classes).
  [[nodiscard]] std::size_t queue_depth() const { return queued_; }
  /// Requests shed at admission because the queue was full.
  [[nodiscard]] std::uint64_t shed_queue_full() const {
    return shed_queue_full_;
  }
  /// Requests shed at dequeue because their deadline had expired.
  [[nodiscard]] std::uint64_t shed_deadline() const { return shed_deadline_; }

  // ---- tracing ----------------------------------------------------------
  [[nodiscard]] Tracer& tracer() const { return sim().tracer(); }
  [[nodiscard]] TraceContext trace_context() const { return trace_ctx_; }
  void set_trace_context(TraceContext ctx) { trace_ctx_ = ctx; }

  /// Opens a fresh trace rooted at this host and makes it current.
  TraceContext begin_trace(const std::string& name,
                           TraceStage stage = TraceStage::kUnknown) {
    trace_ctx_ = tracer().start_trace(name, id_, now(), stage);
    return trace_ctx_;
  }
  /// Child span of the current context. Does not change the context.
  SpanId begin_span(const std::string& name,
                    TraceStage stage = TraceStage::kUnknown) {
    return tracer().begin(trace_ctx_, name, id_, now(), stage);
  }
  /// Makes `span` the current context; returns the previous context so
  /// the caller can restore it after issuing nested work.
  TraceContext enter_span(SpanId span) {
    const TraceContext prev = trace_ctx_;
    if (span != 0) trace_ctx_ = TraceContext{prev.trace_id, span};
    return prev;
  }
  void end_span(SpanId span, const std::string& status = "ok") {
    tracer().end(span, now(), status);
  }
  /// Zero-duration annotation under the current context.
  void instant_span(const std::string& name,
                    const std::string& status = "ok",
                    TraceStage stage = TraceStage::kUnknown) {
    tracer().instant(trace_ctx_, name, id_, now(), status, stage);
  }

 protected:
  /// Handles a request or one-way message. Responses are routed to RPC
  /// callbacks before reaching this.
  virtual void on_message(const Message& msg) = 0;

  virtual void on_crash() {}
  virtual void on_restart() {}

  /// Ingress priority class for a message (0 = served first). The base
  /// host treats all traffic equally — strict FIFO, exactly the old
  /// timeline model. Protocol subclasses classify their request types;
  /// responses should stay in class 0 (they finish work in flight).
  [[nodiscard]] virtual std::size_t message_priority(
      const Message& msg) const {
    (void)msg;
    return 0;
  }

  /// A message was dropped instead of serviced. Runs at shed time with no
  /// CPU cost modeled; subclasses may send an explicit kOverloaded reply
  /// (building a tiny reject reply is negligible next to real service).
  /// Default: silent drop — the caller's RPC timeout is the signal.
  virtual void on_shed(const Message& msg, ShedReason reason) {
    (void)msg;
    (void)reason;
  }

  /// Name given to the span opened around an outgoing RPC. Subclasses
  /// that know their protocol override this with readable names.
  [[nodiscard]] virtual std::string rpc_span_name(MessageType type) const {
    return "rpc.t" + std::to_string(type);
  }

  /// Attribution stage for an outgoing RPC span. The base host only knows
  /// "it went over the wire"; protocol subclasses override this alongside
  /// rpc_span_name (replica fan-out → service, ZooKeeper → zk, ...).
  [[nodiscard]] virtual TraceStage rpc_span_stage(MessageType type) const {
    (void)type;
    return TraceStage::kNet;
  }

  /// CPU cost model; override for per-type costs.
  virtual SimDuration service_cost(const Message& msg) {
    (void)msg;
    const double jitter =
        1.0 + config_.service_jitter_frac * (2.0 * sim().rng().next_double() -
                                             1.0);
    const double cost =
        static_cast<double>(config_.base_service_us) * jitter;
    return cost < 1.0 ? 1 : static_cast<SimDuration>(cost);
  }

 private:
  struct Pending {
    RpcCallback callback;
    TimerHandle timeout;
    /// Caller's trace context at call time; restored for the callback.
    TraceContext ctx;
    /// Span covering the request/response round trip (0 when untraced).
    SpanId rpc_span = 0;
  };

  struct QueuedMessage {
    Message msg;
    SimTime arrival = 0;
    SimDuration cost = 0;
  };

  static std::size_t clamp_priority(std::size_t p) {
    return p >= kHostPriorities ? kHostPriorities - 1 : p;
  }

  /// Begins servicing the head of the highest non-empty priority class.
  /// Expired-deadline requests are shed here, before any CPU is spent on
  /// them — late work is dropped, not burned.
  void start_next() {
    while (queued_ > 0) {
      auto* queue = &queues_[0];
      for (auto& q : queues_) {
        if (!q.empty()) {
          queue = &q;
          break;
        }
      }
      QueuedMessage item = std::move(queue->front());
      queue->pop_front();
      --queued_;
      if (!item.msg.is_response && item.msg.deadline != 0 &&
          now() > item.msg.deadline) {
        ++shed_deadline_;
        on_shed(item.msg, ShedReason::kDeadlineExceeded);
        continue;
      }
      cpu_busy_ = true;
      const SimTime start = now();
      sim().schedule(
          item.cost,
          [this, live = live_, epoch = cpu_epoch_, item = std::move(item),
           start]() mutable {
            if (!*live || epoch != cpu_epoch_) return;
            cpu_busy_ = false;
            if (alive_) dispatch(item.msg, item.arrival, start, item.cost);
            if (alive_ && !cpu_busy_) start_next();
          });
      return;
    }
    cpu_busy_ = false;
  }

  void dispatch(const Message& msg, SimTime arrival, SimTime start,
                SimDuration cost) {
    if (msg.is_response) {
      auto it = pending_.find(msg.rpc_id);
      if (it == pending_.end()) return;  // response raced its own timeout
      Pending pending = std::move(it->second);
      pending.timeout.cancel();
      pending_.erase(it);
      // The response's queue/service time belongs under the RPC span it
      // answers — its stamped span id points at the *caller side* context
      // whose span may already be closed.
      record_cpu_spans(TraceContext{msg.trace_id, pending.rpc_span}, arrival,
                       start, cost);
      tracer().end(pending.rpc_span, now(), "ok");
      trace_ctx_ = pending.ctx;
      pending.callback(Status::Ok(), msg.payload);
      return;
    }
    record_cpu_spans(TraceContext{msg.trace_id, msg.span_id}, arrival, start,
                     cost);
    trace_ctx_ = TraceContext{msg.trace_id, msg.span_id};
    on_message(msg);
  }

  /// Records the CPU queue wait and service time of one handled message
  /// as closed child spans. Emitted at dispatch time so a host that
  /// crashes with messages queued never reports phantom CPU work.
  void record_cpu_spans(const TraceContext& parent, SimTime arrival,
                        SimTime start, SimDuration cost) {
    if (!parent.active() || parent.span_id == 0) return;
    Tracer& t = tracer();
    if (start > arrival) {
      const SpanId queue =
          t.begin(parent, "cpu.queue", id_, arrival, TraceStage::kQueue);
      t.end(queue, start, "ok");
    }
    const SpanId svc =
        t.begin(parent, "cpu.service", id_, start, TraceStage::kService);
    t.end(svc, start + cost, "ok");
  }

  Network& net_;
  NodeId id_;
  HostConfig config_;
  /// Shared liveness token: lambdas queued in the simulation check it so
  /// a destroyed host is never dereferenced.
  std::shared_ptr<bool> live_ = std::make_shared<bool>(true);
  bool alive_ = true;
  /// Real ingress queues, one per priority class, drained by one core.
  std::array<std::deque<QueuedMessage>, kHostPriorities> queues_;
  std::size_t queued_ = 0;
  bool cpu_busy_ = false;
  /// Bumped on crash so an in-flight service-completion event from the
  /// previous incarnation cannot touch the restarted host.
  std::uint64_t cpu_epoch_ = 0;
  std::uint64_t shed_queue_full_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t next_rpc_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  TraceContext trace_ctx_;
};

}  // namespace sedna::sim
