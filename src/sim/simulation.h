// Deterministic discrete-event simulation core.
//
// Substitutes for the paper's 9-server physical testbed (DESIGN.md §2):
// a single virtual clock in microseconds, a seeded RNG, and an event queue
// with stable FIFO ordering among same-time events so runs replay
// bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"

namespace sedna::sim {

/// Handle for a scheduled event; cancel() prevents execution. Handles are
/// cheap shared tokens — copying one refers to the same underlying event.
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool active() const { return cancelled_ && !*cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 2012) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Per-simulation span collector (disabled by default; see trace.h).
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  /// Schedules fn to run `delay` microseconds from now. Returns a handle
  /// that can cancel the event before it fires.
  TimerHandle schedule(SimDuration delay, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{now_ + delay, next_seq_++, cancelled, std::move(fn)});
    return TimerHandle{std::move(cancelled)};
  }

  /// Schedules fn to run every `interval`, first firing after `interval`.
  /// Cancel via the returned handle (cancels all future firings).
  TimerHandle schedule_periodic(SimDuration interval,
                                std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    schedule_periodic_impl(interval, std::move(fn), cancelled);
    return TimerHandle{std::move(cancelled)};
  }

  /// Runs a single event. Returns false when the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      if (*ev.cancelled) continue;
      ev.fn();
      return true;
    }
    return false;
  }

  /// Runs until the queue drains or `max_events` fire (runaway guard).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs events with timestamps <= deadline; clock lands on `deadline`
  /// afterwards (even if the queue drained earlier).
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      if (!*ev.cancelled) ev.fn();
    }
    if (now_ < deadline) now_ = deadline;
  }

  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Runs until `pred()` turns true or the queue drains. Returns pred().
  bool run_while_pending(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) break;
    }
    return pred();
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for same-time events
    std::shared_ptr<bool> cancelled;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void schedule_periodic_impl(SimDuration interval, std::function<void()> fn,
                              std::shared_ptr<bool> cancelled) {
    queue_.push(Event{
        now_ + interval, next_seq_++, cancelled,
        [this, interval, fn = std::move(fn), cancelled]() mutable {
          fn();
          schedule_periodic_impl(interval, std::move(fn),
                                 std::move(cancelled));
        }});
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Rng rng_;
  Tracer tracer_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sedna::sim
