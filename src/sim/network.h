// Simulated cluster network: latency + bandwidth + loss + partitions.
//
// Models the paper's testbed (Section VI.A): all servers in one hosting
// facility on a single 1 GbE link, RTT below a millisecond. Every message
// costs base_latency + wire_size/bandwidth one-way, with optional seeded
// jitter. Failure injection: node crash (drops everything), symmetric
// pairwise partitions, and i.i.d. message loss.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/simulation.h"

namespace sedna::sim {

struct NetworkConfig {
  /// One-way propagation + switching latency. 120 us gives RTT ~= 0.24 ms,
  /// inside the paper's "< 1 ms" envelope.
  SimDuration base_latency_us = 120;
  /// 1 GbE ~= 125 bytes per microsecond.
  double bandwidth_bytes_per_us = 125.0;
  /// Uniform +/- jitter applied to each delivery, as a fraction of the
  /// base latency (0.1 => +/-10%).
  double jitter_frac = 0.10;
  /// Independent per-message drop probability.
  double loss_prob = 0.0;
};

class Host;

class Network {
 public:
  Network(Simulation& sim, NetworkConfig config = {})
      : sim_(sim), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host under its node id. The host must outlive the network.
  void attach(NodeId id, Host* host);
  void detach(NodeId id) { hosts_.erase(id); }

  /// Crash/recover a node. A crashed node neither receives nor sends;
  /// in-flight messages to it are dropped on delivery.
  void set_node_up(NodeId id, bool up);
  [[nodiscard]] bool node_up(NodeId id) const {
    return !down_.contains(id);
  }

  /// Symmetric partition between two nodes.
  void partition(NodeId a, NodeId b) { partitions_.insert(edge(a, b)); }
  void heal(NodeId a, NodeId b) { partitions_.erase(edge(a, b)); }
  void heal_all() { partitions_.clear(); }

  void set_loss_prob(double p) { config_.loss_prob = p; }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// The reference itself is mutable state shared by the whole cluster;
  /// const hosts still need to read the clock.
  [[nodiscard]] Simulation& sim() const { return sim_; }

  /// Sends a message; delivery is scheduled on the event queue. Messages
  /// from/to crashed or partitioned nodes silently vanish — senders find
  /// out via their own RPC timeouts, exactly how the paper's failure
  /// detection works (Section III.C: 'timeout', 'refuse' responses).
  void send(Message msg);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

  /// Drop totals broken down by reason (`net.drops.crashed`,
  /// `net.drops.partitioned`, `net.drops.loss`, `net.drops.no_host`) plus
  /// the aggregate flow counters, for the cluster metrics dump.
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

 private:
  static std::pair<NodeId, NodeId> edge(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// Counts the drop and, when the message is traced, records it.
  void drop(const Message& msg, const char* why);

  [[nodiscard]] SimDuration delivery_delay(const Message& msg);

  Simulation& sim_;
  NetworkConfig config_;
  std::unordered_map<NodeId, Host*> hosts_;
  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
  MetricRegistry metrics_;
};

}  // namespace sedna::sim
