// Wire message for the simulated network.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sedna::sim {

/// Message type tags. Each subsystem owns a numeric range so a single
/// dispatch switch per host stays readable:
///   100–199  ZooKeeper-lite client protocol and ensemble internals
///   200–299  Sedna data path (replica read/write, recovery transfer)
///   300–399  Memcached baseline protocol
///   400–499  Trigger runtime control
/// Tests may use 900+ freely.
using MessageType = std::uint32_t;

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MessageType type = 0;
  /// Matches a response to its request; 0 for one-way messages.
  std::uint64_t rpc_id = 0;
  bool is_response = false;
  /// Serialized payload (BinaryWriter/BinaryReader framing).
  std::string payload;
  /// Distributed-tracing context: the sender's trace and the span this
  /// message descends from (for a request, the caller's RPC span). Zero
  /// when tracing is off or the sender holds no active trace. The 16
  /// bytes ride inside the modeled fixed header below, so carrying a
  /// trace changes no timing.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// Absolute request deadline (virtual µs); 0 = none. Stamped by the
  /// client on fresh ops and propagated verbatim through every hop the
  /// coordinator fans out on the request's behalf, so any host on the
  /// path can shed work that can no longer finish in time. Rides inside
  /// the modeled fixed header, like the trace context.
  SimTime deadline = 0;

  [[nodiscard]] std::size_t wire_size() const {
    // Headers modeled as a fixed 32-byte cost, roughly an Ethernet+IP+TCP
    // header share plus framing, matching the 1 GbE testbed assumption.
    return payload.size() + 32;
  }
};

}  // namespace sedna::sim
