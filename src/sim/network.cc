#include "sim/network.h"

#include <cmath>

#include "sim/host.h"

namespace sedna::sim {

void Network::attach(NodeId id, Host* host) { hosts_[id] = host; }

void Network::set_node_up(NodeId id, bool up) {
  if (up) {
    down_.erase(id);
  } else {
    down_.insert(id);
  }
}

SimDuration Network::delivery_delay(const Message& msg) {
  const double transmit =
      static_cast<double>(msg.wire_size()) / config_.bandwidth_bytes_per_us;
  const double jitter =
      1.0 + config_.jitter_frac * (2.0 * sim_.rng().next_double() - 1.0);
  const double total =
      static_cast<double>(config_.base_latency_us) * jitter + transmit;
  return total < 1.0 ? 1 : static_cast<SimDuration>(total);
}

void Network::drop(const Message& msg, const char* why) {
  ++dropped_;
  metrics_.counter(std::string("net.drops.") + why).add(1);
  // A traced message that vanishes leaves a zero-duration span on the
  // receiver's side of the tree — the trace explains the later timeout.
  sim_.tracer().instant(TraceContext{msg.trace_id, msg.span_id}, "net.drop",
                        msg.to, sim_.now(), why, TraceStage::kNet);
}

void Network::send(Message msg) {
  ++sent_;
  bytes_ += msg.wire_size();

  // Loopback messages bypass the wire but still cost the receiver CPU.
  const bool loopback = msg.from == msg.to;

  if (down_.contains(msg.from) || down_.contains(msg.to)) {
    drop(msg, "crashed");
    return;
  }
  if (!loopback && partitions_.contains(edge(msg.from, msg.to))) {
    drop(msg, "partitioned");
    return;
  }
  if (!loopback && config_.loss_prob > 0.0 &&
      sim_.rng().next_bool(config_.loss_prob)) {
    drop(msg, "loss");
    return;
  }

  const SimDuration delay = loopback ? 1 : delivery_delay(msg);
  sim_.schedule(delay, [this, m = std::move(msg)]() {
    // Re-check liveness at delivery time: the receiver may have crashed
    // while the message was in flight.
    if (down_.contains(m.to)) {
      drop(m, "crashed");
      return;
    }
    auto it = hosts_.find(m.to);
    if (it == hosts_.end()) {
      drop(m, "no_host");
      return;
    }
    ++delivered_;
    it->second->deliver(m);
  });
}

}  // namespace sedna::sim
