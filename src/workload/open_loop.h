// OpenLoopDriver: arrival-rate-driven load generation.
//
// The closed-loop drivers of Figs. 7/8 can never push the cluster past
// saturation: when the cluster slows down, a closed loop slows down with
// it. Real cloud traffic does not — arrivals keep coming at the offered
// rate whether or not earlier requests finished (the "open loop" of load
// testing folklore, and the regime where overload defenses matter).
//
// This driver schedules operation start times from a piecewise-constant
// rate curve (flash crowds, diurnal waves, pulses) with either Poisson or
// uniformly spaced inter-arrival times, draws randomness from the shared
// simulation RNG (fully deterministic per seed), tracks outstanding /
// succeeded / failed counts, and aggregates completions into fixed
// windows so a scenario can gate on the goodput *shape* over time — the
// signature difference between a cluster that sheds and recovers and one
// that collapses metastably.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"

namespace sedna::workload {

/// One step of a piecewise-constant offered-load curve: from `at`
/// (relative to start()) the generator issues `ops_per_sec`.
struct RatePoint {
  SimDuration at = 0;
  double ops_per_sec = 0.0;
};

struct OpenLoopConfig {
  /// Offered-load curve, sorted by `at`; the first point should be at 0.
  /// A rate of 0 pauses generation until the next point.
  std::vector<RatePoint> curve;
  /// Generation horizon (relative to start()); arrivals stop after this.
  SimDuration duration = 0;
  /// Poisson arrivals (exponential inter-arrival gaps) vs. a metronome.
  bool poisson = true;
  /// Completion-aggregation window for the goodput/throughput series.
  SimDuration window = sim_ms(100);
};

class OpenLoopDriver {
 public:
  /// issue(seq, done): start operation `seq`; call done(ok) exactly once
  /// when it settles, with ok = the op counts toward goodput.
  using IssueFn = std::function<void(
      std::uint64_t, const std::function<void(bool)>&)>;

  /// Per-window completion aggregates (window w covers
  /// [start + w·window, start + (w+1)·window)).
  struct Window {
    std::uint64_t issued = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
  };

  OpenLoopDriver(sim::Simulation& sim, OpenLoopConfig config, IssueFn issue)
      : sim_(sim), config_(std::move(config)), issue_(std::move(issue)) {}

  void start() {
    started_at_ = sim_.now();
    schedule_next();
  }

  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t succeeded() const { return succeeded_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }
  [[nodiscard]] std::uint64_t outstanding() const {
    return issued_ - succeeded_ - failed_;
  }
  [[nodiscard]] bool drained() const { return outstanding() == 0; }

  [[nodiscard]] const std::vector<Window>& windows() const {
    return windows_;
  }
  /// Successful completions per second over window w (0 if out of range).
  [[nodiscard]] double goodput_at(std::size_t w) const {
    if (w >= windows_.size() || config_.window == 0) return 0.0;
    return static_cast<double>(windows_[w].ok) * 1e6 /
           static_cast<double>(config_.window);
  }
  /// Mean goodput (ops/s) over windows [from, to).
  [[nodiscard]] double mean_goodput(std::size_t from, std::size_t to) const {
    if (to <= from) return 0.0;
    double sum = 0;
    for (std::size_t w = from; w < to; ++w) sum += goodput_at(w);
    return sum / static_cast<double>(to - from);
  }
  [[nodiscard]] std::size_t window_index(SimTime at) const {
    if (config_.window == 0 || at < started_at_) return 0;
    return static_cast<std::size_t>((at - started_at_) / config_.window);
  }

 private:
  [[nodiscard]] double rate_at(SimDuration rel) const {
    double rate = 0.0;
    for (const RatePoint& p : config_.curve) {
      if (p.at > rel) break;
      rate = p.ops_per_sec;
    }
    return rate;
  }

  /// Next curve point strictly after `rel`, or duration if none.
  [[nodiscard]] SimDuration next_step_after(SimDuration rel) const {
    for (const RatePoint& p : config_.curve) {
      if (p.at > rel) return p.at;
    }
    return config_.duration;
  }

  void schedule_next() {
    const SimDuration rel = sim_.now() - started_at_;
    if (rel >= config_.duration) return;
    const double rate = rate_at(rel);
    if (rate <= 0.0) {
      // Paused: jump to the next curve step (or end).
      const SimDuration resume = next_step_after(rel);
      if (resume >= config_.duration) return;
      sim_.schedule(resume - rel, [this] { schedule_next(); });
      return;
    }
    const double mean_gap_us = 1e6 / rate;
    double gap = config_.poisson ? sim_.rng().next_exponential(mean_gap_us)
                                 : mean_gap_us;
    if (gap < 1.0) gap = 1.0;
    sim_.schedule(static_cast<SimDuration>(gap), [this] {
      fire();
      schedule_next();
    });
  }

  void fire() {
    const SimDuration rel = sim_.now() - started_at_;
    if (rel >= config_.duration) return;
    const std::uint64_t seq = issued_++;
    window_for(sim_.now()).issued += 1;
    issue_(seq, [this](bool ok) {
      if (ok) {
        ++succeeded_;
        window_for(sim_.now()).ok += 1;
      } else {
        ++failed_;
        window_for(sim_.now()).failed += 1;
      }
    });
  }

  Window& window_for(SimTime at) {
    const std::size_t w = window_index(at);
    if (windows_.size() <= w) windows_.resize(w + 1);
    return windows_[w];
  }

  sim::Simulation& sim_;
  OpenLoopConfig config_;
  IssueFn issue_;
  SimTime started_at_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<Window> windows_;
};

}  // namespace sedna::workload
