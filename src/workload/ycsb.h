// YCSB-style workload mixes — the de-facto standard KV-store evaluation
// suite (Cooper et al., SoCC'10), contemporary with the paper and the
// natural extension of its single-mix evaluation:
//
//   A  update-heavy   50% read / 50% update, zipfian keys
//   B  read-mostly    95% read /  5% update, zipfian keys
//   C  read-only     100% read,              zipfian keys
//   D  read-latest    95% read /  5% insert; reads skew to recent inserts
//
// Deterministic per seed, like every other generator in this repository.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "workload/kv_workload.h"

namespace sedna::workload {

enum class YcsbMix : std::uint8_t { kA, kB, kC, kD };

[[nodiscard]] constexpr const char* to_string(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA: return "A(50r/50u)";
    case YcsbMix::kB: return "B(95r/5u)";
    case YcsbMix::kC: return "C(100r)";
    case YcsbMix::kD: return "D(95r/5i,latest)";
  }
  return "?";
}

struct YcsbConfig {
  YcsbMix mix = YcsbMix::kA;
  /// Records preloaded before the measured phase.
  std::uint64_t records = 2000;
  double zipf_exponent = 0.99;
  std::uint64_t seed = 2012;
};

struct YcsbOp {
  enum class Kind : std::uint8_t { kRead, kUpdate, kInsert };
  Kind kind = Kind::kRead;
  std::string key;
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(YcsbConfig config)
      : config_(config),
        kv_({14, 100, config.seed}),  // YCSB default-ish 100 B values
        rng_(config.seed ^ kSeedMarker),
        zipf_(static_cast<std::size_t>(config.records),
              config.zipf_exponent, config.seed ^ 0x51),
        inserted_(config.records) {}

  /// Key/value for preload record i.
  [[nodiscard]] std::string load_key(std::uint64_t i) const {
    return kv_.key(i);
  }
  [[nodiscard]] const std::string& value() const { return kv_.value(); }

  /// The next operation of the measured phase.
  [[nodiscard]] YcsbOp next() {
    YcsbOp op;
    const double roll = rng_.next_double();
    switch (config_.mix) {
      case YcsbMix::kA:
        op.kind = roll < 0.5 ? YcsbOp::Kind::kRead : YcsbOp::Kind::kUpdate;
        op.key = kv_.key(zipf_.next());
        break;
      case YcsbMix::kB:
        op.kind = roll < 0.95 ? YcsbOp::Kind::kRead : YcsbOp::Kind::kUpdate;
        op.key = kv_.key(zipf_.next());
        break;
      case YcsbMix::kC:
        op.kind = YcsbOp::Kind::kRead;
        op.key = kv_.key(zipf_.next());
        break;
      case YcsbMix::kD:
        if (roll < 0.95) {
          op.kind = YcsbOp::Kind::kRead;
          // "Read latest": zipf rank r maps to the r-th most recent
          // insert.
          const std::uint64_t rank = zipf_.next();
          const std::uint64_t idx =
              inserted_ > rank ? inserted_ - 1 - rank : 0;
          op.key = kv_.key(idx);
        } else {
          op.kind = YcsbOp::Kind::kInsert;
          op.key = kv_.key(inserted_++);
        }
        break;
    }
    return op;
  }

  [[nodiscard]] const YcsbConfig& config() const { return config_; }

 private:
  /// Keeps this generator's seed space disjoint from the others'.
  static constexpr std::uint64_t kSeedMarker = 0x9c5bULL;

  YcsbConfig config_;
  KvWorkload kv_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::uint64_t inserted_;
};

}  // namespace sedna::workload
