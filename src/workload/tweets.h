// Synthetic micro-blogging workload (DESIGN.md §2 substitution for the
// paper's Sina Weibo / Twitter crawl): zipf-distributed authors, a zipf
// vocabulary for message text, and a preferential-attachment-flavoured
// follower graph. Drives the Section V realtime search-engine use case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sedna::workload {

struct Tweet {
  std::uint64_t id = 0;
  std::uint32_t author = 0;
  std::string text;
  /// Re-tweet count (a paper ranking factor, Section V).
  std::uint32_t retweets = 0;
};

struct TweetGeneratorConfig {
  std::uint32_t num_users = 200;
  std::uint32_t vocabulary = 500;
  std::uint32_t words_per_tweet = 6;
  double author_zipf = 1.1;
  double word_zipf = 1.05;
  std::uint64_t seed = 42;
};

class TweetGenerator {
 public:
  explicit TweetGenerator(TweetGeneratorConfig config = {})
      : config_(config),
        rng_(config.seed),
        authors_(config.num_users, config.author_zipf, config.seed ^ 0xa),
        words_(config.vocabulary, config.word_zipf, config.seed ^ 0xb) {}

  [[nodiscard]] Tweet next() {
    Tweet t;
    t.id = next_id_++;
    t.author = static_cast<std::uint32_t>(authors_.next());
    for (std::uint32_t w = 0; w < config_.words_per_tweet; ++w) {
      if (w > 0) t.text += ' ';
      t.text += word(static_cast<std::uint32_t>(words_.next()));
    }
    t.retweets = static_cast<std::uint32_t>(rng_.next_below(50));
    return t;
  }

  [[nodiscard]] const TweetGeneratorConfig& config() const { return config_; }

  /// Deterministic word spelling for vocabulary index i ("w17").
  [[nodiscard]] static std::string word(std::uint32_t i) {
    return "w" + std::to_string(i);
  }

  /// Follower edges for a user: heavier users follow more accounts.
  [[nodiscard]] std::vector<std::uint32_t> followees(std::uint32_t user) {
    Rng local(config_.seed ^ (0x517ULL * (user + 1)));
    const std::uint32_t count =
        2 + static_cast<std::uint32_t>(local.next_below(8));
    std::vector<std::uint32_t> out;
    ZipfGenerator popular(config_.num_users, 1.2,
                          config_.seed ^ (user * 31 + 7));
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto target = static_cast<std::uint32_t>(popular.next());
      if (target != user) out.push_back(target);
    }
    return out;
  }

 private:
  TweetGeneratorConfig config_;
  Rng rng_;
  ZipfGenerator authors_;
  ZipfGenerator words_;
  std::uint64_t next_id_ = 1;
};

}  // namespace sedna::workload
