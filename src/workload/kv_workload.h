// KV workload matching the paper's test setup (Section VI.A): 20-byte
// randomly generated keys shaped like "test-00000000000000" and a 20-byte
// constant value. Deterministic per seed so every bench run replays the
// same key sequence.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/hash.h"
#include "common/rng.h"

namespace sedna::workload {

struct KvWorkloadConfig {
  std::size_t key_digits = 14;   // "test-" + 14 digits = 19 chars ≈ 20 B
  std::size_t value_bytes = 20;
  std::uint64_t seed = 2012;
};

class KvWorkload {
 public:
  explicit KvWorkload(KvWorkloadConfig config = {})
      : config_(config), value_(config.value_bytes, 'v') {}

  /// Key for logical index i: pseudo-random digits derived from the seed,
  /// stable across runs ("20 bytes key which was generated randomly like
  /// 'test-00000000000000'").
  [[nodiscard]] std::string key(std::uint64_t i) const {
    const std::uint64_t h = mix64(i ^ config_.seed);
    char buf[40];
    const int n = std::snprintf(buf, sizeof buf, "test-%0*llu",
                                static_cast<int>(config_.key_digits),
                                static_cast<unsigned long long>(
                                    h % pow10(config_.key_digits)));
    return std::string(buf, static_cast<std::size_t>(n));
  }

  /// The constant 20-byte value.
  [[nodiscard]] const std::string& value() const { return value_; }

  [[nodiscard]] const KvWorkloadConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t pow10(std::size_t digits) {
    std::uint64_t p = 1;
    for (std::size_t i = 0; i < digits && i < 19; ++i) p *= 10;
    return p;
  }

  KvWorkloadConfig config_;
  std::string value_;
};

}  // namespace sedna::workload
