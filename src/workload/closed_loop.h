// ClosedLoopDriver: the paper's load-test client behaviour — one
// outstanding operation per client; the next begins when the previous
// acknowledges. "Time spend" for k operations is therefore k × per-op
// latency, the linear curves of Figs. 7 and 8.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/simulation.h"

namespace sedna::workload {

class ClosedLoopDriver {
 public:
  /// issue(i, done): start operation i; invoke done() on completion.
  using IssueFn =
      std::function<void(std::uint64_t, const std::function<void()>&)>;

  ClosedLoopDriver(std::uint64_t total_ops, IssueFn issue)
      : total_(total_ops), issue_(std::move(issue)) {}

  void start(std::function<void()> on_complete) {
    on_complete_ = std::move(on_complete);
    next();
  }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] bool done() const { return completed_ >= total_; }

 private:
  void next() {
    if (completed_ >= total_) {
      if (on_complete_) on_complete_();
      return;
    }
    issue_(completed_, [this] {
      ++completed_;
      next();
    });
  }

  std::uint64_t total_;
  IssueFn issue_;
  std::function<void()> on_complete_;
  std::uint64_t completed_ = 0;
};

}  // namespace sedna::workload
