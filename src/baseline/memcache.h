// Memcached baseline (paper Section VI): a plain distributed cache with
// client-side ketama-style consistent hashing and NO server-side
// replication or coordination — the comparison system of Fig. 7(a)/(b).
//
// Two client modes mirror the paper's two experiments:
//   * x1: each set/get touches exactly one server (Fig. 7b);
//   * xN sequential: the client writes/reads the same key to N distinct
//     servers one after another — "in Memcached these reads and writes
//     requests were issued sequentially" (Fig. 7a).
//
// Message types 300–399.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "sim/host.h"
#include "store/local_store.h"

namespace sedna::baseline {

constexpr sim::MessageType kMsgMcSet = 300;
constexpr sim::MessageType kMsgMcGet = 301;
constexpr sim::MessageType kMsgMcDelete = 302;

/// A memcached server: just a LocalStore behind the simulated NIC.
class MemcacheNode : public sim::Host {
 public:
  MemcacheNode(sim::Network& net, NodeId id,
               store::LocalStoreConfig store_config = {},
               sim::HostConfig host_config = {})
      : sim::Host(net, id, host_config),
        store_(store_config, [this] { return sim().now(); }) {}

  [[nodiscard]] store::LocalStore& local_store() { return store_; }

 protected:
  void on_message(const sim::Message& msg) override {
    BinaryReader r(msg.payload);
    const std::string key = r.get_string();
    switch (msg.type) {
      case kMsgMcSet: {
        const std::string value = r.get_string();
        BinaryWriter w;
        if (r.failed()) {
          w.put_u8(static_cast<std::uint8_t>(StatusCode::kInvalidArgument));
        } else {
          store_.set(key, value);
          w.put_u8(static_cast<std::uint8_t>(StatusCode::kOk));
        }
        reply(msg, std::move(w).take());
        break;
      }
      case kMsgMcGet: {
        BinaryWriter w;
        auto got = store_.get(key);
        if (got.ok()) {
          w.put_u8(static_cast<std::uint8_t>(StatusCode::kOk));
          w.put_string(got->value);
        } else {
          w.put_u8(static_cast<std::uint8_t>(StatusCode::kNotFound));
          w.put_string("");
        }
        reply(msg, std::move(w).take());
        break;
      }
      case kMsgMcDelete: {
        BinaryWriter w;
        w.put_u8(static_cast<std::uint8_t>(store_.del(key).code()));
        reply(msg, std::move(w).take());
        break;
      }
      default:
        break;
    }
  }

 private:
  store::LocalStore store_;
};

/// Client-side ketama-ish ring: each server contributes `points_per_server`
/// hash points; a key maps to the first point clockwise.
class KetamaRing {
 public:
  explicit KetamaRing(const std::vector<NodeId>& servers,
                      std::uint32_t points_per_server = 128) {
    for (NodeId server : servers) {
      for (std::uint32_t p = 0; p < points_per_server; ++p) {
        const std::string token =
            std::to_string(server) + "#" + std::to_string(p);
        points_[ring_hash(token)] = server;
      }
    }
  }

  /// The server owning `key`; `replica` > 0 selects the next distinct
  /// servers clockwise (used by the xN sequential mode).
  [[nodiscard]] NodeId server_for(std::string_view key,
                                  std::uint32_t replica = 0) const;

  [[nodiscard]] std::size_t point_count() const { return points_.size(); }

 private:
  std::map<std::uint64_t, NodeId> points_;
};

struct MemcacheClientConfig {
  std::vector<NodeId> servers;
  std::uint32_t ketama_points = 128;
  sim::HostConfig host;
};

class MemcacheClient : public sim::Host {
 public:
  using SetCallback = std::function<void(const Status&)>;
  using GetCallback = std::function<void(const Result<std::string>&)>;

  MemcacheClient(sim::Network& net, NodeId id, MemcacheClientConfig config)
      : sim::Host(net, id, config.host),
        config_(std::move(config)),
        ring_(config_.servers, config_.ketama_points) {}

  /// Single set/get — the ordinary memcached client (Fig. 7b mode).
  void set(const std::string& key, const std::string& value, SetCallback cb);
  void get(const std::string& key, GetCallback cb);

  /// Writes/reads the key on `copies` distinct servers *sequentially* —
  /// the Fig. 7a comparison mode. The callback fires after the last hop.
  void set_n(const std::string& key, const std::string& value,
             std::uint32_t copies, SetCallback cb);
  void get_n(const std::string& key, std::uint32_t copies, GetCallback cb);

  [[nodiscard]] const KetamaRing& ring() const { return ring_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

 protected:
  void on_message(const sim::Message&) override {}

 private:
  void set_chain(const std::string& key, const std::string& value,
                 std::uint32_t copies, std::uint32_t idx, SetCallback cb);
  void get_chain(const std::string& key, std::uint32_t copies,
                 std::uint32_t idx, Result<std::string> last, GetCallback cb);

  MemcacheClientConfig config_;
  KetamaRing ring_;
  MetricRegistry metrics_;
};

}  // namespace sedna::baseline
