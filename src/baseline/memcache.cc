#include "baseline/memcache.h"

#include <algorithm>

namespace sedna::baseline {

NodeId KetamaRing::server_for(std::string_view key,
                              std::uint32_t replica) const {
  if (points_.empty()) return kInvalidNode;
  auto it = points_.lower_bound(ring_hash(key));
  std::vector<NodeId> seen;
  // Walk clockwise collecting distinct servers until we reach `replica`.
  for (std::size_t hops = 0; hops < points_.size() * 2; ++hops) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(seen.begin(), seen.end(), it->second) == seen.end()) {
      if (seen.size() == replica) return it->second;
      seen.push_back(it->second);
    }
    ++it;
  }
  return points_.begin()->second;  // fewer distinct servers than replica
}

void MemcacheClient::set(const std::string& key, const std::string& value,
                         SetCallback cb) {
  set_chain(key, value, 1, 0, std::move(cb));
}

void MemcacheClient::get(const std::string& key, GetCallback cb) {
  get_chain(key, 1, 0, Status::NotFound(), std::move(cb));
}

void MemcacheClient::set_n(const std::string& key, const std::string& value,
                           std::uint32_t copies, SetCallback cb) {
  set_chain(key, value, copies, 0, std::move(cb));
}

void MemcacheClient::get_n(const std::string& key, std::uint32_t copies,
                           GetCallback cb) {
  get_chain(key, copies, 0, Status::NotFound(), std::move(cb));
}

void MemcacheClient::set_chain(const std::string& key,
                               const std::string& value,
                               std::uint32_t copies, std::uint32_t idx,
                               SetCallback cb) {
  const NodeId server = ring_.server_for(key, idx);
  if (server == kInvalidNode) {
    cb(Status::Unavailable("no memcached servers"));
    return;
  }
  BinaryWriter w(key.size() + value.size() + 8);
  w.put_string(key);
  w.put_string(value);
  call(server, kMsgMcSet, std::move(w).take(),
       [this, key, value, copies, idx, cb = std::move(cb)](
           const Status& st, const std::string& body) mutable {
         metrics_.counter("mc.sets").add(1);
         if (!st.ok()) {
           cb(st);
           return;
         }
         BinaryReader r(body);
         const auto code = static_cast<StatusCode>(r.get_u8());
         if (code != StatusCode::kOk) {
           cb(Status(code));
           return;
         }
         if (idx + 1 >= copies) {
           cb(Status::Ok());
           return;
         }
         // Next copy only after this one acknowledged: sequential, the
         // defining property of the Fig. 7a Memcached configuration.
         set_chain(key, value, copies, idx + 1, std::move(cb));
       });
}

void MemcacheClient::get_chain(const std::string& key, std::uint32_t copies,
                               std::uint32_t idx, Result<std::string> last,
                               GetCallback cb) {
  const NodeId server = ring_.server_for(key, idx);
  if (server == kInvalidNode) {
    cb(Status::Unavailable("no memcached servers"));
    return;
  }
  BinaryWriter w(key.size() + 8);
  w.put_string(key);
  call(server, kMsgMcGet, std::move(w).take(),
       [this, key, copies, idx, cb = std::move(cb)](
           const Status& st, const std::string& body) mutable {
         metrics_.counter("mc.gets").add(1);
         Result<std::string> result = Status::Timeout();
         if (st.ok()) {
           BinaryReader r(body);
           const auto code = static_cast<StatusCode>(r.get_u8());
           std::string value = r.get_string();
           if (code == StatusCode::kOk) {
             result = std::move(value);
           } else {
             result = Status(code);
           }
         }
         if (idx + 1 >= copies) {
           cb(result);
           return;
         }
         get_chain(key, copies, idx + 1, std::move(result), std::move(cb));
       });
}

}  // namespace sedna::baseline
