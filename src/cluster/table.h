// Table / Dataset: ergonomic views over the hierarchical key space.
//
// The paper's data model (Sections II.B.1, IV.C): flat key-value pairs
// whose keys are implicitly extended into a hierarchy — a *Table* is a
// collection of pairs, a *Dataset* a collection of tables ("divide data
// into different tables like Bigtable does"). These lightweight wrappers
// compose the "dataset/table/key" paths and delegate to a SednaClient, so
// application code reads like the paper's examples:
//
//   Dataset tweets(client, "tweets");
//   Table msgs = tweets.table("msgs");
//   msgs.put("42", payload, cb);            // writes tweets/msgs/42
//   msgs.hook()                             // "tweets/msgs" for DataHooks
//
// Wrappers are value types holding a reference to the client; they add no
// state or synchronization of their own.
#pragma once

#include <string>
#include <utility>

#include "cluster/sedna_client.h"
#include "common/keypath.h"

namespace sedna::cluster {

class Table {
 public:
  Table(SednaClient& client, std::string dataset, std::string name)
      : client_(client),
        dataset_(std::move(dataset)),
        name_(std::move(name)) {}

  [[nodiscard]] const std::string& dataset() const { return dataset_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// The flat key for a row, "dataset/table/key".
  [[nodiscard]] std::string key_of(std::string_view row_key) const {
    return make_key(dataset_, name_, row_key);
  }
  /// The path to hand to trigger DataHooks to watch this whole table.
  [[nodiscard]] std::string hook() const { return dataset_ + "/" + name_; }

  void put(const std::string& row_key, const std::string& value,
           SednaClient::WriteCallback cb) {
    client_.write_latest(key_of(row_key), value, std::move(cb));
  }

  void put_all(const std::string& row_key, const std::string& value,
               SednaClient::WriteCallback cb) {
    client_.write_all(key_of(row_key), value, std::move(cb));
  }

  void get(const std::string& row_key, SednaClient::ReadLatestCallback cb) {
    client_.read_latest(key_of(row_key), std::move(cb));
  }

  void get_all(const std::string& row_key, SednaClient::ReadAllCallback cb) {
    client_.read_all(key_of(row_key), std::move(cb));
  }

 private:
  SednaClient& client_;
  std::string dataset_;
  std::string name_;
};

class Dataset {
 public:
  Dataset(SednaClient& client, std::string name)
      : client_(client), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  /// The path to hand to trigger DataHooks to watch the whole dataset.
  [[nodiscard]] const std::string& hook() const { return name_; }

  [[nodiscard]] Table table(std::string table_name) {
    return Table(client_, name_, std::move(table_name));
  }

 private:
  SednaClient& client_;
  std::string name_;
};

}  // namespace sedna::cluster
