#include "cluster/sedna_client.h"

#include <algorithm>

namespace sedna::cluster {

SednaClient::SednaClient(sim::Network& net, NodeId id,
                         SednaClientConfig config)
    : sim::Host(net, id, config.host),
      config_(std::move(config)),
      zk_(*this,
          [this] {
            auto zc = config_.zk_client;
            zc.ensemble = config_.zk_ensemble;
            return zc;
          }()),
      metadata_(zk_, *this) {
  retry_tokens_ = config_.retry_budget_capacity;
}

bool SednaClient::spend_retry_token() {
  if (config_.retry_budget_capacity <= 0) return true;  // budget disabled
  if (retry_tokens_ < 1.0) {
    // Exhausted: this retry would have exceeded the allowed fraction of
    // fresh traffic. Counted under the shed family — it is load the
    // budget refused to send.
    metrics_.counter("node.shed.retry_budget").add(1);
    return false;
  }
  retry_tokens_ -= 1.0;
  return true;
}

void SednaClient::refill_retry_budget() {
  if (config_.retry_budget_capacity <= 0) return;
  retry_tokens_ = std::min(config_.retry_budget_capacity,
                           retry_tokens_ + config_.retry_budget_refill);
}

Timestamp SednaClient::next_ts() {
  const auto seq = static_cast<std::uint16_t>(
      ((id() & 0xff) << 8) | (write_seq_++ & 0xff));
  return make_timestamp(now(), seq);
}

void SednaClient::start(ReadyCallback on_ready) {
  zk_.connect([this, on_ready = std::move(on_ready)](const Status& st) {
    if (!st.ok()) {
      on_ready(st);
      return;
    }
    metadata_.start([this, on_ready](const Status& meta_st) {
      ready_ = meta_st.ok();
      on_ready(meta_st);
    });
  });
}

void SednaClient::on_message(const sim::Message& msg) {
  if (msg.type == zk::kMsgWatchEvent) zk_.on_watch_event(msg.payload);
}

std::string SednaClient::rpc_span_name(sim::MessageType type) const {
  switch (type) {
    case kMsgClientWrite: return "rpc.client_write";
    case kMsgClientRead: return "rpc.client_read";
    case kMsgScan: return "rpc.scan";
    case zk::kMsgClientRequest: return "rpc.zk_request";
    case zk::kMsgSessionPing: return "rpc.zk_ping";
    default: return sim::Host::rpc_span_name(type);
  }
}

TraceStage SednaClient::rpc_span_stage(sim::MessageType type) const {
  switch (type) {
    // The client-to-coordinator hop is the one true "network" stage of a
    // request: the coordinator decomposes its own share into queue /
    // service / replica waits under this span.
    case kMsgClientWrite:
    case kMsgClientRead:
    case kMsgScan:
      return TraceStage::kNet;
    case zk::kMsgClientRequest:
    case zk::kMsgSessionPing:
      return TraceStage::kZk;
    default:
      return sim::Host::rpc_span_stage(type);
  }
}

SednaClient::WriteCallback SednaClient::traced_write(const char* op,
                                                     WriteCallback cb) {
  const TraceContext root = begin_trace(op, TraceStage::kService);
  const SimTime started = now();
  return [this, root, started, cb = std::move(cb)](const Status& st) {
    metrics_.histogram("client.write_latency_us")
        .record(now() - started, root.trace_id);
    end_span(root.span_id, std::string(to_string(st.code())));
    cb(st);
  };
}

SimDuration SednaClient::retry_backoff(int next_attempt) {
  if (config_.retry_backoff_initial_us == 0) return 0;
  SimDuration base = config_.retry_backoff_initial_us;
  for (int i = 1; i < next_attempt && base < config_.retry_backoff_max_us;
       ++i) {
    base *= 2;
  }
  base = std::min(base, config_.retry_backoff_max_us);
  const double spread =
      1.0 + config_.retry_backoff_jitter *
                (2.0 * sim().rng().next_double() - 1.0);
  auto wait = static_cast<SimDuration>(static_cast<double>(base) * spread);
  if (wait == 0) wait = 1;
  metrics_.histogram("client.retry_backoff_us").record(wait);
  return wait;
}

NodeId SednaClient::coordinator_for(const std::string& key,
                                    int attempt) const {
  const auto replicas = metadata_.table().replicas_for_key(key);
  if (replicas.empty()) return kInvalidNode;
  return replicas[static_cast<std::size_t>(attempt) % replicas.size()];
}

void SednaClient::do_write(WriteRequest req, int attempt, SimTime deadline,
                           WriteCallback cb) {
  do_write_full(std::move(req), attempt, deadline,
                [cb = std::move(cb)](const Result<WriteReply>& rep) {
                  cb(rep.ok() ? Status(rep->status) : rep.status());
                });
}

void SednaClient::do_write_full(
    WriteRequest req, int attempt, SimTime deadline,
    std::function<void(const Result<WriteReply>&)> cb) {
  const NodeId coordinator = coordinator_for(req.key, attempt);
  if (coordinator == kInvalidNode) {
    cb(Status::Unavailable("no replicas for key"));
    return;
  }
  // The whole-op deadline may have lapsed during a backoff sleep; give up
  // here rather than launch an attempt whose answer nobody wants.
  if (deadline != 0 && now() >= deadline) {
    metrics_.counter("client.write_failures").add(1);
    cb(Status::Timeout("op deadline exceeded"));
    return;
  }
  // Attempt span: one per coordinator tried. Siblings under the op root,
  // so a retried write reads as attempt#0 (timeout) then attempt#1 (ok).
  const SpanId span = begin_span(
      "client.write.attempt#" + std::to_string(attempt), TraceStage::kService);
  const TraceContext parent = enter_span(span);
  // Encode before the lambda capture moves `req` (argument evaluation
  // order is unspecified).
  std::string payload = req.encode();
  call_with_timeout(
      coordinator, kMsgClientWrite, std::move(payload),
      attempt_timeout(deadline),
      [this, req = std::move(req), attempt, deadline, span, parent,
       cb = std::move(cb)](const Status& st,
                           const std::string& body) mutable {
         Result<WriteReply> final =
             Status::Failure("write attempts exhausted");
         if (st.ok()) {
           auto rep = WriteReply::decode(body);
           // kUnavailable (node not ready), kFailure (quorum broken —
           // often stale routing at the coordinator while recovery is in
           // flight) and kOverloaded (explicit shed) are retryable: the
           // timestamp is pinned at the first attempt, so a replayed
           // write is idempotent under LWW (and a causal replay re-sends
           // the same context — the coordinator mints a fresh dot, but
           // the earlier attempt's ack never reached the client, so the
           // extra sibling is pruned by the client's next contextual put).
           if (rep.ok() && rep->status != StatusCode::kUnavailable &&
               rep->status != StatusCode::kFailure &&
               rep->status != StatusCode::kOverloaded) {
             metrics_.counter("client.writes").add(1);
             refill_retry_budget();
             end_span(span, std::string(to_string(rep->status)));
             cb(std::move(rep));
             return;
           }
           if (rep.ok()) final = Status(rep->status);
         }
         if (attempt + 1 >= config_.max_attempts) {
           metrics_.counter("client.write_failures").add(1);
           end_span(span, "failure");
           cb(final);
           return;
         }
         if (!spend_retry_token()) {
           metrics_.counter("client.write_failures").add(1);
           end_span(span, "overloaded");
           cb(Status::Overloaded("retry budget exhausted"));
           return;
         }
         // Refresh routing state, wait out the jittered backoff, then
         // retry via the next replica.
         metrics_.counter("client.write_retries").add(1);
         end_span(span, st.ok() ? "retry" : "timeout");
         const SimDuration backoff = retry_backoff(attempt + 1);
         // The metadata re-sync + backoff sleep before the next attempt
         // is real client-visible latency — span it as retry time.
         const SpanId wait = tracer().begin(parent, "client.retry_wait", id(),
                                            now(), TraceStage::kRetry);
         metadata_.sync_now([this, req = std::move(req), attempt, deadline,
                             parent, backoff, wait,
                             cb = std::move(cb)]() mutable {
           sim().schedule(backoff, [this, req = std::move(req), attempt,
                                    deadline, parent, wait,
                                    cb = std::move(cb)]() mutable {
             tracer().end(wait, now());
             set_trace_context(parent);
             do_write_full(std::move(req), attempt + 1, deadline,
                           std::move(cb));
           });
         });
       },
      deadline);
  set_trace_context(parent);
}

void SednaClient::do_read(ReadRequest req, int attempt, SimTime deadline,
                          std::function<void(const Result<ReadReply>&)> cb) {
  const NodeId coordinator = coordinator_for(req.key, attempt);
  if (coordinator == kInvalidNode) {
    cb(Status::Unavailable("no replicas for key"));
    return;
  }
  if (deadline != 0 && now() >= deadline) {
    metrics_.counter("client.read_failures").add(1);
    cb(Status::Timeout("op deadline exceeded"));
    return;
  }
  const SpanId span = begin_span(
      "client.read.attempt#" + std::to_string(attempt), TraceStage::kService);
  const TraceContext parent = enter_span(span);
  std::string payload = req.encode();
  call_with_timeout(
      coordinator, kMsgClientRead, std::move(payload),
      attempt_timeout(deadline),
      [this, req = std::move(req), attempt, deadline, span, parent,
       cb = std::move(cb)](const Status& st,
                           const std::string& body) mutable {
         Status final = Status::Failure("read attempts exhausted");
         if (st.ok()) {
           auto rep = ReadReply::decode(body);
           if (rep.ok() && rep->status != StatusCode::kUnavailable &&
               rep->status != StatusCode::kFailure &&
               rep->status != StatusCode::kOverloaded) {
             metrics_.counter("client.reads").add(1);
             if (rep->stale) {
               metrics_.counter("client.stale_reads").add(1);
               // The coordinator's staleness bound rides the reply when
               // auditing is on; a stale read *without* one is exactly the
               // unlabeled-staleness hole the auditor exists to close, so
               // count the two cases apart.
               if (rep->staleness_us > 0) {
                 metrics_.histogram("client.staleness_bound_us")
                     .record(rep->staleness_us);
               } else {
                 metrics_.counter("client.stale_unbounded").add(1);
               }
             }
             refill_retry_budget();
             end_span(span, std::string(to_string(rep->status)));
             cb(std::move(rep));
             return;
           }
           if (rep.ok()) final = Status(rep->status);
         }
         if (attempt + 1 >= config_.max_attempts) {
           metrics_.counter("client.read_failures").add(1);
           end_span(span, "failure");
           cb(final);
           return;
         }
         if (!spend_retry_token()) {
           metrics_.counter("client.read_failures").add(1);
           end_span(span, "overloaded");
           cb(Status::Overloaded("retry budget exhausted"));
           return;
         }
         metrics_.counter("client.read_retries").add(1);
         end_span(span, st.ok() ? "retry" : "timeout");
         const SimDuration backoff = retry_backoff(attempt + 1);
         const SpanId wait = tracer().begin(parent, "client.retry_wait", id(),
                                            now(), TraceStage::kRetry);
         metadata_.sync_now([this, req = std::move(req), attempt, deadline,
                             parent, backoff, wait,
                             cb = std::move(cb)]() mutable {
           sim().schedule(backoff, [this, req = std::move(req), attempt,
                                    deadline, parent, wait,
                                    cb = std::move(cb)]() mutable {
             tracer().end(wait, now());
             set_trace_context(parent);
             do_read(std::move(req), attempt + 1, deadline, std::move(cb));
           });
         });
       },
      deadline);
  set_trace_context(parent);
}

void SednaClient::put_causal(const std::string& key, const std::string& value,
                             const store::VersionVector& ctx,
                             PutCausalCallback cb) {
  WriteRequest req;
  req.mode = WriteMode::kLatest;
  req.key = key;
  req.value = value;
  req.ts = next_ts();
  req.source = id();
  req.causal_tag = WriteRequest::kCausalCtx;
  req.ctx = ctx;
  const TraceContext root =
      begin_trace("client.put_causal", TraceStage::kService);
  const SimTime started = now();
  do_write_full(
      std::move(req), 0, op_deadline(),
      [this, root, started, cb = std::move(cb)](const Result<WriteReply>& rep) {
        metrics_.histogram("client.write_latency_us")
            .record(now() - started, root.trace_id);
        const StatusCode code = rep.ok() ? rep->status : rep.status().code();
        end_span(root.span_id, std::string(to_string(code)));
        if (!rep.ok()) {
          cb(rep.status(), {});
          return;
        }
        cb(Status(rep->status),
           rep->has_ctx ? rep->ctx : store::VersionVector{});
      });
}

void SednaClient::get_causal(const std::string& key, GetCausalCallback cb) {
  ReadRequest req;
  req.mode = ReadMode::kLatest;
  req.key = key;
  req.causal = true;
  const TraceContext root =
      begin_trace("client.get_causal", TraceStage::kService);
  const SimTime started = now();
  do_read(std::move(req), 0, op_deadline(),
          [this, root, started,
           cb = std::move(cb)](const Result<ReadReply>& rep) {
            metrics_.histogram("client.read_latency_us")
                .record(now() - started, root.trace_id);
            end_span(root.span_id,
                     std::string(to_string(rep.ok() ? rep->status
                                                    : rep.status().code())));
            if (!rep.ok()) {
              cb(rep.status());
              return;
            }
            if (rep->status != StatusCode::kOk || !rep->has_causal) {
              cb(Status(rep->status == StatusCode::kOk
                            ? StatusCode::kNotFound
                            : rep->status));
              return;
            }
            CausalRead out;
            out.siblings = rep->causal.siblings;
            out.ctx = rep->causal.clock;
            out.stale = rep->stale;
            if (out.siblings.size() > 1) {
              metrics_.counter("client.sibling_reads").add(1);
            }
            cb(out);
          });
}

store::Sibling SednaClient::resolve(const CausalRead& read) {
  if (read.siblings.empty()) return {};
  if (read.siblings.size() > 1) {
    metrics_.counter("client.conflicts_resolved").add(1);
    if (resolver_) {
      const std::size_t idx = resolver_(read.siblings);
      return read.siblings[idx % read.siblings.size()];
    }
  }
  // Default LWW resolver: the record's deterministic winner.
  store::CausalRecord rec;
  rec.siblings = read.siblings;
  const store::Sibling* w = rec.winner();
  return w != nullptr ? *w : store::Sibling{};
}

void SednaClient::write_latest(const std::string& key,
                               const std::string& value, WriteCallback cb) {
  WriteRequest req;
  req.mode = WriteMode::kLatest;
  req.key = key;
  req.value = value;
  req.ts = next_ts();
  req.source = id();
  do_write(std::move(req), 0, op_deadline(),
           traced_write("client.write_latest", std::move(cb)));
}

void SednaClient::write_latest_ttl(const std::string& key,
                                   const std::string& value,
                                   std::uint64_t ttl_us, WriteCallback cb) {
  WriteRequest req;
  req.mode = WriteMode::kLatest;
  req.key = key;
  req.value = value;
  req.ts = next_ts();
  req.source = id();
  req.ttl = ttl_us;
  do_write(std::move(req), 0, op_deadline(),
           traced_write("client.write_latest_ttl", std::move(cb)));
}

void SednaClient::scan(const std::string& prefix, ScanCallback cb,
                       std::uint32_t per_node_limit) {
  const auto nodes = metadata_.table().nodes();
  if (nodes.empty()) {
    cb(Status::Unavailable("no data nodes"));
    return;
  }
  ScanRequest req;
  req.prefix = prefix;
  req.limit = per_node_limit;
  const std::string payload = req.encode();

  auto result = std::make_shared<ScanResult>();
  auto remaining = std::make_shared<std::size_t>(nodes.size());
  auto failures = std::make_shared<std::size_t>(0);
  auto shared_cb = std::make_shared<ScanCallback>(std::move(cb));
  for (NodeId node : nodes) {
    call(node, kMsgScan, payload,
         [result, remaining, failures, shared_cb, total = nodes.size()](
             const Status& st, const std::string& body) {
           if (st.ok()) {
             auto rep = ScanReply::decode(body);
             if (rep.ok() && rep->status == StatusCode::kOk) {
               result->keys.insert(result->keys.end(), rep->keys.begin(),
                                   rep->keys.end());
               result->truncated |= rep->truncated;
             } else {
               ++*failures;
             }
           } else {
             ++*failures;
           }
           if (--*remaining != 0) return;
           if (*failures == total) {
             (*shared_cb)(Status::Unavailable("scan reached no node"));
             return;
           }
           std::sort(result->keys.begin(), result->keys.end());
           (*shared_cb)(*result);
         });
  }
}

void SednaClient::write_all(const std::string& key, const std::string& value,
                            WriteCallback cb) {
  WriteRequest req;
  req.mode = WriteMode::kAll;
  req.key = key;
  req.value = value;
  req.ts = next_ts();
  req.source = id();
  do_write(std::move(req), 0, op_deadline(),
           traced_write("client.write_all", std::move(cb)));
}

void SednaClient::write_latest_batch(
    const std::vector<std::pair<std::string, std::string>>& entries,
    BatchWriteCallback cb) {
  if (entries.empty()) {
    cb({});
    return;
  }
  auto results = std::make_shared<std::vector<Status>>(entries.size());
  auto remaining = std::make_shared<std::size_t>(entries.size());
  auto shared_cb = std::make_shared<BatchWriteCallback>(std::move(cb));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    write_latest(entries[i].first, entries[i].second,
                 [results, remaining, shared_cb, i](const Status& st) {
                   (*results)[i] = st;
                   if (--*remaining == 0) (*shared_cb)(*results);
                 });
  }
}

void SednaClient::read_latest_batch(const std::vector<std::string>& keys,
                                    BatchReadCallback cb) {
  if (keys.empty()) {
    cb({});
    return;
  }
  auto results =
      std::make_shared<std::vector<Result<store::VersionedValue>>>();
  results->resize(keys.size(), Status::Unavailable("pending"));
  auto remaining = std::make_shared<std::size_t>(keys.size());
  auto shared_cb = std::make_shared<BatchReadCallback>(std::move(cb));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    read_latest(keys[i],
                [results, remaining, shared_cb,
                 i](const Result<store::VersionedValue>& r) {
                  (*results)[i] = r;
                  if (--*remaining == 0) (*shared_cb)(*results);
                });
  }
}

void SednaClient::read_latest(const std::string& key, ReadLatestCallback cb) {
  ReadRequest req;
  req.mode = ReadMode::kLatest;
  req.key = key;
  const TraceContext root =
      begin_trace("client.read_latest", TraceStage::kService);
  const SimTime started = now();
  do_read(std::move(req), 0, op_deadline(),
          [this, root, started,
           cb = std::move(cb)](const Result<ReadReply>& rep) {
            metrics_.histogram("client.read_latency_us")
                .record(now() - started, root.trace_id);
            end_span(root.span_id,
                     std::string(to_string(rep.ok() ? rep->status
                                                    : rep.status().code())));
            if (!rep.ok()) {
              cb(rep.status());
              return;
            }
            if (rep->status != StatusCode::kOk || !rep->has_latest) {
              cb(Status(rep->status == StatusCode::kOk
                            ? StatusCode::kNotFound
                            : rep->status));
              return;
            }
            cb(rep->latest);
          });
}

void SednaClient::read_all(const std::string& key, ReadAllCallback cb) {
  ReadRequest req;
  req.mode = ReadMode::kAll;
  req.key = key;
  const TraceContext root =
      begin_trace("client.read_all", TraceStage::kService);
  const SimTime started = now();
  do_read(std::move(req), 0, op_deadline(),
          [this, root, started,
           cb = std::move(cb)](const Result<ReadReply>& rep) {
            metrics_.histogram("client.read_latency_us")
                .record(now() - started, root.trace_id);
            end_span(root.span_id,
                     std::string(to_string(rep.ok() ? rep->status
                                                    : rep.status().code())));
            if (!rep.ok()) {
              cb(rep.status());
              return;
            }
            if (rep->status != StatusCode::kOk &&
                rep->value_list.empty()) {
              cb(Status(rep->status));
              return;
            }
            cb(rep->value_list);
          });
}

}  // namespace sedna::cluster
