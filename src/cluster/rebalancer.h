// Traffic-aware online rebalancer (the "data balance" pluggable module of
// Fig. 2, driven by the Section III.B imbalance table instead of raw vnode
// counts).
//
// The planner half lives here: given the cluster-wide imbalance table
// (per-node rows with per-vnode read/write detail, as reported to
// ZooKeeper), the current ring, the live-node set and a health oracle, it
// plans a bounded batch of vnode migrations that strictly reduces the
// coefficient of variation of per-node traffic. The execution half — the
// multi-phase migration protocol (snapshot → delta catch-up → CAS cutover
// → old-owner drain) — lives in SednaNode.
//
// Safety/stability properties, each covered by tests/rebalance_test.cc:
//   * targets are restricted to *healthy* live nodes (never degraded,
//     suspect or dead ones);
//   * every move passes a strict-improvement guard — the target's
//     post-move traffic must stay below the source's pre-move traffic —
//     which provably shrinks the variance and rules out ping-pong;
//   * a per-vnode cooldown pins recently-moved slices (hysteresis against
//     thrashing on stale telemetry windows);
//   * per-round move caps bound transfer burstiness;
//   * a vnode that keeps dominating its node's traffic for several rounds
//     (no single move can help, because the slice itself is the hot spot)
//     flips the node into the isolate path: the *other* slices are shed
//     instead, converging to a dedicated node for the hot vnode. The ring
//     cannot split a vnode (the vnode count is fixed at cluster creation,
//     Section III.D), so isolation is the split that is actually
//     available online.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/health.h"
#include "common/types.h"
#include "ring/imbalance.h"
#include "ring/vnode_table.h"

namespace sedna::cluster {

struct TrafficRebalancerConfig {
  /// Act only while the CV of per-node traffic is at least this; below it
  /// the cluster counts as balanced and the planner is a no-op (the
  /// fixed point of the convergence property test).
  double cv_trigger = 0.25;
  /// A node is "hot" (migration source) while its traffic exceeds
  /// mean * hot_headroom.
  double hot_headroom = 1.15;
  /// Migrations planned per round (bounds transfer burstiness).
  std::uint32_t max_moves_per_round = 2;
  /// A migrated vnode is pinned this long before it may move again.
  SimDuration vnode_cooldown = sim_sec(30);
  /// Rounds a single vnode must dominate its (hot) node before the
  /// planner switches that node to the isolate path.
  std::uint32_t split_streak = 3;
  /// Fraction of its node's traffic a vnode must carry to count as
  /// dominating.
  double split_share = 0.5;
};

enum class MigrationReason : std::uint8_t {
  kOffload,  // spread a hot node's traffic
  kIsolate,  // dedicate a node to a persistently-hot single vnode
};

struct MigrationPlan {
  VnodeId vnode = kInvalidVnode;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MigrationReason reason = MigrationReason::kOffload;

  friend bool operator==(const MigrationPlan& a, const MigrationPlan& b) {
    return a.vnode == b.vnode && a.from == b.from && a.to == b.to &&
           a.reason == b.reason;
  }
};

class TrafficRebalancer {
 public:
  using HealthFn = std::function<HealthState(NodeId)>;

  explicit TrafficRebalancer(TrafficRebalancerConfig config = {})
      : config_(config) {}

  /// Plans one round of migrations. Deterministic: iteration orders are
  /// id-sorted and every tie-break is by lowest id. `health` gates
  /// migration *targets*; sources only need to be live.
  [[nodiscard]] std::vector<MigrationPlan> plan(
      const ring::ImbalanceTable& table, const ring::VnodeTable& ring,
      const std::vector<NodeId>& live, const HealthFn& health, SimTime now);

  /// Drops all hysteresis state (cooldowns, domination streaks).
  void reset() {
    cooldown_until_.clear();
    hot_streak_.clear();
    last_cv_ = 0.0;
  }

  /// CV of per-node traffic seen by the most recent plan() call.
  [[nodiscard]] double last_cv() const { return last_cv_; }

  [[nodiscard]] const TrafficRebalancerConfig& config() const {
    return config_;
  }

 private:
  TrafficRebalancerConfig config_;
  std::map<VnodeId, SimTime> cooldown_until_;
  std::map<VnodeId, std::uint32_t> hot_streak_;
  double last_cv_ = 0.0;
};

}  // namespace sedna::cluster
