// Sedna data-path wire protocol (message-type range 200–299).
//
// Clients route requests directly to the primary replica of a key's vnode
// (zero-hop DHT, Section VII); that node coordinates the N-replica quorum
// (Section III.C). Recovery traffic (vnode takeover + item transfer) uses
// the same link layer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "sim/message.h"
#include "store/dvv.h"
#include "store/item.h"

// Causal (DVV) wire extensions ride in *trailing optional sections*: they
// are encoded only when actually carrying causal state, and decoders read
// them only when bytes remain after the legacy layout. Messages on the
// default LWW path therefore keep their exact pre-causal byte size, which
// matters because the simulated network charges delivery delay by payload
// size — an unconditional field would shift every seeded benchmark.

namespace sedna::cluster {

constexpr sim::MessageType kMsgClientWrite = 200;
constexpr sim::MessageType kMsgClientRead = 201;
constexpr sim::MessageType kMsgReplicaWrite = 210;
constexpr sim::MessageType kMsgReplicaRead = 211;
constexpr sim::MessageType kMsgFetchVnode = 220;   // new owner → survivor
constexpr sim::MessageType kMsgTakeoverVnode = 221;  // coordinator → new owner
constexpr sim::MessageType kMsgPurgeVnode = 222;   // new owner → old owner
constexpr sim::MessageType kMsgScan = 230;         // client → every node
constexpr sim::MessageType kMsgHintDeliver = 240;  // coordinator → healed replica
constexpr sim::MessageType kMsgVnodeDigest = 241;  // anti-entropy digest exchange
constexpr sim::MessageType kMsgMigrateVnode = 250;  // rebalance leader → destination

enum class WriteMode : std::uint8_t { kLatest = 0, kAll = 1 };
enum class ReadMode : std::uint8_t { kLatest = 0, kAll = 1 };

struct WriteRequest {
  WriteMode mode = WriteMode::kLatest;
  std::string key;
  std::string value;
  Timestamp ts = 0;
  std::uint32_t flags = 0;
  /// Source server tag for write_all value lists (Section III.F).
  NodeId source = kInvalidNode;
  /// Relative expiry in simulated microseconds; 0 = never. Applied by
  /// each replica against its own clock at apply time.
  std::uint64_t ttl = 0;

  /// Trailing causal section selector.
  enum : std::uint8_t {
    kCausalNone = 0,
    /// Client put: `ctx` carries the version vector of the client's last
    /// read of the key (its write context). The coordinator prunes the
    /// siblings the client had seen and mints a fresh dot.
    kCausalCtx = 1,
    /// Replica push (fan-out, hint replay, read repair, anti-entropy):
    /// `record` is the coordinator's full post-update record; receivers
    /// join it into their own.
    kCausalRecord = 2,
  };
  std::uint8_t causal_tag = kCausalNone;
  store::VersionVector ctx;
  store::CausalRecord record;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(key.size() + value.size() + 40);
    w.put_u8(static_cast<std::uint8_t>(mode));
    w.put_string(key);
    w.put_string(value);
    w.put_u64(ts);
    w.put_u32(flags);
    w.put_u32(source);
    w.put_u64(ttl);
    if (causal_tag != kCausalNone) {
      w.put_u8(causal_tag);
      if (causal_tag == kCausalCtx) ctx.encode(w);
      if (causal_tag == kCausalRecord) record.encode(w);
    }
    return std::move(w).take();
  }

  static Result<WriteRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    WriteRequest req;
    req.mode = static_cast<WriteMode>(r.get_u8());
    req.key = r.get_string();
    req.value = r.get_string();
    req.ts = r.get_u64();
    req.flags = r.get_u32();
    req.source = r.get_u32();
    req.ttl = r.get_u64();
    if (!r.failed() && !r.exhausted()) {
      req.causal_tag = r.get_u8();
      if (req.causal_tag == kCausalCtx) {
        req.ctx = store::VersionVector::decode(r);
      } else if (req.causal_tag == kCausalRecord) {
        req.record = store::CausalRecord::decode(r);
      } else {
        r.mark_failed();
      }
    }
    if (r.failed()) return Status::Corruption("bad write request");
    return req;
  }
};

struct WriteReply {
  /// kOk | kOutdated | kFailure (the three client-visible outcomes of
  /// Section III.F) — plus kQuorumFailed for diagnostics.
  StatusCode status = StatusCode::kOk;
  /// Trailing causal section: the post-write clock, returned for a
  /// kCausalCtx put so the client can thread it into its next context.
  bool has_ctx = false;
  store::VersionVector ctx;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(1);
    w.put_u8(static_cast<std::uint8_t>(status));
    if (has_ctx) ctx.encode(w);
    return std::move(w).take();
  }

  static Result<WriteReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    WriteReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    if (!r.failed() && !r.exhausted()) {
      rep.ctx = store::VersionVector::decode(r);
      rep.has_ctx = !r.failed();
    }
    if (r.failed()) return Status::Corruption("bad write reply");
    return rep;
  }
};

struct ReadRequest {
  ReadMode mode = ReadMode::kLatest;
  std::string key;
  /// Trailing causal flag: ask for the full causal record (clock +
  /// siblings) instead of the LWW projection.
  bool causal = false;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(key.size() + 8);
    w.put_u8(static_cast<std::uint8_t>(mode));
    w.put_string(key);
    if (causal) w.put_bool(true);
    return std::move(w).take();
  }

  static Result<ReadRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ReadRequest req;
    req.mode = static_cast<ReadMode>(r.get_u8());
    req.key = r.get_string();
    if (!r.failed() && !r.exhausted()) req.causal = r.get_bool();
    if (r.failed()) return Status::Corruption("bad read request");
    return req;
  }
};

struct ReadReply {
  StatusCode status = StatusCode::kOk;
  bool has_latest = false;
  store::VersionedValue latest;
  std::vector<store::SourceValue> value_list;
  /// Degraded-mode marker: the coordinator could not assemble a full read
  /// quorum (overload shedding or partition) and served this value from
  /// fewer than R agreeing replicas. The value is the freshest available
  /// but may miss a concurrent acked write (see PAPERS.md 2008.11900 on
  /// the availability/staleness trade).
  bool stale = false;
  /// Trailing causal section: the replica's full causal record, present
  /// only on replies to causal reads.
  bool has_causal = false;
  store::CausalRecord causal;
  /// Trailing audit section (consistency auditor): on stale-tagged
  /// serves, the measured staleness bound in µs — "stale by at most
  /// this much", not just "stale". 0 = not measured (auditing off).
  std::uint64_t staleness_us = 0;

  // Trailing sections share one tag byte so they compose: bit 0 =
  // causal record follows, bit 1 = staleness bound precedes it. The tag
  // (and everything after) is emitted only when a section carries
  // state, so plain LWW replies — and *every* reply with auditing off —
  // stay byte-identical with the legacy layout (the PR 7 rule: payload
  // size feeds the network delay model, so an unconditional byte would
  // shift every seeded run).
  static constexpr std::uint8_t kTrailCausal = 1;
  static constexpr std::uint8_t kTrailAudit = 2;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(latest.value.size() + 32);
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_bool(has_latest);
    w.put_string(latest.value);
    w.put_u64(latest.ts);
    w.put_u32(latest.flags);
    w.put_vector(value_list,
                 [](BinaryWriter& out, const store::SourceValue& sv) {
                   out.put_u32(sv.source);
                   out.put_string(sv.value);
                   out.put_u64(sv.ts);
                 });
    w.put_bool(stale);
    const std::uint8_t trail =
        static_cast<std::uint8_t>((has_causal ? kTrailCausal : 0) |
                                  (staleness_us != 0 ? kTrailAudit : 0));
    if (trail != 0) {
      w.put_u8(trail);
      if ((trail & kTrailAudit) != 0) w.put_u64(staleness_us);
      if ((trail & kTrailCausal) != 0) causal.encode(w);
    }
    return std::move(w).take();
  }

  static Result<ReadReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ReadReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.has_latest = r.get_bool();
    rep.latest.value = r.get_string();
    rep.latest.ts = r.get_u64();
    rep.latest.flags = r.get_u32();
    rep.value_list = r.get_vector<store::SourceValue>(
        [](BinaryReader& in) {
          store::SourceValue sv;
          sv.source = in.get_u32();
          sv.value = in.get_string();
          sv.ts = in.get_u64();
          return sv;
        });
    rep.stale = r.get_bool();
    if (!r.failed() && !r.exhausted()) {
      const std::uint8_t trail = r.get_u8();
      if (trail == 0 ||
          (trail & ~(kTrailCausal | kTrailAudit)) != 0) {
        return Status::Corruption("bad read reply trailer");
      }
      if ((trail & kTrailAudit) != 0) rep.staleness_us = r.get_u64();
      if ((trail & kTrailCausal) != 0) {
        rep.causal = store::CausalRecord::decode(r);
        rep.has_causal = !r.failed();
      }
    }
    if (r.failed()) return Status::Corruption("bad read reply");
    return rep;
  }
};

/// One transferable item (vnode recovery / join data movement).
struct TransferItem {
  std::string key;
  bool has_latest = false;
  store::VersionedValue latest;
  std::vector<store::SourceValue> value_list;
  /// Causal record; empty for LWW items. Carried in FetchVnodeReply's
  /// trailing parallel section (the per-item layout is not individually
  /// framed, so it cannot grow in place without breaking old readers).
  store::CausalRecord causal;
};

struct FetchVnodeRequest {
  VnodeId vnode = kInvalidVnode;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(4);
    w.put_u32(vnode);
    return std::move(w).take();
  }
  static Result<FetchVnodeRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    FetchVnodeRequest req;
    req.vnode = r.get_u32();
    if (r.failed()) return Status::Corruption("bad fetch request");
    return req;
  }
};

struct FetchVnodeReply {
  StatusCode status = StatusCode::kOk;
  std::vector<TransferItem> items;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w;
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_vector(items, [](BinaryWriter& out, const TransferItem& item) {
      out.put_string(item.key);
      out.put_bool(item.has_latest);
      out.put_string(item.latest.value);
      out.put_u64(item.latest.ts);
      out.put_u32(item.latest.flags);
      out.put_vector(item.value_list,
                     [](BinaryWriter& o2, const store::SourceValue& sv) {
                       o2.put_u32(sv.source);
                       o2.put_string(sv.value);
                       o2.put_u64(sv.ts);
                     });
    });
    // Trailing parallel causal section: (item index, record) pairs for
    // the items that have causal state; omitted entirely when none do.
    std::uint32_t causal_count = 0;
    for (const auto& item : items) {
      if (!item.causal.empty()) ++causal_count;
    }
    if (causal_count > 0) {
      w.put_u32(causal_count);
      for (std::uint32_t i = 0; i < items.size(); ++i) {
        if (items[i].causal.empty()) continue;
        w.put_u32(i);
        items[i].causal.encode(w);
      }
    }
    return std::move(w).take();
  }

  static Result<FetchVnodeReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    FetchVnodeReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.items = r.get_vector<TransferItem>([](BinaryReader& in) {
      TransferItem item;
      item.key = in.get_string();
      item.has_latest = in.get_bool();
      item.latest.value = in.get_string();
      item.latest.ts = in.get_u64();
      item.latest.flags = in.get_u32();
      item.value_list = in.get_vector<store::SourceValue>(
          [](BinaryReader& in2) {
            store::SourceValue sv;
            sv.source = in2.get_u32();
            sv.value = in2.get_string();
            sv.ts = in2.get_u64();
            return sv;
          });
      return item;
    });
    if (!r.failed() && !r.exhausted()) {
      const std::uint32_t n = r.get_u32();
      for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
        const std::uint32_t idx = r.get_u32();
        store::CausalRecord rec = store::CausalRecord::decode(r);
        if (idx < rep.items.size()) {
          rep.items[idx].causal = std::move(rec);
        } else {
          r.mark_failed();
        }
      }
    }
    if (r.failed()) return Status::Corruption("bad fetch reply");
    return rep;
  }
};

/// Prefix scan of one node's *primary* keys (keys whose vnode the node
/// owns), capped at `limit`. Clients scatter this to every node and merge
/// (an extension beyond the paper, which has no enumeration API).
struct ScanRequest {
  std::string prefix;
  std::uint32_t limit = 1000;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(prefix.size() + 8);
    w.put_string(prefix);
    w.put_u32(limit);
    return std::move(w).take();
  }

  static Result<ScanRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ScanRequest req;
    req.prefix = r.get_string();
    req.limit = r.get_u32();
    if (r.failed()) return Status::Corruption("bad scan request");
    return req;
  }
};

struct ScanReply {
  StatusCode status = StatusCode::kOk;
  std::vector<std::string> keys;
  bool truncated = false;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w;
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_vector(keys, [](BinaryWriter& out, const std::string& k) {
      out.put_string(k);
    });
    w.put_bool(truncated);
    return std::move(w).take();
  }

  static Result<ScanReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ScanReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.keys = r.get_vector<std::string>(
        [](BinaryReader& in) { return in.get_string(); });
    rep.truncated = r.get_bool();
    if (r.failed()) return Status::Corruption("bad scan reply");
    return rep;
  }
};

/// Asks a previous owner to drop its now-redundant copy of a vnode's
/// data. Carries the new owner so the receiver can update its cached
/// table before deciding whether it still belongs to the replica set.
struct PurgeVnodeRequest {
  VnodeId vnode = kInvalidVnode;
  NodeId new_owner = kInvalidNode;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(8);
    w.put_u32(vnode);
    w.put_u32(new_owner);
    return std::move(w).take();
  }

  static Result<PurgeVnodeRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    PurgeVnodeRequest req;
    req.vnode = r.get_u32();
    req.new_owner = r.get_u32();
    if (r.failed()) return Status::Corruption("bad purge request");
    return req;
  }
};

struct TakeoverRequest {
  VnodeId vnode = kInvalidVnode;
  /// Healthy replicas to pull the data from, in preference order.
  std::vector<NodeId> sources;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(16);
    w.put_u32(vnode);
    w.put_u32(static_cast<std::uint32_t>(sources.size()));
    for (NodeId n : sources) w.put_u32(n);
    return std::move(w).take();
  }

  static Result<TakeoverRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    TakeoverRequest req;
    req.vnode = r.get_u32();
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      req.sources.push_back(r.get_u32());
    }
    if (r.failed()) return Status::Corruption("bad takeover request");
    return req;
  }
};

/// Hinted handoff: a coordinator replays a write that a replica missed
/// while it was down (Section III.C's quorum leaves W..N-1 replicas
/// eligible for hints). The payload is the original replica write — same
/// pinned timestamp, so replay is idempotent under LWW.
struct HintDeliverRequest {
  WriteRequest write;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w;
    w.put_string(write.encode());
    return std::move(w).take();
  }

  static Result<HintDeliverRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    const std::string inner = r.get_string();
    if (r.failed()) return Status::Corruption("bad hint request");
    auto w = WriteRequest::decode(inner);
    if (!w.ok()) return w.status();
    HintDeliverRequest req;
    req.write = std::move(w.value());
    return req;
  }
};

struct HintAckReply {
  /// kOk: applied. kOutdated: replica already has newer data (hint can be
  /// dropped). Anything else: keep the hint and retry later.
  StatusCode status = StatusCode::kOk;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(1);
    w.put_u8(static_cast<std::uint8_t>(status));
    return std::move(w).take();
  }

  static Result<HintAckReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    HintAckReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    if (r.failed()) return Status::Corruption("bad hint ack");
    return rep;
  }
};

/// Merkle anti-entropy: the initiator sends its per-bucket digests for one
/// vnode; the peer answers with the mismatched bucket ids and a key-level
/// summary of its own content in those buckets so the initiator can
/// compute the exact divergent set.
struct VnodeDigestRequest {
  VnodeId vnode = kInvalidVnode;
  std::uint64_t root = 0;
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(16 + buckets.size() * 8);
    w.put_u32(vnode);
    w.put_u64(root);
    w.put_u32(static_cast<std::uint32_t>(buckets.size()));
    for (std::uint64_t b : buckets) w.put_u64(b);
    return std::move(w).take();
  }

  static Result<VnodeDigestRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    VnodeDigestRequest req;
    req.vnode = r.get_u32();
    req.root = r.get_u64();
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      req.buckets.push_back(r.get_u64());
    }
    if (r.failed()) return Status::Corruption("bad digest request");
    return req;
  }
};

/// Key-level summary of one item in a mismatched bucket: enough for the
/// initiator to decide push (local newer), pull (peer newer), or
/// value-list reconcile (list digests differ).
struct KeySummary {
  std::string key;
  bool has_latest = false;
  Timestamp latest_ts = 0;
  std::uint64_t list_digest = 0;
  /// Digest of the peer's causal record (0 = no causal state). Ordering
  /// on timestamps cannot reconcile causal keys — equal digests mean
  /// converged, different digests mean "exchange records and join".
  /// Carried in VnodeDigestReply's trailing parallel section.
  std::uint64_t causal_digest = 0;
};

struct VnodeDigestReply {
  StatusCode status = StatusCode::kOk;
  /// True when the peer's root digest matches the request's (no walk).
  bool match = false;
  /// Bucket indices whose digests differ.
  std::vector<std::uint32_t> mismatched;
  /// Peer's key summaries for the mismatched buckets (capped; see
  /// `truncated`).
  std::vector<KeySummary> keys;
  bool truncated = false;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w;
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_bool(match);
    w.put_u32(static_cast<std::uint32_t>(mismatched.size()));
    for (std::uint32_t b : mismatched) w.put_u32(b);
    w.put_vector(keys, [](BinaryWriter& out, const KeySummary& k) {
      out.put_string(k.key);
      out.put_bool(k.has_latest);
      out.put_u64(k.latest_ts);
      out.put_u64(k.list_digest);
    });
    w.put_bool(truncated);
    // Trailing parallel causal-digest section (same pattern as
    // FetchVnodeReply): only keys with causal state appear.
    std::uint32_t causal_count = 0;
    for (const auto& k : keys) {
      if (k.causal_digest != 0) ++causal_count;
    }
    if (causal_count > 0) {
      w.put_u32(causal_count);
      for (std::uint32_t i = 0; i < keys.size(); ++i) {
        if (keys[i].causal_digest == 0) continue;
        w.put_u32(i);
        w.put_u64(keys[i].causal_digest);
      }
    }
    return std::move(w).take();
  }

  static Result<VnodeDigestReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    VnodeDigestReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.match = r.get_bool();
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      rep.mismatched.push_back(r.get_u32());
    }
    rep.keys = r.get_vector<KeySummary>([](BinaryReader& in) {
      KeySummary k;
      k.key = in.get_string();
      k.has_latest = in.get_bool();
      k.latest_ts = in.get_u64();
      k.list_digest = in.get_u64();
      return k;
    });
    rep.truncated = r.get_bool();
    if (!r.failed() && !r.exhausted()) {
      const std::uint32_t cn = r.get_u32();
      for (std::uint32_t i = 0; i < cn && !r.failed(); ++i) {
        const std::uint32_t idx = r.get_u32();
        const std::uint64_t digest = r.get_u64();
        if (idx < rep.keys.size()) {
          rep.keys[idx].causal_digest = digest;
        } else {
          r.mark_failed();
        }
      }
    }
    if (r.failed()) return Status::Corruption("bad digest reply");
    return rep;
  }
};

/// Traffic-aware rebalancing: the rebalance leader asks a destination
/// node to *pull* one vnode through the multi-phase migration protocol
/// (snapshot transfer → Merkle delta catch-up → versioned ZK cutover →
/// old-owner drain). The destination drives every phase, so a leader
/// crash mid-migration at worst orphans an in-flight pull.
struct MigrateVnodeRequest {
  VnodeId vnode = kInvalidVnode;
  /// Current owner, per the leader's plan; the destination re-verifies
  /// against ZooKeeper at cutover time (versioned CAS).
  NodeId from = kInvalidNode;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(8);
    w.put_u32(vnode);
    w.put_u32(from);
    return std::move(w).take();
  }

  static Result<MigrateVnodeRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    MigrateVnodeRequest req;
    req.vnode = r.get_u32();
    req.from = r.get_u32();
    if (r.failed()) return Status::Corruption("bad migrate request");
    return req;
  }
};

struct MigrateVnodeReply {
  /// kOk: cutover committed. kRefused: plan went stale (owner changed
  /// under us) — safe no-op. Anything else: the migration failed before
  /// cutover; ownership is unchanged.
  StatusCode status = StatusCode::kOk;
  std::uint64_t items = 0;
  std::uint64_t bytes = 0;
  /// Cutover (CAS + journal) latency in simulated microseconds.
  std::uint64_t cutover_us = 0;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(25);
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_u64(items);
    w.put_u64(bytes);
    w.put_u64(cutover_us);
    return std::move(w).take();
  }

  static Result<MigrateVnodeReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    MigrateVnodeReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.items = r.get_u64();
    rep.bytes = r.get_u64();
    rep.cutover_us = r.get_u64();
    if (r.failed()) return Status::Corruption("bad migrate reply");
    return rep;
  }
};

// ZooKeeper path layout shared by nodes and clients.
inline constexpr const char* kZkRoot = "/sedna";
inline constexpr const char* kZkConfig = "/sedna/config";
inline constexpr const char* kZkRealNodes = "/sedna/real_nodes";
inline constexpr const char* kZkVnodes = "/sedna/vnodes";
inline constexpr const char* kZkChanges = "/sedna/changes";

[[nodiscard]] inline std::string vnode_znode(VnodeId v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s/v%06u", kZkVnodes, v);
  return buf;
}
[[nodiscard]] inline std::string real_node_znode(NodeId n) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s/node-%u", kZkRealNodes, n);
  return buf;
}

}  // namespace sedna::cluster
