#include "cluster/sedna_node.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>

#include "common/logging.h"
#include "ring/rebalancer.h"

namespace sedna::cluster {

namespace {

/// How long a positive ZooKeeper liveness check suppresses re-checking.
constexpr SimDuration kAliveVerifyTtl = sim_ms(500);

}  // namespace

SednaNode::SednaNode(sim::Network& net, NodeId id, SednaNodeConfig config)
    : sim::Host(net, id, config.host),
      config_(std::move(config)),
      zk_(*this,
          [this] {
            auto zc = config_.zk_client;
            zc.ensemble = config_.zk_ensemble;
            return zc;
          }()),
      metadata_(zk_, *this),
      hot_keys_(config_.hot_key_capacity),
      traffic_rebalancer_(config_.traffic_rebalance) {
  store_ = std::make_unique<store::LocalStore>(
      config_.store, [this] { return sim().now(); });
  if (config_.persistence.mode != wal::PersistMode::kNone) {
    persistence_ = std::make_unique<wal::PersistenceManager>(
        config_.persistence, *store_);
  }
  if (config_.audit.enabled) {
    auditor_ = std::make_unique<ConsistencyAuditor>(config_.audit, metrics_);
  }
}

SednaNode::~SednaNode() = default;

Timestamp SednaNode::next_ts() {
  // Writer-unique tie-break: node id in the high byte, a rolling sequence
  // in the low byte, under the microsecond clock.
  const auto seq = static_cast<std::uint16_t>(
      ((id() & 0xff) << 8) | (write_seq_++ & 0xff));
  return make_timestamp(now(), seq);
}

void SednaNode::start(ReadyCallback on_ready) {
  if (persistence_ != nullptr) {
    Status st = persistence_->start();
    if (st.ok()) {
      auto recovered = persistence_->recover();
      if (recovered.ok() && recovered.value() > 0) {
        metrics_.counter("persistence.recovered_records")
            .add(recovered.value());
      }
    }
    schedule_flush();
  }
  zk_.connect([this, on_ready = std::move(on_ready)](const Status& st) {
    if (!st.ok()) {
      on_ready(st);
      return;
    }
    metadata_.start([this, on_ready](const Status& meta_st) {
      if (!meta_st.ok()) {
        on_ready(meta_st);
        return;
      }
      // Register liveness *after* the table is loaded so other nodes never
      // route to a node that cannot serve yet.
      zk_.create(real_node_znode(id()), {}, zk::CreateMode::kEphemeral,
                 [this, on_ready](const Result<std::string>& created) {
                   if (!created.ok() &&
                       !created.status().is(StatusCode::kAlreadyExists)) {
                     on_ready(created.status());
                     return;
                   }
                   ready_ = true;
                   // Merkle leaf cells sized to the ring; rebuilt from the
                   // (possibly persistence-recovered) store content.
                   store_->enable_digests(metadata_.table().total_vnodes(),
                                          config_.digest_buckets);
                   sim().schedule_periodic(config_.load_report_interval,
                                           [this] {
                                             set_trace_context({});
                                             report_load();
                                           });
                   if (config_.rebalance_interval > 0) {
                     sim().schedule_periodic(config_.rebalance_interval,
                                             [this] {
                                               set_trace_context({});
                                               rebalance_tick();
                                             });
                   }
                   if (config_.traffic_rebalance_interval > 0) {
                     traffic_rebalance_timer_.cancel();
                     traffic_rebalance_timer_ = sim().schedule_periodic(
                         config_.traffic_rebalance_interval, [this] {
                           set_trace_context({});
                           traffic_rebalance_tick();
                         });
                   }
                   // Repair daemons: cancel-then-reschedule so a restart
                   // does not stack duplicate timers.
                   if (config_.hint_max_queued > 0 &&
                       config_.hint_replay_interval > 0) {
                     hint_timer_.cancel();
                     hint_timer_ = sim().schedule_periodic(
                         config_.hint_replay_interval, [this] {
                           set_trace_context({});
                           hint_replay_tick();
                         });
                   }
                   if (config_.anti_entropy_interval > 0) {
                     ae_timer_.cancel();
                     ae_timer_ = sim().schedule_periodic(
                         config_.anti_entropy_interval, [this] {
                           set_trace_context({});
                           anti_entropy_tick();
                         });
                   }
                   if (config_.restart_hydration && needs_hydration_) {
                     // A crash emptied the RAM store: pull our vnode
                     // slices back from peer replicas before telling the
                     // operator we are ready — the rolling-restart
                     // contract is "ready means caught up".
                     hydrate_after_restart(
                         [on_ready] { on_ready(Status::Ok()); });
                     return;
                   }
                   on_ready(Status::Ok());
                 });
    });
  });
}

void SednaNode::start_and_join(ReadyCallback on_ready) {
  start([this, on_ready = std::move(on_ready)](const Status& st) {
    if (!st.ok()) {
      on_ready(st);
      return;
    }
    auto moves = ring::Rebalancer::plan_join(metadata_.table(), id());
    metrics_.counter("join.vnodes_planned").add(moves.size());
    claim_vnodes(std::move(moves), 0, 0, on_ready);
  });
}

void SednaNode::claim_vnodes(std::vector<ring::VnodeMove> moves,
                             std::size_t next, std::uint32_t in_flight,
                             ReadyCallback on_done) {
  // Window of `takeover_parallelism` concurrent claims — the paper's
  // parallel data-retrieving threads.
  if (next >= moves.size() && in_flight == 0) {
    on_done(Status::Ok());
    return;
  }
  auto shared_moves =
      std::make_shared<std::vector<ring::VnodeMove>>(std::move(moves));
  auto pending = std::make_shared<std::uint32_t>(in_flight);
  auto cursor = std::make_shared<std::size_t>(next);

  // Pump-style scheduler: keep `takeover_parallelism` claims in flight.
  // The lambda holds itself only weakly; the strong references live in the
  // in-flight claim callbacks, so the closure is freed once the last claim
  // completes (a self-capturing shared_ptr would never be released).
  auto pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_pump = pump;
  *pump = [this, shared_moves, pending, cursor, on_done, weak_pump]() {
    auto self = weak_pump.lock();
    if (!self) return;
    while (*cursor < shared_moves->size() &&
           *pending < config_.takeover_parallelism) {
      const auto move = (*shared_moves)[(*cursor)++];
      ++*pending;
      claim_one(move, [pending, self] {
        --*pending;
        (*self)();
      });
    }
    if (*cursor >= shared_moves->size() && *pending == 0) {
      on_done(Status::Ok());
    }
  };
  (*pump)();
}

void SednaNode::claim_one(const ring::VnodeMove& move,
                          std::function<void()> done) {
  // CAS the vnode znode from the current owner to us, journal the change,
  // then pull the data from the previous owner.
  zk_.get(vnode_znode(move.vnode),
          [this, move, done = std::move(done)](
              const Result<std::pair<std::string, zk::ZnodeStat>>& got) {
            if (!got.ok()) {
              done();
              return;
            }
            BinaryReader r(got->first);
            const NodeId current = r.get_u32();
            if (r.failed() || current != move.from) {
              done();  // table changed under us; skip this vnode
              return;
            }
            BinaryWriter w;
            w.put_u32(id());
            zk_.set(vnode_znode(move.vnode), std::move(w).take(),
                    got->second.version,
                    [this, move, done](const Result<zk::ZnodeStat>& set) {
                      if (!set.ok()) {
                        done();  // lost the race
                        return;
                      }
                      metadata_.apply_local(move.vnode, id());
                      metrics_.counter("join.vnodes_claimed").add(1);
                      append_change_journal(
                          move.vnode, id(), [this, move, done] {
                            fetch_vnode_from(
                                move.vnode, {move.from}, 0,
                                [this, move, done](bool fetched,
                                                   std::uint64_t) {
                                  if (fetched) {
                                    // The old owner may now drop its
                                    // redundant copy of the slice.
                                    PurgeVnodeRequest purge{move.vnode,
                                                            id()};
                                    send_oneway(move.from, kMsgPurgeVnode,
                                                purge.encode());
                                  }
                                  done();
                                });
                          });
                    });
          });
}

void SednaNode::schedule_flush() {
  if (persistence_ == nullptr ||
      config_.persistence.mode != wal::PersistMode::kPeriodicFlush) {
    return;
  }
  sim().schedule_periodic(config_.flush_interval, [this] {
    if (!alive()) return;
    set_trace_context({});
    if (persistence_->flush_snapshot().ok()) {
      metrics_.counter("persistence.snapshots").add(1);
    }
  });
}

void SednaNode::refresh_vnode_status() {
  const auto bytes = store_->vnode_bytes_all();
  if (bytes.empty()) return;  // digests off: keep the write-volume estimate
  if (vnode_status_.size() < bytes.size()) {
    vnode_status_.resize(bytes.size());
  }
  for (std::size_t v = 0; v < bytes.size(); ++v) {
    vnode_status_[v].capacity_bytes = bytes[v];
  }
}

void SednaNode::report_load() {
  if (!alive() || !ready_) return;
  // The row is computed from the per-vnode statuses (paper III.B: "a[n]
  // imbalance table for all the real nodes computed from the virtual
  // nodes' status"), with resident bytes taken from the store. Only
  // vnodes with activity get a detail row, so the row stays compact.
  //
  // Read/write/miss counts are *per-window deltas* since the previous
  // report, not lifetime totals: the traffic rebalancer compares recent
  // load across nodes, and a lifetime counter would keep crediting a
  // migrated vnode's whole history to its old owner. Capacity stays
  // absolute (resident bytes are a level, not a rate).
  refresh_vnode_status();
  ring::RealNodeLoad row;
  row.node = id();
  row.vnode_count = 0;
  for (const auto& [node, count] : metadata_.table().counts()) {
    if (node == id()) row.vnode_count = count;
  }
  row.capacity_bytes = store_->stats().bytes;
  if (reported_status_.size() < vnode_status_.size()) {
    reported_status_.resize(vnode_status_.size());
  }
  for (std::size_t v = 0; v < vnode_status_.size(); ++v) {
    const ring::VnodeStatus& vs = vnode_status_[v];
    const ring::VnodeStatus& prev = reported_status_[v];
    const std::uint64_t reads = vs.reads - prev.reads;
    const std::uint64_t writes = vs.writes - prev.writes;
    const std::uint64_t misses = vs.misses - prev.misses;
    row.reads += reads;
    row.writes += writes;
    row.misses += misses;
    if (reads != 0 || writes != 0 || misses != 0 ||
        vs.capacity_bytes != 0) {
      row.vnodes.push_back(ring::VnodeLoadRow{
          static_cast<VnodeId>(v), vs.capacity_bytes, reads, writes,
          misses});
    }
  }
  reported_status_ = vnode_status_;
  // Replication-lag gossip rides the same row as a trailing-optional
  // section: per-vnode lag estimate plus the stale serves issued this
  // window. Nothing is appended with auditing off, so the row (and its
  // network footprint) stays byte-identical.
  if (auditor_ != nullptr) row.lags = auditor_->lag_rows(now());
  const std::string path =
      std::string(kZkRealNodes) + "/load-" + std::to_string(id());
  // Upsert: set, create on NotFound.
  zk_.set(path, row.encode(), -1,
          [this, path, row](const Result<zk::ZnodeStat>& set) {
            if (set.ok() || !set.status().is(StatusCode::kNotFound)) return;
            zk_.create(path, row.encode(), zk::CreateMode::kEphemeral,
                       [](const Result<std::string>&) {});
          });
}

void SednaNode::probe_visibility(const std::string& key, Timestamp wts,
                                 VnodeId vnode, SimTime acked_at) {
  // Snapshot the replica set at ack time: those are the copies the write
  // quorum was assembled from, so those are the copies the visibility
  // promise is about.
  auto replicas = std::make_shared<std::vector<NodeId>>(
      metadata_.table().replicas_for_vnode(vnode));
  const std::size_t offsets = config_.audit.probe_offsets.size();
  for (std::size_t i = 0; i < offsets; ++i) {
    const bool final_offset = i + 1 == offsets;
    sim().schedule(
        config_.audit.probe_offsets[i],
        [this, key, wts, acked_at, replicas, i, final_offset] {
          if (!alive() || !ready_ || auditor_ == nullptr) return;
          set_trace_context({});
          auditor_->on_probe_fire(i);
          ReadRequest probe;
          probe.mode = ReadMode::kLatest;
          probe.key = key;
          const std::string payload = probe.encode();
          for (NodeId replica : *replicas) {
            if (replica == id()) {
              // Visibility means "this write or something newer": under
              // LWW a later overwrite legitimately shadows the probed
              // timestamp.
              const ReadReply rep = local_read(probe);
              const bool visible = rep.has_latest && rep.latest.ts >= wts;
              auditor_->on_probe_check(i, true, visible);
              if (final_offset && !visible) {
                record_visibility_violation(acked_at, key, replica);
              }
              continue;
            }
            call_with_timeout(
                replica, kMsgReplicaRead, payload,
                config_.audit.probe_timeout,
                [this, i, final_offset, wts, acked_at, key, replica](
                    const Status& st, const std::string& body) {
                  if (auditor_ == nullptr) return;
                  if (!st.ok()) {
                    auditor_->on_probe_check(i, false, false);
                    return;
                  }
                  auto rep = ReadReply::decode(body);
                  if (!rep.ok() ||
                      rep->status == StatusCode::kOverloaded) {
                    // Shed probes are abandonment, not evidence.
                    auditor_->on_probe_check(i, false, false);
                    return;
                  }
                  const bool visible =
                      rep->has_latest && rep->latest.ts >= wts;
                  auditor_->on_probe_check(i, true, visible);
                  if (final_offset && !visible) {
                    record_visibility_violation(acked_at, key, replica);
                  }
                });
          }
        });
  }
}

void SednaNode::record_visibility_violation(SimTime acked_at,
                                            const std::string& key,
                                            NodeId replica) {
  auditor_->on_violation(acked_at, now(), key, replica);
  if (flight_ != nullptr) {
    flight_->record(now(), "consistency", "node-" + std::to_string(id()),
                    "visibility-violation",
                    "key=" + key + " replica=" + std::to_string(replica) +
                        " acked_at=" + std::to_string(acked_at));
  }
}

void SednaNode::on_message(const sim::Message& msg) {
  switch (msg.type) {
    case kMsgClientWrite:
      handle_client_write(msg);
      break;
    case kMsgClientRead:
      handle_client_read(msg);
      break;
    case kMsgReplicaWrite:
      handle_replica_write(msg);
      break;
    case kMsgReplicaRead:
      handle_replica_read(msg);
      break;
    case kMsgFetchVnode:
      handle_fetch_vnode(msg);
      break;
    case kMsgTakeoverVnode:
      handle_takeover(msg);
      break;
    case kMsgPurgeVnode:
      handle_purge_vnode(msg);
      break;
    case kMsgScan:
      handle_scan(msg);
      break;
    case kMsgHintDeliver:
      handle_hint_deliver(msg);
      break;
    case kMsgVnodeDigest:
      handle_vnode_digest(msg);
      break;
    case kMsgMigrateVnode:
      handle_migrate_vnode(msg);
      break;
    case zk::kMsgWatchEvent:
      zk_.on_watch_event(msg.payload);
      break;
    default:
      break;
  }
}

std::string SednaNode::rpc_span_name(sim::MessageType type) const {
  switch (type) {
    case kMsgClientWrite: return "rpc.client_write";
    case kMsgClientRead: return "rpc.client_read";
    case kMsgReplicaWrite: return "rpc.replica_write";
    case kMsgReplicaRead: return "rpc.replica_read";
    case kMsgFetchVnode: return "rpc.fetch_vnode";
    case kMsgScan: return "rpc.scan";
    case kMsgHintDeliver: return "rpc.hint_deliver";
    case kMsgVnodeDigest: return "rpc.vnode_digest";
    case kMsgMigrateVnode: return "rpc.migrate_vnode";
    case zk::kMsgClientRequest: return "rpc.zk_request";
    case zk::kMsgSessionPing: return "rpc.zk_ping";
    default: return sim::Host::rpc_span_name(type);
  }
}

TraceStage SednaNode::rpc_span_stage(sim::MessageType type) const {
  switch (type) {
    // Replica fan-out waits: what the coordinator experiences is "time
    // until enough replicas answered" — attributed to service (the wire
    // share of an intra-cluster hop rides along; see DESIGN.md §5g).
    case kMsgReplicaWrite:
    case kMsgReplicaRead:
      return TraceStage::kService;
    case kMsgFetchVnode:
    case kMsgMigrateVnode:
      return TraceStage::kMigration;
    case kMsgScan:
    case kMsgVnodeDigest:
      return TraceStage::kRepair;
    case kMsgHintDeliver:
      return TraceStage::kHintReplay;
    case zk::kMsgClientRequest:
    case zk::kMsgSessionPing:
      return TraceStage::kZk;
    default:
      return sim::Host::rpc_span_stage(type);
  }
}

std::size_t SednaNode::message_priority(const sim::Message& msg) const {
  if (msg.is_response) return 0;  // responses finish work already paid for
  switch (msg.type) {
    case kMsgClientRead:
    case kMsgReplicaRead:
      return 0;
    case kMsgClientWrite:
    case kMsgReplicaWrite:
      return 1;
    case kMsgScan:
    case kMsgHintDeliver:
    case kMsgVnodeDigest:
      return 2;  // repair / anti-entropy
    case kMsgFetchVnode:
    case kMsgTakeoverVnode:
    case kMsgPurgeVnode:
    case kMsgMigrateVnode:
      return 3;  // migration bulk loses its queue slots first
    default:
      return 0;  // ZK watch deliveries and control traffic stay first class
  }
}

void SednaNode::on_shed(const sim::Message& msg, sim::ShedReason reason) {
  metrics_
      .counter(reason == sim::ShedReason::kQueueFull
                   ? "node.shed.queue_full"
                   : "node.shed.deadline_exceeded")
      .add(1);
  // The shed is part of the request's trace: a zero-width span whose
  // "overloaded" status the critical-path analyzer charges to retry.
  set_trace_context(TraceContext{msg.trace_id, msg.span_id});
  instant_span("node.shed", "overloaded", TraceStage::kQueue);
  switch (msg.type) {
    case kMsgClientWrite:
    case kMsgReplicaWrite: {
      WriteReply rep;
      rep.status = StatusCode::kOverloaded;
      reply(msg, rep.encode());
      break;
    }
    case kMsgClientRead:
    case kMsgReplicaRead: {
      ReadReply rep;
      rep.status = StatusCode::kOverloaded;
      reply(msg, rep.encode());
      break;
    }
    default:
      break;  // background daemons retry on their own cadence
  }
}

void SednaNode::on_crash() {
  // Volatile state dies with the process; the LocalStore empties (it is
  // RAM) and in-flight coordination is dropped. Persistence files remain
  // on disk for restart-time recovery.
  store_->clear();
  recovering_.clear();
  verified_alive_.clear();
  vnode_status_.clear();
  hot_keys_.clear();
  ready_ = false;
  // Hints are coordinator RAM: they die with the process. The Merkle
  // anti-entropy pass is what makes that loss survivable.
  hint_queues_.clear();
  hints_pending_ = 0;
  ae_last_synced_.clear();
  ae_in_flight_ = false;
  hint_timer_.cancel();
  ae_timer_.cancel();
  // Migration state is volatile too: a crashed destination simply never
  // reaches cutover (the source keeps serving), and a crashed leader's
  // in-flight round is forgotten (the next leader replans from fresh
  // telemetry).
  reported_status_.clear();
  migrating_in_.clear();
  migrations_dispatched_ = 0;
  traffic_rebalancer_.reset();
  traffic_rebalance_timer_.cancel();
  // The next start() finds an empty store where peers still hold data.
  needs_hydration_ = true;
}

void SednaNode::hydrate_after_restart(std::function<void()> done) {
  needs_hydration_ = false;
  auto todo = std::make_shared<std::deque<VnodeId>>();
  const std::uint32_t total = metadata_.table().total_vnodes();
  for (VnodeId v = 0; v < total; ++v) {
    const auto replicas = metadata_.table().replicas_for_vnode(v);
    if (std::find(replicas.begin(), replicas.end(), id()) !=
        replicas.end()) {
      todo->push_back(v);
    }
  }
  if (todo->empty()) {
    done();
    return;
  }
  const std::size_t fanout =
      config_.restart_hydration_fanout > 0 ? config_.restart_hydration_fanout
                                           : 1;
  auto outstanding = std::make_shared<std::size_t>(0);
  auto pump = std::make_shared<std::function<void()>>();
  // The pump holds only a weak self-reference (a strong one would be a
  // shared_ptr cycle and leak); each in-flight fetch callback pins it.
  *pump = [this, todo, outstanding, fanout,
           weak = std::weak_ptr<std::function<void()>>(pump),
           done = std::move(done)] {
    while (!todo->empty() && *outstanding < fanout) {
      const VnodeId v = todo->front();
      todo->pop_front();
      ++*outstanding;
      fetch_vnode_from(
          v, metadata_.table().replicas_for_vnode(v), 0,
          [this, todo, outstanding, pump = weak.lock(),
           done](bool ok, std::uint64_t) {
            --*outstanding;
            metrics_
                .counter(ok ? "restart.vnodes_hydrated"
                            : "restart.hydration_failed")
                .add(1);
            if (todo->empty() && *outstanding == 0) {
              done();
              return;
            }
            (*pump)();
          });
    }
  };
  (*pump)();
}

StatusCode SednaNode::apply_write(const WriteRequest& req) {
  // Per-vnode write frequency + rough capacity delta (paper III.B).
  if (metadata_.ready()) {
    const VnodeId v = metadata_.table().vnode_for_key(req.key);
    if (vnode_status_.size() < metadata_.table().total_vnodes()) {
      vnode_status_.resize(metadata_.table().total_vnodes());
    }
    ++vnode_status_[v].writes;
    vnode_status_[v].capacity_bytes += req.key.size() + req.value.size();
  }
  Status st;
  if (req.causal_tag == WriteRequest::kCausalRecord) {
    // Replica-side causal apply: a semilattice join with the pushed
    // record. The WAL logs the *incoming* record only when the join moved
    // local state — replay re-joins the same records, so recovery cannot
    // lose siblings that were acked.
    bool changed = false;
    st = store_->merge_causal(req.key, req.record, &changed);
    if (st.ok() && changed && persistence_ != nullptr) {
      persistence_->on_write_causal(req.key, req.record);
    }
  } else if (req.mode == WriteMode::kLatest) {
    st = store_->write_latest(req.key, req.value, req.ts, req.flags,
                              req.ttl);
    if (st.ok() && persistence_ != nullptr) {
      persistence_->on_write_latest(req.key, req.value, req.ts, req.flags);
    }
  } else {
    st = store_->write_all(req.key, req.source, req.value, req.ts);
    if (st.ok() && persistence_ != nullptr) {
      persistence_->on_write_all(req.key, req.source, req.value, req.ts);
    }
  }
  return st.code();
}

ReadReply SednaNode::local_read(const ReadRequest& req) {
  VnodeId v = kInvalidVnode;
  if (metadata_.ready()) {
    v = metadata_.table().vnode_for_key(req.key);
    if (vnode_status_.size() < metadata_.table().total_vnodes()) {
      vnode_status_.resize(metadata_.table().total_vnodes());
    }
    ++vnode_status_[v].reads;
  }
  ReadReply rep;
  if (req.causal) {
    auto got = store_->read_causal(req.key);
    if (got.ok()) {
      rep.has_causal = true;
      rep.causal = std::move(got).value();
    } else {
      rep.status = got.status().code();
    }
  } else if (req.mode == ReadMode::kLatest) {
    auto got = store_->read_latest(req.key);
    if (got.ok()) {
      rep.has_latest = true;
      rep.latest = std::move(got).value();
    } else {
      rep.status = got.status().code();
    }
  } else {
    auto got = store_->read_all(req.key);
    if (got.ok()) {
      rep.value_list = std::move(got).value();
    } else {
      rep.status = got.status().code();
    }
  }
  if (v != kInvalidVnode && rep.status != StatusCode::kOk) {
    ++vnode_status_[v].misses;
  }
  return rep;
}

void SednaNode::handle_replica_write(const sim::Message& msg) {
  auto req = WriteRequest::decode(msg.payload);
  WriteReply rep;
  if (!req.ok()) {
    rep.status = StatusCode::kInvalidArgument;
  } else {
    rep.status = apply_write(*req);
    metrics_.counter("replica.writes").add(1);
  }
  instant_span("replica.write", std::string(to_string(rep.status)),
               TraceStage::kService);
  reply(msg, rep.encode());
}

void SednaNode::handle_replica_read(const sim::Message& msg) {
  auto req = ReadRequest::decode(msg.payload);
  if (!req.ok()) {
    ReadReply rep;
    rep.status = StatusCode::kInvalidArgument;
    reply(msg, rep.encode());
    return;
  }
  metrics_.counter("replica.reads").add(1);
  ReadReply rep = local_read(*req);
  instant_span("replica.read", std::string(to_string(rep.status)),
               TraceStage::kService);
  reply(msg, rep.encode());
}

void SednaNode::handle_client_write(const sim::Message& msg) {
  auto decoded = WriteRequest::decode(msg.payload);
  if (!decoded.ok() || !ready_) {
    WriteReply rep;
    rep.status = decoded.ok() ? StatusCode::kUnavailable
                              : StatusCode::kInvalidArgument;
    reply(msg, rep.encode());
    return;
  }
  WriteRequest req = std::move(decoded).value();
  if (req.ts == 0) req.ts = next_ts();
  if (req.source == kInvalidNode) req.source = msg.from;

  // Causal put: the coordinator mints the dot locally *first* — pruning
  // the siblings covered by the client's read context and appending the
  // new value — then fans out the full post-update record, so replicas
  // join states instead of racing on timestamps. The local apply in the
  // fan-out loop below sees the rewritten record and is an idempotent
  // no-op join that still counts as this replica's ack.
  const bool causal_put = req.causal_tag == WriteRequest::kCausalCtx;
  store::VersionVector causal_clock;
  if (causal_put) {
    auto minted = store_->write_causal(req.key, req.ctx, req.value, req.ts,
                                       req.flags, id());
    if (!minted.ok()) {
      WriteReply rep;
      rep.status = StatusCode::kFailure;
      reply(msg, rep.encode());
      return;
    }
    if (persistence_ != nullptr) {
      persistence_->on_write_causal(req.key, minted.value());
    }
    causal_clock = minted.value().clock;
    req.causal_tag = WriteRequest::kCausalRecord;
    req.record = std::move(minted).value();
    req.ctx = {};
  }

  const VnodeId vnode = metadata_.table().vnode_for_key(req.key);
  const auto replicas = metadata_.table().replicas_for_vnode(vnode);
  const auto cfg = metadata_.config();
  metrics_.counter("coordinator.writes").add(1);
  if (config_.hot_key_capacity > 0) hot_keys_.record(req.key);
  const SimTime started = now();
  const TraceId trace = trace_context().trace_id;
  const SpanId coord_span = begin_span("coord.write", TraceStage::kService);
  const TraceContext prev_ctx = enter_span(coord_span);

  struct WriteState {
    std::uint32_t acks = 0;
    std::uint32_t outdated = 0;
    std::uint32_t failures = 0;
    std::uint32_t responses = 0;
    bool replied = false;
  };
  auto state = std::make_shared<WriteState>();
  const sim::Message origin = msg;
  const auto total = static_cast<std::uint32_t>(replicas.size());

  auto settle = [this, state, origin, cfg, total, started, vnode, trace,
                 coord_span, key = req.key, causal_put, causal_clock,
                 wts = req.ts]() {
    if (state->replied) return;
    WriteReply rep;
    if (state->acks >= cfg.write_quorum) {
      rep.status = StatusCode::kOk;
      if (causal_put) {
        // Hand the post-write clock back as the client's next context.
        rep.has_ctx = true;
        rep.ctx = causal_clock;
      }
      // t-visibility probe (PBS-style): sample acked LWW writes and check
      // back on every replica at fixed offsets to measure how quickly an
      // acknowledged write becomes readable cluster-wide. Causal puts are
      // excluded — their convergence is vector-clock joins, not a single
      // timestamp, so "ts >= wts" is not the right visibility predicate.
      if (auditor_ != nullptr && !causal_put && auditor_->should_probe()) {
        probe_visibility(key, wts, vnode, now());
      }
    } else if (state->responses < total) {
      return;  // still waiting and quorum still possible
    } else if (state->outdated > 0) {
      rep.status = StatusCode::kOutdated;
    } else {
      rep.status = StatusCode::kFailure;  // recovery already triggered
      metrics_.counter("coordinator.write_quorum_failures").add(1);
    }
    state->replied = true;
    metrics_.histogram("coordinator.write_latency_us")
        .record(now() - started, trace);
    end_span(coord_span, std::string(to_string(rep.status)));
    reply(origin, rep.encode());
  };

  // Deadline-aware fan-out: the replica RPC timeout never extends past the
  // client's remaining budget — once the deadline passes, waiting longer
  // can only produce an answer nobody wants. A timeout that fired early
  // *because* of the deadline is abandonment, not failure evidence, so it
  // must not feed the failure detector or queue hints (suspecting healthy
  // nodes and replaying hints during overload would amplify the overload).
  SimDuration fanout_timeout = config().rpc_timeout_us;
  if (origin.deadline != 0 && origin.deadline > now()) {
    fanout_timeout =
        std::min<SimDuration>(fanout_timeout, origin.deadline - now());
  }
  const bool deadline_bounded =
      origin.deadline != 0 && fanout_timeout < config().rpc_timeout_us;

  const std::string payload = req.encode();
  for (NodeId replica : replicas) {
    if (replica == id()) {
      const StatusCode st = apply_write(req);
      instant_span("coord.local_write", std::string(to_string(st)),
                   TraceStage::kService);
      ++state->responses;
      if (st == StatusCode::kOk) {
        ++state->acks;
      } else if (st == StatusCode::kOutdated) {
        ++state->outdated;
      } else {
        ++state->failures;
      }
      settle();
      continue;
    }
    call_with_timeout(
        replica, kMsgReplicaWrite, payload, fanout_timeout,
        [this, state, settle, replica, vnode, req, deadline_bounded](
            const Status& st, const std::string& body) {
          ++state->responses;
          if (!st.ok()) {
            ++state->failures;
            if (!deadline_bounded) {
              // The replica missed an acknowledged-at-W write: remember it
              // and replay once the replica re-registers (hinted handoff).
              queue_hint(replica, req);
              suspect_node(replica, vnode);
            }
          } else {
            auto rep = WriteReply::decode(body);
            if (rep.ok() && rep->status == StatusCode::kOk) {
              ++state->acks;
            } else if (rep.ok() && rep->status == StatusCode::kOutdated) {
              ++state->outdated;
            } else {
              ++state->failures;
            }
          }
          settle();
        },
        origin.deadline);
  }
  set_trace_context(prev_ctx);
}

void SednaNode::handle_client_read(const sim::Message& msg) {
  auto decoded = ReadRequest::decode(msg.payload);
  if (!decoded.ok() || !ready_) {
    ReadReply rep;
    rep.status = decoded.ok() ? StatusCode::kUnavailable
                              : StatusCode::kInvalidArgument;
    reply(msg, rep.encode());
    return;
  }
  const ReadRequest req = std::move(decoded).value();
  const VnodeId vnode = metadata_.table().vnode_for_key(req.key);
  const auto replicas = metadata_.table().replicas_for_vnode(vnode);
  const auto cfg = metadata_.config();
  metrics_.counter("coordinator.reads").add(1);
  if (config_.hot_key_capacity > 0) hot_keys_.record(req.key);
  const SimTime started = now();
  const TraceId trace = trace_context().trace_id;
  const SpanId coord_span = begin_span("coord.read", TraceStage::kService);
  const TraceContext prev_ctx = enter_span(coord_span);

  struct ReadState {
    std::vector<std::pair<NodeId, ReadReply>> replies;
    std::uint32_t responses = 0;
    std::uint32_t failures = 0;
    bool replied = false;
    /// Value returned to the client (kLatest mode), for repairing
    /// replicas whose replies arrive after the quorum settled.
    bool has_answer = false;
    store::VersionedValue answer;
    /// Joined record returned to the client (causal mode), for repairing
    /// divergent replicas — including late arrivals.
    bool has_causal_answer = false;
    store::CausalRecord merged;
    /// Consistency-auditor bookkeeping: whether the final audit sample
    /// has been emitted, whether the reply went out stale-tagged, and
    /// when the reply was sent (for the confirmation-lag measurement).
    bool audited = false;
    bool served_stale = false;
    SimTime settled_at = 0;
  };
  auto state = std::make_shared<ReadState>();
  const sim::Message origin = msg;
  const auto total = static_cast<std::uint32_t>(replicas.size());

  auto settle = [this, state, origin, cfg, total, started, trace, coord_span,
                 req, vnode]() {
    if (state->replied) return;

    if (req.causal) {
      // Causal quorum read: R *positive* replies settle (the same
      // positive-only rule as the LWW path — a fresh replica-set member
      // legitimately lacks the key). The answer is the semilattice join
      // of every record in hand: with R+W > N the R positives intersect
      // every write quorum, so the join covers every acked write —
      // concurrent writes surface as siblings instead of one silently
      // shadowing the other.
      std::uint32_t positives = 0;
      for (const auto& [node, rep] : state->replies) {
        if (rep.has_causal) ++positives;
      }
      if (positives < cfg.read_quorum && state->responses < total) return;
      state->replied = true;
      metrics_.histogram("coordinator.read_latency_us")
          .record(now() - started, trace);
      ReadReply out;
      store::CausalRecord merged;
      for (const auto& [node, rep] : state->replies) {
        if (rep.has_causal) merged.merge(rep.causal);
      }
      if (!merged.empty()) {
        out.status = StatusCode::kOk;
        out.has_causal = true;
        out.causal = merged;
        if (positives < cfg.read_quorum) {
          out.stale = true;
          if (auditor_ != nullptr) {
            out.staleness_us = auditor_->on_stale_serve(vnode, now());
          }
        } else if (auditor_ != nullptr) {
          auditor_->on_full_quorum(vnode, now());
        }
        state->has_causal_answer = true;
        state->merged = merged;
        // Repair replicas whose record is missing or diverged: push the
        // join, which each replica folds in idempotently.
        std::vector<NodeId> stale;
        for (const auto& [node, rep] : state->replies) {
          if (!rep.has_causal || !(rep.causal == merged)) {
            stale.push_back(node);
          }
        }
        if (!stale.empty()) read_repair_causal(req.key, merged, stale);
      } else if (state->failures > 0) {
        out.status = StatusCode::kFailure;
      } else {
        out.status = StatusCode::kNotFound;
      }
      end_span(coord_span, std::string(to_string(out.status)));
      reply(origin, out.encode());
      return;
    }

    if (req.mode == ReadMode::kLatest) {
      // Quorum rule (Section III.C): R replies carrying the *same
      // timestamp* settle the read. Only *positive* replies may settle
      // early — concluding "not found" from R misses while a replica that
      // does hold the value has yet to answer would lose data during
      // membership changes (a fresh replica-set member legitimately lacks
      // the key until read repair backfills it).
      for (const auto& [node, rep] : state->replies) {
        if (!rep.has_latest) continue;
        std::uint32_t agree = 0;
        for (const auto& [other_node, other] : state->replies) {
          if (other.has_latest && rep.latest.ts == other.latest.ts) ++agree;
        }
        if (agree >= cfg.read_quorum) {
          state->replied = true;
          state->has_answer = true;
          state->answer = rep.latest;
          state->settled_at = now();
          if (auditor_ != nullptr) auditor_->on_full_quorum(vnode, now());
          metrics_.histogram("coordinator.read_latency_us")
              .record(now() - started, trace);
          ReadReply out = rep;
          out.status = StatusCode::kOk;
          end_span(coord_span, "ok");
          reply(origin, out.encode());
          // Repair stragglers that have older (or no) data.
          std::vector<NodeId> stale;
          for (const auto& [other_node, other] : state->replies) {
            if (!other.has_latest || other.latest.ts < rep.latest.ts) {
              stale.push_back(other_node);
            }
          }
          if (!stale.empty()) read_repair(req.key, rep.latest, stale);
          return;
        }
      }
      // Degraded mode: once enough replicas have failed (timed out, shed
      // with kOverloaded, or sit behind a partition) that a full R-sized
      // agreeing set is impossible, answer from the freshest positive
      // reply in hand and *say so* via the stale tag, instead of letting
      // the op ride out every timeout and fail. Keyspace-style trade:
      // availability bought with labeled staleness.
      if (config_.degraded_reads &&
          state->failures + cfg.read_quorum > total) {
        const ReadReply* freshest = nullptr;
        for (const auto& [node, rep] : state->replies) {
          if (rep.has_latest &&
              (freshest == nullptr || rep.latest.ts > freshest->latest.ts)) {
            freshest = &rep;
          }
        }
        if (freshest != nullptr) {
          state->replied = true;
          state->has_answer = true;
          state->answer = freshest->latest;
          state->served_stale = true;
          state->settled_at = now();
          metrics_.counter("coordinator.degraded_reads").add(1);
          metrics_.histogram("coordinator.read_latency_us")
              .record(now() - started, trace);
          ReadReply out = *freshest;
          out.status = StatusCode::kOk;
          out.stale = true;
          // Bounded staleness: the served value is no older than the time
          // since this vnode last confirmed a full read quorum, so hand
          // the client that bound alongside the stale tag.
          if (auditor_ != nullptr) {
            out.staleness_us = auditor_->on_stale_serve(vnode, now());
          }
          end_span(coord_span, "ok");
          reply(origin, out.encode());
          return;
        }
      }
      if (state->responses < total) return;  // keep waiting
      // All replicas answered without an R-sized agreeing set: return the
      // freshest value (eventual consistency) and repair the rest.
      const ReadReply* freshest = nullptr;
      for (const auto& [node, rep] : state->replies) {
        if (rep.has_latest &&
            (freshest == nullptr || rep.latest.ts > freshest->latest.ts)) {
          freshest = &rep;
        }
      }
      state->replied = true;
      metrics_.histogram("coordinator.read_latency_us")
          .record(now() - started, trace);
      ReadReply out;
      if (freshest != nullptr) {
        out = *freshest;
        out.status = StatusCode::kOk;
        // Below-quorum agreement: the answer is the freshest available
        // but unconfirmed — label it rather than pass it off as a quorum
        // read.
        out.stale = true;
        state->has_answer = true;
        state->answer = freshest->latest;
        state->served_stale = true;
        state->settled_at = now();
        if (auditor_ != nullptr) {
          out.staleness_us = auditor_->on_stale_serve(vnode, now());
        }
        std::vector<NodeId> stale;
        for (const auto& [node, rep] : state->replies) {
          if (!rep.has_latest || rep.latest.ts < out.latest.ts) {
            stale.push_back(node);
          }
        }
        if (!stale.empty()) read_repair(req.key, out.latest, stale);
      } else if (state->failures > 0) {
        out.status = StatusCode::kFailure;
      } else {
        out.status = StatusCode::kNotFound;
      }
      end_span(coord_span, std::string(to_string(out.status)));
      reply(origin, out.encode());
      return;
    }

    // read_all: wait for R successful replies, then merge the value lists
    // (newest timestamp wins per source).
    std::uint32_t successes = 0;
    for (const auto& [node, rep] : state->replies) {
      if (rep.status == StatusCode::kOk || !rep.value_list.empty()) {
        ++successes;
      }
    }
    const bool exhausted = state->responses >= total;
    if (successes < cfg.read_quorum && !exhausted) return;
    state->replied = true;
    metrics_.histogram("coordinator.read_latency_us")
        .record(now() - started, trace);
    ReadReply out;
    std::map<NodeId, store::SourceValue> merged;
    for (const auto& [node, rep] : state->replies) {
      for (const auto& sv : rep.value_list) {
        auto [it, inserted] = merged.try_emplace(sv.source, sv);
        if (!inserted && sv.ts > it->second.ts) it->second = sv;
      }
    }
    for (auto& [source, sv] : merged) out.value_list.push_back(sv);
    if (out.value_list.empty()) {
      out.status = state->failures > 0 && successes == 0
                       ? StatusCode::kFailure
                       : StatusCode::kNotFound;
    }
    end_span(coord_span, std::string(to_string(out.status)));
    reply(origin, out.encode());
  };

  // Staleness sample: once every replica has answered (call_with_timeout
  // always fires, so responses always reaches total), compare the value
  // the client was served against the freshest timestamp any replica
  // reported. The gap — versions behind, and wall-clock µs behind — is a
  // *measured* staleness observation, not a bound.
  auto audit_finalize = [this, state, total, vnode,
                         causal = req.causal, mode = req.mode]() {
    if (auditor_ == nullptr || state->audited || state->responses < total ||
        causal || mode != ReadMode::kLatest || !state->has_answer) {
      return;
    }
    state->audited = true;
    ReadAuditSample s;
    s.vnode = vnode;
    s.served_ts = state->answer.ts;
    s.stale = state->served_stale;
    s.confirm_lag_us =
        now() > state->settled_at ? now() - state->settled_at : 0;
    for (const auto& [node, rep] : state->replies) {
      if (!rep.has_latest) continue;
      ++s.positives;
      if (s.positives == 1) {
        s.freshest_ts = s.oldest_ts = rep.latest.ts;
      } else {
        s.freshest_ts = std::max(s.freshest_ts, rep.latest.ts);
        s.oldest_ts = std::min(s.oldest_ts, rep.latest.ts);
      }
      if (rep.latest.ts > state->answer.ts) ++s.newer;
    }
    auditor_->on_read_final(s);
  };

  // Deadline-aware fan-out; see handle_client_write. Deadline-shortened
  // timeouts are abandonment, not failure evidence.
  SimDuration fanout_timeout = config().rpc_timeout_us;
  if (origin.deadline != 0 && origin.deadline > now()) {
    fanout_timeout =
        std::min<SimDuration>(fanout_timeout, origin.deadline - now());
  }
  const bool deadline_bounded =
      origin.deadline != 0 && fanout_timeout < config().rpc_timeout_us;

  const std::string payload = req.encode();
  for (NodeId replica : replicas) {
    if (replica == id()) {
      ReadReply rep = local_read(req);
      instant_span("coord.local_read", std::string(to_string(rep.status)),
                   TraceStage::kService);
      state->replies.emplace_back(id(), std::move(rep));
      ++state->responses;
      settle();
      audit_finalize();
      continue;
    }
    call_with_timeout(
        replica, kMsgReplicaRead, payload, fanout_timeout,
        [this, state, settle, audit_finalize, replica, vnode, key = req.key,
         deadline_bounded](const Status& st, const std::string& body) {
          ++state->responses;
          if (!st.ok()) {
            ++state->failures;
            if (!deadline_bounded) suspect_node(replica, vnode);
          } else {
            auto rep = ReadReply::decode(body);
            if (rep.ok() && rep->status == StatusCode::kOverloaded) {
              // An overloaded replica is alive but shedding: count it as
              // failed for quorum purposes, but do not suspect it and do
              // not read-repair it (pushing writes at a node that just
              // shed a read would deepen the overload).
              ++state->failures;
            } else if (rep.ok()) {
              // Replies arriving after the quorum already settled still
              // feed read repair: a replica that is behind (or brand
              // new, after a membership change) gets the answer pushed.
              if (state->replied && state->has_answer &&
                  (!rep->has_latest ||
                   rep->latest.ts < state->answer.ts)) {
                read_repair(key, state->answer, {replica});
              }
              if (state->replied && state->has_causal_answer &&
                  (!rep->has_causal ||
                   !(rep->causal == state->merged))) {
                read_repair_causal(key, state->merged, {replica});
              }
              state->replies.emplace_back(replica, std::move(rep).value());
            } else {
              ++state->failures;
            }
          }
          settle();
          audit_finalize();
        },
        origin.deadline);
  }
  set_trace_context(prev_ctx);
}

void SednaNode::read_repair(const std::string& key,
                            const store::VersionedValue& fresh,
                            const std::vector<NodeId>& stale) {
  metrics_.counter("coordinator.read_repairs").add(1);
  // The repair span closes when the last stale replica has been pushed,
  // so its duration covers the backfill round trips.
  const SpanId span = begin_span("coord.read_repair", TraceStage::kRepair);
  const TraceContext prev = enter_span(span);
  WriteRequest req;
  req.mode = WriteMode::kLatest;
  req.key = key;
  req.value = fresh.value;
  req.ts = fresh.ts;
  req.flags = fresh.flags;
  const std::string payload = req.encode();
  auto remaining = std::make_shared<std::size_t>(stale.size());
  for (NodeId node : stale) {
    if (node == id()) {
      apply_write(req);
      if (--*remaining == 0) end_span(span);
    } else {
      call(node, kMsgReplicaWrite, payload,
           [this, span, remaining](const Status&, const std::string&) {
             if (--*remaining == 0) end_span(span);
           });
    }
  }
  set_trace_context(prev);
}

void SednaNode::read_repair_causal(const std::string& key,
                                   const store::CausalRecord& fresh,
                                   const std::vector<NodeId>& stale) {
  metrics_.counter("coordinator.read_repairs").add(1);
  const SpanId span = begin_span("coord.read_repair", TraceStage::kRepair);
  const TraceContext prev = enter_span(span);
  WriteRequest req;
  req.mode = WriteMode::kLatest;
  req.key = key;
  req.causal_tag = WriteRequest::kCausalRecord;
  req.record = fresh;
  const std::string payload = req.encode();
  auto remaining = std::make_shared<std::size_t>(stale.size());
  for (NodeId node : stale) {
    if (node == id()) {
      apply_write(req);
      if (--*remaining == 0) end_span(span);
    } else {
      call(node, kMsgReplicaWrite, payload,
           [this, span, remaining](const Status&, const std::string&) {
             if (--*remaining == 0) end_span(span);
           });
    }
  }
  set_trace_context(prev);
}

void SednaNode::suspect_node(NodeId replica, VnodeId vnode) {
  // Damp repeated verification of a node we recently saw alive: a single
  // dropped packet must not stampede ZooKeeper (Section III.E: "use local
  // cache").
  const auto it = verified_alive_.find(replica);
  if (it != verified_alive_.end() &&
      now() - it->second <= kAliveVerifyTtl) {
    return;
  }
  metrics_.counter("failure.suspicions").add(1);
  const SpanId span = begin_span("failure.suspect", TraceStage::kRepair);
  const TraceContext prev = enter_span(span);
  const TraceContext span_ctx = trace_context();
  zk_.exists(real_node_znode(replica),
             [this, span, span_ctx, replica,
              vnode](const Result<zk::ZnodeStat>& st) {
               set_trace_context(span_ctx);
               if (st.ok()) {
                 verified_alive_[replica] = now();
                 end_span(span, "alive");
                 return;  // transient hiccup; node is registered
               }
               if (!st.status().is(StatusCode::kNotFound)) {
                 end_span(span, "error");
                 return;
               }
               end_span(span, "dead");
               // Ephemeral gone: the heartbeat lapsed and ZooKeeper
               // expired the session — the node is dead (Section III.D).
               // Recover every vnode the dead node owns within this key's
               // replica walk (the walk spans vnodes until N distinct live
               // owners are found; the dead node may own several of them).
               const auto& table = metadata_.table();
               const std::uint32_t n = table.total_vnodes();
               const std::uint32_t want = metadata_.config().replicas;
               std::vector<NodeId> live_seen;
               for (std::uint32_t step = 0; step < n; ++step) {
                 const VnodeId v = (vnode + step) % n;
                 const NodeId owner = table.owner(v);
                 if (owner == replica) {
                   start_recovery(v, replica);
                 } else if (owner != kInvalidNode &&
                            std::find(live_seen.begin(), live_seen.end(),
                                      owner) == live_seen.end()) {
                   live_seen.push_back(owner);
                   if (live_seen.size() >= want) break;
                 }
               }
             });
  set_trace_context(prev);
}

void SednaNode::start_recovery(VnodeId vnode, NodeId dead) {
  if (recovering_.contains(vnode)) return;
  recovering_.insert(vnode);
  metrics_.counter("failure.recoveries_started").add(1);
  instant_span("recovery.start", "ok", TraceStage::kRepair);

  // Healthy sources for the slice: the vnode's other current replicas.
  auto sources = metadata_.table().replicas_for_vnode(vnode);
  std::erase(sources, dead);

  zk_.children(
      kZkRealNodes,
      [this, vnode, dead, sources](
          const Result<std::vector<std::string>>& kids) {
        if (!kids.ok()) {
          finish_recovery(vnode);
          return;
        }
        // Live node set from the ephemeral registry.
        std::vector<NodeId> live;
        for (const auto& name : kids.value()) {
          if (name.rfind("node-", 0) != 0) continue;
          live.push_back(static_cast<NodeId>(
              std::strtoul(name.c_str() + 5, nullptr, 10)));
        }
        // Candidates: live nodes not already holding this slice.
        std::vector<NodeId> candidates;
        for (NodeId n : live) {
          if (n != dead &&
              std::find(sources.begin(), sources.end(), n) ==
                  sources.end()) {
            candidates.push_back(n);
          }
        }
        if (candidates.empty()) {
          // Not enough distinct nodes to restore full replication; stay
          // degraded (quorum reads/writes continue on the survivors).
          metrics_.counter("failure.recovery_degraded").add(1);
          finish_recovery(vnode);
          return;
        }
        // Least-loaded candidate by our local vnode counts, tie by id.
        const auto counts = metadata_.table().counts();
        NodeId target = candidates.front();
        std::uint32_t best = UINT32_MAX;
        for (NodeId n : candidates) {
          const auto cit = counts.find(n);
          const std::uint32_t load = cit == counts.end() ? 0 : cit->second;
          if (load < best || (load == best && n < target)) {
            best = load;
            target = n;
          }
        }
        // CAS the vnode znode: first coordinator to notice wins; losers
        // observe the new owner and stand down.
        zk_.get(
            vnode_znode(vnode),
            [this, vnode, dead, target, sources](
                const Result<std::pair<std::string, zk::ZnodeStat>>& got) {
              if (!got.ok()) {
                finish_recovery(vnode);
                return;
              }
              BinaryReader r(got->first);
              const NodeId current = r.get_u32();
              if (r.failed() || current != dead) {
                // Someone already recovered it.
                if (!r.failed()) metadata_.apply_local(vnode, current);
                finish_recovery(vnode);
                return;
              }
              BinaryWriter w;
              w.put_u32(target);
              zk_.set(
                  vnode_znode(vnode), std::move(w).take(),
                  got->second.version,
                  [this, vnode, target, sources](
                      const Result<zk::ZnodeStat>& set) {
                    if (!set.ok()) {
                      metadata_.sync_now();
                      finish_recovery(vnode);
                      return;
                    }
                    metadata_.apply_local(vnode, target);
                    metrics_.counter("failure.recoveries_completed").add(1);
                    instant_span("recovery.reassigned", "ok",
                                 TraceStage::kRepair);
                    append_change_journal(vnode, target, [this, vnode,
                                                          target, sources] {
                      // Tell the new owner to pull the slice from the
                      // surviving replicas (async duplication task,
                      // Section III.C).
                      TakeoverRequest req;
                      req.vnode = vnode;
                      req.sources = sources;
                      send_oneway(target, kMsgTakeoverVnode, req.encode());
                      finish_recovery(vnode);
                    });
                  });
            });
      });
}

void SednaNode::finish_recovery(VnodeId vnode) { recovering_.erase(vnode); }

void SednaNode::append_change_journal(VnodeId vnode, NodeId owner,
                                      std::function<void()> done) {
  BinaryWriter w;
  w.put_u32(vnode);
  w.put_u32(owner);
  zk_.create(std::string(kZkChanges) + "/c", std::move(w).take(),
             zk::CreateMode::kPersistentSequential,
             [done = std::move(done)](const Result<std::string>&) {
               if (done) done();
             });
}

void SednaNode::rebalance_tick() {
  if (!alive() || !ready_) return;
  zk_.children(
      kZkRealNodes, [this](const Result<std::vector<std::string>>& kids) {
        if (!kids.ok()) return;
        std::vector<NodeId> live;
        for (const auto& name : kids.value()) {
          if (name.rfind("node-", 0) != 0) continue;
          live.push_back(static_cast<NodeId>(
              std::strtoul(name.c_str() + 5, nullptr, 10)));
        }
        // Single deterministic actor: the lowest live node id.
        if (live.empty() ||
            *std::min_element(live.begin(), live.end()) != id()) {
          return;
        }
        auto moves = ring::Rebalancer::plan_rebalance(
            metadata_.table(), config_.rebalance_tolerance);
        // Only shuffle between live nodes; dead holders are the recovery
        // path's business, not ours.
        std::erase_if(moves, [&live](const ring::VnodeMove& m) {
          return std::find(live.begin(), live.end(), m.from) == live.end() ||
                 std::find(live.begin(), live.end(), m.to) == live.end();
        });
        if (moves.empty()) return;
        if (moves.size() > config_.rebalance_max_moves) {
          moves.resize(config_.rebalance_max_moves);
        }
        metrics_.counter("rebalance.rounds").add(1);
        execute_moves(std::make_shared<std::vector<ring::VnodeMove>>(
                          std::move(moves)),
                      0);
      });
}

void SednaNode::execute_moves(
    std::shared_ptr<std::vector<ring::VnodeMove>> moves, std::size_t next) {
  if (next >= moves->size()) return;
  execute_move((*moves)[next], [this, moves, next] {
    execute_moves(moves, next + 1);
  });
}

void SednaNode::execute_move(const ring::VnodeMove& move,
                             std::function<void()> done) {
  // CAS-guarded reassignment, mirroring the join/recovery flows, but
  // initiated by the balancer on behalf of a third node.
  zk_.get(vnode_znode(move.vnode),
          [this, move, done = std::move(done)](
              const Result<std::pair<std::string, zk::ZnodeStat>>& got) {
            if (!got.ok()) {
              done();
              return;
            }
            BinaryReader r(got->first);
            const NodeId current = r.get_u32();
            if (r.failed() || current != move.from) {
              done();  // the table changed under the plan
              return;
            }
            BinaryWriter w;
            w.put_u32(move.to);
            zk_.set(vnode_znode(move.vnode), std::move(w).take(),
                    got->second.version,
                    [this, move, done](const Result<zk::ZnodeStat>& set) {
                      if (!set.ok()) {
                        done();
                        return;
                      }
                      metadata_.apply_local(move.vnode, move.to);
                      metrics_.counter("rebalance.moves").add(1);
                      append_change_journal(
                          move.vnode, move.to, [this, move, done] {
                            TakeoverRequest req;
                            req.vnode = move.vnode;
                            req.sources = {move.from};
                            send_oneway(move.to, kMsgTakeoverVnode,
                                        req.encode());
                            done();
                          });
                    });
          });
}

void SednaNode::handle_fetch_vnode(const sim::Message& msg) {
  auto req = FetchVnodeRequest::decode(msg.payload);
  FetchVnodeReply rep;
  if (!req.ok() || !ready_) {
    rep.status = StatusCode::kUnavailable;
    reply(msg, rep.encode());
    return;
  }
  const VnodeId vnode = req->vnode;
  const auto& table = metadata_.table();
  store_->for_each_matching(
      [&table, vnode](std::string_view key) {
        return table.vnode_for_key(key) == vnode;
      },
      [&rep](const store::Item& item) {
        TransferItem out;
        out.key = item.key;
        out.has_latest = item.has_latest;
        out.latest = item.latest;
        out.value_list = item.value_list;
        out.causal = item.causal;
        rep.items.push_back(std::move(out));
      });
  metrics_.counter("transfer.vnodes_served").add(1);
  metrics_.counter("transfer.items_served").add(rep.items.size());
  reply(msg, rep.encode());
}

void SednaNode::handle_scan(const sim::Message& msg) {
  auto req = ScanRequest::decode(msg.payload);
  ScanReply rep;
  if (!req.ok() || !ready_) {
    rep.status = StatusCode::kUnavailable;
    reply(msg, rep.encode());
    return;
  }
  // Report only keys whose primary vnode we own: the client scatters to
  // every node, so replica copies must not triple the result set.
  const auto& table = metadata_.table();
  const std::string& prefix = req->prefix;
  const std::uint32_t limit = req->limit;
  store_->for_each_matching(
      [&](std::string_view key) {
        return key.substr(0, prefix.size()) == prefix &&
               table.owner(table.vnode_for_key(key)) == id();
      },
      [&rep, limit](const store::Item& item) {
        if (rep.keys.size() < limit) {
          rep.keys.push_back(item.key);
        } else {
          rep.truncated = true;
        }
      });
  metrics_.counter("coordinator.scans").add(1);
  reply(msg, rep.encode());
}

void SednaNode::handle_purge_vnode(const sim::Message& msg) {
  auto req = PurgeVnodeRequest::decode(msg.payload);
  if (!req.ok()) return;
  // Refresh the local view first: the journal entry naming the new owner
  // may not have reached us yet.
  metadata_.apply_local(req->vnode, req->new_owner);
  purge_local_vnode(req->vnode);
}

void SednaNode::purge_local_vnode(VnodeId vnode) {
  const auto& table = metadata_.table();
  // Only purge if we are truly out of the slice's replica set now; the
  // previous owner often remains a successor replica on the walk.
  const auto replicas = table.replicas_for_vnode(vnode);
  if (std::find(replicas.begin(), replicas.end(), id()) != replicas.end()) {
    return;
  }
  std::vector<std::string> doomed;
  store_->for_each_matching(
      [&table, vnode](std::string_view key) {
        return table.vnode_for_key(key) == vnode;
      },
      [&doomed](const store::Item& item) { doomed.push_back(item.key); });
  for (const auto& key : doomed) store_->del(key);
  metrics_.counter("transfer.purged_items").add(doomed.size());
}

void SednaNode::handle_takeover(const sim::Message& msg) {
  auto req = TakeoverRequest::decode(msg.payload);
  if (!req.ok()) return;
  const VnodeId vnode = req->vnode;
  const auto sources = req->sources;
  fetch_vnode_from(vnode, sources, 0,
                   [this, vnode, sources](bool ok, std::uint64_t) {
    metrics_.counter(ok ? "transfer.takeovers_ok" : "transfer.takeovers_failed")
        .add(1);
    if (!ok) return;
    // Invite ex-holders to drop their copies. Each source re-checks its
    // own membership in the slice's replica set before deleting anything,
    // so this is a no-op for sources that remain replicas (recovery) and
    // a cleanup for true ex-owners (rebalancing).
    PurgeVnodeRequest purge{vnode, id()};
    for (NodeId source : sources) {
      if (source != id() && network().node_up(source)) {
        send_oneway(source, kMsgPurgeVnode, purge.encode());
      }
    }
  });
}

void SednaNode::fetch_vnode_from(VnodeId vnode, std::vector<NodeId> sources,
                                 std::size_t idx,
                                 std::function<void(bool, std::uint64_t)> done) {
  // Skip ourselves (we may appear in a replica walk) and exhausted lists.
  while (idx < sources.size() && sources[idx] == id()) ++idx;
  if (idx >= sources.size()) {
    done(false, 0);
    return;
  }
  FetchVnodeRequest req;
  req.vnode = vnode;
  const NodeId source = sources[idx];  // read before the capture moves it
  call(source, kMsgFetchVnode, req.encode(),
       [this, vnode, sources = std::move(sources), idx,
        done = std::move(done)](const Status& st,
                                const std::string& body) mutable {
         if (!st.ok()) {
           fetch_vnode_from(vnode, std::move(sources), idx + 1,
                            std::move(done));
           return;
         }
         auto rep = FetchVnodeReply::decode(body);
         if (!rep.ok() || rep->status != StatusCode::kOk) {
           fetch_vnode_from(vnode, std::move(sources), idx + 1,
                            std::move(done));
           return;
         }
         std::uint64_t bytes = 0;
         for (const auto& item : rep->items) {
           bytes += item.key.size();
           if (item.has_latest) bytes += item.latest.value.size();
           for (const auto& sv : item.value_list) bytes += sv.value.size();
           if (!item.causal.empty()) {
             // Causal item: join the record; the LWW mirror refreshes
             // from the winner, so no separate kLatest apply is needed.
             bool changed = false;
             store_->merge_causal(item.key, item.causal, &changed);
             if (changed && persistence_ != nullptr) {
               persistence_->on_write_causal(item.key, item.causal);
             }
           } else if (item.has_latest) {
             WriteRequest w;
             w.mode = WriteMode::kLatest;
             w.key = item.key;
             w.value = item.latest.value;
             w.ts = item.latest.ts;
             w.flags = item.latest.flags;
             apply_write(w);
           }
           for (const auto& sv : item.value_list) {
             WriteRequest w;
             w.mode = WriteMode::kAll;
             w.key = item.key;
             w.value = sv.value;
             w.ts = sv.ts;
             w.source = sv.source;
             apply_write(w);
           }
         }
         metrics_.counter("transfer.items_received").add(rep->items.size());
         done(true, bytes);
       });
}

// ---------------------------------------------------------------------------
// Hinted handoff
// ---------------------------------------------------------------------------

namespace {

/// Hints for the same (mode, key[, source]) coalesce: only the newest
/// version needs replaying under LWW, and causal records coalesce by
/// joining (the join carries every queued write's dot).
std::string hint_dedupe_key(const WriteRequest& req) {
  if (req.causal_tag == WriteRequest::kCausalRecord) return "C:" + req.key;
  if (req.mode == WriteMode::kLatest) return "L:" + req.key;
  return "A:" + std::to_string(req.source) + ":" + req.key;
}

}  // namespace

void SednaNode::queue_hint(NodeId target, const WriteRequest& req) {
  if (config_.hint_max_queued == 0 || target == id()) return;
  {
    HintQueue& q = hint_queues_[target];
    auto it = q.hints.find(hint_dedupe_key(req));
    if (it != q.hints.end()) {
      // Coalesce: keep the newest write, but the original queue position
      // (age for eviction is the age of the oldest un-replayed miss).
      // Causal hints coalesce by joining records — a timestamp compare
      // could drop one of two concurrent writes.
      if (req.causal_tag == WriteRequest::kCausalRecord) {
        it->second.write.record.merge(req.record);
      } else if (req.ts > it->second.write.ts) {
        it->second.write = req;
      }
      return;
    }
  }
  // Eviction may erase `target`'s own (possibly only) queue entry, so no
  // HintQueue reference can be held across this call.
  if (hints_pending_ >= config_.hint_max_queued) evict_oldest_hint();
  PendingHint hint;
  hint.write = req;
  hint.queued_at = now();
  hint.seq = hint_seq_++;
  hint_queues_[target].hints.emplace(hint_dedupe_key(req), std::move(hint));
  ++hints_pending_;
  metrics_.counter("coordinator.hints_queued").add(1);
}

void SednaNode::evict_oldest_hint() {
  NodeId victim_target = kInvalidNode;
  std::string victim_key;
  std::uint64_t oldest_seq = UINT64_MAX;
  for (const auto& [target, q] : hint_queues_) {
    for (const auto& [key, hint] : q.hints) {
      if (hint.seq < oldest_seq) {
        oldest_seq = hint.seq;
        victim_target = target;
        victim_key = key;
      }
    }
  }
  if (victim_target == kInvalidNode) return;
  auto qit = hint_queues_.find(victim_target);
  qit->second.hints.erase(victim_key);
  if (hints_pending_ > 0) --hints_pending_;
  metrics_.counter("coordinator.hints_evicted").add(1);
  if (qit->second.hints.empty() && !qit->second.in_flight) {
    hint_queues_.erase(qit);
  }
}

void SednaNode::bump_hint_backoff(HintQueue& q) {
  const SimDuration base =
      q.backoff == 0
          ? config_.hint_backoff_initial
          : std::min<SimDuration>(config_.hint_backoff_max, q.backoff * 2);
  q.backoff = base;
  // ±25% seeded jitter decorrelates coordinators hammering the same
  // recovering node.
  const double jitter = 0.75 + 0.5 * sim().rng().next_double();
  q.next_attempt =
      now() + static_cast<SimDuration>(static_cast<double>(base) * jitter);
}

void SednaNode::hint_replay_tick() {
  if (!alive() || !ready_ || hint_queues_.empty()) return;
  std::vector<NodeId> due;
  for (const auto& [target, q] : hint_queues_) {
    if (!q.in_flight && now() >= q.next_attempt) due.push_back(target);
  }
  for (NodeId target : due) {
    // Gate on the target's ephemeral znode: deliveries start only once
    // the node has re-registered (its session is back).
    hint_queues_[target].in_flight = true;
    zk_.exists(real_node_znode(target),
               [this, target](const Result<zk::ZnodeStat>& st) {
                 auto it = hint_queues_.find(target);
                 if (it == hint_queues_.end()) return;
                 if (!st.ok()) {
                   it->second.in_flight = false;
                   bump_hint_backoff(it->second);
                   return;
                 }
                 replay_hints_to(target);
               });
  }
}

void SednaNode::replay_hints_to(NodeId target) {
  auto qit = hint_queues_.find(target);
  if (qit == hint_queues_.end()) return;
  HintQueue& q = qit->second;
  q.in_flight = true;
  std::vector<std::string> batch;
  for (const auto& [key, hint] : q.hints) {
    if (batch.size() >= config_.hint_replay_batch) break;
    batch.push_back(key);
  }
  if (batch.empty()) {
    finish_hint_batch(target, /*failed=*/false);
    return;
  }
  // The replay daemon runs outside any request context; each batch gets
  // its own trace so replay storms are attributable (no-op when the
  // tracer is disabled). The root closes in finish_hint_batch.
  const TraceContext replay_ctx =
      begin_trace("hints.replay", TraceStage::kHintReplay);
  q.replay_span = replay_ctx.span_id;
  tracer().annotate(q.replay_span, "target=" + std::to_string(target));
  auto outstanding = std::make_shared<std::size_t>(batch.size());
  auto failures = std::make_shared<std::uint32_t>(0);
  for (const auto& key : batch) {
    HintDeliverRequest req;
    req.write = q.hints.at(key).write;
    call(target, kMsgHintDeliver, req.encode(),
         [this, target, key, outstanding, failures](const Status& st,
                                                    const std::string& body) {
           bool delivered = false;
           if (st.ok()) {
             auto ack = HintAckReply::decode(body);
             // kOutdated means the replica already holds newer data — the
             // hint's job is done either way.
             delivered = ack.ok() && (ack->status == StatusCode::kOk ||
                                      ack->status == StatusCode::kOutdated);
           }
           auto it = hint_queues_.find(target);
           if (it != hint_queues_.end()) {
             if (delivered) {
               if (it->second.hints.erase(key) > 0) {
                 if (hints_pending_ > 0) --hints_pending_;
                 metrics_.counter("coordinator.hints_delivered").add(1);
               }
             } else {
               ++*failures;
             }
           }
           if (--*outstanding == 0) {
             finish_hint_batch(target, *failures > 0);
           }
         });
  }
  set_trace_context({});
}

void SednaNode::finish_hint_batch(NodeId target, bool failed) {
  auto it = hint_queues_.find(target);
  if (it == hint_queues_.end()) return;
  HintQueue& q = it->second;
  q.in_flight = false;
  if (q.replay_span != 0) {
    end_span(q.replay_span, failed ? "failure" : "ok");
    q.replay_span = 0;
  }
  if (failed) {
    bump_hint_backoff(q);
    return;
  }
  q.backoff = 0;
  q.next_attempt = now();  // drain the rest on the next tick
  if (q.hints.empty()) hint_queues_.erase(it);
}

void SednaNode::handle_hint_deliver(const sim::Message& msg) {
  auto req = HintDeliverRequest::decode(msg.payload);
  HintAckReply rep;
  if (!req.ok()) {
    rep.status = StatusCode::kInvalidArgument;
  } else if (!ready_) {
    // Not serving yet: refuse so the coordinator keeps the hint.
    rep.status = StatusCode::kUnavailable;
  } else {
    rep.status = apply_write(req->write);
    metrics_.counter("replica.hints_received").add(1);
  }
  instant_span("replica.hint_apply", std::string(to_string(rep.status)),
               TraceStage::kHintReplay);
  reply(msg, rep.encode());
}

// ---------------------------------------------------------------------------
// Merkle anti-entropy
// ---------------------------------------------------------------------------

void SednaNode::anti_entropy_tick() {
  if (!alive() || !ready_ || ae_in_flight_ || !store_->digests_enabled()) {
    return;
  }
  auto mine = metadata_.table().replica_vnodes_of(id());
  if (mine.empty()) return;
  // Least-recently-synced first (never-synced counts as time 0), vnode id
  // as the deterministic tie-break.
  std::sort(mine.begin(), mine.end(), [this](VnodeId a, VnodeId b) {
    const auto ita = ae_last_synced_.find(a);
    const auto itb = ae_last_synced_.find(b);
    const SimTime ta = ita == ae_last_synced_.end() ? 0 : ita->second;
    const SimTime tb = itb == ae_last_synced_.end() ? 0 : itb->second;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  const std::size_t take =
      std::min<std::size_t>(mine.size(),
                            std::max<std::uint32_t>(
                                1, config_.anti_entropy_vnodes_per_round));
  mine.resize(take);
  ae_in_flight_ = true;
  metrics_.counter("antientropy.rounds").add(1);
  sync_vnodes(std::make_shared<std::vector<VnodeId>>(std::move(mine)), 0);
}

void SednaNode::sync_vnodes(std::shared_ptr<std::vector<VnodeId>> vnodes,
                            std::size_t next) {
  if (!alive() || !ready_ || next >= vnodes->size()) {
    ae_in_flight_ = false;
    return;
  }
  const VnodeId v = (*vnodes)[next];
  ae_last_synced_[v] = now();
  sync_vnode(v, [this, vnodes, next] { sync_vnodes(vnodes, next + 1); });
}

void SednaNode::sync_vnode(VnodeId vnode, std::function<void()> done) {
  std::vector<NodeId> peers;
  for (NodeId n : metadata_.table().replicas_for_vnode(vnode)) {
    if (n != id()) peers.push_back(n);
  }
  if (peers.empty()) {
    done();
    return;
  }
  // The daemon runs outside any request context; open a dedicated trace
  // so repair exchanges show up in trace dumps (no-op while disabled).
  const TraceContext ctx =
      begin_trace("antientropy.sync", TraceStage::kRepair);
  auto finish = [this, root = ctx.span_id, done = std::move(done)] {
    end_span(root);
    set_trace_context({});
    done();
  };
  sync_vnode_peer(vnode, std::make_shared<std::vector<NodeId>>(peers), 0,
                  std::move(finish));
}

void SednaNode::sync_vnode_peer(VnodeId vnode,
                                std::shared_ptr<std::vector<NodeId>> peers,
                                std::size_t idx, std::function<void()> done) {
  if (!alive() || idx >= peers->size()) {
    done();
    return;
  }
  const NodeId peer = (*peers)[idx];
  auto next = [this, vnode, peers, idx, done = std::move(done)] {
    sync_vnode_peer(vnode, peers, idx + 1, done);
  };
  VnodeDigestRequest req;
  req.vnode = vnode;
  req.root = store_->digest_root(vnode);
  req.buckets = store_->digest_buckets(vnode);
  metrics_.counter("antientropy.digest_requests").add(1);
  call(peer, kMsgVnodeDigest, req.encode(),
       [this, vnode, peer, next = std::move(next)](const Status& st,
                                                   const std::string& body) {
         if (!st.ok()) {
           metrics_.counter("antientropy.peer_timeouts").add(1);
           next();
           return;
         }
         auto rep = VnodeDigestReply::decode(body);
         if (!rep.ok() || rep->status != StatusCode::kOk || rep->match) {
           next();
           return;
         }
         metrics_.counter("antientropy.digest_mismatches").add(1);
         reconcile_with_peer(vnode, peer, *rep, next);
       });
}

void SednaNode::reconcile_with_peer(VnodeId vnode, NodeId peer,
                                    const VnodeDigestReply& rep,
                                    std::function<void()> done) {
  const SpanId span = begin_span("antientropy.reconcile", TraceStage::kRepair);
  const TraceContext prev = enter_span(span);

  // Local view of the mismatched buckets.
  struct LocalKey {
    bool has_latest = false;
    store::VersionedValue latest;
    std::vector<store::SourceValue> list;
    std::uint64_t list_digest = 0;
    store::CausalRecord causal;
    std::uint64_t causal_digest = 0;
  };
  std::set<std::uint32_t> mismatched(rep.mismatched.begin(),
                                     rep.mismatched.end());
  const std::uint32_t bucket_count = store_->digest_buckets_per_vnode();
  const auto& table = metadata_.table();
  std::map<std::string, LocalKey> local;
  store_->for_each_matching(
      [&table, &mismatched, bucket_count, vnode](std::string_view key) {
        return table.vnode_for_key(key) == vnode &&
               mismatched.contains(
                   store::LocalStore::digest_bucket_of(key, bucket_count));
      },
      [&local](const store::Item& item) {
        LocalKey lk;
        lk.has_latest = item.has_latest;
        lk.latest = item.latest;
        lk.list = item.value_list;
        lk.list_digest = store::LocalStore::value_list_digest(item.value_list);
        if (!item.causal.empty()) {
          lk.causal = item.causal;
          lk.causal_digest = item.causal.digest();
        }
        local.emplace(item.key, std::move(lk));
      });

  // Decide per key: push what we have newer, pull what the peer has
  // newer; a value-list digest mismatch reconciles both directions (the
  // per-source LWW merge makes the union converge).
  std::vector<WriteRequest> pushes;
  // key, pull value list, pull causal record
  std::vector<std::tuple<std::string, bool, bool>> pulls;
  std::set<std::string> peer_keys;
  for (const KeySummary& ks : rep.keys) {
    peer_keys.insert(ks.key);
    const auto it = local.find(ks.key);
    const std::uint64_t local_causal =
        it == local.end() ? 0 : it->second.causal_digest;
    const bool causal_key = local_causal != 0 || ks.causal_digest != 0;
    const std::uint64_t local_list =
        it == local.end() ? 0 : it->second.list_digest;
    const bool list_diff = local_list != ks.list_digest;
    if (causal_key) {
      // Causal keys reconcile by exchanging records: timestamp ordering
      // cannot rank concurrent siblings, but the semilattice join
      // converges from both directions. Equal digests mean converged.
      const bool causal_diff = local_causal != ks.causal_digest;
      if (causal_diff) {
        if (local_causal != 0) {
          WriteRequest w;
          w.key = ks.key;
          w.causal_tag = WriteRequest::kCausalRecord;
          w.record = it->second.causal;
          pushes.push_back(std::move(w));
        }
        if (ks.causal_digest != 0) {
          pulls.emplace_back(ks.key, list_diff, true);
        }
      } else if (list_diff) {
        pulls.emplace_back(ks.key, true, false);
      }
    } else {
      const bool local_has = it != local.end() && it->second.has_latest;
      const Timestamp local_ts = local_has ? it->second.latest.ts : 0;
      if ((ks.has_latest && (!local_has || local_ts < ks.latest_ts)) ||
          list_diff) {
        pulls.emplace_back(ks.key, list_diff, false);
      }
      if (local_has && (!ks.has_latest || ks.latest_ts < local_ts)) {
        WriteRequest w;
        w.mode = WriteMode::kLatest;
        w.key = ks.key;
        w.value = it->second.latest.value;
        w.ts = it->second.latest.ts;
        w.flags = it->second.latest.flags;
        pushes.push_back(std::move(w));
      }
    }
    if (list_diff && it != local.end()) {
      for (const auto& sv : it->second.list) {
        WriteRequest w;
        w.mode = WriteMode::kAll;
        w.key = ks.key;
        w.value = sv.value;
        w.ts = sv.ts;
        w.source = sv.source;
        pushes.push_back(std::move(w));
      }
    }
  }
  // Keys the peer did not list at all are missing there — unless its
  // summary was truncated, in which case absence proves nothing and the
  // next rounds will cover the remainder.
  if (!rep.truncated) {
    for (const auto& [key, lk] : local) {
      if (peer_keys.contains(key)) continue;
      if (lk.causal_digest != 0) {
        // Missing causal key: push the whole record (subsumes the
        // mirror, which the peer rebuilds from the winner).
        WriteRequest w;
        w.key = key;
        w.causal_tag = WriteRequest::kCausalRecord;
        w.record = lk.causal;
        pushes.push_back(std::move(w));
      } else if (lk.has_latest) {
        WriteRequest w;
        w.mode = WriteMode::kLatest;
        w.key = key;
        w.value = lk.latest.value;
        w.ts = lk.latest.ts;
        w.flags = lk.latest.flags;
        pushes.push_back(std::move(w));
      }
      for (const auto& sv : lk.list) {
        WriteRequest w;
        w.mode = WriteMode::kAll;
        w.key = key;
        w.value = sv.value;
        w.ts = sv.ts;
        w.source = sv.source;
        pushes.push_back(std::move(w));
      }
    }
  } else {
    metrics_.counter("antientropy.truncated_replies").add(1);
  }

  auto outstanding = std::make_shared<std::size_t>(1);
  auto finish = [this, span, prev, outstanding,
                 done = std::move(done)] {
    if (--*outstanding == 0) {
      end_span(span);
      done();
    }
  };
  for (const WriteRequest& w : pushes) {
    ++*outstanding;
    metrics_.counter("antientropy.keys_pushed").add(1);
    call(peer, kMsgReplicaWrite, w.encode(),
         [finish](const Status&, const std::string&) { finish(); });
  }
  for (const auto& [key, want_list, want_causal] : pulls) {
    ++*outstanding;
    pull_key(peer, key, want_list, want_causal, finish);
  }
  set_trace_context(prev);
  finish();  // releases the +1 guard
}

void SednaNode::pull_key(NodeId peer, const std::string& key, bool want_list,
                         bool want_causal, std::function<void()> done) {
  ReadRequest latest_req;
  latest_req.mode = ReadMode::kLatest;
  latest_req.key = key;
  latest_req.causal = want_causal;
  call(peer, kMsgReplicaRead, latest_req.encode(),
       [this, peer, key, want_list, want_causal, done = std::move(done)](
           const Status& st, const std::string& body) {
         if (st.ok()) {
           auto rep = ReadReply::decode(body);
           if (want_causal) {
             if (rep.ok() && rep->has_causal) {
               bool changed = false;
               store_->merge_causal(key, rep->causal, &changed);
               if (changed) {
                 if (persistence_ != nullptr) {
                   persistence_->on_write_causal(key, rep->causal);
                 }
                 metrics_.counter("antientropy.keys_pulled").add(1);
               }
             }
           } else if (rep.ok() && rep->has_latest) {
             WriteRequest w;
             w.mode = WriteMode::kLatest;
             w.key = key;
             w.value = rep->latest.value;
             w.ts = rep->latest.ts;  // pinned: replay is idempotent
             w.flags = rep->latest.flags;
             if (apply_write(w) == StatusCode::kOk) {
               metrics_.counter("antientropy.keys_pulled").add(1);
             }
           }
         }
         if (!want_list) {
           done();
           return;
         }
         ReadRequest list_req;
         list_req.mode = ReadMode::kAll;
         list_req.key = key;
         call(peer, kMsgReplicaRead, list_req.encode(),
              [this, key, done](const Status& st2, const std::string& body2) {
                if (st2.ok()) {
                  auto rep2 = ReadReply::decode(body2);
                  if (rep2.ok()) {
                    for (const auto& sv : rep2->value_list) {
                      WriteRequest w;
                      w.mode = WriteMode::kAll;
                      w.key = key;
                      w.value = sv.value;
                      w.ts = sv.ts;
                      w.source = sv.source;
                      apply_write(w);
                    }
                  }
                }
                done();
              });
       });
}

// ---------------------------------------------------------------------------
// Traffic-aware rebalancing
// ---------------------------------------------------------------------------

void SednaNode::traffic_rebalance_tick() {
  if (!alive() || !ready_) return;
  // One round at a time: a new plan over telemetry that predates the
  // previous round's cutovers would double-move the same slices.
  if (migrations_dispatched_ > 0) return;
  zk_.children(
      kZkRealNodes, [this](const Result<std::vector<std::string>>& kids) {
        if (!kids.ok() || !alive() || !ready_) return;
        std::vector<NodeId> live;
        for (const auto& name : kids.value()) {
          if (name.rfind("node-", 0) != 0) continue;
          live.push_back(static_cast<NodeId>(
              std::strtoul(name.c_str() + 5, nullptr, 10)));
        }
        // Single deterministic actor: the lowest live node id.
        if (live.empty() ||
            *std::min_element(live.begin(), live.end()) != id()) {
          return;
        }
        std::sort(live.begin(), live.end());
        // Assemble the cluster-wide imbalance table from each live node's
        // reported row (missing rows — a node that has not reported yet —
        // simply count as zero traffic).
        auto table = std::make_shared<ring::ImbalanceTable>();
        auto pending = std::make_shared<std::size_t>(live.size());
        auto live_shared =
            std::make_shared<std::vector<NodeId>>(std::move(live));
        for (NodeId n : *live_shared) {
          const std::string path =
              std::string(kZkRealNodes) + "/load-" + std::to_string(n);
          zk_.get(path,
                  [this, table, pending, live_shared](
                      const Result<std::pair<std::string, zk::ZnodeStat>>&
                          got) {
                    if (got.ok()) {
                      auto row = ring::RealNodeLoad::decode(got->first);
                      if (row.ok()) table->update(*row);
                    }
                    if (--*pending == 0) {
                      run_traffic_plan(*table, std::move(*live_shared));
                    }
                  });
        }
      });
}

void SednaNode::run_traffic_plan(const ring::ImbalanceTable& table,
                                 std::vector<NodeId> live) {
  if (!alive() || !ready_ || migrations_dispatched_ > 0) return;
  TrafficRebalancer::HealthFn health = health_provider_;
  if (!health) health = [](NodeId) { return HealthState::kHealthy; };
  const auto moves =
      traffic_rebalancer_.plan(table, metadata_.table(), live, health, now());
  metrics_.counter("rebalance.traffic_rounds").add(1);
  for (const MigrationPlan& m : moves) {
    ++migrations_dispatched_;
    metrics_.counter("rebalance.migrations_started").add(1);
    // One trace per move, rooted at the leader: the destination continues
    // the context carried by the dispatch RPC, so the whole protocol
    // (snapshot → catch-up → cutover → drain) is one span tree.
    const TraceContext mroot =
        begin_trace("rebalance.migration", TraceStage::kMigration);
    tracer().annotate(mroot.span_id,
                      "vnode=" + std::to_string(m.vnode) +
                          " from=" + std::to_string(m.from) +
                          " to=" + std::to_string(m.to));
    MigrateVnodeRequest req{m.vnode, m.from};
    call_with_timeout(
        m.to, kMsgMigrateVnode, req.encode(), config_.migration_timeout,
        [this, root = mroot.span_id](const Status& st,
                                     const std::string& body) {
          if (migrations_dispatched_ > 0) --migrations_dispatched_;
          auto rep = st.ok() ? MigrateVnodeReply::decode(body)
                             : Result<MigrateVnodeReply>(st);
          if (!rep.ok() || rep->status != StatusCode::kOk) {
            // Completion metrics live on the destination; the leader only
            // tracks dispatches that came back without a commit.
            metrics_.counter("rebalance.migrations_failed").add(1);
            end_span(root, "failure");
          } else {
            end_span(root, "ok");
          }
          set_trace_context({});
        });
  }
  set_trace_context({});
}

void SednaNode::handle_migrate_vnode(const sim::Message& msg) {
  auto req = MigrateVnodeRequest::decode(msg.payload);
  if (!req.ok()) return;
  begin_migration(req->vnode, req->from,
                  [this, msg](const MigrateVnodeReply& rep) {
                    reply(msg, rep.encode());
                  });
}

void SednaNode::begin_migration(
    VnodeId vnode, NodeId from,
    std::function<void(const MigrateVnodeReply&)> done) {
  auto state = std::make_shared<MigrateVnodeReply>();
  if (!ready_ || from == id() || migrating_in_.contains(vnode) ||
      metadata_.table().owner(vnode) == id()) {
    state->status = StatusCode::kRefused;
    done(*state);
    return;
  }
  migrating_in_.insert(vnode);
  metrics_.counter("rebalance.migrations_accepted").add(1);
  if (flight_ != nullptr) {
    flight_->record(now(), "migration", "node-" + std::to_string(id()),
                    "migration-start",
                    "vnode=" + std::to_string(vnode) +
                        " from=" + std::to_string(from));
  }
  // Trace continuation: a leader-dispatched migration arrives with the
  // leader's context stamped on the RPC — run as a child span so the
  // whole protocol is one tree rooted at the leader. Direct invocations
  // (tests, joins) open their own root. No-op while the tracer is off.
  SpanId root = 0;
  if (trace_context().active()) {
    root = begin_span("migration.run", TraceStage::kMigration);
    enter_span(root);
  } else {
    root = begin_trace("rebalance.migration", TraceStage::kMigration).span_id;
  }
  tracer().annotate(root, "vnode=" + std::to_string(vnode) +
                              " from=" + std::to_string(from));
  const TraceContext mctx = trace_context();
  // Opens a protocol-phase span under the migration root and makes it
  // current, so each phase's RPCs parent beneath it.
  auto enter_phase = [this, mctx](const char* name) {
    const SpanId s =
        tracer().begin(mctx, name, id(), now(), TraceStage::kMigration);
    if (s != 0) set_trace_context(TraceContext{mctx.trace_id, s});
    return s;
  };
  // `migrating_in_` doubles as the liveness token: on_crash clears it, so
  // any continuation that still fires afterwards (stale RPC callbacks
  // delivered post-restart) must bail out instead of touching the store.
  auto finish = [this, vnode, root, state,
                 done = std::move(done)](bool committed) {
    migrating_in_.erase(vnode);
    if (!committed) metrics_.counter("rebalance.migrations_aborted").add(1);
    if (flight_ != nullptr) {
      flight_->record(now(), "migration", "node-" + std::to_string(id()),
                      committed ? "migration-commit" : "migration-abort",
                      "vnode=" + std::to_string(vnode));
    }
    end_span(root, committed ? "ok" : "failure");
    set_trace_context({});
    done(*state);
  };
  // Phase 1: bulk snapshot pull from the current owner.
  const SpanId snap = enter_phase("migrate.snapshot");
  fetch_vnode_from(
      vnode, {from}, 0,
      [this, vnode, from, state, finish, enter_phase,
       snap](bool fetched, std::uint64_t bytes) {
        if (!migrating_in_.contains(vnode)) return;
        end_span(snap, fetched ? "ok" : "failure");
        if (!fetched) {
          state->status = StatusCode::kUnavailable;
          finish(false);
          return;
        }
        state->bytes += bytes;
        // Phase 2: delta catch-up — writes that landed at the source while
        // the snapshot was in flight.
        const SpanId catchup = enter_phase("migrate.catchup");
        migration_catchup(vnode, from, [this, vnode, from, state, finish,
                                        enter_phase, catchup](
                                           bool caught, std::size_t keys) {
          if (!migrating_in_.contains(vnode)) return;
          end_span(catchup, caught ? "ok" : "failure");
          if (!caught) {
            state->status = StatusCode::kUnavailable;
            finish(false);
            return;
          }
          state->items += keys;
          // Phase 3: atomic cutover — re-verify the owner, then CAS the
          // vnode znode to us under its version.
          const SimTime cut_start = now();
          const SpanId cutover = enter_phase("migrate.cutover");
          zk_.get(
              vnode_znode(vnode),
              [this, vnode, from, state, finish, cut_start, enter_phase,
               cutover](
                  const Result<std::pair<std::string, zk::ZnodeStat>>& got) {
                if (!migrating_in_.contains(vnode)) return;
                if (!got.ok()) {
                  end_span(cutover, "failure");
                  // Unknown outcome territory (ZK unreachable): keep the
                  // pulled data — it is never wrong to hold extra
                  // replicas — and let the leader retry later.
                  state->status = StatusCode::kUnavailable;
                  finish(false);
                  return;
                }
                BinaryReader r(got->first);
                const NodeId current = r.get_u32();
                if (r.failed() || current != from) {
                  // Plan went stale: the slice moved under the leader's
                  // feet. Definite no-go — drop the pulled copy (unless
                  // the walk keeps us as a successor replica).
                  end_span(cutover, "stale");
                  state->status = StatusCode::kRefused;
                  purge_local_vnode(vnode);
                  finish(false);
                  return;
                }
                BinaryWriter w;
                w.put_u32(id());
                zk_.set(
                    vnode_znode(vnode), std::move(w).take(),
                    got->second.version,
                    [this, vnode, from, state, finish, cut_start,
                     enter_phase, cutover](const Result<zk::ZnodeStat>& set) {
                      if (!migrating_in_.contains(vnode)) return;
                      if (!set.ok()) {
                        end_span(cutover,
                                 set.status().is(StatusCode::kTimeout)
                                     ? "timeout"
                                     : "failure");
                        if (set.status().is(StatusCode::kFailure) ||
                            set.status().is(StatusCode::kNotFound)) {
                          // Definite CAS loss: the version moved, so
                          // ownership is provably elsewhere.
                          state->status = StatusCode::kRefused;
                          purge_local_vnode(vnode);
                        } else {
                          // Timeout / partition: the CAS may have
                          // committed on the other side. KEEP the data —
                          // purging here could orphan acked writes if we
                          // are in fact the new owner — and resync the
                          // table so a committed cutover surfaces.
                          state->status = StatusCode::kUnavailable;
                          metadata_.sync_now();
                        }
                        finish(false);
                        return;
                      }
                      metadata_.apply_local(vnode, id());
                      state->cutover_us = now() - cut_start;
                      metrics_.histogram("rebalance.cutover_latency_us")
                          .record(state->cutover_us,
                                  trace_context().trace_id);
                      end_span(cutover, "ok");
                      append_change_journal(vnode, id(), [this, vnode, from,
                                                          state, finish,
                                                          enter_phase] {
                        if (!migrating_in_.contains(vnode)) return;
                        // Phase 4: drain catch-up — writes the old owner
                        // acked between phase 2 and the cutover landing.
                        // Best-effort: a miss here is converged later by
                        // anti-entropy against the surviving replicas.
                        const SpanId drain = enter_phase("migrate.drain");
                        migration_catchup(
                            vnode, from,
                            [this, vnode, from, state, finish, drain](
                                bool, std::size_t keys) {
                              if (!migrating_in_.contains(vnode)) return;
                              end_span(drain);
                              state->items += keys;
                              // Phase 5: invite the old owner to drop its
                              // copy (it re-checks replica membership
                              // before deleting anything).
                              PurgeVnodeRequest purge{vnode, id()};
                              send_oneway(from, kMsgPurgeVnode,
                                          purge.encode());
                              state->status = StatusCode::kOk;
                              metrics_
                                  .counter("rebalance.migrations_completed")
                                  .add(1);
                              metrics_.counter("rebalance.bytes_moved")
                                  .add(state->bytes);
                              finish(true);
                            });
                      });
                    });
              });
        });
      });
}

void SednaNode::migration_catchup(VnodeId vnode, NodeId from,
                                  std::function<void(bool, std::size_t)> done) {
  VnodeDigestRequest req;
  req.vnode = vnode;
  req.root = store_->digest_root(vnode);
  req.buckets = store_->digest_buckets(vnode);
  call(from, kMsgVnodeDigest, req.encode(), [this, vnode, from,
                                             done = std::move(done)](
                                                const Status& st,
                                                const std::string& body) {
    if (!st.ok()) {
      done(false, 0);
      return;
    }
    auto rep = VnodeDigestReply::decode(body);
    if (!rep.ok() || rep->status != StatusCode::kOk) {
      done(false, 0);
      return;
    }
    if (rep->match) {
      done(true, 0);
      return;
    }
    // Local view of the mismatched buckets — the same scan as the
    // anti-entropy reconcile but pull-only: the source stays authoritative
    // until cutover, so nothing is pushed back. A truncated digest reply
    // leaves a remainder for the post-cutover drain pass (and ultimately
    // anti-entropy) to cover.
    struct LocalKey {
      bool has_latest = false;
      Timestamp ts = 0;
      std::uint64_t list_digest = 0;
      std::uint64_t causal_digest = 0;
    };
    std::set<std::uint32_t> mismatched(rep->mismatched.begin(),
                                       rep->mismatched.end());
    const std::uint32_t bucket_count = store_->digest_buckets_per_vnode();
    const auto& table = metadata_.table();
    std::map<std::string, LocalKey> local;
    store_->for_each_matching(
        [&table, &mismatched, bucket_count, vnode](std::string_view key) {
          return table.vnode_for_key(key) == vnode &&
                 mismatched.contains(
                     store::LocalStore::digest_bucket_of(key, bucket_count));
        },
        [&local](const store::Item& item) {
          local.emplace(
              item.key,
              LocalKey{item.has_latest, item.has_latest ? item.latest.ts : 0,
                       store::LocalStore::value_list_digest(item.value_list),
                       item.causal.empty() ? 0 : item.causal.digest()});
        });
    // key, pull value list, pull causal record
    std::vector<std::tuple<std::string, bool, bool>> pulls;
    for (const KeySummary& ks : rep->keys) {
      const auto it = local.find(ks.key);
      const std::uint64_t local_causal =
          it == local.end() ? 0 : it->second.causal_digest;
      const std::uint64_t local_list =
          it == local.end() ? 0 : it->second.list_digest;
      const bool list_diff = local_list != ks.list_digest;
      if (ks.causal_digest != 0 || local_causal != 0) {
        // Causal key: pull the peer's record when the digests differ —
        // the local join absorbs it without ranking siblings.
        if (ks.causal_digest != 0 && ks.causal_digest != local_causal) {
          pulls.emplace_back(ks.key, list_diff, true);
        } else if (list_diff) {
          pulls.emplace_back(ks.key, true, false);
        }
        continue;
      }
      const bool local_has = it != local.end() && it->second.has_latest;
      const Timestamp local_ts = local_has ? it->second.ts : 0;
      if ((ks.has_latest && (!local_has || local_ts < ks.latest_ts)) ||
          list_diff) {
        pulls.emplace_back(ks.key, list_diff, false);
      }
    }
    metrics_.counter("rebalance.catchup_keys").add(pulls.size());
    const std::size_t pulled = pulls.size();
    auto outstanding = std::make_shared<std::size_t>(1);
    auto finish = [outstanding, pulled, done = std::move(done)] {
      if (--*outstanding == 0) done(true, pulled);
    };
    for (const auto& [key, want_list, want_causal] : pulls) {
      ++*outstanding;
      pull_key(from, key, want_list, want_causal, finish);
    }
    finish();  // releases the +1 guard
  });
}

void SednaNode::handle_vnode_digest(const sim::Message& msg) {
  auto req = VnodeDigestRequest::decode(msg.payload);
  VnodeDigestReply rep;
  if (!req.ok() || !ready_ || !store_->digests_enabled()) {
    rep.status = StatusCode::kUnavailable;
    reply(msg, rep.encode());
    return;
  }
  metrics_.counter("antientropy.digest_serves").add(1);
  const auto local = store_->digest_buckets(req->vnode);
  if (local.size() == req->buckets.size() &&
      store_->digest_root(req->vnode) == req->root) {
    rep.match = true;
    instant_span("antientropy.digest_match", "ok", TraceStage::kRepair);
    reply(msg, rep.encode());
    return;
  }
  std::set<std::uint32_t> mismatched;
  if (local.size() != req->buckets.size()) {
    // Bucket-count mismatch (config drift): treat everything as divergent.
    for (std::uint32_t b = 0; b < local.size(); ++b) mismatched.insert(b);
  } else {
    for (std::uint32_t b = 0; b < local.size(); ++b) {
      if (local[b] != req->buckets[b]) mismatched.insert(b);
    }
  }
  rep.mismatched.assign(mismatched.begin(), mismatched.end());
  const std::uint32_t bucket_count = store_->digest_buckets_per_vnode();
  const auto& table = metadata_.table();
  const VnodeId vnode = req->vnode;
  store_->for_each_matching(
      [&table, &mismatched, bucket_count, vnode](std::string_view key) {
        return table.vnode_for_key(key) == vnode &&
               mismatched.contains(
                   store::LocalStore::digest_bucket_of(key, bucket_count));
      },
      [this, &rep](const store::Item& item) {
        if (rep.keys.size() >= config_.anti_entropy_max_keys) {
          rep.truncated = true;
          return;
        }
        KeySummary ks;
        ks.key = item.key;
        ks.has_latest = item.has_latest;
        ks.latest_ts = item.has_latest ? item.latest.ts : 0;
        ks.list_digest = store::LocalStore::value_list_digest(item.value_list);
        if (!item.causal.empty()) ks.causal_digest = item.causal.digest();
        rep.keys.push_back(std::move(ks));
      });
  instant_span("antientropy.digest_mismatch", "ok", TraceStage::kRepair);
  reply(msg, rep.encode());
}

}  // namespace sedna::cluster
