#include "cluster/metadata.h"

#include <charconv>
#include <memory>

#include "cluster/protocol.h"

namespace sedna::cluster {

namespace {

/// Parses the numeric suffix of a journal entry name "c0000000042" and
/// returns it 1-based (suffix + 1) so 0 unambiguously means "no entry" —
/// the very first journal entry has suffix 0.
[[nodiscard]] std::uint64_t journal_seq(std::string_view name) {
  if (name.empty() || name.front() != 'c') return 0;
  std::uint64_t seq = 0;
  const auto digits = name.substr(1);
  if (std::from_chars(digits.data(), digits.data() + digits.size(), seq)
          .ec != std::errc{}) {
    return 0;
  }
  return seq + 1;
}

}  // namespace

void MetadataCache::start(ReadyCallback on_ready) {
  sync_timer_.cancel();  // restart-safe: drop any previous sync chain
  ready_ = false;
  zk_.get(kZkConfig, [this, on_ready = std::move(on_ready)](
                         const Result<std::pair<std::string,
                                                zk::ZnodeStat>>& got) {
    if (!got.ok()) {
      on_ready(got.status());
      return;
    }
    auto cfg = ClusterConfig::decode(got->first);
    if (!cfg.ok()) {
      on_ready(cfg.status());
      return;
    }
    config_ = cfg.value();
    table_ = ring::VnodeTable(config_.total_vnodes, config_.replicas);
    load_vnodes(0, std::move(on_ready));
  });
}

void MetadataCache::load_vnodes(std::uint32_t next, ReadyCallback on_ready) {
  // Bulk load in windows of 64 concurrent reads: the paper's boot-time
  // full scan, bounded so we do not stampede the ensemble.
  constexpr std::uint32_t kWindow = 64;
  if (next >= config_.total_vnodes) {
    // Record the journal high-water mark: everything older is already in
    // the freshly loaded table.
    zk_.children(kZkChanges, [this, on_ready = std::move(on_ready)](
                                 const Result<std::vector<std::string>>&
                                     kids) {
      if (kids.ok()) {
        for (const auto& name : kids.value()) {
          last_seen_change_ = std::max(last_seen_change_, journal_seq(name));
        }
      }
      ready_ = true;
      schedule_sync();
      on_ready(Status::Ok());
    });
    return;
  }
  const std::uint32_t end =
      std::min(next + kWindow, config_.total_vnodes);
  auto remaining = std::make_shared<std::uint32_t>(end - next);
  auto failed = std::make_shared<bool>(false);
  for (std::uint32_t v = next; v < end; ++v) {
    zk_.get(vnode_znode(v),
            [this, v, end, remaining, failed,
             on_ready](const Result<std::pair<std::string,
                                              zk::ZnodeStat>>& got) mutable {
              if (got.ok()) {
                BinaryReader r(got->first);
                const NodeId owner = r.get_u32();
                if (!r.failed()) table_.assign(v, owner);
              } else if (!got.status().is(StatusCode::kNotFound)) {
                *failed = true;
              }
              if (--*remaining == 0) {
                if (*failed) {
                  on_ready(Status::Unavailable("vnode table load failed"));
                } else {
                  load_vnodes(end, std::move(on_ready));
                }
              }
            });
  }
}

void MetadataCache::schedule_sync() {
  sync_timer_ = host_.sim().schedule(zk_.current_lease(), [this] {
    if (!host_.alive()) return;
    // Periodic lease sync is background work, not part of whatever trace
    // the host last dispatched. (sync_now() calls, by contrast, run under
    // the caller's context so retry-triggered syncs show in the tree.)
    host_.set_trace_context({});
    run_sync([this] { schedule_sync(); });
  });
}

void MetadataCache::sync_now(std::function<void()> done) {
  run_sync(std::move(done));
}

void MetadataCache::run_sync(std::function<void()> done) {
  ++syncs_;
  zk_.children(kZkChanges, [this, done = std::move(done)](
                               const Result<std::vector<std::string>>&
                                   kids) mutable {
    if (!kids.ok()) {
      zk_.note_sync_changes(0);
      if (done) done();
      return;
    }
    // Collect entries newer than our high-water mark, in order.
    std::vector<std::uint64_t> fresh;
    for (const auto& name : kids.value()) {
      const std::uint64_t seq = journal_seq(name);
      if (seq > last_seen_change_) fresh.push_back(seq);
    }
    std::sort(fresh.begin(), fresh.end());
    zk_.note_sync_changes(fresh.size());
    if (fresh.empty()) {
      if (done) done();
      return;
    }
    // Fetch the entries (vnode, owner) and apply in sequence order.
    auto remaining = std::make_shared<std::size_t>(fresh.size());
    auto updates = std::make_shared<
        std::map<std::uint64_t, std::pair<VnodeId, NodeId>>>();
    auto finish = [this, remaining, updates,
                   done = std::move(done)]() mutable {
      if (--*remaining != 0) return;
      for (const auto& [seq, change] : *updates) {
        apply_local(change.first, change.second);
        ++refreshed_;
        last_seen_change_ = std::max(last_seen_change_, seq);
      }
      if (done) done();
    };
    for (std::uint64_t seq : fresh) {
      char name[32];
      // `seq` is 1-based; the znode suffix is the raw 0-based counter.
      std::snprintf(name, sizeof name, "%s/c%010llu", kZkChanges,
                    static_cast<unsigned long long>(seq - 1));
      zk_.get(name, [this, seq, updates, finish](
                        const Result<std::pair<std::string,
                                               zk::ZnodeStat>>& got) mutable {
        if (got.ok()) {
          BinaryReader r(got->first);
          const VnodeId vnode = r.get_u32();
          const NodeId owner = r.get_u32();
          if (!r.failed()) (*updates)[seq] = {vnode, owner};
        } else {
          // Entry vanished or unreadable: remember we passed it so we do
          // not refetch forever.
          last_seen_change_ = std::max(last_seen_change_, seq);
        }
        finish();
      });
    }
  });
}

void MetadataCache::refresh_vnode(VnodeId v, std::function<void()> done) {
  zk_.get(vnode_znode(v),
          [this, v, done = std::move(done)](
              const Result<std::pair<std::string, zk::ZnodeStat>>& got) {
            if (got.ok()) {
              BinaryReader r(got->first);
              const NodeId owner = r.get_u32();
              if (!r.failed()) {
                apply_local(v, owner);
                ++refreshed_;
              }
            }
            if (done) done();
          });
}

}  // namespace sedna::cluster
