// Per-node health states shared by the ClusterMonitor (which derives
// them from liveness freshness and hint backlog) and the traffic-aware
// rebalancer (which must never migrate data onto a node that is not
// fully healthy). Split out of monitor.h so node-side code can consume
// the enum without pulling in the harness-level monitor.
#pragma once

#include <cstdint>

namespace sedna::cluster {

enum class HealthState : std::uint8_t { kHealthy, kDegraded, kSuspect, kDead };

[[nodiscard]] constexpr const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kDead: return "dead";
  }
  return "?";
}

}  // namespace sedna::cluster
