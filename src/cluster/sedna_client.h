// SednaClient: the client-side library (paper Section III.F APIs).
//
// A client host carries the same metadata machinery as a server — ZooKeeper
// session plus lease-cached vnode table — so it can route each request in
// zero hops straight to the key's primary replica, which coordinates the
// quorum (Section VII: "each node caches enough routing information locally
// to route a request to the appropriate node directly").
//
// API surface = the paper's four calls:
//   write_latest(k, v)  → ok | outdated | failure
//   write_all(k, v)     → ok | outdated | failure   (source = this client)
//   read_latest(k)      → freshest value regardless of writer
//   read_all(k)         → the full per-source value list
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "cluster/metadata.h"
#include "cluster/protocol.h"
#include "common/metrics.h"
#include "sim/host.h"
#include "store/item.h"
#include "zk/zk_client.h"

namespace sedna::cluster {

struct SednaClientConfig {
  std::vector<NodeId> zk_ensemble;
  /// Attempts per operation; each retry targets the next replica as
  /// coordinator after refreshing the metadata cache.
  int max_attempts = 3;
  /// Client-side deadline per attempt. Must comfortably exceed the
  /// coordinator's replica RPC timeout: the coordinator may legitimately
  /// take one full replica timeout to settle a quorum when a replica is
  /// dead, and the client must still be listening when the answer comes.
  SimDuration op_timeout_us = 250 * 1000;
  /// Seeded exponential backoff before retry k: ~initial·2^(k-1), capped
  /// at the max, with ±`retry_backoff_jitter` fractional spread so a herd
  /// of clients retrying into a degraded coordinator decorrelates.
  /// 0 restores the old behavior (retry immediately after the metadata
  /// sync).
  SimDuration retry_backoff_initial_us = 2000;
  SimDuration retry_backoff_max_us = 100 * 1000;
  double retry_backoff_jitter = 0.25;
  /// Whole-operation deadline (all attempts + backoffs). When set, every
  /// request message is stamped with `now + op_deadline_us` so any host on
  /// the path sheds the work once it cannot finish in time, each attempt's
  /// RPC timeout is clamped to the remaining budget, and an op whose
  /// deadline passes between attempts fails with kTimeout instead of
  /// burning another attempt. 0 disables (legacy behavior).
  SimDuration op_deadline_us = 0;
  /// Client-side adaptive retry budget (token bucket): every retry —
  /// whatever provoked it — spends one token; every successfully settled
  /// operation refills `retry_budget_refill` tokens up to the capacity.
  /// With refill r, steady-state retries cannot exceed an r fraction of
  /// fresh traffic, which is what keeps a saturated cluster from being
  /// driven metastable by its own retries. An op that wants to retry with
  /// an empty bucket fails fast with kOverloaded. Capacity 0 disables
  /// (legacy unbudgeted retries).
  double retry_budget_capacity = 0.0;
  double retry_budget_refill = 0.1;
  zk::ZkClientConfig zk_client;
  sim::HostConfig host;
};

class SednaClient : public sim::Host {
 public:
  using ReadyCallback = std::function<void(const Status&)>;
  using WriteCallback = std::function<void(const Status&)>;
  using ReadLatestCallback =
      std::function<void(const Result<store::VersionedValue>&)>;
  using ReadAllCallback =
      std::function<void(const Result<std::vector<store::SourceValue>>&)>;

  SednaClient(sim::Network& net, NodeId id, SednaClientConfig config);

  /// Connects the session and loads the vnode table.
  void start(ReadyCallback on_ready);
  [[nodiscard]] bool ready() const { return ready_; }

  // ---- causal versioning (DVV) ------------------------------------------

  /// One causal read: the concurrent sibling frontier (one entry when the
  /// key is conflict-free) plus the read context to thread into the next
  /// put_causal so it supersedes everything this read saw.
  struct CausalRead {
    std::vector<store::Sibling> siblings;
    store::VersionVector ctx;
    bool stale = false;
  };
  using GetCausalCallback = std::function<void(const Result<CausalRead>&)>;
  /// put_causal outcome: status + the post-write clock (the caller's next
  /// write context; empty on failure).
  using PutCausalCallback =
      std::function<void(const Status&, const store::VersionVector&)>;
  /// Picks the index of the winning sibling from a conflict set (size
  /// >= 2). Unset = the default LWW resolver, which orders by
  /// (ts, value hash, value, dot) — byte-identical behavior to the
  /// timestamp path for every existing workload.
  using ConflictResolver =
      std::function<std::size_t(const std::vector<store::Sibling>&)>;

  /// Causal put: `ctx` is the clock from the caller's last get_causal of
  /// this key (empty for a blind put). The coordinator prunes the
  /// siblings the context covers and mints a fresh dot, so two writers
  /// racing from the same context produce two siblings — neither is lost.
  void put_causal(const std::string& key, const std::string& value,
                  const store::VersionVector& ctx, PutCausalCallback cb);
  /// Causal get: quorum-joined record as sibling list + read context.
  void get_causal(const std::string& key, GetCausalCallback cb);
  /// Applies the configured conflict resolver to a sibling read; counts
  /// client.conflicts_resolved when the set held real concurrency.
  /// Returns a default-constructed Sibling on an empty set.
  [[nodiscard]] store::Sibling resolve(const CausalRead& read);
  void set_conflict_resolver(ConflictResolver r) {
    resolver_ = std::move(r);
  }

  void write_latest(const std::string& key, const std::string& value,
                    WriteCallback cb);
  /// write_latest with a relative expiry (microseconds; 0 = never):
  /// every replica drops the value once the TTL lapses.
  void write_latest_ttl(const std::string& key, const std::string& value,
                        std::uint64_t ttl_us, WriteCallback cb);
  void write_all(const std::string& key, const std::string& value,
                 WriteCallback cb);
  void read_latest(const std::string& key, ReadLatestCallback cb);
  void read_all(const std::string& key, ReadAllCallback cb);

  /// Pipelined batch variants: all operations are issued concurrently
  /// (each still routed to its own key's coordinator); the callback fires
  /// once with the per-key outcomes in input order. Throughput-oriented
  /// realtime ingest (crawlers, event firehoses) should prefer these —
  /// a closed loop per key wastes a full round trip per datum.
  using BatchWriteCallback =
      std::function<void(const std::vector<Status>&)>;
  using BatchReadCallback = std::function<void(
      const std::vector<Result<store::VersionedValue>>&)>;

  void write_latest_batch(
      const std::vector<std::pair<std::string, std::string>>& entries,
      BatchWriteCallback cb);
  void read_latest_batch(const std::vector<std::string>& keys,
                         BatchReadCallback cb);

  /// Prefix scan across the cluster (extension — the paper has no
  /// enumeration API): scatter to every data node, gather the primary
  /// keys under `prefix`, return them sorted. `truncated` reports
  /// per-node limit overflow.
  struct ScanResult {
    std::vector<std::string> keys;
    bool truncated = false;
  };
  using ScanCallback = std::function<void(const Result<ScanResult>&)>;
  void scan(const std::string& prefix, ScanCallback cb,
            std::uint32_t per_node_limit = 1000);

  [[nodiscard]] MetadataCache& metadata() { return metadata_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] Timestamp next_ts();

 protected:
  void on_message(const sim::Message& msg) override;
  [[nodiscard]] std::string rpc_span_name(
      sim::MessageType type) const override;
  [[nodiscard]] TraceStage rpc_span_stage(
      sim::MessageType type) const override;

 private:
  /// Opens a root span for one public write op and returns a callback
  /// wrapper that closes it with the op's final status code.
  [[nodiscard]] WriteCallback traced_write(const char* op, WriteCallback cb);

  void do_write(WriteRequest req, int attempt, SimTime deadline,
                WriteCallback cb);
  /// Full-reply variant of do_write (same retry machinery): causal puts
  /// need the trailing context section, not just the status.
  void do_write_full(WriteRequest req, int attempt, SimTime deadline,
                     std::function<void(const Result<WriteReply>&)> cb);
  void do_read(ReadRequest req, int attempt, SimTime deadline,
               std::function<void(const Result<ReadReply>&)> cb);

  /// Absolute deadline for an op starting now (0 when deadlines are off).
  [[nodiscard]] SimTime op_deadline() const {
    return config_.op_deadline_us == 0 ? 0 : now() + config_.op_deadline_us;
  }
  /// Attempt-level RPC timeout clamped to the remaining deadline budget.
  [[nodiscard]] SimDuration attempt_timeout(SimTime deadline) const {
    if (deadline == 0 || deadline <= now()) return config_.op_timeout_us;
    return std::min<SimDuration>(config_.op_timeout_us, deadline - now());
  }
  /// Charges one token for a retry; false = bucket empty, fail fast.
  [[nodiscard]] bool spend_retry_token();
  void refill_retry_budget();

  /// Coordinator choice for attempt k: the k-th replica of the key.
  [[nodiscard]] NodeId coordinator_for(const std::string& key,
                                       int attempt) const;

  /// Draws the jittered wait before `next_attempt` and records it in the
  /// client.retry_backoff_us histogram.
  [[nodiscard]] SimDuration retry_backoff(int next_attempt);

  SednaClientConfig config_;
  zk::ZkClient zk_;
  MetadataCache metadata_;
  MetricRegistry metrics_;
  bool ready_ = false;
  std::uint16_t write_seq_ = 0;
  /// Retry-budget token bucket; starts full so a cold client can still
  /// ride out an unlucky first op.
  double retry_tokens_ = 0.0;
  /// Sibling conflict resolver; empty = default LWW winner.
  ConflictResolver resolver_;
};

}  // namespace sedna::cluster
