// ClusterInspector: operational introspection over a SednaCluster.
//
// The paper's Fig. 2 shows a "cluster status manager" layer of pluggable
// modules (replica management, nodes management, data balance). This is
// the read-only half of that layer: a consolidated snapshot of node
// health, storage, vnode distribution, imbalance, coordination state and
// hot slices, plus a formatted report for operators. Used by the examples
// and the failure drill; every field is also unit-testable.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cluster/monitor.h"
#include "cluster/sedna_cluster.h"
#include "common/critical_path.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ring/imbalance.h"

namespace sedna::cluster {

struct NodeReport {
  NodeId id = kInvalidNode;
  bool alive = false;
  bool ready = false;
  std::uint32_t vnodes = 0;
  std::uint64_t items = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t read_repairs = 0;
  std::uint64_t hints_pending = 0;
  std::uint64_t hints_delivered = 0;
  std::uint64_t ae_rounds = 0;
  /// Divergent keys this node pushed to or pulled from peers during
  /// anti-entropy reconciliation.
  std::uint64_t keys_repaired = 0;
  /// Messages waiting in the host's ingress queue right now.
  std::uint64_t queue_depth = 0;
  /// Requests shed so far (admission queue_full + expired deadlines).
  std::uint64_t sheds = 0;
};

struct HotVnode {
  VnodeId vnode = kInvalidVnode;
  NodeId owner = kInvalidNode;
  std::uint64_t accesses = 0;
};

struct ClusterReport {
  std::vector<NodeReport> nodes;
  std::uint64_t total_items = 0;
  std::uint64_t total_bytes = 0;
  double vnode_imbalance = 0.0;    // CV of vnode counts over live nodes
  double capacity_imbalance = 0.0;  // CV of resident bytes
  std::vector<HotVnode> hottest;    // top slices by read+write frequency
  NodeId zk_leader = kInvalidNode;
  std::uint64_t zk_commits = 0;
  std::size_t zk_sessions = 0;
};

class ClusterInspector {
 public:
  explicit ClusterInspector(SednaCluster& cluster) : cluster_(cluster) {}

  [[nodiscard]] ClusterReport snapshot(std::size_t top_vnodes = 5) const {
    ClusterReport report;
    ring::ImbalanceTable imbalance;
    std::map<VnodeId, std::uint64_t> vnode_heat;

    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      auto& node = cluster_.node(i);
      NodeReport row;
      row.id = node.id();
      row.alive = node.alive();
      row.ready = node.ready();
      const auto stats = node.local_store().stats();
      row.items = stats.curr_items;
      row.bytes = stats.bytes;
      for (const auto& [owner, count] : node.metadata().table().counts()) {
        if (owner == node.id()) row.vnodes = count;
      }
      const auto& status = node.vnode_status();
      for (std::size_t v = 0; v < status.size(); ++v) {
        row.reads += status[v].reads;
        row.writes += status[v].writes;
        row.misses += status[v].misses;
        if (status[v].reads + status[v].writes > 0) {
          vnode_heat[static_cast<VnodeId>(v)] +=
              status[v].reads + status[v].writes;
        }
      }
      row.recoveries = node.metrics()
                           .counter("failure.recoveries_completed")
                           .value();
      row.read_repairs =
          node.metrics().counter("coordinator.read_repairs").value();
      row.hints_pending = node.hints_pending();
      row.hints_delivered =
          node.metrics().counter("coordinator.hints_delivered").value();
      row.ae_rounds = node.metrics().counter("antientropy.rounds").value();
      row.keys_repaired =
          node.metrics().counter("antientropy.keys_pushed").value() +
          node.metrics().counter("antientropy.keys_pulled").value();
      row.queue_depth = node.queue_depth();
      row.sheds = node.shed_queue_full() + node.shed_deadline();
      report.total_items += row.items;
      report.total_bytes += row.bytes;
      if (row.alive) {
        ring::RealNodeLoad load;
        load.node = row.id;
        load.vnode_count = row.vnodes;
        load.capacity_bytes = row.bytes;
        load.reads = row.reads;
        load.writes = row.writes;
        imbalance.update(load);
      }
      report.nodes.push_back(row);
    }
    report.vnode_imbalance = imbalance.vnode_imbalance();
    report.capacity_imbalance = imbalance.capacity_imbalance();

    // Hottest slices, with their current owners.
    std::vector<HotVnode> heat;
    const auto& table = cluster_.node(0).metadata().table();
    for (const auto& [vnode, accesses] : vnode_heat) {
      heat.push_back({vnode, table.owner(vnode), accesses});
    }
    std::sort(heat.begin(), heat.end(),
              [](const HotVnode& a, const HotVnode& b) {
                return a.accesses > b.accesses;
              });
    if (heat.size() > top_vnodes) heat.resize(top_vnodes);
    report.hottest = std::move(heat);

    for (std::size_t i = 0; i < cluster_.config().zk_members; ++i) {
      // leader + aggregate stats from whichever members are alive
      auto& member = cluster_.zk_member(i);
      if (member.alive() && member.is_leader()) {
        report.zk_leader = member.id();
      }
      report.zk_commits =
          std::max(report.zk_commits, member.commits_applied());
      report.zk_sessions =
          std::max(report.zk_sessions, member.session_count());
    }
    return report;
  }

  /// Human-readable report, one call for operators and examples.
  void print(std::FILE* out = stdout, std::size_t top_vnodes = 5) const {
    const ClusterReport r = snapshot(top_vnodes);
    std::fprintf(out, "=== Sedna cluster report ===\n");
    std::fprintf(out,
                 "zookeeper: leader=member-%u commits=%llu sessions=%zu\n",
                 r.zk_leader,
                 static_cast<unsigned long long>(r.zk_commits),
                 r.zk_sessions);
    std::fprintf(out,
                 "storage: %llu items, %llu bytes; imbalance: vnodes %.3f, "
                 "capacity %.3f\n",
                 static_cast<unsigned long long>(r.total_items),
                 static_cast<unsigned long long>(r.total_bytes),
                 r.vnode_imbalance, r.capacity_imbalance);
    std::fprintf(out,
                 "%-6s %-6s %-6s %7s %9s %12s %9s %9s %6s %7s %6s %6s "
                 "%6s %6s\n",
                 "node", "alive", "ready", "vnodes", "items", "bytes",
                 "reads", "writes", "recov", "repairs", "hints", "aesync",
                 "qdepth", "sheds");
    for (const auto& n : r.nodes) {
      std::fprintf(out,
                   "%-6u %-6s %-6s %7u %9llu %12llu %9llu %9llu %6llu "
                   "%7llu %6llu %6llu %6llu %6llu\n",
                   n.id, n.alive ? "yes" : "NO", n.ready ? "yes" : "NO",
                   n.vnodes, static_cast<unsigned long long>(n.items),
                   static_cast<unsigned long long>(n.bytes),
                   static_cast<unsigned long long>(n.reads),
                   static_cast<unsigned long long>(n.writes),
                   static_cast<unsigned long long>(n.recoveries),
                   static_cast<unsigned long long>(n.read_repairs),
                   static_cast<unsigned long long>(n.hints_pending),
                   static_cast<unsigned long long>(n.keys_repaired),
                   static_cast<unsigned long long>(n.queue_depth),
                   static_cast<unsigned long long>(n.sheds));
    }
    if (!r.hottest.empty()) {
      std::fprintf(out, "hottest vnodes:");
      for (const auto& h : r.hottest) {
        std::fprintf(out, "  v%u@%u(%llu)", h.vnode, h.owner,
                     static_cast<unsigned long long>(h.accesses));
      }
      std::fprintf(out, "\n");
    }
  }

  /// ASCII span trees for every trace recorded so far (tracer must have
  /// been enabled on the cluster's simulation before the traffic ran).
  [[nodiscard]] std::string trace_report() const {
    return cluster_.sim().tracer().render_all();
  }

  /// Machine-readable span dump; byte-identical across same-seed runs.
  [[nodiscard]] std::string trace_json() const {
    return cluster_.sim().tracer().dump_json();
  }

  /// Cluster-wide Prometheus-style text exposition: every data node and
  /// client registry, labeled, plus the network and tracer registries.
  [[nodiscard]] std::string metrics_text() const {
    MetricsRegistry registry;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      auto& node = cluster_.node(i);
      registry.attach("node-" + std::to_string(node.id()), node.metrics());
    }
    for (std::size_t i = 0; i < cluster_.client_count(); ++i) {
      auto& client = cluster_.client(i);
      registry.attach("client-" + std::to_string(client.id()),
                      client.metrics());
    }
    registry.attach("network", cluster_.network().metrics());
    // Tracer retention accounting (trace.evicted_* are the satellite
    // memory-cap counters).
    const Tracer& tracer = cluster_.sim().tracer();
    MetricRegistry tracer_reg;
    tracer_reg.counter("trace.evicted_spans").add(tracer.evicted_spans());
    tracer_reg.counter("trace.evicted_traces").add(tracer.evicted_traces());
    tracer_reg.counter("trace.retained_spans").add(tracer.retained_spans());
    tracer_reg.counter("trace.retained_traces")
        .add(tracer.retained_traces());
    registry.attach("tracer", tracer_reg);
    return registry.prometheus_text();
  }

  /// Per-trace critical-path attribution of every retained finished
  /// trace, as CSV. Deterministic: rows in trace-id order.
  [[nodiscard]] std::string attribution_csv() const {
    const Tracer& tracer = cluster_.sim().tracer();
    std::string out = attribution_csv_header();
    for (const TraceId id : tracer.finished_trace_ids()) {
      const Tracer::TraceRecord* rec = tracer.trace(id);
      if (rec == nullptr) continue;
      out += attribution_csv_row(id, *rec, attribute_trace(rec->spans));
    }
    return out;
  }

  /// The tail reservoir, explained: per operation, the retained slowest
  /// traces with their per-stage attribution and dominant cause.
  [[nodiscard]] std::string tail_report() const {
    const Tracer& tracer = cluster_.sim().tracer();
    std::string out = "=== tail traces by operation ===\n";
    char buf[160];
    for (const auto& [op, ids] : tracer.tail_trace_ids()) {
      std::snprintf(buf, sizeof buf, "op %s: %zu retained tail trace(s)\n",
                    op.c_str(), ids.size());
      out += buf;
      for (const TraceId id : ids) {
        const Tracer::TraceRecord* rec = tracer.trace(id);
        if (rec == nullptr) continue;
        const StageBreakdown bd = attribute_trace(rec->spans);
        std::snprintf(buf, sizeof buf,
                      "  trace %llu total=%lluus dominant=%s "
                      "coverage=%.4f [",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(bd.total_us),
                      to_string(bd.dominant()), bd.coverage());
        out += buf;
        for (std::size_t i = 1; i < kTraceStageCount; ++i) {
          std::snprintf(buf, sizeof buf, "%s%s=%llu", i == 1 ? "" : " ",
                        to_string(static_cast<TraceStage>(i)),
                        static_cast<unsigned long long>(bd.us[i]));
          out += buf;
        }
        std::snprintf(buf, sizeof buf, " unattributed=%llu]\n",
                      static_cast<unsigned long long>(bd.unattributed_us()));
        out += buf;
      }
    }
    return out;
  }

  // ---- monitor surfaces (require cluster.enable_monitor()) --------------

  /// Operator health dashboard; explains itself when no monitor is
  /// attached so examples degrade gracefully.
  [[nodiscard]] std::string dashboard() const {
    const ClusterMonitor* mon = cluster_.monitor();
    return mon ? mon->dashboard() : "(no monitor attached)\n";
  }

  /// CSV dump of the monitor's ring-buffer time series.
  [[nodiscard]] std::string timeseries_csv() const {
    const ClusterMonitor* mon = cluster_.monitor();
    return mon ? mon->timeseries_csv() : std::string{};
  }

  /// Alert fire/resolve transition log.
  [[nodiscard]] std::string alerts_text() const {
    const ClusterMonitor* mon = cluster_.monitor();
    return mon ? mon->alerts_text() : std::string{};
  }

  /// Machine-readable alert export: every rule with its configuration and
  /// current state, plus the full fire/resolve transition history.
  /// Deterministic (rule order = registration order, events oldest first)
  /// so same-seed runs produce byte-identical JSON.
  [[nodiscard]] std::string alerts_json() const {
    const ClusterMonitor* mon = cluster_.monitor();
    std::string out = "{\"rules\":[";
    if (mon != nullptr) {
      const AlertEngine& eng = mon->alerts();
      char buf[64];
      bool first = true;
      for (const AlertRule& rule : eng.rules()) {
        if (!first) out += ",";
        first = false;
        const AlertState st = eng.state(rule.name);
        out += "{\"name\":\"" + json_escape(rule.name) + "\",\"series\":\"" +
               json_escape(rule.series) + "\",\"severity\":\"" +
               json_escape(rule.severity) + "\",\"threshold\":";
        std::snprintf(buf, sizeof buf, "%.6g", rule.threshold);
        out += buf;
        out += ",\"state\":\"";
        out += st == AlertState::kFiring    ? "firing"
               : st == AlertState::kPending ? "pending"
                                            : "ok";
        out += "\"}";
      }
      out += "],\"events\":[";
      first = true;
      for (const AlertEvent& e : eng.events()) {
        if (!first) out += ",";
        first = false;
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(e.at));
        out += std::string("{\"at_us\":") + buf + ",\"rule\":\"" +
               json_escape(e.rule) + "\",\"action\":\"" +
               (e.fired ? "fired" : "resolved") + "\",\"value\":";
        std::snprintf(buf, sizeof buf, "%.6g", e.value);
        out += buf;
        out += ",\"severity\":\"";
        std::string severity = "warning";
        for (const AlertRule& rule : eng.rules()) {
          if (rule.name == e.rule) severity = rule.severity;
        }
        out += json_escape(severity) + "\"}";
      }
    } else {
      out += "],\"events\":[";
    }
    out += "]}";
    return out;
  }

  // ---- flight recorder / consistency surfaces ---------------------------

  /// Human-readable incident timeline assembled from the cluster flight
  /// recorder: chaos injections, alert transitions, shed bursts, health
  /// flips, migration phases and consistency violations in one
  /// sim-clock-ordered view.
  [[nodiscard]] std::string incident_report(const std::string& title) const {
    return cluster_.flight_recorder().render(title);
  }

  /// The same journal as CSV for machine diffing.
  [[nodiscard]] std::string incidents_csv() const {
    return cluster_.flight_recorder().csv();
  }

  /// PBS-style t-visibility curve: per probe offset, how many sampled
  /// acked writes were already readable on every probed replica. Offsets
  /// are merged across all data-node auditors positionally (every node
  /// shares the node_template's offset ladder). Header-only when auditing
  /// is disabled.
  [[nodiscard]] std::string visibility_csv() const {
    std::vector<std::uint64_t> offsets;
    std::vector<ConsistencyAuditor::OffsetStats> merged;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      const ConsistencyAuditor* aud = cluster_.node(i).auditor();
      if (aud == nullptr) continue;
      const auto& ladder = aud->config().probe_offsets;
      const auto& stats = aud->offset_stats();
      if (offsets.empty()) {
        offsets.assign(ladder.begin(), ladder.end());
        merged.resize(offsets.size());
      }
      for (std::size_t o = 0; o < merged.size() && o < stats.size(); ++o) {
        merged[o].probes += stats[o].probes;
        merged[o].checked += stats[o].checked;
        merged[o].visible += stats[o].visible;
        merged[o].unreachable += stats[o].unreachable;
      }
    }
    std::string out = "offset_us,probes,checked,visible,unreachable,p_visible\n";
    char buf[160];
    for (std::size_t o = 0; o < merged.size(); ++o) {
      const double p =
          merged[o].checked == 0
              ? 0.0
              : static_cast<double>(merged[o].visible) /
                    static_cast<double>(merged[o].checked);
      std::snprintf(buf, sizeof buf, "%llu,%llu,%llu,%llu,%llu,%.6f\n",
                    static_cast<unsigned long long>(offsets[o]),
                    static_cast<unsigned long long>(merged[o].probes),
                    static_cast<unsigned long long>(merged[o].checked),
                    static_cast<unsigned long long>(merged[o].visible),
                    static_cast<unsigned long long>(merged[o].unreachable), p);
      out += buf;
    }
    return out;
  }

  /// How many of `keys` live on fewer than `want` replicas right now,
  /// counted by peeking directly into every live node's local store (no
  /// network traffic, so it cannot trigger read repair). The yardstick
  /// for the repair subsystem's convergence tests and ablations.
  [[nodiscard]] std::size_t under_replicated(
      const std::vector<std::string>& keys, std::size_t want = 3) const {
    std::size_t low = 0;
    for (const auto& key : keys) {
      std::size_t holders = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        if (!node.alive()) continue;
        if (node.local_store().read_latest(key).ok()) ++holders;
      }
      if (holders < want) ++low;
    }
    return low;
  }

 private:
  /// Minimal JSON string escaping: the identifiers we emit are plain
  /// ASCII, so quotes and backslashes are the only hazards worth handling.
  [[nodiscard]] static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  SednaCluster& cluster_;
};

}  // namespace sedna::cluster
