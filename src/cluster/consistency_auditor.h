// ConsistencyAuditor: coordinator-side measurement of the consistency a
// quorum configuration *actually delivers*, not just the level it
// configures (Campêlo et al.'s survey point — see PAPERS.md).
//
// Three instruments, all fed from the existing read/write paths:
//
//   * staleness sampling — every kLatest quorum read is audited once all
//     N replies are in: version lag (replicas holding something newer
//     than the served value) and time lag (microsecond gap between the
//     served and freshest timestamps, recovered via timestamp_clock),
//     recorded separately for fresh vs stale-tagged serves. Stale serves
//     additionally get a *bound*: time since this vnode's last
//     full-quorum read, stamped into the reply's trailing audit section
//     so the client sees "stale by at most X µs", not just "stale".
//
//   * per-vnode replication lag — a vnode currently serving stale is
//     lagging by (now - last full quorum); a healthy vnode's lag is the
//     spread between its freshest and oldest replica copies observed on
//     the last fully-answered read. The per-vnode rows ride the existing
//     ZooKeeper imbalance-table gossip (trailing-optional, so the wire
//     is byte-identical with auditing off).
//
//   * t-visibility probes — PBS-style (Bailis et al.): a deterministic
//     1-in-N sample of acked LWW writes is re-read from every replica at
//     fixed offsets after the ack, yielding the empirical probability
//     that a read Δt after an acked write observes it. A *reachable*
//     replica still missing the write at the final offset is a
//     visibility violation (recorded with the write's ack time, so
//     gates can separate partition-era writes from post-heal ones).
//
// The auditor is plain bookkeeping: it owns no timers and sends no
// messages. The probe driver lives in SednaNode (it needs the host's
// scheduler and RPC machinery); everything here is deterministic state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "ring/imbalance.h"

namespace sedna::cluster {

struct ConsistencyAuditorConfig {
  /// Master switch. Off by default: the visibility probes add replica
  /// read RPCs, which would shift every seeded benchmark.
  bool enabled = false;
  /// Probe every Nth acked LWW write (deterministic counter sampling).
  /// 0 disables probing while keeping read-side auditing.
  std::uint32_t probe_sample_every = 16;
  /// Δt offsets after the ack at which each sampled write is re-read
  /// from every replica. The last offset is the violation deadline.
  std::vector<SimDuration> probe_offsets = {sim_ms(5), sim_ms(25),
                                            sim_ms(100), sim_ms(500)};
  /// Per-replica probe read timeout (a timed-out replica is counted
  /// unreachable, never a violation).
  SimDuration probe_timeout = sim_ms(50);
  /// Retained violation records (bounded; the counter keeps the total).
  std::size_t max_violations = 256;
};

/// What the coordinator learned from one fully-answered kLatest read.
struct ReadAuditSample {
  VnodeId vnode = kInvalidVnode;
  /// Timestamp of the value served to the client.
  Timestamp served_ts = 0;
  /// Whether the serve carried the stale tag.
  bool stale = false;
  /// Positive (value-carrying) replies among all N.
  std::uint32_t positives = 0;
  /// Positive replies strictly newer than the served value.
  std::uint32_t newer = 0;
  Timestamp freshest_ts = 0;
  Timestamp oldest_ts = 0;
  /// Staleness-exposure window: µs between the read settling (reply sent
  /// to the client) and the last replica's testimony arriving. A read
  /// that settled early answered without hearing `N - replies` replicas;
  /// this is how long that unexamined window stayed open. 0 when the
  /// read only settled once every replica had answered (R = N).
  std::uint64_t confirm_lag_us = 0;
};

class ConsistencyAuditor {
 public:
  struct VnodeAudit {
    /// When this vnode last settled a read with a full R-agreeing set.
    SimTime last_full_quorum_at = 0;
    /// The most recent serve was stale-tagged (cleared by full quorum).
    bool serving_stale = false;
    /// Freshest-vs-oldest replica spread on the last audited read (µs).
    std::uint64_t last_spread_us = 0;
    std::uint64_t stale_serves = 0;
    /// Gossip baseline: stale_serves as of the previous lag_rows() call.
    std::uint64_t reported_stale_serves = 0;
  };

  /// Per-offset visibility aggregate across all probed writes.
  struct OffsetStats {
    std::uint64_t probes = 0;       // writes probed at this offset
    std::uint64_t checked = 0;      // replica checks that answered
    std::uint64_t visible = 0;      // checks that saw the write (or newer)
    std::uint64_t unreachable = 0;  // checks that timed out / were shed
  };

  struct Violation {
    SimTime acked_at = 0;
    SimTime detected_at = 0;
    std::string key;
    NodeId replica = kInvalidNode;
  };

  ConsistencyAuditor(ConsistencyAuditorConfig config, MetricRegistry& metrics);

  [[nodiscard]] const ConsistencyAuditorConfig& config() const {
    return config_;
  }

  // ---- read-side staleness sampling --------------------------------------

  /// A kLatest read settled with a full R-agreeing set on `vnode`.
  void on_full_quorum(VnodeId vnode, SimTime now);

  /// A read on `vnode` is being served stale-tagged. Returns the
  /// staleness bound (µs since the last full-quorum read; >= 1 so a
  /// measured bound is always distinguishable from "not measured").
  std::uint64_t on_stale_serve(VnodeId vnode, SimTime now);

  /// All N replies of a kLatest read are in: record version/time lag.
  void on_read_final(const ReadAuditSample& sample);

  // ---- replication-lag view ----------------------------------------------

  /// Worst per-vnode lag right now: a vnode serving stale lags by the
  /// time since its last full quorum; a healthy one by its replica
  /// spread. Grows through a partition, collapses once full-quorum
  /// reads resume — gauge semantics, so the staleness-budget alert
  /// resolves on its own after heal.
  [[nodiscard]] std::uint64_t max_replication_lag_us(SimTime now) const;

  /// Per-vnode lag rows for the ZooKeeper imbalance gossip. stale_serves
  /// is a per-window delta (same contract as the load row counters);
  /// only vnodes with something to say get a row.
  [[nodiscard]] std::vector<ring::VnodeLagRow> lag_rows(SimTime now);

  [[nodiscard]] const std::map<VnodeId, VnodeAudit>& vnode_audit() const {
    return vnodes_;
  }

  // ---- t-visibility probes -----------------------------------------------

  /// Deterministic 1-in-N write sampling.
  [[nodiscard]] bool should_probe();

  /// Offset `idx` fired for one probed write.
  void on_probe_fire(std::size_t idx);

  /// One replica check at offset `idx` concluded.
  void on_probe_check(std::size_t idx, bool reachable, bool visible);

  /// Final-offset violation: a reachable replica still missing an acked
  /// write. `acked_at` is the write's ack time — gates use it to tell
  /// partition-era writes (whose repair is still backing off) from
  /// post-heal writes (which must never violate).
  void on_violation(SimTime acked_at, SimTime detected_at,
                    const std::string& key, NodeId replica);

  [[nodiscard]] const std::vector<OffsetStats>& offset_stats() const {
    return offsets_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  [[nodiscard]] std::uint64_t vnode_lag_us(const VnodeAudit& v,
                                           SimTime now) const;

  ConsistencyAuditorConfig config_;
  MetricRegistry& metrics_;
  std::map<VnodeId, VnodeAudit> vnodes_;
  std::vector<OffsetStats> offsets_;
  std::vector<Violation> violations_;
  std::uint64_t write_counter_ = 0;
};

}  // namespace sedna::cluster
