// ClusterMonitor: the health & alerting half of the paper's "cluster
// status manager" (Fig. 2). Couples three pieces:
//
//   * a TimeSeriesRecorder sampling cluster-wide gauges (liveness, hint
//     backlog, storage totals, request counters, latency quantiles) on a
//     fixed sim-clock interval — byte-deterministic history;
//   * an AlertEngine evaluating threshold + for-duration rules over that
//     history, with fire/resolve transitions logged and emitted as trace
//     events;
//   * a per-node health state machine (healthy → degraded → suspect →
//     dead) derived from liveness freshness and the hint backlog other
//     coordinators hold against the node.
//
// The monitor only *reads* cluster state and consumes no randomness, so
// enabling it cannot perturb the data path of a seeded run.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/health.h"
#include "cluster/sedna_cluster.h"
#include "common/heavy_hitters.h"
#include "common/timeseries.h"

namespace sedna::cluster {

struct MonitorConfig {
  /// Sampling cadence for the time-series recorder (and health/alert
  /// evaluation, which runs on the same tick).
  SimDuration sample_interval = sim_ms(500);
  /// Retained samples per series (ring buffer).
  std::size_t capacity = 512;
  /// A non-live node is kSuspect until it has been unseen this long,
  /// then kDead.
  SimDuration dead_after = sim_sec(3);
  /// Default-rule hysteresis: consecutive breaching samples to fire,
  /// consecutive clean samples to resolve.
  std::uint32_t alert_for_samples = 2;
  std::uint32_t alert_clear_samples = 2;
  /// Install the built-in heartbeat-loss / replica-lag rules.
  bool default_rules = true;
  /// Consecutive samples with a migration in flight before the
  /// stuck-migration rule fires (migrations are normally far shorter than
  /// the sampling window times this).
  std::uint32_t stuck_migration_samples = 10;
  /// Retained concurrent siblings (cluster-wide, beyond one per key)
  /// tolerated before the sibling-growth rule starts counting. A handful
  /// is healthy — racing writers are the point of DVVs — but a sustained
  /// pile-up means clients are blind-writing without reading a context.
  double sibling_growth_threshold = 16.0;
  std::uint32_t sibling_growth_samples = 4;
  /// Staleness budget (µs): the worst replication lag any coordinator may
  /// report before the staleness-budget alert fires. Only meaningful when
  /// the consistency auditor is enabled on the data nodes — the series
  /// reads 0 otherwise, so the rule simply never fires.
  double staleness_budget_us = 250000.0;
};

struct HealthTransition {
  SimTime at = 0;
  NodeId node = kInvalidNode;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
};

class ClusterMonitor {
 public:
  ClusterMonitor(SednaCluster& cluster, MonitorConfig config = {})
      : cluster_(cluster),
        config_(config),
        recorder_(config.capacity == 0 ? 1 : config.capacity) {
    register_series();
    if (config_.default_rules) {
      add_rule({"heartbeat-loss", "nodes_down", AlertOp::kGreaterThan, 0.0,
                config_.alert_for_samples, config_.alert_clear_samples,
                "critical"});
      add_rule({"replica-lag", "hints_pending", AlertOp::kGreaterThan, 0.0,
                config_.alert_for_samples, config_.alert_clear_samples,
                "warning"});
      add_rule({"stuck-migration", "migrations_inflight",
                AlertOp::kGreaterThan, 0.0, config_.stuck_migration_samples,
                config_.alert_clear_samples, "warning"});
      // Overload rules evaluate per-window deltas, so both fire while the
      // cluster is actively shedding/refusing and resolve when it stops.
      add_rule({"overload-shedding", "shed_rate", AlertOp::kGreaterThan, 0.0,
                config_.alert_for_samples, config_.alert_clear_samples,
                "warning"});
      add_rule({"retry-budget-exhausted", "budget_exhausted_rate",
                AlertOp::kGreaterThan, 0.0, config_.alert_for_samples,
                config_.alert_clear_samples, "critical"});
      // The siblings series is a gauge, so this resolves on its own once
      // contextual puts (or read repair) collapse the conflict frontier.
      add_rule({"sibling-growth", "siblings", AlertOp::kGreaterThan,
                config_.sibling_growth_threshold,
                config_.sibling_growth_samples, config_.alert_clear_samples,
                "warning"});
      // Replication lag is a gauge derived from auditor state, so the rule
      // resolves by itself once every vnode regains full-quorum reads.
      add_rule({"staleness-budget", "replication_lag_max_us",
                AlertOp::kGreaterThan, config_.staleness_budget_us,
                config_.alert_for_samples, config_.alert_clear_samples,
                "warning"});
    }
    alerts_.set_transition_hook(
        [this](const AlertRule& rule, const AlertEvent& e) {
          auto& tracer = cluster_.sim().tracer();
          const auto ctx = tracer.start_trace(
              "alert." + std::string(e.fired ? "fired" : "resolved") + "." +
                  rule.name,
              0, e.at);
          tracer.end(ctx.span_id, e.at, rule.severity);
          char buf[96];
          std::snprintf(buf, sizeof buf, "value=%.6g severity=%s", e.value,
                        rule.severity.c_str());
          cluster_.flight_recorder().record(
              e.at, "alert", "monitor",
              std::string(e.fired ? "fired:" : "resolved:") + rule.name, buf);
        });
    timer_ = cluster_.sim().schedule_periodic(
        config_.sample_interval == 0 ? sim_ms(500) : config_.sample_interval,
        [this] { tick(); });
  }

  ~ClusterMonitor() { timer_.cancel(); }

  ClusterMonitor(const ClusterMonitor&) = delete;
  ClusterMonitor& operator=(const ClusterMonitor&) = delete;

  void add_rule(AlertRule rule) { alerts_.add_rule(std::move(rule)); }

  /// One monitor round: sample every series, evaluate alert rules on the
  /// new sample, advance the per-node health machines. Runs on the
  /// periodic timer; tests may call it directly.
  void tick() {
    const SimTime now = cluster_.sim().now();
    recorder_.sample(now);
    alerts_.evaluate(recorder_, now);
    update_health(now);
  }

  [[nodiscard]] const TimeSeriesRecorder& recorder() const {
    return recorder_;
  }
  [[nodiscard]] const AlertEngine& alerts() const { return alerts_; }

  [[nodiscard]] HealthState health(NodeId node) const {
    const auto it = health_.find(node);
    return it == health_.end() ? HealthState::kHealthy : it->second.state;
  }
  /// Every health transition observed, oldest first.
  [[nodiscard]] const std::vector<HealthTransition>& health_log() const {
    return health_log_;
  }

  [[nodiscard]] std::string timeseries_csv() const { return recorder_.csv(); }
  [[nodiscard]] std::string alerts_text() const { return alerts_.text(); }

  /// Operator dashboard: per-node health, rule states, the newest sample
  /// of every series, cluster-wide hot keys, and the transition logs.
  /// Built from deterministic state only.
  [[nodiscard]] std::string dashboard() const {
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "=== Sedna monitor dashboard @ %llu us ===\n",
                  static_cast<unsigned long long>(cluster_.sim().now()));
    out += buf;

    out += "health:";
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      const NodeId id = cluster_.node(i).id();
      std::snprintf(buf, sizeof buf, " node-%u=%s", id,
                    to_string(health(id)));
      out += buf;
    }
    out += "\n";

    out += "alerts:";
    for (const AlertRule& rule : alerts_.rules()) {
      const AlertState st = alerts_.state(rule.name);
      const char* label = st == AlertState::kFiring    ? "FIRING"
                          : st == AlertState::kPending ? "pending"
                                                       : "ok";
      std::snprintf(buf, sizeof buf, " %s=%s", rule.name.c_str(), label);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, " (%zu transitions)\n",
                  alerts_.events().size());
    out += buf;

    if (recorder_.size() > 0) {
      out += "last sample:";
      const std::size_t newest = recorder_.size() - 1;
      const auto& names = recorder_.series_names();
      for (std::size_t s = 0; s < names.size(); ++s) {
        std::snprintf(buf, sizeof buf, " %s=%.6g", names[s].c_str(),
                      recorder_.value_at(newest, s));
        out += buf;
      }
      out += "\n";
    }

    const auto hot = hot_keys_merged(5);
    if (!hot.empty()) {
      out += "hot keys:";
      for (const auto& e : hot) {
        std::snprintf(buf, sizeof buf, " %s(%llu)", e.key.c_str(),
                      static_cast<unsigned long long>(e.count));
        out += buf;
      }
      out += "\n";
    }

    if (!health_log_.empty()) {
      out += "health log:\n";
      for (const HealthTransition& t : health_log_) {
        std::snprintf(buf, sizeof buf, "[%10llu us] node-%u %s -> %s\n",
                      static_cast<unsigned long long>(t.at), t.node,
                      to_string(t.from), to_string(t.to));
        out += buf;
      }
    }
    if (!alerts_.events().empty()) {
      out += "alert log:\n" + alerts_.text();
    }
    return out;
  }

  /// Cluster-wide top hot keys: every node's SpaceSaving sketch merged by
  /// key (count-summed), sorted (count desc, key asc).
  [[nodiscard]] std::vector<SpaceSavingSketch::Entry> hot_keys_merged(
      std::size_t k) const {
    std::map<std::string, SpaceSavingSketch::Entry> merged;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      for (const auto& e : cluster_.node(i).hot_keys().entries()) {
        auto& slot = merged[e.key];
        slot.key = e.key;
        slot.count += e.count;
        slot.error += e.error;
      }
    }
    std::vector<SpaceSavingSketch::Entry> out;
    out.reserve(merged.size());
    for (auto& [key, e] : merged) out.push_back(std::move(e));
    std::sort(out.begin(), out.end(),
              [](const SpaceSavingSketch::Entry& a,
                 const SpaceSavingSketch::Entry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.key < b.key;
              });
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  struct NodeHealth {
    HealthState state = HealthState::kHealthy;
    SimTime last_alive = 0;
  };

  void register_series() {
    recorder_.add_series("nodes_down", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        if (!cluster_.node(i).alive()) ++n;
      }
      return n;
    });
    recorder_.add_series("hints_pending", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        if (node.alive()) n += static_cast<double>(node.hints_pending());
      }
      return n;
    });
    recorder_.add_series("total_items", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        n += static_cast<double>(
            cluster_.node(i).local_store().stats().curr_items);
      }
      return n;
    });
    recorder_.add_series("total_bytes", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        n += static_cast<double>(cluster_.node(i).local_store().stats().bytes);
      }
      return n;
    });
    recorder_.add_series("reads", [this] { return vnode_sum(kFieldReads); });
    recorder_.add_series("writes",
                         [this] { return vnode_sum(kFieldWrites); });
    recorder_.add_series("misses",
                         [this] { return vnode_sum(kFieldMisses); });
    recorder_.add_series("read_p99_us", [this] {
      return merged_quantile("coordinator.read_latency_us", 0.99);
    });
    recorder_.add_series("write_p99_us", [this] {
      return merged_quantile("coordinator.write_latency_us", 0.99);
    });
    recorder_.add_series("recoveries", [this] {
      return counter_sum("failure.recoveries_completed");
    });
    recorder_.add_series("keys_repaired", [this] {
      return counter_sum("antientropy.keys_pushed") +
             counter_sum("antientropy.keys_pulled");
    });
    // Migration telemetry (appended last: the CSV column order is part of
    // the determinism contract asserted by existing tests).
    recorder_.add_series("migrations_inflight", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        if (node.alive()) n += static_cast<double>(node.migrations_active());
      }
      return n;
    });
    recorder_.add_series("migrations_done", [this] {
      return counter_sum("rebalance.migrations_completed");
    });
    recorder_.add_series("migration_bytes", [this] {
      return counter_sum("rebalance.bytes_moved");
    });
    // Overload telemetry (appended after the migration block for the same
    // CSV-column-order reason).
    recorder_.add_series("queue_depth", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        if (node.alive()) n += static_cast<double>(node.queue_depth());
      }
      return n;
    });
    // Sheds per sample window (delta of the monotone per-host counters),
    // so the alert below resolves once shedding stops.
    recorder_.add_series("shed_rate", [this, prev = 0.0,
                                       burst = false]() mutable {
      double total = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        total += static_cast<double>(node.shed_queue_full()) +
                 static_cast<double>(node.shed_deadline());
      }
      const double delta = total - prev;
      prev = total;
      // Flight-record shed bursts as transitions, not per-sample spam: one
      // event when shedding starts, one when a window passes with none.
      if (delta > 0 && !burst) {
        burst = true;
        char buf[64];
        std::snprintf(buf, sizeof buf, "sheds_in_window=%.6g", delta);
        cluster_.flight_recorder().record(cluster_.sim().now(), "overload",
                                          "monitor", "shed-burst-start", buf);
      } else if (delta == 0 && burst) {
        burst = false;
        cluster_.flight_recorder().record(cluster_.sim().now(), "overload",
                                          "monitor", "shed-burst-end");
      }
      return delta;
    });
    recorder_.add_series("stale_reads", [this] {
      return client_counter_sum("client.stale_reads");
    });
    // Client retries refused per sample window because the token bucket
    // ran dry — sustained non-zero means the cluster is past saturation.
    recorder_.add_series("budget_exhausted_rate",
                         [this, prev = 0.0]() mutable {
                           const double total =
                               client_counter_sum("node.shed.retry_budget");
                           const double delta = total - prev;
                           prev = total;
                           return delta;
                         });
    // Causal conflict telemetry (appended last — CSV column order again).
    // Live excess-sibling count across the cluster: the concurrent-version
    // frontier operators watch for runaway growth (a client fleet that
    // never reads before writing mints unbounded siblings). 0 on every
    // pure-LWW workload.
    recorder_.add_series("siblings", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        n += static_cast<double>(
            cluster_.node(i).local_store().stats().siblings);
      }
      return n;
    });
    recorder_.add_series("dvv_merges", [this] {
      double n = 0;
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        n += static_cast<double>(
            cluster_.node(i).local_store().stats().dvv_merges);
      }
      return n;
    });
    // Consistency observability (appended last — CSV column order again).
    // All three read 0 while the auditor is disabled on the data nodes.
    recorder_.add_series("staleness_p99_us", [this] {
      return merged_quantile("audit.staleness_bound_us", 0.99);
    });
    recorder_.add_series("replication_lag_max_us", [this] {
      double worst = 0;
      const SimTime now = cluster_.sim().now();
      for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
        auto& node = cluster_.node(i);
        if (!node.alive() || node.auditor() == nullptr) continue;
        worst = std::max(
            worst,
            static_cast<double>(node.auditor()->max_replication_lag_us(now)));
      }
      return worst;
    });
    recorder_.add_series("visibility_violations", [this] {
      return counter_sum("audit.visibility_violations");
    });
  }

  enum VnodeField { kFieldReads, kFieldWrites, kFieldMisses };

  [[nodiscard]] double vnode_sum(VnodeField field) const {
    double n = 0;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      for (const auto& vs : cluster_.node(i).vnode_status()) {
        switch (field) {
          case kFieldReads: n += static_cast<double>(vs.reads); break;
          case kFieldWrites: n += static_cast<double>(vs.writes); break;
          case kFieldMisses: n += static_cast<double>(vs.misses); break;
        }
      }
    }
    return n;
  }

  [[nodiscard]] double counter_sum(const std::string& name) const {
    double n = 0;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      const auto& counters = cluster_.node(i).metrics().counters();
      const auto it = counters.find(name);
      if (it != counters.end()) n += static_cast<double>(it->second.value());
    }
    return n;
  }

  /// Like counter_sum but over the harness-owned clients (retry budgets
  /// and staleness are client-side state).
  [[nodiscard]] double client_counter_sum(const std::string& name) const {
    double n = 0;
    for (std::size_t i = 0; i < cluster_.client_count(); ++i) {
      const auto& counters = cluster_.client(i).metrics().counters();
      const auto it = counters.find(name);
      if (it != counters.end()) n += static_cast<double>(it->second.value());
    }
    return n;
  }

  [[nodiscard]] double merged_quantile(const std::string& name,
                                       double q) const {
    Histogram merged;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      const auto& histos = cluster_.node(i).metrics().histograms();
      const auto it = histos.find(name);
      if (it != histos.end()) merged.merge(it->second);
    }
    return merged.quantile(q);
  }

  /// Hints queued by live coordinators *against* `target` — the backlog
  /// the node must absorb before it is caught up.
  [[nodiscard]] std::uint64_t backlog_for(NodeId target) const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      auto& node = cluster_.node(i);
      if (node.alive() && node.id() != target) {
        n += node.hints_pending_for(target);
      }
    }
    return n;
  }

  void update_health(SimTime now) {
    for (std::size_t i = 0; i < cluster_.data_node_count(); ++i) {
      auto& node = cluster_.node(i);
      const NodeId id = node.id();
      NodeHealth& h = health_[id];
      const bool up = node.alive() && node.ready();
      if (up) h.last_alive = now;
      HealthState next;
      if (up) {
        next = backlog_for(id) > 0 ? HealthState::kDegraded
                                   : HealthState::kHealthy;
      } else {
        next = now - h.last_alive >= config_.dead_after
                   ? HealthState::kDead
                   : HealthState::kSuspect;
      }
      if (next != h.state) {
        health_log_.push_back(HealthTransition{now, id, h.state, next});
        auto& tracer = cluster_.sim().tracer();
        const auto ctx = tracer.start_trace(
            "health.node-" + std::to_string(id), id, now);
        tracer.end(ctx.span_id, now, to_string(next));
        cluster_.flight_recorder().record(
            now, "health", "node-" + std::to_string(id), to_string(next),
            std::string("was ") + to_string(h.state));
        h.state = next;
      }
    }
  }

  SednaCluster& cluster_;
  MonitorConfig config_;
  TimeSeriesRecorder recorder_;
  AlertEngine alerts_;
  std::map<NodeId, NodeHealth> health_;
  std::vector<HealthTransition> health_log_;
  sim::TimerHandle timer_;
};

}  // namespace sedna::cluster
