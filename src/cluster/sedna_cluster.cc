#include "cluster/sedna_cluster.h"

#include <algorithm>

#include "cluster/monitor.h"
#include "ring/rebalancer.h"

namespace sedna::cluster {

namespace {

/// Minimal host that exists only to run the bootstrap ZkClient.
class BootstrapHost : public sim::Host {
 public:
  BootstrapHost(sim::Network& net, NodeId id, std::vector<NodeId> ensemble)
      : sim::Host(net, id),
        zk_(*this, [&] {
          zk::ZkClientConfig cfg;
          cfg.ensemble = std::move(ensemble);
          return cfg;
        }()) {}

  [[nodiscard]] zk::ZkClient& zk() { return zk_; }

 protected:
  void on_message(const sim::Message& msg) override {
    if (msg.type == zk::kMsgWatchEvent) zk_.on_watch_event(msg.payload);
  }

 private:
  zk::ZkClient zk_;
};

}  // namespace

SednaCluster::SednaCluster(SednaClusterConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(sim_, config_.network) {}

SednaCluster::~SednaCluster() = default;

ClusterMonitor& SednaCluster::enable_monitor(MonitorConfig config) {
  monitor_ = std::make_unique<ClusterMonitor>(*this, config);
  // The traffic rebalancer consults the monitor's health view before
  // picking migration targets (never onto a degraded/suspect/dead node).
  for (auto& node : nodes_) {
    node->set_health_provider(
        [m = monitor_.get()](NodeId n) { return m->health(n); });
  }
  return *monitor_;
}

ClusterMonitor& SednaCluster::enable_monitor() {
  return enable_monitor(MonitorConfig{});
}

std::vector<NodeId> SednaCluster::zk_ids() const {
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < config_.zk_members; ++i) ids.push_back(i);
  return ids;
}

std::vector<NodeId> SednaCluster::data_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n->id());
  return ids;
}

bool SednaCluster::run_until(const std::function<bool()>& pred) {
  const SimTime deadline = sim_.now() + config_.max_wait;
  while (!pred()) {
    if (sim_.pending_events() == 0) return pred();
    if (sim_.now() > deadline) return false;
    sim_.step();
  }
  return true;
}

Status SednaCluster::boot() {
  // 1. ZooKeeper ensemble.
  zk::ZkServerConfig zk_cfg;
  zk_cfg.ensemble = zk_ids();
  zk_cfg.host = config_.node_template.host;
  for (NodeId id : zk_cfg.ensemble) {
    zk_.push_back(std::make_unique<zk::ZkServer>(net_, id, zk_cfg));
    zk_.back()->start();
  }
  sim_.run_for(sim_ms(5));  // first peer pings settle leadership

  // 2. First-boot metadata layout + initial vnode assignment.
  Status st = bootstrap_metadata();
  if (!st.ok()) return st;

  // 3. Data nodes, started one after another. A simultaneous start of
  // many nodes would stampede the ensemble with bulk vnode-table reads
  // (every node fetches total_vnodes znodes at boot) and time out;
  // staggering matches how real deployments roll out anyway. Completion
  // state is heap-shared: a node's callback may fire after boot() already
  // gave up on it.
  for (std::uint32_t i = 0; i < config_.data_nodes; ++i) {
    const NodeId id = next_data_id_++;
    SednaNodeConfig cfg = config_.node_template;
    cfg.zk_ensemble = zk_ids();
    if (!cfg.persistence.dir.empty()) {
      cfg.persistence.dir += "/node-" + std::to_string(id);
    }
    nodes_.push_back(std::make_unique<SednaNode>(net_, id, cfg));
    nodes_.back()->set_flight_recorder(&flight_);
    auto outcome = std::make_shared<std::optional<Status>>();
    nodes_.back()->start(
        [outcome](const Status& node_st) { *outcome = node_st; });
    if (!run_until([&] { return outcome->has_value(); }) ||
        !(*outcome)->ok()) {
      return Status::Unavailable("data node failed to start: node " +
                                 std::to_string(id));
    }
  }
  return Status::Ok();
}

Status SednaCluster::bootstrap_metadata() {
  BootstrapHost boot_host(net_, 9000, zk_ids());
  auto& zk = boot_host.zk();

  std::optional<Status> connected;
  zk.connect([&](const Status& st) { connected = st; });
  if (!run_until([&] { return connected.has_value(); }) || !connected->ok()) {
    return Status::Unavailable("bootstrap: zk connect failed");
  }

  auto create_sync = [&](const std::string& path, const std::string& data) {
    std::optional<Status> done;
    zk.create(path, data, zk::CreateMode::kPersistent,
              [&](const Result<std::string>& r) { done = r.status(); });
    run_until([&] { return done.has_value(); });
    if (done.has_value() &&
        (done->ok() || done->is(StatusCode::kAlreadyExists))) {
      return Status::Ok();
    }
    return done.value_or(Status::Timeout("bootstrap create timed out"));
  };

  Status st = create_sync(kZkRoot, {});
  if (!st.ok()) return st;
  st = create_sync(kZkConfig, config_.cluster.encode());
  if (!st.ok()) return st;
  st = create_sync(kZkRealNodes, {});
  if (!st.ok()) return st;
  st = create_sync(kZkVnodes, {});
  if (!st.ok()) return st;
  st = create_sync(kZkChanges, {});
  if (!st.ok()) return st;

  // Initial vnode assignment over the soon-to-start data nodes.
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < config_.data_nodes; ++i) {
    ids.push_back(next_data_id_ + i);
  }
  ring::VnodeTable table;
  if (!config_.initial_owners.empty()) {
    table = ring::VnodeTable(config_.cluster.total_vnodes,
                             config_.cluster.replicas);
    for (std::uint32_t v = 0; v < table.total_vnodes(); ++v) {
      table.assign(v, config_.initial_owners[v % config_.initial_owners
                                                     .size()]);
    }
  } else {
    table = ring::Rebalancer::initial_assignment(
        config_.cluster.total_vnodes, config_.cluster.replicas, ids);
  }

  // One znode per vnode (Section III.E situation 1), created in bounded
  // concurrent windows.
  constexpr std::uint32_t kWindow = 64;
  for (std::uint32_t base = 0; base < table.total_vnodes(); base += kWindow) {
    const std::uint32_t end =
        std::min(base + kWindow, table.total_vnodes());
    std::uint32_t pending = end - base;
    bool window_failed = false;
    for (std::uint32_t v = base; v < end; ++v) {
      BinaryWriter w;
      w.put_u32(table.owner(v));
      zk.create(vnode_znode(v), std::move(w).take(),
                zk::CreateMode::kPersistent,
                [&pending, &window_failed](const Result<std::string>& r) {
                  if (!r.ok() &&
                      !r.status().is(StatusCode::kAlreadyExists)) {
                    window_failed = true;
                  }
                  --pending;
                });
    }
    if (!run_until([&] { return pending == 0; }) || window_failed) {
      return Status::Unavailable("bootstrap: vnode creation failed");
    }
  }
  return Status::Ok();
}

SednaClient& SednaCluster::make_client() {
  SednaClientConfig cfg = config_.client_template;
  cfg.zk_ensemble = zk_ids();
  clients_.push_back(
      std::make_unique<SednaClient>(net_, next_client_id_++, cfg));
  SednaClient& client = *clients_.back();
  std::optional<Status> ready;
  client.start([&](const Status& st) { ready = st; });
  run_until([&] { return ready.has_value(); });
  return client;
}

Result<NodeId> SednaCluster::join_new_node() {
  const NodeId id = next_data_id_++;
  SednaNodeConfig cfg = config_.node_template;
  cfg.zk_ensemble = zk_ids();
  if (!cfg.persistence.dir.empty()) {
    cfg.persistence.dir += "/node-" + std::to_string(id);
  }
  nodes_.push_back(std::make_unique<SednaNode>(net_, id, cfg));
  nodes_.back()->set_flight_recorder(&flight_);
  if (monitor_ != nullptr) {
    nodes_.back()->set_health_provider(
        [m = monitor_.get()](NodeId n) { return m->health(n); });
  }
  std::optional<Status> done;
  nodes_.back()->start_and_join([&](const Status& st) { done = st; });
  if (!run_until([&] { return done.has_value(); })) {
    return Status::Timeout("join timed out");
  }
  if (!done->ok()) return *done;
  return id;
}

void SednaCluster::restart_node(std::size_t i) {
  nodes_[i]->restart();
  std::optional<Status> done;
  nodes_[i]->start([&](const Status& st) { done = st; });
  run_until([&] { return done.has_value(); });
}

Status SednaCluster::write_latest(SednaClient& c, const std::string& key,
                                  const std::string& value) {
  std::optional<Status> out;
  c.write_latest(key, value, [&](const Status& st) { out = st; });
  run_until([&] { return out.has_value(); });
  return out.value_or(Status::Timeout());
}

Status SednaCluster::write_all(SednaClient& c, const std::string& key,
                               const std::string& value) {
  std::optional<Status> out;
  c.write_all(key, value, [&](const Status& st) { out = st; });
  run_until([&] { return out.has_value(); });
  return out.value_or(Status::Timeout());
}

Result<store::VersionedValue> SednaCluster::read_latest(
    SednaClient& c, const std::string& key) {
  std::optional<Result<store::VersionedValue>> out;
  c.read_latest(key, [&](const Result<store::VersionedValue>& r) { out = r; });
  run_until([&] { return out.has_value(); });
  if (!out.has_value()) return Status::Timeout();
  return *out;
}

Result<std::vector<store::SourceValue>> SednaCluster::read_all(
    SednaClient& c, const std::string& key) {
  std::optional<Result<std::vector<store::SourceValue>>> out;
  c.read_all(key,
             [&](const Result<std::vector<store::SourceValue>>& r) {
               out = r;
             });
  run_until([&] { return out.has_value(); });
  if (!out.has_value()) return Status::Timeout();
  return *out;
}

}  // namespace sedna::cluster
