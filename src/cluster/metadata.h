// MetadataCache: the vnode-table cache every Sedna node *and client*
// maintains (Section III.E, plus Section VII's "zero-hop DHT that each
// node caches enough routing information locally").
//
// ZooKeeper layout:
//   /sedna/config            — cluster parameters (vnodes, N, R, W)
//   /sedna/vnodes/v%06u      — one znode per virtual node, data = owner id
//   /sedna/changes/c%010u    — change journal: each entry names a changed
//                              vnode, so refreshes touch only modified data
//                              (Section III.E strategy #3)
//   /sedna/real_nodes/node-N — ephemeral liveness markers
//
// Sync protocol (strategy #2): every `lease` the cache lists the change
// journal; new entries name the vnodes to re-read. The lease halves after
// a busy period and doubles after a quiet one via ZkClient's adaptive
// controller. Watches are deliberately not used ("an uncontrollable
// network storm", Section III.E).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/codec.h"
#include "ring/vnode_table.h"
#include "zk/zk_client.h"

namespace sedna::cluster {

struct ClusterConfig {
  std::uint32_t total_vnodes = 1024;
  std::uint32_t replicas = 3;   // N
  std::uint32_t read_quorum = 2;   // R
  std::uint32_t write_quorum = 2;  // W
  // R + W > N and W > N/2 must hold (Section III.C).

  [[nodiscard]] bool quorum_valid() const {
    return read_quorum + write_quorum > replicas &&
           2 * write_quorum > replicas && read_quorum >= 1 &&
           replicas >= 1 && read_quorum <= replicas &&
           write_quorum <= replicas;
  }

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(16);
    w.put_u32(total_vnodes);
    w.put_u32(replicas);
    w.put_u32(read_quorum);
    w.put_u32(write_quorum);
    return std::move(w).take();
  }

  static Result<ClusterConfig> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ClusterConfig cfg;
    cfg.total_vnodes = r.get_u32();
    cfg.replicas = r.get_u32();
    cfg.read_quorum = r.get_u32();
    cfg.write_quorum = r.get_u32();
    if (r.failed()) return Status::Corruption("bad cluster config");
    return cfg;
  }
};

class MetadataCache {
 public:
  using ReadyCallback = std::function<void(const Status&)>;

  MetadataCache(zk::ZkClient& zk, sim::Host& host)
      : zk_(zk), host_(host) {}
  ~MetadataCache() { sync_timer_.cancel(); }

  MetadataCache(const MetadataCache&) = delete;
  MetadataCache& operator=(const MetadataCache&) = delete;

  /// Loads config + the full vnode table, then starts periodic journal
  /// syncs paced by the adaptive lease.
  void start(ReadyCallback on_ready);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const ring::VnodeTable& table() const { return table_; }
  [[nodiscard]] ring::VnodeTable& mutable_table() { return table_; }

  /// Force one journal sync now (e.g. after acting on a stale entry).
  void sync_now(std::function<void()> done = {});

  /// Updates the local view immediately (callers that just wrote the
  /// authoritative znode shouldn't wait a lease to see their own change).
  void apply_local(VnodeId vnode, NodeId owner) {
    if (vnode < table_.total_vnodes()) table_.assign(vnode, owner);
  }

  [[nodiscard]] std::uint64_t syncs_run() const { return syncs_; }
  [[nodiscard]] std::uint64_t vnodes_refreshed() const { return refreshed_; }
  [[nodiscard]] std::uint64_t last_seen_change() const {
    return last_seen_change_;
  }

 private:
  void load_vnodes(std::uint32_t next, ReadyCallback on_ready);
  void schedule_sync();
  void run_sync(std::function<void()> done);
  void refresh_vnode(VnodeId v, std::function<void()> done);

  zk::ZkClient& zk_;
  sim::Host& host_;
  ClusterConfig config_;
  ring::VnodeTable table_;
  bool ready_ = false;
  /// Highest journal sequence already applied (journal names are
  /// "c%010u" with a monotonically increasing suffix).
  std::uint64_t last_seen_change_ = 0;
  bool first_journal_scan_ = true;
  std::uint64_t syncs_ = 0;
  std::uint64_t refreshed_ = 0;
  sim::TimerHandle sync_timer_;
};

}  // namespace sedna::cluster
