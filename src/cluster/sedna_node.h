// SednaNode: one Sedna server (paper Fig. 2's per-server stack).
//
// Components per node:
//   * LocalStore            — the "modified Memcached" memory engine;
//   * PersistenceManager    — optional WAL / periodic-flush strategy;
//   * ZkClient + MetadataCache — session, ephemeral registration, cached
//                             vnode table with adaptive-lease journal sync;
//   * quorum coordinator    — the node fields client requests for keys
//                             whose primary vnode it owns, fans them out
//                             to the N replicas and applies the R/W rules
//                             of Section III.C;
//   * failure detector + recovery — a replica timeout makes the
//                             coordinator check the ephemeral znode; if
//                             gone, it CASes the vnode to a new owner,
//                             journals the change, and tells the new owner
//                             to pull the slice from healthy replicas
//                             (Sections III.C/III.D);
//   * join protocol         — a late-joining node steals vnodes with a
//                             configurable number of parallel "data
//                             retrieving threads" (Section III.D).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/metadata.h"
#include "cluster/protocol.h"
#include "common/metrics.h"
#include "ring/imbalance.h"
#include "ring/rebalancer.h"
#include "sim/host.h"
#include "store/local_store.h"
#include "wal/persistence.h"
#include "zk/zk_client.h"

namespace sedna::cluster {

struct SednaNodeConfig {
  std::vector<NodeId> zk_ensemble;
  store::LocalStoreConfig store;
  wal::PersistenceConfig persistence;
  /// Snapshot cadence under PersistMode::kPeriodicFlush.
  SimDuration flush_interval = sim_sec(30);
  /// Parallel vnode-claim transfers during join ("the data retrieving
  /// threads number could be 16 or 8", Section III.D).
  std::uint32_t takeover_parallelism = 8;
  /// Push the imbalance-table row to ZooKeeper this often (Section III.B).
  SimDuration load_report_interval = sim_sec(5);
  /// Imbalance-driven rebalancing (the "data balance" pluggable module of
  /// Fig. 2): the lowest-id live node periodically checks the vnode
  /// spread and shifts slices from the most to the least loaded node.
  /// 0 disables (the default — membership churn alone keeps the paper's
  /// clusters balanced; enable for long-lived skew).
  SimDuration rebalance_interval = 0;
  /// Move only while max-min vnode count exceeds this.
  std::uint32_t rebalance_tolerance = 2;
  /// Moves executed per rebalance round (bounds transfer burstiness).
  std::uint32_t rebalance_max_moves = 4;
  zk::ZkClientConfig zk_client;  // ensemble is filled from zk_ensemble
  sim::HostConfig host;
};

class SednaNode : public sim::Host {
 public:
  using ReadyCallback = std::function<void(const Status&)>;

  SednaNode(sim::Network& net, NodeId id, SednaNodeConfig config);
  ~SednaNode() override;

  /// Boot sequence (Section III.D): local store first, then ZooKeeper
  /// session, metadata load, ephemeral registration, load reporting.
  void start(ReadyCallback on_ready);

  /// Runtime join: additionally claims a fair share of vnodes from the
  /// current holders, pulling their data in parallel.
  void start_and_join(ReadyCallback on_ready);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] store::LocalStore& local_store() { return *store_; }
  /// Per-vnode counters (paper III.B: "we record all the virtual nodes'
  /// status including its capacity, read/write frequency").
  [[nodiscard]] const std::vector<ring::VnodeStatus>& vnode_status() const {
    return vnode_status_;
  }
  [[nodiscard]] MetadataCache& metadata() { return metadata_; }
  [[nodiscard]] zk::ZkClient& zk() { return zk_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] wal::PersistenceManager* persistence() {
    return persistence_.get();
  }

  /// Writer-unique monotone timestamp (Section III.F LWW ordering).
  Timestamp next_ts();

 protected:
  void on_message(const sim::Message& msg) override;
  void on_crash() override;
  [[nodiscard]] std::string rpc_span_name(
      sim::MessageType type) const override;

 private:
  // Coordinator paths.
  void handle_client_write(const sim::Message& msg);
  void handle_client_read(const sim::Message& msg);
  // Replica paths.
  void handle_replica_write(const sim::Message& msg);
  void handle_replica_read(const sim::Message& msg);
  // Recovery / transfer paths.
  void handle_fetch_vnode(const sim::Message& msg);
  void handle_takeover(const sim::Message& msg);
  void handle_purge_vnode(const sim::Message& msg);
  void handle_scan(const sim::Message& msg);

  /// Applies a write to the local store + persistence. Used by both the
  /// replica handler and the coordinator's own local copy.
  StatusCode apply_write(const WriteRequest& req);
  [[nodiscard]] ReadReply local_read(const ReadRequest& req);

  /// Failure evidence from the data path: verify via ZooKeeper and kick
  /// off recovery if the node is really gone (Section III.C).
  void suspect_node(NodeId replica, VnodeId vnode);
  void start_recovery(VnodeId vnode, NodeId dead);
  void finish_recovery(VnodeId vnode);

  /// Read repair: push the freshest value to replicas that answered with
  /// stale or missing data.
  void read_repair(const std::string& key,
                   const store::VersionedValue& fresh,
                   const std::vector<NodeId>& stale);

  /// Join: claim the vnodes in `moves` with bounded parallelism.
  void claim_vnodes(std::vector<ring::VnodeMove> moves, std::size_t next,
                    std::uint32_t in_flight, ReadyCallback on_done);
  void claim_one(const ring::VnodeMove& move, std::function<void()> done);

  /// Pulls `vnode`'s items from the first healthy node in `sources`.
  void fetch_vnode_from(VnodeId vnode, std::vector<NodeId> sources,
                        std::size_t idx, std::function<void(bool)> done);

  void append_change_journal(VnodeId vnode, NodeId owner,
                             std::function<void()> done);
  void report_load();
  void schedule_flush();

  /// Rebalance daemon: runs on the lowest-id live node only.
  void rebalance_tick();
  void execute_moves(std::shared_ptr<std::vector<ring::VnodeMove>> moves,
                     std::size_t next);
  void execute_move(const ring::VnodeMove& move, std::function<void()> done);

  SednaNodeConfig config_;
  std::unique_ptr<store::LocalStore> store_;
  std::unique_ptr<wal::PersistenceManager> persistence_;
  zk::ZkClient zk_;
  MetadataCache metadata_;
  MetricRegistry metrics_;
  bool ready_ = false;
  std::uint16_t write_seq_ = 0;
  /// Per-vnode capacity/read/write counters, sized at metadata load.
  std::vector<ring::VnodeStatus> vnode_status_;
  /// Vnodes with an in-flight recovery (dedupe concurrent suspicion).
  std::set<VnodeId> recovering_;
  /// Nodes recently verified alive — damps repeated ZK existence checks.
  std::map<NodeId, SimTime> verified_alive_;
};

}  // namespace sedna::cluster
