// SednaNode: one Sedna server (paper Fig. 2's per-server stack).
//
// Components per node:
//   * LocalStore            — the "modified Memcached" memory engine;
//   * PersistenceManager    — optional WAL / periodic-flush strategy;
//   * ZkClient + MetadataCache — session, ephemeral registration, cached
//                             vnode table with adaptive-lease journal sync;
//   * quorum coordinator    — the node fields client requests for keys
//                             whose primary vnode it owns, fans them out
//                             to the N replicas and applies the R/W rules
//                             of Section III.C;
//   * failure detector + recovery — a replica timeout makes the
//                             coordinator check the ephemeral znode; if
//                             gone, it CASes the vnode to a new owner,
//                             journals the change, and tells the new owner
//                             to pull the slice from healthy replicas
//                             (Sections III.C/III.D);
//   * join protocol         — a late-joining node steals vnodes with a
//                             configurable number of parallel "data
//                             retrieving threads" (Section III.D).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/consistency_auditor.h"
#include "cluster/health.h"
#include "cluster/metadata.h"
#include "cluster/protocol.h"
#include "cluster/rebalancer.h"
#include "common/flight_recorder.h"
#include "common/heavy_hitters.h"
#include "common/metrics.h"
#include "ring/imbalance.h"
#include "ring/rebalancer.h"
#include "sim/host.h"
#include "store/local_store.h"
#include "wal/persistence.h"
#include "zk/zk_client.h"

namespace sedna::cluster {

struct SednaNodeConfig {
  std::vector<NodeId> zk_ensemble;
  store::LocalStoreConfig store;
  wal::PersistenceConfig persistence;
  /// Snapshot cadence under PersistMode::kPeriodicFlush.
  SimDuration flush_interval = sim_sec(30);
  /// Parallel vnode-claim transfers during join ("the data retrieving
  /// threads number could be 16 or 8", Section III.D).
  std::uint32_t takeover_parallelism = 8;
  /// Push the imbalance-table row to ZooKeeper this often (Section III.B).
  SimDuration load_report_interval = sim_sec(5);
  /// Imbalance-driven rebalancing (the "data balance" pluggable module of
  /// Fig. 2): the lowest-id live node periodically checks the vnode
  /// spread and shifts slices from the most to the least loaded node.
  /// 0 disables (the default — membership churn alone keeps the paper's
  /// clusters balanced; enable for long-lived skew).
  SimDuration rebalance_interval = 0;
  /// Move only while max-min vnode count exceeds this.
  std::uint32_t rebalance_tolerance = 2;
  /// Moves executed per rebalance round (bounds transfer burstiness).
  std::uint32_t rebalance_max_moves = 4;

  // --- Traffic-aware rebalancer (closes the telemetry loop) -------------
  /// The lowest-id live node periodically reads every node's imbalance
  /// row from ZooKeeper and migrates the hottest vnodes of overloaded
  /// nodes to the coldest *healthy* nodes via the multi-phase migration
  /// protocol. 0 disables (the default).
  SimDuration traffic_rebalance_interval = 0;
  /// Planner policy: CV trigger, headroom, per-round caps, cooldown,
  /// isolate ("split") path for persistently-hot single vnodes.
  TrafficRebalancerConfig traffic_rebalance;
  /// End-to-end deadline the leader grants one vnode migration
  /// (snapshot + delta catch-up + cutover + drain).
  SimDuration migration_timeout = sim_sec(10);

  // --- Repair subsystem (hinted handoff + Merkle anti-entropy) ----------
  /// Max hints held across all targets (capped coordinator memory);
  /// oldest hint evicted first when full. 0 disables hinted handoff.
  std::size_t hint_max_queued = 1024;
  /// Hint replay daemon tick; each tick retries targets whose backoff
  /// window has elapsed. 0 disables the daemon.
  SimDuration hint_replay_interval = sim_ms(200);
  /// Exponential per-target backoff while the target stays unregistered
  /// or deliveries keep failing (doubles up to the max, ±25% jitter).
  SimDuration hint_backoff_initial = sim_ms(100);
  SimDuration hint_backoff_max = sim_sec(5);
  /// Hints delivered to one target per replay round (rate bound).
  std::uint32_t hint_replay_batch = 32;
  /// Anti-entropy daemon tick: each round syncs the least-recently-synced
  /// replicated vnodes against the other replica holders. 0 disables.
  SimDuration anti_entropy_interval = sim_sec(2);
  std::uint32_t anti_entropy_vnodes_per_round = 1;
  /// Digest buckets per vnode in the LocalStore Merkle tree.
  std::uint32_t digest_buckets = 16;
  /// Key summaries per digest reply (bounds message size per round).
  std::uint32_t anti_entropy_max_keys = 512;
  /// Tracked entries in the coordinator's SpaceSaving hot-key sketch
  /// (keys whose client-request frequency exceeds requests/capacity are
  /// guaranteed tracked). 0 disables hot-key detection.
  std::size_t hot_key_capacity = 64;

  // --- Overload safety (admission control + degraded reads) -------------
  // The ingress-queue bound itself lives in `host.max_ingress_queue`
  // (0 = unbounded); SednaNode supplies the priority classing (client
  // reads > client writes > repair/AE > migration) and answers shed
  // client/replica ops with explicit kOverloaded replies.
  /// Serve quorum-relaxed reads when a full read quorum cannot be
  /// assembled (replica timeouts/overload/partition): settle on the
  /// freshest positive reply in hand and tag it stale instead of failing.
  /// Off by default — strict Section III.C quorum semantics.
  bool degraded_reads = false;
  /// After a crash+restart, re-pull every owned vnode slice from peer
  /// replicas (bounded fan-out over the migration fetch path) before
  /// reporting ready. Without this a restarted node re-joins with an
  /// empty RAM store and only heals key-by-key via read repair /
  /// anti-entropy — a rolling restart then strips a replica set bare one
  /// node at a time and reads start answering confident not-found.
  bool restart_hydration = true;
  /// Concurrent slice fetches during hydration.
  std::uint32_t restart_hydration_fanout = 8;

  // --- Consistency observability (staleness auditor + t-visibility) -----
  /// Coordinator-side staleness sampling, per-vnode replication-lag
  /// gossip, and sampled acked-write visibility probes. Off by default:
  /// the probes add replica reads, which would perturb seeded runs.
  ConsistencyAuditorConfig audit;

  zk::ZkClientConfig zk_client;  // ensemble is filled from zk_ensemble
  sim::HostConfig host;
};

class SednaNode : public sim::Host {
 public:
  using ReadyCallback = std::function<void(const Status&)>;

  SednaNode(sim::Network& net, NodeId id, SednaNodeConfig config);
  ~SednaNode() override;

  /// Boot sequence (Section III.D): local store first, then ZooKeeper
  /// session, metadata load, ephemeral registration, load reporting.
  void start(ReadyCallback on_ready);

  /// Runtime join: additionally claims a fair share of vnodes from the
  /// current holders, pulling their data in parallel.
  void start_and_join(ReadyCallback on_ready);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] store::LocalStore& local_store() { return *store_; }
  /// Per-vnode counters (paper III.B: "we record all the virtual nodes'
  /// status including its capacity, read/write frequency").
  [[nodiscard]] const std::vector<ring::VnodeStatus>& vnode_status() const {
    return vnode_status_;
  }
  [[nodiscard]] MetadataCache& metadata() { return metadata_; }
  [[nodiscard]] zk::ZkClient& zk() { return zk_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] wal::PersistenceManager* persistence() {
    return persistence_.get();
  }

  /// Writer-unique monotone timestamp (Section III.F LWW ordering).
  Timestamp next_ts();

  /// Hints currently queued for later delivery (all targets).
  [[nodiscard]] std::size_t hints_pending() const { return hints_pending_; }
  /// Hints queued for one specific target (0 if none).
  [[nodiscard]] std::size_t hints_pending_for(NodeId target) const {
    const auto it = hint_queues_.find(target);
    return it == hint_queues_.end() ? 0 : it->second.hints.size();
  }

  /// Coordinator-side hot-key sketch over client read/write requests.
  [[nodiscard]] const SpaceSavingSketch& hot_keys() const {
    return hot_keys_;
  }

  /// Re-derives per-vnode resident bytes from the store's digest-tree
  /// tallies (exact, eviction-aware), replacing the rough write-volume
  /// estimate accumulated in apply_write.
  void refresh_vnode_status();

  /// Health oracle the traffic rebalancer consults before picking a
  /// migration target (the cluster status manager's view; wired to the
  /// ClusterMonitor by the harness). Unset = every live node is healthy.
  void set_health_provider(std::function<HealthState(NodeId)> provider) {
    health_provider_ = std::move(provider);
  }

  /// Runs the multi-phase migration protocol with this node as the
  /// destination: snapshot pull from `from`, Merkle delta catch-up,
  /// versioned ZK cutover, post-cutover drain catch-up, old-owner purge.
  /// The reply's status is kOk on committed cutover, kRefused when the
  /// plan went stale, other codes on pre-cutover failure (ownership then
  /// stays with `from`). Public so tests can drive single migrations.
  void begin_migration(VnodeId vnode, NodeId from,
                       std::function<void(const MigrateVnodeReply&)> done);

  /// Migrations this node is currently involved in: leader-side
  /// dispatched-and-unanswered plus destination-side in-progress pulls.
  [[nodiscard]] std::size_t migrations_active() const {
    return migrations_dispatched_ + migrating_in_.size();
  }

  /// Consistency auditor (nullptr unless config.audit.enabled).
  [[nodiscard]] const ConsistencyAuditor* auditor() const {
    return auditor_.get();
  }

  /// Cluster-wide flight recorder this node journals qualitative events
  /// into (migration phases, auditor violations). Wired by the harness;
  /// unset = events are simply not journaled.
  void set_flight_recorder(FlightRecorder* recorder) { flight_ = recorder; }

 protected:
  void on_message(const sim::Message& msg) override;
  void on_crash() override;
  [[nodiscard]] std::string rpc_span_name(
      sim::MessageType type) const override;
  [[nodiscard]] TraceStage rpc_span_stage(
      sim::MessageType type) const override;
  /// Ingress classing for admission control: client/replica reads first,
  /// then writes, then repair/anti-entropy, then migration bulk.
  [[nodiscard]] std::size_t message_priority(
      const sim::Message& msg) const override;
  /// Shed work is answered with an explicit kOverloaded reply on the
  /// client/replica data path (background traffic is silently dropped —
  /// its daemons already retry) and counted per reason.
  void on_shed(const sim::Message& msg, sim::ShedReason reason) override;

 private:
  // Coordinator paths.
  void handle_client_write(const sim::Message& msg);
  void handle_client_read(const sim::Message& msg);
  // Replica paths.
  void handle_replica_write(const sim::Message& msg);
  void handle_replica_read(const sim::Message& msg);
  // Recovery / transfer paths.
  void handle_fetch_vnode(const sim::Message& msg);
  void handle_takeover(const sim::Message& msg);
  void handle_purge_vnode(const sim::Message& msg);
  void handle_scan(const sim::Message& msg);
  // Repair paths.
  void handle_hint_deliver(const sim::Message& msg);
  void handle_vnode_digest(const sim::Message& msg);
  // Traffic-aware migration path.
  void handle_migrate_vnode(const sim::Message& msg);

  /// Applies a write to the local store + persistence. Used by both the
  /// replica handler and the coordinator's own local copy.
  StatusCode apply_write(const WriteRequest& req);
  [[nodiscard]] ReadReply local_read(const ReadRequest& req);

  /// Failure evidence from the data path: verify via ZooKeeper and kick
  /// off recovery if the node is really gone (Section III.C).
  void suspect_node(NodeId replica, VnodeId vnode);
  void start_recovery(VnodeId vnode, NodeId dead);
  void finish_recovery(VnodeId vnode);

  /// Read repair: push the freshest value to replicas that answered with
  /// stale or missing data.
  void read_repair(const std::string& key,
                   const store::VersionedValue& fresh,
                   const std::vector<NodeId>& stale);
  /// Causal variant: pushes the joined record — replicas fold it in with
  /// a semilattice merge, so repair can never clobber a concurrent write
  /// the way a timestamp overwrite could.
  void read_repair_causal(const std::string& key,
                          const store::CausalRecord& fresh,
                          const std::vector<NodeId>& stale);

  /// Join: claim the vnodes in `moves` with bounded parallelism.
  void claim_vnodes(std::vector<ring::VnodeMove> moves, std::size_t next,
                    std::uint32_t in_flight, ReadyCallback on_done);
  void claim_one(const ring::VnodeMove& move, std::function<void()> done);

  /// Pulls `vnode`'s items from the first healthy node in `sources`.
  /// `done` receives success plus the approximate payload bytes applied.
  /// Restart hydration: re-fetch every owned vnode slice (bounded
  /// concurrency), then invoke done. Best effort — unreachable slices are
  /// left to read repair and anti-entropy.
  void hydrate_after_restart(std::function<void()> done);
  void fetch_vnode_from(VnodeId vnode, std::vector<NodeId> sources,
                        std::size_t idx,
                        std::function<void(bool, std::uint64_t)> done);

  void append_change_journal(VnodeId vnode, NodeId owner,
                             std::function<void()> done);
  void report_load();
  void schedule_flush();

  // ---- Consistency auditor (probe driver) --------------------------------
  /// Schedules the t-visibility probes for one sampled acked write: at
  /// each configured offset, re-read the key from every replica and
  /// tally whether the write (or something newer) is visible.
  void probe_visibility(const std::string& key, Timestamp wts, VnodeId vnode,
                        SimTime acked_at);
  /// A final-offset probe found a *reachable* replica still missing the
  /// acked write: count it, retain the record, journal a flight event.
  void record_visibility_violation(SimTime acked_at, const std::string& key,
                                   NodeId replica);

  // ---- Hinted handoff ----------------------------------------------------
  struct PendingHint {
    WriteRequest write;
    SimTime queued_at = 0;
    std::uint64_t seq = 0;  // arrival order, for oldest-first eviction
  };
  struct HintQueue {
    /// Dedupe key ("L:<key>" / "A:<source>:<key>") → newest queued write.
    std::map<std::string, PendingHint> hints;
    SimTime next_attempt = 0;
    SimDuration backoff = 0;
    bool in_flight = false;
    /// Root span of the in-flight replay batch's trace (0 when untraced).
    SpanId replay_span = 0;
  };

  /// Queues (or upgrades) a hint after a replica write RPC failed.
  void queue_hint(NodeId target, const WriteRequest& req);
  void evict_oldest_hint();
  void bump_hint_backoff(HintQueue& q);
  /// Daemon tick: for each due target, check its ephemeral znode and
  /// replay a bounded batch if it is back.
  void hint_replay_tick();
  void replay_hints_to(NodeId target);
  void finish_hint_batch(NodeId target, bool failed);

  // ---- Merkle anti-entropy ----------------------------------------------
  /// Daemon tick: pick the least-recently-synced replicated vnodes and
  /// reconcile them with the other replica holders.
  void anti_entropy_tick();
  void sync_vnodes(std::shared_ptr<std::vector<VnodeId>> vnodes,
                   std::size_t next);
  void sync_vnode(VnodeId vnode, std::function<void()> done);
  void sync_vnode_peer(VnodeId vnode,
                       std::shared_ptr<std::vector<NodeId>> peers,
                       std::size_t idx, std::function<void()> done);
  void reconcile_with_peer(VnodeId vnode, NodeId peer,
                           const VnodeDigestReply& rep,
                           std::function<void()> done);
  void pull_key(NodeId peer, const std::string& key, bool want_list,
                bool want_causal, std::function<void()> done);

  /// Rebalance daemon: runs on the lowest-id live node only.
  void rebalance_tick();
  void execute_moves(std::shared_ptr<std::vector<ring::VnodeMove>> moves,
                     std::size_t next);
  void execute_move(const ring::VnodeMove& move, std::function<void()> done);

  // ---- Traffic-aware rebalancer ------------------------------------------
  /// Leader tick (lowest live id): gather the imbalance rows from
  /// ZooKeeper, plan a migration round, dispatch each move to its
  /// destination node.
  void traffic_rebalance_tick();
  void run_traffic_plan(const ring::ImbalanceTable& table,
                        std::vector<NodeId> live);
  /// Pull-only Merkle reconcile of `vnode` against `from` (the delta
  /// catch-up phases of a migration). `done` receives success plus the
  /// number of keys pulled.
  void migration_catchup(VnodeId vnode, NodeId from,
                         std::function<void(bool, std::size_t)> done);
  /// Drops the local copy of `vnode` unless this node is (still) in its
  /// replica set.
  void purge_local_vnode(VnodeId vnode);

  SednaNodeConfig config_;
  std::unique_ptr<store::LocalStore> store_;
  std::unique_ptr<wal::PersistenceManager> persistence_;
  zk::ZkClient zk_;
  MetadataCache metadata_;
  MetricRegistry metrics_;
  bool ready_ = false;
  /// Set by on_crash: the next start() must hydrate the empty store from
  /// peer replicas before reporting ready (see restart_hydration).
  bool needs_hydration_ = false;
  std::uint16_t write_seq_ = 0;
  /// Per-vnode capacity/read/write/miss counters, sized at metadata load.
  std::vector<ring::VnodeStatus> vnode_status_;
  /// Top-k hot keys by client-request frequency (coordinator view, so
  /// bench ground truth — client requests per key — matches what the
  /// sketch observes without replica-fan-out inflation).
  SpaceSavingSketch hot_keys_;
  /// Vnodes with an in-flight recovery (dedupe concurrent suspicion).
  std::set<VnodeId> recovering_;
  /// Nodes recently verified alive — damps repeated ZK existence checks.
  std::map<NodeId, SimTime> verified_alive_;

  // Hinted-handoff state (volatile: dies with the process, by design —
  // the Merkle path covers hints lost to coordinator crashes).
  std::map<NodeId, HintQueue> hint_queues_;
  std::size_t hints_pending_ = 0;
  std::uint64_t hint_seq_ = 0;
  sim::TimerHandle hint_timer_;

  // Anti-entropy state.
  std::map<VnodeId, SimTime> ae_last_synced_;
  bool ae_in_flight_ = false;
  sim::TimerHandle ae_timer_;

  // Traffic-aware rebalancer state.
  TrafficRebalancer traffic_rebalancer_;
  /// Load-window baseline: counters as of the previous imbalance-row
  /// report, so each row carries per-window deltas (a migrated vnode's
  /// history must not keep its old owner looking hot forever).
  std::vector<ring::VnodeStatus> reported_status_;
  /// Vnodes this node is currently pulling in as a migration destination.
  std::set<VnodeId> migrating_in_;
  /// Leader-side: dispatched migration RPCs not yet answered.
  std::size_t migrations_dispatched_ = 0;
  std::function<HealthState(NodeId)> health_provider_;
  sim::TimerHandle traffic_rebalance_timer_;

  // Consistency observability.
  std::unique_ptr<ConsistencyAuditor> auditor_;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace sedna::cluster
