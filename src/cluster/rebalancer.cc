#include "cluster/rebalancer.h"

#include <algorithm>
#include <cmath>

namespace sedna::cluster {

namespace {

/// Traffic score of one load window: reads + writes. Misses are already
/// counted inside reads; capacity is deliberately ignored here — the
/// count-based rebalancer (ring::Rebalancer) keeps vnode *counts* even,
/// this planner evens out *request* load.
[[nodiscard]] std::uint64_t row_traffic(const ring::VnodeLoadRow& v) {
  return v.reads + v.writes;
}

}  // namespace

std::vector<MigrationPlan> TrafficRebalancer::plan(
    const ring::ImbalanceTable& table, const ring::VnodeTable& ring,
    const std::vector<NodeId>& live, const HealthFn& health, SimTime now) {
  std::vector<MigrationPlan> moves;
  if (live.size() < 2) return moves;

  // Per-node traffic over the reporting window, and the per-vnode
  // breakdown restricted to vnodes the reporting node currently *owns*
  // (a replica's share of a slice travels with the owner when the walk
  // changes, so only owned slices are movable mass).
  std::map<NodeId, double> traffic;  // id-sorted: deterministic iteration
  for (NodeId n : live) traffic[n] = 0.0;
  std::map<NodeId, std::vector<std::pair<VnodeId, std::uint64_t>>> owned;
  for (const auto& [node, row] : table.rows()) {
    const auto it = traffic.find(node);
    if (it == traffic.end()) continue;  // dead holder: recovery's business
    it->second = static_cast<double>(row.reads + row.writes);
    for (const ring::VnodeLoadRow& v : row.vnodes) {
      const std::uint64_t t = row_traffic(v);
      if (t == 0) continue;
      if (v.vnode < ring.total_vnodes() && ring.owner(v.vnode) == node) {
        owned[node].emplace_back(v.vnode, t);
      }
    }
  }

  double total = 0.0;
  for (const auto& [node, t] : traffic) total += t;
  const double mean = total / static_cast<double>(traffic.size());
  if (total == 0.0 || mean == 0.0) {
    hot_streak_.clear();
    last_cv_ = 0.0;
    return moves;
  }
  double var = 0.0;
  for (const auto& [node, t] : traffic) var += (t - mean) * (t - mean);
  var /= static_cast<double>(traffic.size());
  last_cv_ = std::sqrt(var) / mean;
  if (!std::isfinite(last_cv_)) last_cv_ = 0.0;
  if (last_cv_ < config_.cv_trigger) {
    // Balanced: a dominating vnode on a balanced cluster needs no
    // isolation, so domination streaks reset at the fixed point.
    hot_streak_.clear();
    return moves;
  }

  // Hot sources: traffic above mean * headroom, hottest first, id
  // tie-break.
  std::vector<NodeId> hot;
  for (const auto& [node, t] : traffic) {
    if (t > mean * config_.hot_headroom) hot.push_back(node);
  }
  std::sort(hot.begin(), hot.end(), [&traffic](NodeId a, NodeId b) {
    if (traffic[a] != traffic[b]) return traffic[a] > traffic[b];
    return a < b;
  });

  // Working copy updated as moves are planned, so one round's moves do
  // not collectively overshoot a cold target.
  std::map<NodeId, double>& working = traffic;

  auto coldest_healthy = [&](NodeId exclude) -> NodeId {
    NodeId best = kInvalidNode;
    double best_t = 0.0;
    for (const auto& [node, t] : working) {
      if (node == exclude) continue;
      if (health && health(node) != HealthState::kHealthy) continue;
      if (best == kInvalidNode || t < best_t) {
        best = node;
        best_t = t;
      }
    }
    return best;
  };

  for (NodeId h : hot) {
    if (moves.size() >= config_.max_moves_per_round) break;
    auto oit = owned.find(h);
    if (oit == owned.end() || oit->second.empty()) continue;
    auto& slices = oit->second;
    std::sort(slices.begin(), slices.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });

    // Domination check for the isolate ("split") path.
    const VnodeId top = slices.front().first;
    const double top_t = static_cast<double>(slices.front().second);
    const bool dominates =
        working[h] > 0.0 && top_t > config_.split_share * working[h];
    bool isolate = false;
    if (dominates) {
      isolate = ++hot_streak_[top] >= config_.split_streak;
    } else {
      hot_streak_.erase(top);
    }

    for (const auto& [v, t] : slices) {
      if (moves.size() >= config_.max_moves_per_round) break;
      if (isolate && v == top) continue;  // shed the others, keep the star
      const auto cit = cooldown_until_.find(v);
      if (cit != cooldown_until_.end() && cit->second > now) continue;
      const NodeId target = coldest_healthy(h);
      if (target == kInvalidNode) break;  // nobody healthy to receive
      const double vt = static_cast<double>(t);
      // Strict-improvement guard: moving vt from h to target shrinks the
      // variance iff vt < working[h] - working[target]; anything else
      // would just relocate (or invert) the hot spot — ping-pong fuel.
      if (working[target] + vt >= working[h]) continue;
      moves.push_back(MigrationPlan{
          v, h, target,
          isolate ? MigrationReason::kIsolate : MigrationReason::kOffload});
      working[h] -= vt;
      working[target] += vt;
      cooldown_until_[v] = now + config_.vnode_cooldown;
      if (!isolate && working[h] <= mean * config_.hot_headroom) break;
    }
  }
  return moves;
}

}  // namespace sedna::cluster
