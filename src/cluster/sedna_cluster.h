// SednaCluster: test/bench harness that assembles a full simulated
// deployment — the paper's testbed in a box (Section VI.A: 9 servers,
// 3 of them running ZooKeeper, 1 GbE, clients colocated).
//
// boot() performs the paper's first-boot procedure: start the ensemble,
// create the /sedna znode layout including one znode per virtual node
// ("lots of creation operations will take a long time ... but it only
// happens once when the Sedna cluster firstly starts up", Section III.E),
// then start every data node and wait until all are ready.
//
// The harness also offers synchronous wrappers (run the event loop until a
// callback fires) so tests and benches read linearly.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/metadata.h"
#include "cluster/sedna_client.h"
#include "cluster/sedna_node.h"
#include "common/flight_recorder.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "zk/zk_server.h"

namespace sedna::cluster {

class ClusterMonitor;
struct MonitorConfig;

struct SednaClusterConfig {
  std::uint32_t zk_members = 3;
  std::uint32_t data_nodes = 6;
  ClusterConfig cluster;
  sim::NetworkConfig network;
  /// Template applied to every data node (ensemble/ids filled in).
  SednaNodeConfig node_template;
  SednaClientConfig client_template;
  std::uint64_t seed = 2012;
  /// Safety valve for the synchronous wrappers.
  SimDuration max_wait = sim_sec(600);
  /// Test hook: explicit initial vnode→owner assignment (one entry per
  /// vnode, values are data-node ids 100, 101, ...). Empty = balanced
  /// round-robin. Lets tests boot intentionally skewed clusters.
  std::vector<NodeId> initial_owners;
};

class SednaCluster {
 public:
  explicit SednaCluster(SednaClusterConfig config = {});
  ~SednaCluster();

  SednaCluster(const SednaCluster&) = delete;
  SednaCluster& operator=(const SednaCluster&) = delete;

  /// Starts the ensemble, bootstraps the znode layout and vnode table,
  /// starts all data nodes. Returns only when every node reports ready.
  Status boot();

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::Network& network() { return net_; }

  [[nodiscard]] std::size_t data_node_count() const { return nodes_.size(); }
  [[nodiscard]] SednaNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] SednaClient& client(std::size_t i) { return *clients_[i]; }
  [[nodiscard]] zk::ZkServer& zk_member(std::size_t i) { return *zk_[i]; }
  [[nodiscard]] std::vector<NodeId> zk_ids() const;
  [[nodiscard]] std::vector<NodeId> data_ids() const;
  [[nodiscard]] const SednaClusterConfig& config() const { return config_; }

  /// Creates and starts a client host; returns when it is ready.
  SednaClient& make_client();

  /// Adds a brand-new data node at runtime and runs the join protocol
  /// (vnode stealing + data transfer). Returns when the join completes.
  Result<NodeId> join_new_node();

  /// Crash/restart by data-node index.
  void crash_node(std::size_t i) { nodes_[i]->crash(); }
  void restart_node(std::size_t i);

  /// Attaches (or replaces) the health/alerting monitor; it starts
  /// sampling on its sim-clock interval immediately. Read-only over
  /// cluster state, so enabling it never perturbs the data path.
  ClusterMonitor& enable_monitor(MonitorConfig config);
  ClusterMonitor& enable_monitor();
  /// The attached monitor, or nullptr if enable_monitor was never called.
  [[nodiscard]] ClusterMonitor* monitor() { return monitor_.get(); }

  /// Cluster-wide flight recorder: a bounded, sim-clock-stamped journal of
  /// notable events (chaos injections, alert transitions, shed bursts,
  /// migration phases, consistency violations). Always on — recording is
  /// pure in-memory bookkeeping and never perturbs the simulation.
  [[nodiscard]] FlightRecorder& flight_recorder() { return flight_; }

  // ---- synchronous wrappers (drive the event loop) ----------------------
  bool run_until(const std::function<bool()>& pred);
  void run_for(SimDuration d) { sim_.run_for(d); }

  Status write_latest(SednaClient& c, const std::string& key,
                      const std::string& value);
  Status write_all(SednaClient& c, const std::string& key,
                   const std::string& value);
  Result<store::VersionedValue> read_latest(SednaClient& c,
                                            const std::string& key);
  Result<std::vector<store::SourceValue>> read_all(SednaClient& c,
                                                   const std::string& key);

 private:
  /// Creates the /sedna layout + per-vnode znodes via a bootstrap host.
  Status bootstrap_metadata();

  SednaClusterConfig config_;
  sim::Simulation sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<zk::ZkServer>> zk_;
  std::vector<std::unique_ptr<SednaNode>> nodes_;
  std::vector<std::unique_ptr<SednaClient>> clients_;
  std::unique_ptr<ClusterMonitor> monitor_;
  FlightRecorder flight_;
  NodeId next_client_id_ = 1000;
  NodeId next_data_id_ = 100;
};

}  // namespace sedna::cluster
