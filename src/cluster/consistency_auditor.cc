#include "cluster/consistency_auditor.h"

#include <algorithm>

namespace sedna::cluster {

ConsistencyAuditor::ConsistencyAuditor(ConsistencyAuditorConfig config,
                                       MetricRegistry& metrics)
    : config_(std::move(config)),
      metrics_(metrics),
      offsets_(config_.probe_offsets.size()) {}

void ConsistencyAuditor::on_full_quorum(VnodeId vnode, SimTime now) {
  VnodeAudit& v = vnodes_[vnode];
  v.last_full_quorum_at = now;
  v.serving_stale = false;
}

std::uint64_t ConsistencyAuditor::on_stale_serve(VnodeId vnode, SimTime now) {
  VnodeAudit& v = vnodes_[vnode];
  v.serving_stale = true;
  ++v.stale_serves;
  const std::uint64_t bound =
      now > v.last_full_quorum_at ? now - v.last_full_quorum_at : 1;
  metrics_.histogram("audit.staleness_bound_us").record(bound);
  metrics_.counter("audit.stale_serves").add(1);
  return bound;
}

void ConsistencyAuditor::on_read_final(const ReadAuditSample& sample) {
  metrics_.counter("audit.reads_audited").add(1);
  metrics_.histogram("audit.confirm_lag_us").record(sample.confirm_lag_us);
  if (sample.positives == 0) return;
  // Time lag in wall-clock microseconds: the timestamp's clock half
  // (ts >> 16) is the coordinator's sim-µs at write time, so the gap
  // between the served and freshest clocks is how far behind (in time)
  // the served value was.
  const std::uint64_t served_clock = timestamp_clock(sample.served_ts);
  const std::uint64_t freshest_clock = timestamp_clock(sample.freshest_ts);
  const std::uint64_t time_lag =
      freshest_clock > served_clock ? freshest_clock - served_clock : 0;
  metrics_
      .histogram(sample.stale ? "audit.stale_read_lag_us"
                              : "audit.fresh_read_lag_us")
      .record(time_lag);
  metrics_.histogram("audit.version_lag").record(sample.newer);
  if (sample.newer > 0) metrics_.counter("audit.reads_behind").add(1);
  const std::uint64_t oldest_clock = timestamp_clock(sample.oldest_ts);
  vnodes_[sample.vnode].last_spread_us =
      freshest_clock > oldest_clock ? freshest_clock - oldest_clock : 0;
}

std::uint64_t ConsistencyAuditor::vnode_lag_us(const VnodeAudit& v,
                                               SimTime now) const {
  if (v.serving_stale) {
    return now > v.last_full_quorum_at ? now - v.last_full_quorum_at : 1;
  }
  return v.last_spread_us;
}

std::uint64_t ConsistencyAuditor::max_replication_lag_us(SimTime now) const {
  std::uint64_t worst = 0;
  for (const auto& [vnode, v] : vnodes_) {
    worst = std::max(worst, vnode_lag_us(v, now));
  }
  return worst;
}

std::vector<ring::VnodeLagRow> ConsistencyAuditor::lag_rows(SimTime now) {
  std::vector<ring::VnodeLagRow> rows;
  for (auto& [vnode, v] : vnodes_) {
    const std::uint64_t stale_delta = v.stale_serves - v.reported_stale_serves;
    v.reported_stale_serves = v.stale_serves;
    const std::uint64_t lag = vnode_lag_us(v, now);
    if (lag == 0 && stale_delta == 0) continue;
    rows.push_back(ring::VnodeLagRow{vnode, lag, stale_delta});
  }
  return rows;
}

bool ConsistencyAuditor::should_probe() {
  if (config_.probe_sample_every == 0 || config_.probe_offsets.empty()) {
    return false;
  }
  return (write_counter_++ % config_.probe_sample_every) == 0;
}

void ConsistencyAuditor::on_probe_fire(std::size_t idx) {
  if (idx >= offsets_.size()) return;
  ++offsets_[idx].probes;
  metrics_.counter("audit.probe_rounds").add(1);
}

void ConsistencyAuditor::on_probe_check(std::size_t idx, bool reachable,
                                        bool visible) {
  if (idx >= offsets_.size()) return;
  if (!reachable) {
    ++offsets_[idx].unreachable;
    return;
  }
  ++offsets_[idx].checked;
  if (visible) ++offsets_[idx].visible;
}

void ConsistencyAuditor::on_violation(SimTime acked_at, SimTime detected_at,
                                      const std::string& key,
                                      NodeId replica) {
  metrics_.counter("audit.visibility_violations").add(1);
  if (violations_.size() < config_.max_violations) {
    violations_.push_back(Violation{acked_at, detected_at, key, replica});
  }
}

}  // namespace sedna::cluster
