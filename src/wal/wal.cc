#include "wal/wal.h"

#include <cstring>
#include <vector>

#include "common/codec.h"
#include "common/crc32.h"

namespace sedna::wal {

std::string WalRecord::encode() const {
  BinaryWriter w(key.size() + value.size() + 32);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_string(key);
  w.put_string(value);
  w.put_u64(ts);
  w.put_u32(flags);
  w.put_u32(source);
  return std::move(w).take();
}

Result<WalRecord> WalRecord::decode(std::string_view payload) {
  BinaryReader r(payload);
  WalRecord rec;
  rec.type = static_cast<Type>(r.get_u8());
  rec.key = r.get_string();
  rec.value = r.get_string();
  rec.ts = r.get_u64();
  rec.flags = r.get_u32();
  rec.source = r.get_u32();
  if (r.failed() || !r.exhausted()) {
    return Status::Corruption("bad wal record");
  }
  if (rec.type != Type::kWriteLatest && rec.type != Type::kWriteAll &&
      rec.type != Type::kDelete && rec.type != Type::kWriteCausal) {
    return Status::Corruption("unknown wal record type");
  }
  return rec;
}

Status WriteAheadLog::open() {
  if (file_ != nullptr) return Status::Ok();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open wal: " + path_);
  }
  return Status::Ok();
}

void WriteAheadLog::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::append(const WalRecord& record) {
  if (file_ == nullptr) {
    const Status st = open();
    if (!st.ok()) return st;
  }
  const std::string payload = record.encode();
  BinaryWriter frame(payload.size() + 8);
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(crc32(payload));
  frame.put_bytes_raw(payload);
  const std::string& bytes = frame.data();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IoError("wal append failed");
  }
  ++appended_;
  bytes_ += bytes.size();
  return Status::Ok();
}

Status WriteAheadLog::sync() {
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0) return Status::IoError("wal flush failed");
  return Status::Ok();
}

Result<std::uint64_t> WriteAheadLog::replay(
    const std::string& path,
    const std::function<void(const WalRecord&)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::uint64_t{0};  // no log = nothing to recover

  std::uint64_t recovered = 0;
  for (;;) {
    unsigned char header[8];
    if (std::fread(header, 1, sizeof header, f) != sizeof header) break;
    std::uint32_t len = 0;
    std::uint32_t expected_crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
      expected_crc |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    }
    // Cap record size defensively: a corrupt length must not OOM us.
    if (len == 0 || len > (64u << 20)) break;
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) break;  // torn tail
    if (crc32(payload) != expected_crc) break;                // corrupt
    auto rec = WalRecord::decode(payload);
    if (!rec.ok()) break;
    fn(rec.value());
    ++recovered;
  }
  std::fclose(f);
  return recovered;
}

Status WriteAheadLog::reset() {
  close();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot truncate wal");
  std::fclose(f);
  appended_ = 0;
  bytes_ = 0;
  return open();
}

}  // namespace sedna::wal
