// Write-ahead log: the paper's "write-ahead logs" persistency strategy
// (Table I, "Persistency Strategy: periodically flush or write-ahead logs
// according [to] users' needs").
//
// Format: a stream of records, each framed as
//   u32 payload_length | u32 crc32(payload) | payload
// Replay stops cleanly at the first torn/corrupt frame — exactly the state
// a crash mid-append leaves behind.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace sedna::wal {

struct WalRecord {
  enum class Type : std::uint8_t {
    kWriteLatest = 1,
    kWriteAll = 2,
    kDelete = 3,
    /// Causal write: `value` holds the encoded CausalRecord (the full
    /// post-merge state, so replay is an idempotent join).
    kWriteCausal = 4,
  };

  Type type = Type::kWriteLatest;
  std::string key;
  std::string value;
  Timestamp ts = 0;
  std::uint32_t flags = 0;
  /// Source node for kWriteAll records.
  NodeId source = kInvalidNode;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Result<WalRecord> decode(std::string_view payload);

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.type == b.type && a.key == b.key && a.value == b.value &&
           a.ts == b.ts && a.flags == b.flags && a.source == b.source;
  }
};

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}
  ~WriteAheadLog() { close(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) for appending.
  Status open();
  void close();

  Status append(const WalRecord& record);
  /// Flushes buffered appends to the OS.
  Status sync();

  /// Replays all intact records from the start of the file, invoking `fn`
  /// for each. A torn tail is not an error — replay just stops there and
  /// reports how many records were recovered.
  static Result<std::uint64_t> replay(
      const std::string& path,
      const std::function<void(const WalRecord&)>& fn);

  /// Truncates the log (after a snapshot made its prefix redundant).
  Status reset();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_appended() const { return appended_; }
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace sedna::wal
