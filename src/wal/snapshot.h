// Snapshot: full-store image for the "periodically flush" persistency
// strategy (paper Table I). Also the recovery base under WAL mode: recover
// = load snapshot, then replay the log tail.
//
// Format: 8-byte magic, u32 version, then one WAL-style frame
// (u32 len | u32 crc | payload) per item. A torn tail loses only the items
// after the tear, mirroring a crash mid-flush; callers normally write to a
// temp file and rename so readers only ever see complete snapshots.
#pragma once

#include <string>

#include "common/status.h"
#include "store/local_store.h"

namespace sedna::wal {

class Snapshot {
 public:
  /// Serializes every item of `store` to `path` (atomically: temp+rename).
  static Status write(const std::string& path,
                      const store::LocalStore& store);

  /// Loads items into `store` (which should be empty); returns the number
  /// of items restored.
  static Result<std::uint64_t> load(const std::string& path,
                                    store::LocalStore& store);
};

}  // namespace sedna::wal
