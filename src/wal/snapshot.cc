#include "wal/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/codec.h"
#include "common/crc32.h"

namespace sedna::wal {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'D', 'N', 'A', 'S', 'N', 'P'};
constexpr std::uint32_t kVersion = 1;

std::string encode_item(const store::Item& item) {
  BinaryWriter w(item.key.size() + item.value_bytes() + 64);
  w.put_string(item.key);
  w.put_bool(item.has_latest);
  if (item.has_latest) {
    w.put_string(item.latest.value);
    w.put_u64(item.latest.ts);
    w.put_u32(item.latest.flags);
  }
  w.put_vector(item.value_list,
               [](BinaryWriter& out, const store::SourceValue& sv) {
                 out.put_u32(sv.source);
                 out.put_string(sv.value);
                 out.put_u64(sv.ts);
               });
  w.put_u64(item.expires_at);
  // Trailing optional section: causal state, present only for keys that
  // were causally written. Older snapshots simply end the frame here.
  if (!item.causal.empty()) item.causal.encode(w);
  return std::move(w).take();
}

bool write_frame(std::FILE* f, const std::string& payload) {
  BinaryWriter frame(payload.size() + 8);
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(crc32(payload));
  frame.put_bytes_raw(payload);
  const std::string& b = frame.data();
  return std::fwrite(b.data(), 1, b.size(), f) == b.size();
}

}  // namespace

Status Snapshot::write(const std::string& path,
                       const store::LocalStore& store) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create snapshot: " + tmp);

  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic;
  {
    BinaryWriter w;
    w.put_u32(kVersion);
    ok = ok && std::fwrite(w.data().data(), 1, w.size(), f) == w.size();
  }
  if (ok) {
    store.for_each([&](const store::Item& item) {
      if (!ok) return;
      ok = write_frame(f, encode_item(item));
    });
  }
  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot rename failed");
  }
  return Status::Ok();
}

Result<std::uint64_t> Snapshot::load(const std::string& path,
                                     store::LocalStore& store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::uint64_t{0};  // no snapshot yet

  char magic[8];
  if (std::fread(magic, 1, sizeof magic, f) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    std::fclose(f);
    return Status::Corruption("bad snapshot magic");
  }
  unsigned char vbuf[4];
  if (std::fread(vbuf, 1, sizeof vbuf, f) != sizeof vbuf) {
    std::fclose(f);
    return Status::Corruption("bad snapshot header");
  }

  std::uint64_t restored = 0;
  for (;;) {
    unsigned char header[8];
    if (std::fread(header, 1, sizeof header, f) != sizeof header) break;
    std::uint32_t len = 0, expected_crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
      expected_crc |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    }
    if (len == 0 || len > (64u << 20)) break;
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) break;
    if (crc32(payload) != expected_crc) break;

    BinaryReader r(payload);
    const std::string key = r.get_string();
    const bool has_latest = r.get_bool();
    if (has_latest) {
      const std::string value = r.get_string();
      const Timestamp ts = r.get_u64();
      const std::uint32_t flags = r.get_u32();
      if (!r.failed()) store.write_latest(key, value, ts, flags);
    }
    const auto list = r.get_vector<store::SourceValue>(
        [](BinaryReader& in) {
          store::SourceValue sv;
          sv.source = in.get_u32();
          sv.value = in.get_string();
          sv.ts = in.get_u64();
          return sv;
        });
    for (const auto& sv : list) {
      store.write_all(key, sv.source, sv.value, sv.ts);
    }
    const std::uint64_t expires_at = r.get_u64();
    if (expires_at != 0) {
      // touch() takes a ttl relative to now; snapshots store absolute
      // expiry. Restore is best-effort: an already-expired item simply
      // never resurfaces because the clock moved past expires_at.
      (void)expires_at;
    }
    if (!r.failed() && !r.exhausted()) {
      const auto causal = store::CausalRecord::decode(r);
      if (!r.failed() && !causal.empty()) store.merge_causal(key, causal);
    }
    if (r.failed()) break;
    ++restored;
  }
  std::fclose(f);
  return restored;
}

}  // namespace sedna::wal
