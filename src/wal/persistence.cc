#include "wal/persistence.h"

#include <filesystem>

namespace sedna::wal {

PersistenceManager::PersistenceManager(PersistenceConfig config,
                                       store::LocalStore& store)
    : config_(std::move(config)), store_(store) {}

Status PersistenceManager::start() {
  if (config_.mode == PersistMode::kNone) return Status::Ok();
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) return Status::IoError("cannot create dir: " + config_.dir);
  if (config_.mode == PersistMode::kWal) {
    log_ = std::make_unique<WriteAheadLog>(wal_path());
    return log_->open();
  }
  return Status::Ok();
}

Status PersistenceManager::append(const WalRecord& rec) {
  if (config_.mode != PersistMode::kWal || log_ == nullptr) {
    return Status::Ok();
  }
  Status st = log_->append(rec);
  if (!st.ok()) return st;
  if (config_.sync_each_write) {
    st = log_->sync();
    if (!st.ok()) return st;
  }
  ++records_since_snapshot_;
  if (config_.snapshot_every_records != 0 &&
      records_since_snapshot_ >= config_.snapshot_every_records) {
    return flush_snapshot();
  }
  return Status::Ok();
}

Status PersistenceManager::on_write_latest(std::string_view key,
                                           std::string_view value,
                                           Timestamp ts,
                                           std::uint32_t flags) {
  WalRecord rec;
  rec.type = WalRecord::Type::kWriteLatest;
  rec.key.assign(key);
  rec.value.assign(value);
  rec.ts = ts;
  rec.flags = flags;
  return append(rec);
}

Status PersistenceManager::on_write_all(std::string_view key, NodeId source,
                                        std::string_view value,
                                        Timestamp ts) {
  WalRecord rec;
  rec.type = WalRecord::Type::kWriteAll;
  rec.key.assign(key);
  rec.value.assign(value);
  rec.ts = ts;
  rec.source = source;
  return append(rec);
}

Status PersistenceManager::on_write_causal(std::string_view key,
                                           const store::CausalRecord& record) {
  WalRecord rec;
  rec.type = WalRecord::Type::kWriteCausal;
  rec.key.assign(key);
  rec.value = record.encode_string();
  return append(rec);
}

Status PersistenceManager::on_delete(std::string_view key) {
  WalRecord rec;
  rec.type = WalRecord::Type::kDelete;
  rec.key.assign(key);
  return append(rec);
}

Status PersistenceManager::flush_snapshot() {
  if (config_.mode == PersistMode::kNone) return Status::Ok();
  Status st = Snapshot::write(snapshot_path(), store_);
  if (!st.ok()) return st;
  ++snapshots_;
  records_since_snapshot_ = 0;
  if (config_.mode == PersistMode::kWal && log_ != nullptr) {
    // The snapshot covers everything in the log; truncate it.
    return log_->reset();
  }
  return Status::Ok();
}

Result<std::uint64_t> PersistenceManager::recover() {
  if (config_.mode == PersistMode::kNone) return std::uint64_t{0};

  auto snap = Snapshot::load(snapshot_path(), store_);
  if (!snap.ok()) return snap.status();
  std::uint64_t applied = snap.value();

  if (config_.mode == PersistMode::kWal) {
    auto replayed = WriteAheadLog::replay(
        wal_path(), [this](const WalRecord& rec) {
          switch (rec.type) {
            case WalRecord::Type::kWriteLatest:
              store_.write_latest(rec.key, rec.value, rec.ts, rec.flags);
              break;
            case WalRecord::Type::kWriteAll:
              store_.write_all(rec.key, rec.source, rec.value, rec.ts);
              break;
            case WalRecord::Type::kDelete:
              store_.del(rec.key);
              break;
            case WalRecord::Type::kWriteCausal: {
              const auto record =
                  store::CausalRecord::decode_string(rec.value);
              if (!record.empty()) store_.merge_causal(rec.key, record);
              break;
            }
          }
        });
    if (!replayed.ok()) return replayed.status();
    applied += replayed.value();
  }
  return applied;
}

}  // namespace sedna::wal
