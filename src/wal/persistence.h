// PersistenceManager: pluggable persistency strategy (paper Table I:
// "Periodically flush or write-ahead logs according [to] users' needs —
// different speed and availability").
//
//   kNone          — pure memory; replicas are the only durability.
//   kPeriodicFlush — snapshot the store every flush interval; a crash
//                    loses at most one interval of writes.
//   kWal           — append every mutation to a write-ahead log before
//                    acking; snapshot occasionally to bound replay.
//
// The manager is clock-agnostic: the owning node schedules
// flush_snapshot() on whatever clock it lives on (simulated or real).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "store/local_store.h"
#include "wal/snapshot.h"
#include "wal/wal.h"

namespace sedna::wal {

enum class PersistMode : std::uint8_t { kNone = 0, kPeriodicFlush, kWal };

struct PersistenceConfig {
  PersistMode mode = PersistMode::kNone;
  /// Directory for snapshot.bin / wal.log.
  std::string dir;
  /// fflush() the log on every append (slow, most durable).
  bool sync_each_write = false;
  /// Under kWal, take a snapshot and truncate the log after this many
  /// appended records (bounds replay time). 0 disables.
  std::uint64_t snapshot_every_records = 0;
};

class PersistenceManager {
 public:
  PersistenceManager(PersistenceConfig config, store::LocalStore& store);

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  /// Creates the directory and opens the log (kWal mode).
  Status start();

  // Mutation hooks — the owning node calls these after a successful
  // local store mutation.
  Status on_write_latest(std::string_view key, std::string_view value,
                         Timestamp ts, std::uint32_t flags);
  Status on_write_all(std::string_view key, NodeId source,
                      std::string_view value, Timestamp ts);
  /// Logs the full post-merge causal record so replay is an idempotent
  /// semilattice join (re-applying a prefix cannot lose siblings).
  Status on_write_causal(std::string_view key,
                         const store::CausalRecord& record);
  Status on_delete(std::string_view key);

  /// Writes a full snapshot; under kWal also truncates the log.
  Status flush_snapshot();

  /// Restores store state: snapshot first, then WAL replay.
  /// Returns total records/items applied.
  Result<std::uint64_t> recover();

  [[nodiscard]] const PersistenceConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t snapshots_taken() const { return snapshots_; }
  [[nodiscard]] std::uint64_t wal_records() const {
    return log_ ? log_->records_appended() : 0;
  }
  [[nodiscard]] std::string snapshot_path() const {
    return config_.dir + "/snapshot.bin";
  }
  [[nodiscard]] std::string wal_path() const { return config_.dir + "/wal.log"; }

 private:
  Status append(const WalRecord& rec);

  PersistenceConfig config_;
  store::LocalStore& store_;
  std::unique_ptr<WriteAheadLog> log_;
  std::uint64_t snapshots_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
};

}  // namespace sedna::wal
