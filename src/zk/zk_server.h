// ZkServer: one member of the ZooKeeper-lite ensemble (the paper's
// "upper layer sub-cluster", Section III.A/III.E).
//
// Consensus model (ZAB-lite): the member with the lowest live id is leader.
// Writes are forwarded to the leader, which sequences them with a zxid,
// broadcasts a Proposal, waits for a majority of ACKs, then commits — in
// zxid order, applying to its own tree and broadcasting Commit to
// followers, which also apply strictly in order. A member that detects a
// gap or an unknown epoch requests a full TreeSync.
//
// Sessions are replicated (kConnect / kExpireSession ride the same commit
// path); heartbeat freshness is leader-local, and a new leader grants all
// sessions a fresh grace period on failover.
//
// Reads (get / exists / children) are served from the local tree without
// consensus — the slightly-stale-reads behaviour ZooKeeper has and that
// Sedna's lease cache is built around.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/host.h"
#include "zk/protocol.h"
#include "zk/znode_tree.h"

namespace sedna::zk {

struct ZkServerConfig {
  std::vector<NodeId> ensemble;  // all member ids, any order
  SimDuration peer_ping_interval = sim_ms(200);
  SimDuration peer_timeout = sim_ms(900);
  SimDuration session_check_interval = sim_ms(500);
  sim::HostConfig host;
};

class ZkServer : public sim::Host {
 public:
  ZkServer(sim::Network& net, NodeId id, ZkServerConfig config);

  /// Schedules peer pings and the session-expiry checker.
  void start();

  [[nodiscard]] bool is_leader() const { return current_leader() == id(); }
  [[nodiscard]] NodeId current_leader() const;
  [[nodiscard]] const ZnodeTree& tree() const { return tree_; }
  [[nodiscard]] std::uint64_t last_applied_zxid() const { return last_zxid_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t commits_applied() const { return applied_; }

 protected:
  void on_message(const sim::Message& msg) override;
  void on_restart() override;

 private:
  struct InFlight {
    ClientRequest op;
    std::set<NodeId> acks;
    /// Where to send the client reply once committed (the member that
    /// forwarded, or a client directly if we are that member).
    sim::Message origin;
    bool has_origin = false;
  };

  void handle_client_request(const sim::Message& msg);
  void handle_forward(const sim::Message& msg);
  void handle_propose(const sim::Message& msg);
  void handle_ack(const sim::Message& msg, std::uint64_t zxid, NodeId from);
  void handle_commit(const sim::Message& msg);
  void handle_peer_ping(const sim::Message& msg);
  void handle_tree_sync(const sim::Message& msg);
  void handle_session_ping(const sim::Message& msg);

  /// Serves a read from the local tree (registering watches if asked).
  ClientReply serve_read(const ClientRequest& req, NodeId client);

  /// Leader: sequence, propose and track a write.
  void lead_write(ClientRequest op, const sim::Message& origin,
                  bool has_origin);

  /// Sends a proposal with bounded retransmission on timeout.
  void send_proposal(NodeId member, std::uint64_t zxid,
                     const std::string& encoded, int attempts_left);

  /// Commits every in-flight proposal at the head of the zxid order that
  /// has a quorum (ZAB commits strictly in order).
  void try_commit_heads();

  /// Applies a committed op to the tree; fires watches; returns the reply.
  ClientReply apply(const ClientRequest& op, std::uint64_t zxid);

  /// Follower: applies buffered commits while they are consecutive.
  void drain_pending_commits();

  void fire_watches(const std::string& path, WatchEventType type);
  void fire_child_watches(const std::string& parent_path);

  void peer_tick();
  void session_tick();
  void become_leader();
  void broadcast_tree_sync(NodeId target_or_all);
  void request_tree_sync();

  [[nodiscard]] std::size_t quorum() const {
    return config_.ensemble.size() / 2 + 1;
  }
  [[nodiscard]] static std::string parent_of(const std::string& path);

  ZkServerConfig config_;
  ZnodeTree tree_;

  // zxid bookkeeping.
  std::uint64_t epoch_ = 1;
  std::uint64_t next_counter_ = 1;   // leader: next zxid counter
  std::uint64_t last_zxid_ = 0;      // last applied
  std::uint64_t applied_ = 0;
  bool was_leader_ = false;

  // Leader: proposals awaiting quorum, ordered by zxid.
  std::map<std::uint64_t, InFlight> in_flight_;
  // Follower: commits that arrived out of order.
  std::map<std::uint64_t, ClientRequest> pending_commits_;

  // Replicated session table: id → timeout_us.
  std::map<std::uint64_t, std::uint64_t> sessions_;
  std::uint64_t next_session_id_ = 1;
  // Leader-local heartbeat freshness.
  std::map<std::uint64_t, SimTime> session_last_heard_;

  // Peer liveness.
  std::map<NodeId, SimTime> peer_last_heard_;
  /// Rate limit for anti-entropy tree-sync requests.
  SimTime last_sync_request_ = 0;

  // Watches registered by clients on this member: path → (client, watch_id).
  std::map<std::string, std::vector<std::pair<NodeId, std::uint64_t>>>
      data_watches_;
  std::map<std::string, std::vector<std::pair<NodeId, std::uint64_t>>>
      child_watches_;
};

}  // namespace sedna::zk
