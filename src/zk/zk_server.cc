#include "zk/zk_server.h"

#include <algorithm>

#include "common/logging.h"

namespace sedna::zk {

ZkServer::ZkServer(sim::Network& net, NodeId id, ZkServerConfig config)
    : sim::Host(net, id, config.host), config_(std::move(config)) {
  std::sort(config_.ensemble.begin(), config_.ensemble.end());
  // Seed peer liveness so the initial leader computation is unanimous:
  // everyone is presumed alive at t=0.
  for (NodeId peer : config_.ensemble) {
    if (peer != this->id()) peer_last_heard_[peer] = 0;
  }
}

void ZkServer::start() {
  // Ensemble ticks are background work; never run them under a stale
  // trace context left by the last dispatched client request.
  sim().schedule_periodic(config_.peer_ping_interval, [this] {
    set_trace_context({});
    peer_tick();
  });
  sim().schedule_periodic(config_.session_check_interval, [this] {
    set_trace_context({});
    session_tick();
  });
  was_leader_ = is_leader();
}

NodeId ZkServer::current_leader() const {
  const SimTime now = this->now();
  for (NodeId member : config_.ensemble) {
    if (member == id()) return alive() ? member : kInvalidNode;
    const auto it = peer_last_heard_.find(member);
    if (it != peer_last_heard_.end() &&
        now - it->second <= config_.peer_timeout) {
      return member;
    }
  }
  return id();
}

std::string ZkServer::parent_of(const std::string& path) {
  const auto pos = path.rfind('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

void ZkServer::on_message(const sim::Message& msg) {
  switch (msg.type) {
    case kMsgClientRequest:
      handle_client_request(msg);
      break;
    case kMsgForward:
      handle_forward(msg);
      break;
    case kMsgPropose:
      handle_propose(msg);
      break;
    case kMsgCommit:
      handle_commit(msg);
      break;
    case kMsgPeerPing:
      handle_peer_ping(msg);
      break;
    case kMsgTreeSync:
      handle_tree_sync(msg);
      break;
    case kMsgTreeSyncReq:
      // Answer when leading, but also when merely holding history: a
      // restarted low-id member may claim leadership with an empty tree
      // before it has heard anyone, and the member that actually carries
      // the data may have already yielded to it — if only "the leader"
      // answered sync requests, that history would be stranded.
      if (is_leader() || last_zxid_ > 0) broadcast_tree_sync(msg.from);
      break;
    case kMsgSessionPing:
      handle_session_ping(msg);
      break;
    default:
      break;
  }
}

void ZkServer::handle_client_request(const sim::Message& msg) {
  auto req = ClientRequest::decode(msg.payload);
  if (!req.ok()) {
    ClientReply rep;
    rep.status = StatusCode::kInvalidArgument;
    reply(msg, rep.encode());
    return;
  }
  if (!req->is_write()) {
    reply(msg, serve_read(*req, msg.from).encode());
    return;
  }
  if (is_leader()) {
    lead_write(std::move(*req), msg, /*has_origin=*/true);
    return;
  }
  // Forward to the leader; relay its answer back to the client.
  const NodeId leader = current_leader();
  sim::Message origin = msg;
  call(leader, kMsgForward, msg.payload,
       [this, origin](const Status& st, const std::string& payload) {
         if (st.ok()) {
           reply(origin, payload);
         } else {
           ClientReply rep;
           rep.status = StatusCode::kUnavailable;
           reply(origin, rep.encode());
         }
       });
}

void ZkServer::handle_forward(const sim::Message& msg) {
  auto req = ClientRequest::decode(msg.payload);
  if (!req.ok()) return;
  if (!is_leader()) {
    // Stale forward; the sender will time out and retry at the new leader.
    ClientReply rep;
    rep.status = StatusCode::kRefused;
    reply(msg, rep.encode());
    return;
  }
  lead_write(std::move(*req), msg, /*has_origin=*/true);
}

void ZkServer::lead_write(ClientRequest op, const sim::Message& origin,
                          bool has_origin) {
  const std::uint64_t zxid = make_zxid(epoch_, next_counter_++);
  InFlight& inflight = in_flight_[zxid];
  inflight.op = op;
  inflight.acks.insert(id());
  inflight.origin = origin;
  inflight.has_origin = has_origin;

  const Proposal proposal{zxid, std::move(op)};
  const std::string encoded = proposal.encode();
  for (NodeId member : config_.ensemble) {
    if (member == id()) continue;
    send_proposal(member, zxid, encoded, /*attempts_left=*/3);
  }
  try_commit_heads();  // single-member ensembles commit immediately
}

void ZkServer::send_proposal(NodeId member, std::uint64_t zxid,
                             const std::string& encoded, int attempts_left) {
  // Proposals must be retransmitted on loss: commits are issued strictly
  // in zxid order, so one proposal that never reaches a quorum would wedge
  // every write behind it.
  call(member, kMsgPropose, encoded,
       [this, member, zxid, encoded, attempts_left](
           const Status& st, const std::string&) {
         if (st.ok()) {
           handle_ack(sim::Message{}, zxid, member);
           return;
         }
         if (attempts_left > 1 && in_flight_.contains(zxid)) {
           send_proposal(member, zxid, encoded, attempts_left - 1);
         }
       });
}

void ZkServer::handle_propose(const sim::Message& msg) {
  auto proposal = Proposal::decode(msg.payload);
  if (!proposal.ok()) return;
  // ACK unconditionally: followers accept the leader's ordering. The op
  // itself arrives again with the commit.
  reply(msg, {});
}

void ZkServer::handle_ack(const sim::Message&, std::uint64_t zxid,
                          NodeId from) {
  const auto it = in_flight_.find(zxid);
  if (it == in_flight_.end()) return;
  it->second.acks.insert(from);
  try_commit_heads();
}

void ZkServer::try_commit_heads() {
  while (!in_flight_.empty()) {
    auto head = in_flight_.begin();
    if (head->second.acks.size() < quorum()) break;
    const std::uint64_t zxid = head->first;
    InFlight inflight = std::move(head->second);
    in_flight_.erase(head);

    const ClientReply rep = apply(inflight.op, zxid);

    const Proposal commit{zxid, inflight.op};
    const std::string encoded = commit.encode();
    for (NodeId member : config_.ensemble) {
      if (member == id()) continue;
      send_oneway(member, kMsgCommit, encoded);
    }
    if (inflight.has_origin) reply(inflight.origin, rep.encode());
  }
}

void ZkServer::handle_commit(const sim::Message& msg) {
  auto proposal = Proposal::decode(msg.payload);
  if (!proposal.ok()) return;
  const std::uint64_t zxid = proposal->zxid;
  if (zxid <= last_zxid_) return;  // duplicate

  if (zxid_epoch(zxid) != epoch_) {
    // We missed a leadership change (its TreeSync is in flight or lost).
    pending_commits_.emplace(zxid, std::move(proposal->op));
    request_tree_sync();
    return;
  }
  pending_commits_.emplace(zxid, std::move(proposal->op));
  drain_pending_commits();
  if (pending_commits_.size() > 16) request_tree_sync();  // stuck on a gap
}

void ZkServer::drain_pending_commits() {
  for (;;) {
    const std::uint64_t expected =
        zxid_epoch(last_zxid_) == epoch_
            ? make_zxid(epoch_, zxid_counter(last_zxid_) + 1)
            : make_zxid(epoch_, 1);
    const auto it = pending_commits_.find(expected);
    if (it == pending_commits_.end()) break;
    apply(it->second, expected);
    pending_commits_.erase(it);
  }
}

ClientReply ZkServer::apply(const ClientRequest& op, std::uint64_t zxid) {
  last_zxid_ = zxid;
  ++applied_;
  ClientReply rep;
  switch (op.op) {
    case ClientRequest::Op::kConnect: {
      const std::uint64_t sid = next_session_id_++;
      sessions_[sid] = op.session_timeout_us;
      session_last_heard_[sid] = sim().now();
      rep.session_id = sid;
      break;
    }
    case ClientRequest::Op::kCreate: {
      auto created = tree_.create(op.path, op.data,
                                  static_cast<CreateMode>(op.mode),
                                  op.session_id, zxid);
      if (!created.ok()) {
        rep.status = created.status().code();
        break;
      }
      rep.payload = created.value();
      fire_watches(rep.payload, WatchEventType::kCreated);
      fire_child_watches(parent_of(rep.payload));
      break;
    }
    case ClientRequest::Op::kSet: {
      auto stat = tree_.set(op.path, op.data, op.expected_version, zxid);
      if (!stat.ok()) {
        rep.status = stat.status().code();
        break;
      }
      rep.stat = stat.value();
      fire_watches(op.path, WatchEventType::kDataChanged);
      break;
    }
    case ClientRequest::Op::kDelete: {
      const Status st = tree_.remove(op.path, op.expected_version);
      rep.status = st.code();
      if (st.ok()) {
        fire_watches(op.path, WatchEventType::kDeleted);
        fire_child_watches(parent_of(op.path));
      }
      break;
    }
    case ClientRequest::Op::kExpireSession:
    case ClientRequest::Op::kCloseSession: {
      sessions_.erase(op.session_id);
      session_last_heard_.erase(op.session_id);
      const auto removed = tree_.remove_session_ephemerals(op.session_id);
      for (const auto& path : removed) {
        fire_watches(path, WatchEventType::kDeleted);
        fire_child_watches(parent_of(path));
      }
      break;
    }
    default:
      rep.status = StatusCode::kInvalidArgument;
      break;
  }
  return rep;
}

ClientReply ZkServer::serve_read(const ClientRequest& req, NodeId client) {
  ClientReply rep;
  switch (req.op) {
    case ClientRequest::Op::kGet: {
      auto got = tree_.get(req.path);
      if (!got.ok()) {
        rep.status = got.status().code();
        break;
      }
      rep.payload = got->first;
      rep.stat = got->second;
      if (req.watch) data_watches_[req.path].emplace_back(client, req.watch_id);
      break;
    }
    case ClientRequest::Op::kExists: {
      auto stat = tree_.exists(req.path);
      // Exists watches register even on absent nodes (fires on create).
      if (req.watch) data_watches_[req.path].emplace_back(client, req.watch_id);
      if (!stat.ok()) {
        rep.status = stat.status().code();
        break;
      }
      rep.stat = stat.value();
      break;
    }
    case ClientRequest::Op::kChildren: {
      auto kids = tree_.children(req.path);
      if (!kids.ok()) {
        rep.status = kids.status().code();
        break;
      }
      rep.children = std::move(kids).value();
      if (req.watch) {
        child_watches_[req.path].emplace_back(client, req.watch_id);
      }
      break;
    }
    default:
      rep.status = StatusCode::kInvalidArgument;
      break;
  }
  return rep;
}

void ZkServer::fire_watches(const std::string& path, WatchEventType type) {
  const auto it = data_watches_.find(path);
  if (it == data_watches_.end()) return;
  auto targets = std::move(it->second);
  data_watches_.erase(it);  // ZooKeeper watches are one-shot
  for (const auto& [client, watch_id] : targets) {
    WatchEventMsg ev{watch_id, path, type};
    send_oneway(client, kMsgWatchEvent, ev.encode());
  }
}

void ZkServer::fire_child_watches(const std::string& parent_path) {
  const auto it = child_watches_.find(parent_path);
  if (it == child_watches_.end()) return;
  auto targets = std::move(it->second);
  child_watches_.erase(it);
  for (const auto& [client, watch_id] : targets) {
    WatchEventMsg ev{watch_id, parent_path,
                     WatchEventType::kChildrenChanged};
    send_oneway(client, kMsgWatchEvent, ev.encode());
  }
}

void ZkServer::handle_peer_ping(const sim::Message& msg) {
  peer_last_heard_[msg.from] = sim().now();
  // Anti-entropy: peer pings carry the sender's last applied zxid. A
  // follower that sees the leader ahead of it (a partition may have cost
  // it every commit, so gap detection via handle_commit never fires)
  // requests a full tree sync, rate-limited.
  BinaryReader r(msg.payload);
  const std::uint64_t peer_zxid = r.get_u64();
  if (r.failed()) return;
  // Any peer ahead of us holds history we lack — ask *that peer* for the
  // image, not our current_leader(): after a restart the lowest-id member
  // believes it leads, so routing the request through current_leader()
  // would make it ask itself and never catch up.
  if (peer_zxid > last_zxid_ &&
      sim().now() - last_sync_request_ > sim_ms(500)) {
    last_sync_request_ = sim().now();
    send_oneway(msg.from, kMsgTreeSyncReq, {});
  }
}

void ZkServer::handle_session_ping(const sim::Message& msg) {
  BinaryReader r(msg.payload);
  const std::uint64_t sid = r.get_u64();
  if (r.failed()) return;
  if (is_leader()) {
    if (sessions_.contains(sid)) session_last_heard_[sid] = sim().now();
  } else {
    send_oneway(current_leader(), kMsgSessionPing, msg.payload);
  }
  // Acknowledge so clients can detect a dead member (rpc_id == 0 means a
  // forwarded one-way copy — no ack needed for those).
  if (msg.rpc_id != 0) reply(msg, {});
}

void ZkServer::peer_tick() {
  if (!alive()) return;
  BinaryWriter w;
  w.put_u64(last_zxid_);
  const std::string payload = std::move(w).take();
  for (NodeId member : config_.ensemble) {
    if (member != id()) send_oneway(member, kMsgPeerPing, payload);
  }
  const bool leading = is_leader();
  if (leading && !was_leader_) become_leader();
  was_leader_ = leading;
}

void ZkServer::session_tick() {
  if (!alive() || !is_leader()) return;
  const SimTime now = sim().now();
  std::vector<std::uint64_t> expired;
  for (const auto& [sid, timeout] : sessions_) {
    auto it = session_last_heard_.find(sid);
    if (it == session_last_heard_.end()) {
      // Unknown freshness (e.g. we just took over): grant a grace period.
      session_last_heard_[sid] = now;
      continue;
    }
    if (now - it->second > timeout) expired.push_back(sid);
  }
  for (std::uint64_t sid : expired) {
    ClientRequest op;
    op.op = ClientRequest::Op::kExpireSession;
    op.session_id = sid;
    lead_write(std::move(op), sim::Message{}, /*has_origin=*/false);
  }
}

void ZkServer::become_leader() {
  epoch_ = std::max(epoch_, zxid_epoch(last_zxid_)) + 1;
  next_counter_ = 1;
  // Any proposals the previous leader left unacknowledged are lost; their
  // clients time out and retry against us.
  in_flight_.clear();
  pending_commits_.clear();
  const SimTime now = sim().now();
  for (const auto& [sid, timeout] : sessions_) session_last_heard_[sid] = now;
  broadcast_tree_sync(kInvalidNode);
}

void ZkServer::broadcast_tree_sync(NodeId target_or_all) {
  TreeSyncMsg m;
  m.epoch = epoch_;
  // Advertise the zxid actually applied, never a fabricated one for the
  // current epoch: an empty restarted member that claims leadership would
  // otherwise ship an image whose zxid out-ranks real history, and peers
  // adopting it would treat the genuine tree as stale — wiping it.
  m.last_zxid = last_zxid_;
  m.next_session_id = next_session_id_;
  m.tree_image = tree_.serialize();
  for (const auto& [sid, timeout] : sessions_) {
    m.sessions.emplace_back(sid, timeout);
  }
  const std::string encoded = m.encode();
  if (target_or_all != kInvalidNode) {
    send_oneway(target_or_all, kMsgTreeSync, encoded);
    return;
  }
  for (NodeId member : config_.ensemble) {
    if (member != id()) send_oneway(member, kMsgTreeSync, encoded);
  }
}

void ZkServer::request_tree_sync() {
  const NodeId leader = current_leader();
  if (leader != id()) send_oneway(leader, kMsgTreeSyncReq, {});
}

void ZkServer::handle_tree_sync(const sim::Message& msg) {
  auto m = TreeSyncMsg::decode(msg.payload);
  if (!m.ok()) return;
  // Adopt only images holding at least as much history as we do,
  // comparing (zxid, epoch) lexicographically. Epoch alone is not
  // authority: two freshly restarted empty members can talk each other
  // into arbitrarily high epochs, and an empty image with an inflated
  // epoch must never displace a populated tree.
  if (m->last_zxid < last_zxid_ ||
      (m->last_zxid == last_zxid_ && m->epoch < epoch_)) {
    return;  // stale
  }
  auto tree = ZnodeTree::deserialize(m->tree_image);
  if (!tree.ok()) return;
  tree_ = std::move(tree).value();
  epoch_ = m->epoch;
  last_zxid_ = m->last_zxid;
  next_session_id_ = m->next_session_id;
  sessions_.clear();
  for (const auto& [sid, timeout] : m->sessions) sessions_[sid] = timeout;
  // Drop commits the image already covers — by zxid, and by epoch: a
  // quorum-committed write from an older epoch is always contained in a
  // newer leader's image, so anything left from a superseded epoch can
  // only wedge the in-order drain.
  std::erase_if(pending_commits_, [this](const auto& kv) {
    return kv.first <= last_zxid_ || zxid_epoch(kv.first) < epoch_;
  });
  drain_pending_commits();
  // If we currently lead, re-establish leadership *on top of* the adopted
  // image: bump the epoch past it (so fresh zxids never collide with the
  // history we just absorbed) and rebroadcast, pulling still-empty
  // restarted members up to the recovered state.
  if (is_leader()) become_leader();
}

void ZkServer::on_restart() {
  // A restarting member rejoins empty and catches up from the leader
  // (our ensemble keeps no local disk state; the paper's ZooKeeper would
  // recover from its own log, which is equivalent for Sedna's purposes).
  tree_ = ZnodeTree{};
  last_zxid_ = 0;
  epoch_ = 0;
  applied_ = 0;
  next_counter_ = 1;
  in_flight_.clear();
  pending_commits_.clear();
  sessions_.clear();
  session_last_heard_.clear();
  data_watches_.clear();
  child_watches_.clear();
  was_leader_ = false;
  request_tree_sync();
}

}  // namespace sedna::zk
