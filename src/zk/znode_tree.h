// ZnodeTree: the hierarchical data tree at the heart of the ZooKeeper-lite
// coordination service (paper Section III.E uses ZooKeeper for vnode
// distribution, node existence via ephemeral znodes, and status data).
//
// Paths are "/a/b/c". Supported node kinds match ZooKeeper: persistent,
// ephemeral (bound to a session, removed on expiry), and their sequential
// variants (a zero-padded, parent-scoped counter is appended to the name).
// Every mutation carries the zxid that caused it, so replicas that apply
// the same committed operations in the same order converge byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sedna::zk {

enum class CreateMode : std::uint8_t {
  kPersistent = 0,
  kEphemeral = 1,
  kPersistentSequential = 2,
  kEphemeralSequential = 3,
};

[[nodiscard]] constexpr bool is_ephemeral(CreateMode m) {
  return m == CreateMode::kEphemeral || m == CreateMode::kEphemeralSequential;
}
[[nodiscard]] constexpr bool is_sequential(CreateMode m) {
  return m == CreateMode::kPersistentSequential ||
         m == CreateMode::kEphemeralSequential;
}

struct ZnodeStat {
  /// zxid of the create / last modification.
  std::uint64_t czxid = 0;
  std::uint64_t mzxid = 0;
  /// Data version, bumped on every set().
  std::int64_t version = 0;
  /// Owning session for ephemerals; 0 for persistent nodes.
  std::uint64_t ephemeral_owner = 0;
  std::uint32_t num_children = 0;
};

class ZnodeTree {
 public:
  ZnodeTree();

  /// Creates a znode. Parent must exist; ephemeral parents cannot have
  /// children (ZooKeeper rule). For sequential modes the stored name gets
  /// a 10-digit suffix; the result is the actual path.
  Result<std::string> create(std::string_view path, std::string_view data,
                             CreateMode mode, std::uint64_t session_id,
                             std::uint64_t zxid);

  Result<std::pair<std::string, ZnodeStat>> get(std::string_view path) const;

  /// Sets data; `expected_version` of -1 skips the version check.
  Result<ZnodeStat> set(std::string_view path, std::string_view data,
                        std::int64_t expected_version, std::uint64_t zxid);

  /// Deletes a leaf znode (children must be removed first).
  Status remove(std::string_view path, std::int64_t expected_version);

  [[nodiscard]] Result<ZnodeStat> exists(std::string_view path) const;

  /// Child names (not full paths), sorted.
  Result<std::vector<std::string>> children(std::string_view path) const;

  /// Removes every ephemeral owned by `session_id`; returns their paths
  /// (used to fire watches and to tell Sedna which real nodes vanished).
  std::vector<std::string> remove_session_ephemerals(std::uint64_t session_id);

  /// Deep visit of all znodes: fn(path, data, stat).
  void for_each(const std::function<void(const std::string&,
                                         const std::string&,
                                         const ZnodeStat&)>& fn) const;

  /// Serialization for full-state transfer to (re)joining ensemble members.
  [[nodiscard]] std::string serialize() const;
  static Result<ZnodeTree> deserialize(std::string_view bytes);

  [[nodiscard]] std::size_t node_count() const;

 private:
  struct Znode {
    std::string data;
    ZnodeStat stat;
    std::uint64_t next_sequence = 0;
    std::map<std::string, std::unique_ptr<Znode>> children;
  };

  /// Walks to the node at `path`; nullptr when absent.
  [[nodiscard]] Znode* walk(std::string_view path);
  [[nodiscard]] const Znode* walk(std::string_view path) const;

  /// Splits path into parent path + leaf name. Returns false on malformed
  /// paths ("", "foo", "/", trailing slash).
  static bool split(std::string_view path, std::string_view& parent,
                    std::string_view& leaf);

  std::unique_ptr<Znode> root_;
};

}  // namespace sedna::zk
