// Wire protocol of the ZooKeeper-lite service (message-type range 100–199).
//
// Clients talk to any ensemble member. Reads are answered from the
// member's local tree (possibly slightly stale — ZooKeeper semantics);
// writes and session operations are forwarded to the leader, sequenced
// with a zxid, quorum-acknowledged and committed to every member.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "sim/message.h"
#include "zk/znode_tree.h"

namespace sedna::zk {

// Client-facing.
constexpr sim::MessageType kMsgClientRequest = 100;
constexpr sim::MessageType kMsgWatchEvent = 101;   // server → client, one-way
constexpr sim::MessageType kMsgSessionPing = 102;  // client → member, one-way

// Ensemble-internal.
constexpr sim::MessageType kMsgForward = 120;      // member → leader
constexpr sim::MessageType kMsgPropose = 121;      // leader → members
constexpr sim::MessageType kMsgCommit = 122;       // leader → members, one-way
constexpr sim::MessageType kMsgPeerPing = 123;     // member ↔ member, one-way
constexpr sim::MessageType kMsgTreeSync = 124;     // leader → member, one-way
constexpr sim::MessageType kMsgTreeSyncReq = 125;  // member → leader, one-way

struct ClientRequest {
  enum class Op : std::uint8_t {
    kConnect = 0,
    kCreate,
    kGet,
    kSet,
    kDelete,
    kExists,
    kChildren,
    /// Internal: leader-originated session expiry (never sent by clients).
    kExpireSession,
    /// Internal: client-requested session close.
    kCloseSession,
  };

  Op op = Op::kGet;
  std::string path;
  std::string data;
  std::uint8_t mode = 0;  // CreateMode, for kCreate
  std::int64_t expected_version = -1;
  std::uint64_t session_id = 0;
  std::uint64_t session_timeout_us = 0;  // kConnect
  bool watch = false;                    // kGet / kExists / kChildren
  std::uint64_t watch_id = 0;

  [[nodiscard]] bool is_write() const {
    switch (op) {
      case Op::kConnect:
      case Op::kCreate:
      case Op::kSet:
      case Op::kDelete:
      case Op::kExpireSession:
      case Op::kCloseSession:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(path.size() + data.size() + 48);
    w.put_u8(static_cast<std::uint8_t>(op));
    w.put_string(path);
    w.put_string(data);
    w.put_u8(mode);
    w.put_i64(expected_version);
    w.put_u64(session_id);
    w.put_u64(session_timeout_us);
    w.put_bool(watch);
    w.put_u64(watch_id);
    return std::move(w).take();
  }

  static Result<ClientRequest> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ClientRequest req;
    req.op = static_cast<Op>(r.get_u8());
    req.path = r.get_string();
    req.data = r.get_string();
    req.mode = r.get_u8();
    req.expected_version = r.get_i64();
    req.session_id = r.get_u64();
    req.session_timeout_us = r.get_u64();
    req.watch = r.get_bool();
    req.watch_id = r.get_u64();
    if (r.failed()) return Status::Corruption("bad zk request");
    return req;
  }
};

inline void encode_stat(BinaryWriter& w, const ZnodeStat& s) {
  w.put_u64(s.czxid);
  w.put_u64(s.mzxid);
  w.put_i64(s.version);
  w.put_u64(s.ephemeral_owner);
  w.put_u32(s.num_children);
}

inline ZnodeStat decode_stat(BinaryReader& r) {
  ZnodeStat s;
  s.czxid = r.get_u64();
  s.mzxid = r.get_u64();
  s.version = r.get_i64();
  s.ephemeral_owner = r.get_u64();
  s.num_children = r.get_u32();
  return s;
}

struct ClientReply {
  StatusCode status = StatusCode::kOk;
  /// kCreate: actual path (with sequence suffix). kGet: data.
  std::string payload;
  ZnodeStat stat;
  std::vector<std::string> children;
  std::uint64_t session_id = 0;  // kConnect

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(payload.size() + 64);
    w.put_u8(static_cast<std::uint8_t>(status));
    w.put_string(payload);
    encode_stat(w, stat);
    w.put_vector(children, [](BinaryWriter& out, const std::string& c) {
      out.put_string(c);
    });
    w.put_u64(session_id);
    return std::move(w).take();
  }

  static Result<ClientReply> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    ClientReply rep;
    rep.status = static_cast<StatusCode>(r.get_u8());
    rep.payload = r.get_string();
    rep.stat = decode_stat(r);
    rep.children = r.get_vector<std::string>(
        [](BinaryReader& in) { return in.get_string(); });
    rep.session_id = r.get_u64();
    if (r.failed()) return Status::Corruption("bad zk reply");
    return rep;
  }
};

enum class WatchEventType : std::uint8_t {
  kDataChanged = 0,
  kCreated = 1,
  kDeleted = 2,
  kChildrenChanged = 3,
};

struct WatchEventMsg {
  std::uint64_t watch_id = 0;
  std::string path;
  WatchEventType type = WatchEventType::kDataChanged;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(path.size() + 16);
    w.put_u64(watch_id);
    w.put_string(path);
    w.put_u8(static_cast<std::uint8_t>(type));
    return std::move(w).take();
  }

  static Result<WatchEventMsg> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    WatchEventMsg ev;
    ev.watch_id = r.get_u64();
    ev.path = r.get_string();
    ev.type = static_cast<WatchEventType>(r.get_u8());
    if (r.failed()) return Status::Corruption("bad watch event");
    return ev;
  }
};

/// Leader → members: a sequenced write awaiting quorum.
struct Proposal {
  std::uint64_t zxid = 0;
  ClientRequest op;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w;
    w.put_u64(zxid);
    w.put_string(op.encode());
    return std::move(w).take();
  }

  static Result<Proposal> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    Proposal p;
    p.zxid = r.get_u64();
    auto op = ClientRequest::decode(r.get_string());
    if (r.failed() || !op.ok()) return Status::Corruption("bad proposal");
    p.op = std::move(op).value();
    return p;
  }
};

/// Full-state transfer image: tree + replicated session table.
struct TreeSyncMsg {
  std::uint64_t epoch = 0;
  std::uint64_t last_zxid = 0;
  std::uint64_t next_session_id = 1;
  std::string tree_image;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sessions;  // id, timeout

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(tree_image.size() + 64);
    w.put_u64(epoch);
    w.put_u64(last_zxid);
    w.put_u64(next_session_id);
    w.put_string(tree_image);
    w.put_u32(static_cast<std::uint32_t>(sessions.size()));
    for (const auto& [id, timeout] : sessions) {
      w.put_u64(id);
      w.put_u64(timeout);
    }
    return std::move(w).take();
  }

  static Result<TreeSyncMsg> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    TreeSyncMsg m;
    m.epoch = r.get_u64();
    m.last_zxid = r.get_u64();
    m.next_session_id = r.get_u64();
    m.tree_image = r.get_string();
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      const std::uint64_t id = r.get_u64();
      const std::uint64_t timeout = r.get_u64();
      m.sessions.emplace_back(id, timeout);
    }
    if (r.failed()) return Status::Corruption("bad tree sync");
    return m;
  }
};

[[nodiscard]] constexpr std::uint64_t make_zxid(std::uint64_t epoch,
                                                std::uint64_t counter) {
  return (epoch << 32) | counter;
}
[[nodiscard]] constexpr std::uint64_t zxid_epoch(std::uint64_t zxid) {
  return zxid >> 32;
}
[[nodiscard]] constexpr std::uint64_t zxid_counter(std::uint64_t zxid) {
  return zxid & 0xffffffffULL;
}

}  // namespace sedna::zk
