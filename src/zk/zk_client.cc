#include "zk/zk_client.h"

#include <algorithm>

namespace sedna::zk {

namespace {

const char* zk_op_span_name(ClientRequest::Op op) {
  switch (op) {
    case ClientRequest::Op::kConnect: return "zk.connect";
    case ClientRequest::Op::kCreate: return "zk.create";
    case ClientRequest::Op::kGet: return "zk.get";
    case ClientRequest::Op::kSet: return "zk.set";
    case ClientRequest::Op::kDelete: return "zk.delete";
    case ClientRequest::Op::kExists: return "zk.exists";
    case ClientRequest::Op::kChildren: return "zk.children";
    default: return "zk.op";
  }
}

}  // namespace

void ZkClient::submit(ClientRequest req, int attempt,
                      std::function<void(const Result<ClientReply>&)> done) {
  if (config_.ensemble.empty()) {
    done(Status::Unavailable("no ensemble members"));
    return;
  }
  // Span over the whole logical operation (member failover included);
  // the per-attempt RPC spans opened by host_.call nest underneath.
  TraceContext op_ctx_restore = host_.trace_context();
  bool restore = false;
  if (attempt == 0) {
    if (const SpanId span =
            host_.begin_span(zk_op_span_name(req.op), TraceStage::kZk)) {
      op_ctx_restore = host_.enter_span(span);
      restore = true;
      done = [this, span, inner = std::move(done)](
                 const Result<ClientReply>& rep) {
        host_.end_span(span, rep.ok() && rep->status == StatusCode::kOk
                                 ? "ok"
                                 : "error");
        inner(rep);
      };
    }
  }
  const NodeId member =
      config_.ensemble[member_cursor_ % config_.ensemble.size()];
  ++requests_;
  host_.call(
      member, kMsgClientRequest, req.encode(),
      [this, req, attempt, done = std::move(done)](
          const Status& st, const std::string& payload) mutable {
        if (st.ok()) {
          auto rep = ClientReply::decode(payload);
          if (rep.ok() && rep->status != StatusCode::kUnavailable &&
              rep->status != StatusCode::kRefused) {
            done(std::move(rep));
            return;
          }
        }
        // Timeout, decode failure, or member-side unavailability: rotate
        // to the next member and retry.
        ++member_cursor_;
        if (attempt + 1 >= config_.max_retries) {
          done(Status::Unavailable("zk retries exhausted"));
          return;
        }
        submit(std::move(req), attempt + 1, std::move(done));
      });
  if (restore) host_.set_trace_context(op_ctx_restore);
}

void ZkClient::connect(ConnectCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kConnect;
  req.session_timeout_us = config_.session_timeout;
  submit(std::move(req), 0,
         [this, cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           session_id_ = rep->session_id;
           start_pings();
           cb(Status::Ok());
         });
}

void ZkClient::start_pings() {
  ping_timer_.cancel();
  ping_timer_ = host_.sim().schedule_periodic(
      config_.ping_interval, [this] {
        if (session_id_ == 0 || !host_.alive()) return;
        // Heartbeats are background work: never attribute them to
        // whatever trace the host last dispatched.
        host_.set_trace_context({});
        BinaryWriter w;
        w.put_u64(session_id_);
        const NodeId member =
            config_.ensemble[member_cursor_ % config_.ensemble.size()];
        // Heartbeats are acknowledged so the client notices a dead member
        // and fails over before its own session lapses.
        host_.call(member, kMsgSessionPing, std::move(w).take(),
                   [this](const Status& st, const std::string&) {
                     if (!st.ok()) ++member_cursor_;
                   });
      });
}

void ZkClient::create(const std::string& path, const std::string& data,
                      CreateMode mode, CreateCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kCreate;
  req.path = path;
  req.data = data;
  req.mode = static_cast<std::uint8_t>(mode);
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->payload);
         });
}

void ZkClient::get(const std::string& path, GetCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kGet;
  req.path = path;
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [this, path, cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cache_[path] = CacheEntry{rep->payload, rep->stat,
                                     host_.sim().now()};
           cb(std::make_pair(rep->payload, rep->stat));
         });
}

void ZkClient::set(const std::string& path, const std::string& data,
                   std::int64_t expected_version, SetCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kSet;
  req.path = path;
  req.data = data;
  req.expected_version = expected_version;
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [this, path, cb = std::move(cb)](const Result<ClientReply>& rep) {
           cache_.erase(path);  // our own write invalidates the cache
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->stat);
         });
}

void ZkClient::remove(const std::string& path, std::int64_t expected_version,
                      StatusCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kDelete;
  req.path = path;
  req.expected_version = expected_version;
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [this, path, cb = std::move(cb)](const Result<ClientReply>& rep) {
           cache_.erase(path);
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           cb(Status(rep->status));
         });
}

void ZkClient::exists(const std::string& path, SetCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kExists;
  req.path = path;
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->stat);
         });
}

void ZkClient::children(const std::string& path, ChildrenCallback cb) {
  ClientRequest req;
  req.op = ClientRequest::Op::kChildren;
  req.path = path;
  req.session_id = session_id_;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->children);
         });
}

void ZkClient::get_and_watch(const std::string& path, GetCallback cb,
                             WatchCallback on_event) {
  const std::uint64_t wid = next_watch_id_++;
  watch_callbacks_[wid] = std::move(on_event);
  ClientRequest req;
  req.op = ClientRequest::Op::kGet;
  req.path = path;
  req.session_id = session_id_;
  req.watch = true;
  req.watch_id = wid;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(std::make_pair(rep->payload, rep->stat));
         });
}

void ZkClient::exists_and_watch(const std::string& path, SetCallback cb,
                                WatchCallback on_event) {
  const std::uint64_t wid = next_watch_id_++;
  watch_callbacks_[wid] = std::move(on_event);
  ClientRequest req;
  req.op = ClientRequest::Op::kExists;
  req.path = path;
  req.session_id = session_id_;
  req.watch = true;
  req.watch_id = wid;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->stat);
         });
}

void ZkClient::children_and_watch(const std::string& path,
                                  ChildrenCallback cb,
                                  WatchCallback on_event) {
  const std::uint64_t wid = next_watch_id_++;
  watch_callbacks_[wid] = std::move(on_event);
  ClientRequest req;
  req.op = ClientRequest::Op::kChildren;
  req.path = path;
  req.session_id = session_id_;
  req.watch = true;
  req.watch_id = wid;
  submit(std::move(req), 0,
         [cb = std::move(cb)](const Result<ClientReply>& rep) {
           if (!rep.ok()) {
             cb(rep.status());
             return;
           }
           if (rep->status != StatusCode::kOk) {
             cb(Status(rep->status));
             return;
           }
           cb(rep->children);
         });
}

void ZkClient::cached_get(const std::string& path, GetCallback cb) {
  const auto it = cache_.find(path);
  if (it != cache_.end() &&
      host_.sim().now() - it->second.fetched_at <= lease_) {
    ++cache_hits_;
    cb(std::make_pair(it->second.data, it->second.stat));
    return;
  }
  ++cache_misses_;
  get(path, std::move(cb));
}

void ZkClient::note_sync_changes(std::size_t changed) {
  // Paper III.E: "lease time will reduce to half if there are lots of
  // changes in ZooKeeper in last lease time, and grow to double if no
  // change in last lease time."
  if (changed >= config_.busy_threshold) {
    lease_ = std::max(config_.lease_min, lease_ / 2);
  } else if (changed == 0) {
    lease_ = std::min(config_.lease_max, lease_ * 2);
  }
}

void ZkClient::on_watch_event(const std::string& payload) {
  auto ev = WatchEventMsg::decode(payload);
  if (!ev.ok()) return;
  const auto it = watch_callbacks_.find(ev->watch_id);
  if (it == watch_callbacks_.end()) return;
  WatchCallback cb = std::move(it->second);
  watch_callbacks_.erase(it);  // one-shot, like ZooKeeper
  cb(ev.value());
}

}  // namespace sedna::zk
