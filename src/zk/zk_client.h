// ZkClient: the embedded client each Sedna node uses to talk to the
// ensemble (paper Section III.D/III.E).
//
// Notable Sedna behaviours implemented here:
//   * session with heartbeat pings (ephemeral liveness, Section III.D);
//   * member failover: operations retry against the next ensemble member
//     on timeout / refusal;
//   * a local read cache with an *adaptive lease*: the lease halves when
//     the last period saw many ZooKeeper changes and doubles when it saw
//     none (Section III.E strategy #2), clamped to [min,max];
//   * optional watches (Section III.E explains Sedna avoids them on hot
//     paths — we implement them anyway for completeness and to measure
//     the watch-storm effect in the ablation bench).
//
// The client is a component of a sim::Host (it borrows the host's RPC
// machinery); the host must route kMsgWatchEvent messages to
// on_watch_event().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/host.h"
#include "zk/protocol.h"

namespace sedna::zk {

struct ZkClientConfig {
  std::vector<NodeId> ensemble;
  SimDuration session_timeout = sim_sec(2);
  SimDuration ping_interval = sim_ms(500);
  int max_retries = 4;
  // Adaptive lease parameters (paper III.E).
  SimDuration lease_initial = sim_sec(1);
  SimDuration lease_min = sim_ms(125);
  SimDuration lease_max = sim_sec(8);
  /// Changes per sync period above which the lease halves.
  std::size_t busy_threshold = 1;
};

class ZkClient {
 public:
  using ConnectCallback = std::function<void(const Status&)>;
  using CreateCallback = std::function<void(const Result<std::string>&)>;
  using GetCallback =
      std::function<void(const Result<std::pair<std::string, ZnodeStat>>&)>;
  using SetCallback = std::function<void(const Result<ZnodeStat>&)>;
  using StatusCallback = std::function<void(const Status&)>;
  using ChildrenCallback =
      std::function<void(const Result<std::vector<std::string>>&)>;
  using WatchCallback = std::function<void(const WatchEventMsg&)>;

  ZkClient(sim::Host& host, ZkClientConfig config)
      : host_(host), config_(std::move(config)), lease_(config_.lease_initial) {}
  ~ZkClient() { ping_timer_.cancel(); }

  ZkClient(const ZkClient&) = delete;
  ZkClient& operator=(const ZkClient&) = delete;

  /// Establishes a session and starts heartbeats.
  void connect(ConnectCallback cb);
  [[nodiscard]] bool connected() const { return session_id_ != 0; }
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }

  void create(const std::string& path, const std::string& data,
              CreateMode mode, CreateCallback cb);
  void get(const std::string& path, GetCallback cb);
  void set(const std::string& path, const std::string& data,
           std::int64_t expected_version, SetCallback cb);
  void remove(const std::string& path, std::int64_t expected_version,
              StatusCallback cb);
  void exists(const std::string& path, SetCallback cb);
  void children(const std::string& path, ChildrenCallback cb);

  /// get() with a one-shot watch; `on_event` fires when the node changes.
  void get_and_watch(const std::string& path, GetCallback cb,
                     WatchCallback on_event);
  void exists_and_watch(const std::string& path, SetCallback cb,
                        WatchCallback on_event);
  void children_and_watch(const std::string& path, ChildrenCallback cb,
                          WatchCallback on_event);

  /// Lease-cached read: serves from the local cache while the entry is
  /// younger than the current lease, otherwise refetches. This is Sedna's
  /// primary defence against a ZooKeeper read bottleneck (III.E).
  void cached_get(const std::string& path, GetCallback cb);
  void invalidate(const std::string& path) { cache_.erase(path); }
  void invalidate_all() { cache_.clear(); }

  /// Feeds the adaptive-lease controller: callers report how many changed
  /// znodes the last sync period observed.
  void note_sync_changes(std::size_t changed);
  [[nodiscard]] SimDuration current_lease() const { return lease_; }

  /// Host hook: deliver a kMsgWatchEvent payload.
  void on_watch_event(const std::string& payload);

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }

 private:
  struct CacheEntry {
    std::string data;
    ZnodeStat stat;
    SimTime fetched_at = 0;
  };

  /// Sends `req` to the current member, rotating members on failure.
  void submit(ClientRequest req, int attempt,
              std::function<void(const Result<ClientReply>&)> done);

  void start_pings();

  sim::Host& host_;
  ZkClientConfig config_;
  std::uint64_t session_id_ = 0;
  std::size_t member_cursor_ = 0;
  std::uint64_t next_watch_id_ = 1;
  std::map<std::uint64_t, WatchCallback> watch_callbacks_;
  std::map<std::string, CacheEntry> cache_;
  SimDuration lease_;
  sim::TimerHandle ping_timer_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace sedna::zk
