#include "zk/znode_tree.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/codec.h"

namespace sedna::zk {

ZnodeTree::ZnodeTree() : root_(std::make_unique<Znode>()) {}

bool ZnodeTree::split(std::string_view path, std::string_view& parent,
                      std::string_view& leaf) {
  if (path.size() < 2 || path.front() != '/' || path.back() == '/') {
    return false;
  }
  const auto pos = path.rfind('/');
  parent = pos == 0 ? std::string_view{"/"} : path.substr(0, pos);
  leaf = path.substr(pos + 1);
  return !leaf.empty();
}

ZnodeTree::Znode* ZnodeTree::walk(std::string_view path) {
  return const_cast<Znode*>(
      static_cast<const ZnodeTree*>(this)->walk(path));
}

const ZnodeTree::Znode* ZnodeTree::walk(std::string_view path) const {
  if (path.empty() || path.front() != '/') return nullptr;
  const Znode* node = root_.get();
  std::size_t pos = 1;
  while (pos < path.size()) {
    auto next = path.find('/', pos);
    if (next == std::string_view::npos) next = path.size();
    const std::string_view component = path.substr(pos, next - pos);
    if (component.empty()) return nullptr;
    const auto it = node->children.find(std::string(component));
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
    pos = next + 1;
  }
  return node;
}

Result<std::string> ZnodeTree::create(std::string_view path,
                                      std::string_view data, CreateMode mode,
                                      std::uint64_t session_id,
                                      std::uint64_t zxid) {
  std::string_view parent_path, leaf;
  if (!split(path, parent_path, leaf)) {
    return Status::InvalidArgument("bad znode path");
  }
  Znode* parent = walk(parent_path);
  if (parent == nullptr) return Status::NotFound("parent missing");
  if (parent->stat.ephemeral_owner != 0) {
    return Status::InvalidArgument("ephemeral znodes cannot have children");
  }

  std::string name(leaf);
  if (is_sequential(mode)) {
    char suffix[16];
    std::snprintf(suffix, sizeof suffix, "%010" PRIu64,
                  parent->next_sequence++);
    name += suffix;
  }
  if (parent->children.contains(name)) {
    return Status::AlreadyExists(std::string(path));
  }

  auto node = std::make_unique<Znode>();
  node->data.assign(data);
  node->stat.czxid = zxid;
  node->stat.mzxid = zxid;
  node->stat.ephemeral_owner = is_ephemeral(mode) ? session_id : 0;
  parent->children.emplace(name, std::move(node));
  parent->stat.num_children = static_cast<std::uint32_t>(
      parent->children.size());

  std::string actual(parent_path == "/" ? "" : std::string(parent_path));
  actual += '/';
  actual += name;
  return actual;
}

Result<std::pair<std::string, ZnodeStat>> ZnodeTree::get(
    std::string_view path) const {
  const Znode* node = walk(path);
  if (node == nullptr) return Status::NotFound(std::string(path));
  return std::make_pair(node->data, node->stat);
}

Result<ZnodeStat> ZnodeTree::set(std::string_view path, std::string_view data,
                                 std::int64_t expected_version,
                                 std::uint64_t zxid) {
  Znode* node = walk(path);
  if (node == nullptr) return Status::NotFound(std::string(path));
  if (expected_version >= 0 && node->stat.version != expected_version) {
    return Status::Failure("version mismatch");
  }
  node->data.assign(data);
  ++node->stat.version;
  node->stat.mzxid = zxid;
  return node->stat;
}

Status ZnodeTree::remove(std::string_view path,
                         std::int64_t expected_version) {
  std::string_view parent_path, leaf;
  if (!split(path, parent_path, leaf)) {
    return Status::InvalidArgument("bad znode path");
  }
  Znode* parent = walk(parent_path);
  if (parent == nullptr) return Status::NotFound(std::string(path));
  const auto it = parent->children.find(std::string(leaf));
  if (it == parent->children.end()) {
    return Status::NotFound(std::string(path));
  }
  if (expected_version >= 0 &&
      it->second->stat.version != expected_version) {
    return Status::Failure("version mismatch");
  }
  if (!it->second->children.empty()) {
    return Status::InvalidArgument("znode has children");
  }
  parent->children.erase(it);
  parent->stat.num_children =
      static_cast<std::uint32_t>(parent->children.size());
  return Status::Ok();
}

Result<ZnodeStat> ZnodeTree::exists(std::string_view path) const {
  const Znode* node = walk(path);
  if (node == nullptr) return Status::NotFound(std::string(path));
  return node->stat;
}

Result<std::vector<std::string>> ZnodeTree::children(
    std::string_view path) const {
  const Znode* node = walk(path);
  if (node == nullptr) return Status::NotFound(std::string(path));
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::vector<std::string> ZnodeTree::remove_session_ephemerals(
    std::uint64_t session_id) {
  std::vector<std::string> removed;
  // Two passes: collect paths (deepest first is unnecessary — ephemerals
  // are leaves by construction), then delete.
  std::vector<std::string> to_delete;
  for_each([&](const std::string& path, const std::string&,
               const ZnodeStat& stat) {
    if (stat.ephemeral_owner == session_id) to_delete.push_back(path);
  });
  for (const auto& path : to_delete) {
    if (remove(path, -1).ok()) removed.push_back(path);
  }
  return removed;
}

void ZnodeTree::for_each(
    const std::function<void(const std::string&, const std::string&,
                             const ZnodeStat&)>& fn) const {
  // Iterative DFS over (path, node).
  std::vector<std::pair<std::string, const Znode*>> stack;
  stack.emplace_back("", root_.get());
  while (!stack.empty()) {
    auto [path, node] = stack.back();
    stack.pop_back();
    if (!path.empty()) fn(path, node->data, node->stat);
    for (const auto& [name, child] : node->children) {
      stack.emplace_back(path + "/" + name, child.get());
    }
  }
}

std::string ZnodeTree::serialize() const {
  BinaryWriter w;
  // Count first.
  std::uint32_t count = 0;
  for_each([&](const std::string&, const std::string&, const ZnodeStat&) {
    ++count;
  });
  w.put_u32(count);
  // Parents sort before children lexicographically? Not in general
  // ("/a-x" < "/a/x" is false since '-' < '/'), so emit in DFS order,
  // which guarantees parent-before-child.
  std::vector<std::tuple<std::string, std::string, ZnodeStat>> nodes;
  for_each([&](const std::string& path, const std::string& data,
               const ZnodeStat& stat) {
    nodes.emplace_back(path, data, stat);
  });
  // for_each is DFS with a LIFO stack: parents are visited before their
  // children, so `nodes` is already parent-first.
  for (const auto& [path, data, stat] : nodes) {
    w.put_string(path);
    w.put_string(data);
    w.put_u64(stat.czxid);
    w.put_u64(stat.mzxid);
    w.put_i64(stat.version);
    w.put_u64(stat.ephemeral_owner);
  }
  // Sequence counters must transfer too, or a new leader would reissue
  // sequential names. Emit (path, next_sequence) pairs including root.
  std::vector<std::pair<std::string, const Znode*>> stack;
  stack.emplace_back("", root_.get());
  std::vector<std::pair<std::string, std::uint64_t>> seqs;
  while (!stack.empty()) {
    auto [path, node] = stack.back();
    stack.pop_back();
    if (node->next_sequence != 0) seqs.emplace_back(path, node->next_sequence);
    for (const auto& [name, child] : node->children) {
      stack.emplace_back(path + "/" + name, child.get());
    }
  }
  w.put_u32(static_cast<std::uint32_t>(seqs.size()));
  for (const auto& [path, seq] : seqs) {
    w.put_string(path);
    w.put_u64(seq);
  }
  return std::move(w).take();
}

Result<ZnodeTree> ZnodeTree::deserialize(std::string_view bytes) {
  BinaryReader r(bytes);
  ZnodeTree tree;
  const std::uint32_t count = r.get_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string path = r.get_string();
    const std::string data = r.get_string();
    ZnodeStat stat;
    stat.czxid = r.get_u64();
    stat.mzxid = r.get_u64();
    stat.version = r.get_i64();
    stat.ephemeral_owner = r.get_u64();
    if (r.failed()) return Status::Corruption("bad tree image");
    const CreateMode mode = stat.ephemeral_owner != 0
                                ? CreateMode::kEphemeral
                                : CreateMode::kPersistent;
    auto created = tree.create(path, data, mode, stat.ephemeral_owner,
                               stat.czxid);
    if (!created.ok()) return Status::Corruption("bad tree order");
    // Restore the full stat (version history) directly.
    Znode* node = tree.walk(path);
    node->stat = stat;
  }
  const std::uint32_t nseq = r.get_u32();
  for (std::uint32_t i = 0; i < nseq; ++i) {
    const std::string path = r.get_string();
    const std::uint64_t seq = r.get_u64();
    if (r.failed()) return Status::Corruption("bad tree image");
    Znode* node = path.empty() ? tree.root_.get() : tree.walk(path);
    if (node != nullptr) node->next_sequence = seq;
  }
  if (r.failed()) return Status::Corruption("bad tree image");
  return tree;
}

std::size_t ZnodeTree::node_count() const {
  std::size_t n = 0;
  for_each([&](const std::string&, const std::string&, const ZnodeStat&) {
    ++n;
  });
  return n;
}

}  // namespace sedna::zk
