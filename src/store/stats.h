// Store statistics, memcached "stats"-style plus Sedna extensions.
#pragma once

#include <cstdint>

namespace sedna::store {

struct StoreStats {
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t set_outdated = 0;  // write rejected by timestamp LWW
  std::uint64_t deletes = 0;
  std::uint64_t cas_hits = 0;
  std::uint64_t cas_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired = 0;
  std::uint64_t curr_items = 0;
  std::uint64_t total_items = 0;
  std::uint64_t bytes = 0;          // resident payload bytes
  std::uint64_t dirty_events = 0;   // change-capture records produced
  std::uint64_t siblings = 0;       // concurrent values retained (gauge)
  std::uint64_t dvv_merges = 0;     // causal record joins that changed state

  StoreStats& operator+=(const StoreStats& o) {
    get_hits += o.get_hits;
    get_misses += o.get_misses;
    sets += o.sets;
    set_outdated += o.set_outdated;
    deletes += o.deletes;
    cas_hits += o.cas_hits;
    cas_misses += o.cas_misses;
    evictions += o.evictions;
    expired += o.expired;
    curr_items += o.curr_items;
    total_items += o.total_items;
    bytes += o.bytes;
    dirty_events += o.dirty_events;
    siblings += o.siblings;
    dvv_merges += o.dvv_merges;
    return *this;
  }
};

}  // namespace sedna::store
