// Slab size-class accounting, modeled on memcached's slab allocator.
//
// We do not replace the system allocator (items are std::string-backed);
// what matters for reproducing memcached-like behaviour is the *accounting*:
// items are charged to power-law size classes, per-class counters feed
// stats and tests can verify that eviction keeps the total under budget
// exactly the way memcached's slab rebalancing sees it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sedna::store {

class SlabAccounting {
 public:
  static constexpr std::size_t kMinChunk = 64;
  static constexpr double kGrowthFactor = 1.25;
  static constexpr std::size_t kNumClasses = 40;

  SlabAccounting() {
    double sz = kMinChunk;
    for (auto& c : class_size_) {
      c = static_cast<std::size_t>(sz);
      sz *= kGrowthFactor;
    }
  }

  /// Index of the smallest class whose chunk fits `nbytes`. Oversized
  /// allocations land in the last class.
  [[nodiscard]] std::size_t class_for(std::size_t nbytes) const {
    for (std::size_t i = 0; i < kNumClasses; ++i) {
      if (nbytes <= class_size_[i]) return i;
    }
    return kNumClasses - 1;
  }

  [[nodiscard]] std::size_t chunk_size(std::size_t cls) const {
    return class_size_[cls];
  }

  void charge(std::size_t nbytes) {
    const auto cls = class_for(nbytes);
    ++used_chunks_[cls];
    charged_bytes_ += class_size_[cls];
  }

  void release(std::size_t nbytes) {
    const auto cls = class_for(nbytes);
    if (used_chunks_[cls] > 0) --used_chunks_[cls];
    if (charged_bytes_ >= class_size_[cls]) charged_bytes_ -= class_size_[cls];
  }

  [[nodiscard]] std::uint64_t used_chunks(std::size_t cls) const {
    return used_chunks_[cls];
  }
  /// Bytes charged at chunk granularity (>= payload bytes; the difference
  /// is the internal fragmentation real memcached pays).
  [[nodiscard]] std::uint64_t charged_bytes() const { return charged_bytes_; }

 private:
  std::array<std::size_t, kNumClasses> class_size_{};
  std::array<std::uint64_t, kNumClasses> used_chunks_{};
  std::uint64_t charged_bytes_ = 0;
};

}  // namespace sedna::store
