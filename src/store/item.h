// Stored item: the paper's extended key-value row.
//
// Section IV.C / Fig. 5: every row carries two extra columns, Dirty and
// Monitors, besides the value. Section III.F: values are timestamped and
// write_all() keeps one element per *source server* in a value list,
// while write_latest() keeps a single last-writer-wins value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "store/dvv.h"

namespace sedna::store {

/// A single timestamped value, as returned by read_latest().
struct VersionedValue {
  std::string value;
  Timestamp ts = 0;
  std::uint32_t flags = 0;

  friend bool operator==(const VersionedValue& a, const VersionedValue& b) {
    return a.ts == b.ts && a.value == b.value && a.flags == b.flags;
  }
};

/// One element of a write_all() value list: tagged by source server.
struct SourceValue {
  NodeId source = kInvalidNode;
  std::string value;
  Timestamp ts = 0;

  friend bool operator==(const SourceValue& a, const SourceValue& b) {
    return a.source == b.source && a.ts == b.ts && a.value == b.value;
  }
};

/// In-memory item. Lives in a shard's bucket chain and on its LRU list
/// (intrusive pointers). An item may carry a latest-value, a value list,
/// or both — Sedna applications conventionally use one mode per key, but
/// the store does not forbid mixing.
struct Item {
  std::string key;

  VersionedValue latest;
  bool has_latest = false;

  std::vector<SourceValue> value_list;

  /// Causal versioning state (dotted version vector + sibling values),
  /// populated only for keys written through the causal API. `latest`
  /// mirrors the record's LWW-winning sibling so legacy reads, scans and
  /// digest walks keep working on causal keys.
  CausalRecord causal;

  /// Absolute expiry time (same clock as the store's ClockFn); 0 = never.
  std::uint64_t expires_at = 0;

  /// CAS token, bumped on every mutation (memcached-compatible surface).
  std::uint64_t cas = 0;

  /// Extended columns (paper Fig. 5). `dirty` is cleared when the dirty
  /// table drains; `monitored` caches "some monitor watches this key or an
  /// enclosing table/dataset" so the write path can skip old-value capture
  /// for unwatched keys.
  bool dirty = false;
  bool monitored = false;

  // Intrusive chaining: hash bucket list and LRU list.
  Item* hash_next = nullptr;
  Item* lru_prev = nullptr;
  Item* lru_next = nullptr;

  [[nodiscard]] std::size_t value_bytes() const {
    std::size_t n = has_latest ? latest.value.size() : 0;
    for (const auto& sv : value_list) n += sv.value.size() + sizeof(SourceValue);
    n += causal.bytes();
    return n;
  }

  /// Approximate resident size for memory accounting, mirroring
  /// memcached's ITEM_ntotal: struct + key + values.
  [[nodiscard]] std::size_t total_bytes() const {
    return sizeof(Item) + key.size() + value_bytes();
  }
};

}  // namespace sedna::store
