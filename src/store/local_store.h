// LocalStore: Sedna's per-server memory storage engine.
//
// Stands in for the "modified Memcached" the paper uses on every server
// (Section VI): a sharded, mutex-per-shard hash table with intrusive
// bucket chains, per-shard LRU eviction under a byte budget, slab-class
// accounting, CAS, expiry — plus the Sedna extensions:
//
//   * timestamped last-writer-wins writes  (write_latest, Section III.F)
//   * per-source value lists               (write_all,    Section III.F)
//   * Dirty/Monitors columns with a coalescing dirty table that the
//     trigger runtime sweeps                (Section IV.C, Fig. 5)
//
// The store is thread-safe and is used both single-threaded inside
// simulated nodes and multi-threaded in the google-benchmark microbench.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "store/item.h"
#include "store/slab.h"
#include "store/stats.h"

namespace sedna::store {

struct LocalStoreConfig {
  /// Number of independently locked shards; rounded up to a power of two.
  std::size_t shards = 8;
  std::size_t initial_buckets_per_shard = 1024;
  /// Total resident-byte budget across shards; 0 disables eviction.
  std::size_t memory_budget_bytes = 0;
  /// Capture old/new values into the dirty table on every change
  /// (enabled by the trigger runtime; costs one value copy per write).
  bool track_changes = false;
};

/// One coalesced change, as swept by the trigger runtime's DirtyScanner.
/// If several writes hit a key between sweeps, `old_value` is from before
/// the first and `new_value` from after the last — "the most fresh data
/// matters most" (Section IV.B).
struct ChangeRecord {
  std::string key;
  bool had_old = false;
  VersionedValue old_value;
  VersionedValue new_value;
  bool deleted = false;
};

class LocalStore {
 public:
  /// Clock used for expiry and default timestamps. Simulated nodes pass
  /// the virtual clock; standalone users may leave the default (a process
  /// monotonic counter).
  using ClockFn = std::function<std::uint64_t()>;
  /// Consulted (when set) to decide if a key's changes are captured.
  using MonitoredPredicate = std::function<bool(std::string_view)>;

  explicit LocalStore(LocalStoreConfig config = {}, ClockFn clock = {});
  ~LocalStore();

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  // ---- Sedna data path -------------------------------------------------

  /// Stores `value` if `ts` is newer than the current latest timestamp;
  /// returns kOutdated otherwise (paper III.F). A nonzero `ttl` sets a
  /// relative expiry from the store's clock.
  Status write_latest(std::string_view key, std::string_view value,
                      Timestamp ts, std::uint32_t flags = 0,
                      std::uint64_t ttl = 0);

  /// Updates only the value-list element from `source` if `ts` is newer
  /// than that element; inserts the element if absent (paper III.F).
  Status write_all(std::string_view key, NodeId source,
                   std::string_view value, Timestamp ts);

  [[nodiscard]] Result<VersionedValue> read_latest(std::string_view key);
  [[nodiscard]] Result<std::vector<SourceValue>> read_all(
      std::string_view key);

  // ---- causal versioning (DVV) ------------------------------------------
  //
  // The causal alternative to write_latest's timestamp LWW: per-key dotted
  // version vectors with sibling retention (store/dvv.h). A causal item
  // keeps its LWW `latest` mirror pointing at the record's deterministic
  // winner, so legacy reads, scans, snapshots and Merkle digests keep
  // working on causally-written keys.

  /// Coordinator-side causal put: discards the siblings covered by the
  /// client's read context `ctx`, mints a fresh dot under `coordinator`,
  /// and appends the value (concurrent siblings survive). Returns the
  /// resulting full record for replication to peers.
  Result<CausalRecord> write_causal(std::string_view key,
                                    const VersionVector& ctx,
                                    std::string_view value, Timestamp ts,
                                    std::uint32_t flags, NodeId coordinator);

  /// Replica-side semilattice join with an incoming record. Idempotent:
  /// re-delivery is a no-op. `changed_out` (optional) reports whether the
  /// local record moved.
  Status merge_causal(std::string_view key, const CausalRecord& incoming,
                      bool* changed_out = nullptr);

  /// Full causal record (clock + siblings) of a key; kNotFound when the
  /// key is absent or was never causally written.
  [[nodiscard]] Result<CausalRecord> read_causal(std::string_view key);

  // ---- memcached-compatible surface -------------------------------------

  /// Unconditional store; timestamp auto-assigned from the clock.
  Status set(std::string_view key, std::string_view value,
             std::uint32_t flags = 0, std::uint64_t ttl = 0);
  /// Store only if the key does not exist.
  Status add(std::string_view key, std::string_view value,
             std::uint32_t flags = 0, std::uint64_t ttl = 0);
  /// Store only if the key exists.
  Status replace(std::string_view key, std::string_view value,
                 std::uint32_t flags = 0, std::uint64_t ttl = 0);
  /// Lookup; bumps LRU recency.
  [[nodiscard]] Result<VersionedValue> get(std::string_view key);
  /// Lookup returning the CAS token alongside the value.
  [[nodiscard]] Result<std::pair<VersionedValue, std::uint64_t>> gets(
      std::string_view key);
  /// Concatenates after/before the existing value (memcached semantics:
  /// fails with kNotFound when the key is absent).
  Status append(std::string_view key, std::string_view suffix);
  Status prepend(std::string_view key, std::string_view prefix);
  /// Compare-and-store against a token from gets().
  Status cas(std::string_view key, std::string_view value,
             std::uint64_t cas_token);
  /// Numeric increment/decrement on a decimal-string value (memcached
  /// semantics: decrement saturates at 0; non-numeric => kInvalidArgument).
  Result<std::uint64_t> incr(std::string_view key, std::uint64_t delta);
  Result<std::uint64_t> decr(std::string_view key, std::uint64_t delta);
  Status del(std::string_view key);
  Status touch(std::string_view key, std::uint64_t ttl);

  // ---- maintenance / integration ----------------------------------------

  void set_track_changes(bool on);
  void set_monitored_predicate(MonitoredPredicate pred);

  /// Swaps out and returns the coalesced dirty table (all shards).
  [[nodiscard]] std::vector<ChangeRecord> drain_changes();
  [[nodiscard]] std::size_t pending_changes() const;

  /// Proactively removes up to `max_items` expired items; returns count.
  std::size_t expire_sweep(std::size_t max_items = SIZE_MAX);

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t slab_charged_bytes() const;
  void clear();

  /// Snapshot iteration (persistence, recovery, vnode transfer). The
  /// callback must not reenter the store. Items are visited shard by
  /// shard under that shard's lock.
  void for_each(const std::function<void(const Item&)>& fn) const;

  /// Visits items whose key satisfies `pred` (e.g. "belongs to vnode V").
  void for_each_matching(const std::function<bool(std::string_view)>& pred,
                         const std::function<void(const Item&)>& fn) const;

  /// Monotonically increasing timestamp for local-origin writes.
  Timestamp next_timestamp();

  // ---- Merkle anti-entropy digests --------------------------------------
  //
  // A per-vnode, per-bucket XOR-of-item-digests tree maintained
  // incrementally on every mutation. Two replicas whose digest cells agree
  // hold identical replicated content (key, latest value+ts+flags, value
  // list) for that slice of the keyspace; a mismatched cell narrows the
  // divergence to ~items/(vnodes*buckets) keys. Cheap enough to keep on
  // for every simulated node: one 64-bit hash + one atomic XOR per write.

  /// Enables (or rebuilds) the digest tree: `vnodes` must match the
  /// cluster's total_vnodes so key→vnode mapping agrees across replicas.
  void enable_digests(std::uint32_t vnodes,
                      std::uint32_t buckets_per_vnode = 16);
  [[nodiscard]] bool digests_enabled() const;
  [[nodiscard]] std::uint32_t digest_buckets_per_vnode() const;
  /// Root digest for one vnode (combines all its bucket cells).
  [[nodiscard]] std::uint64_t digest_root(VnodeId vnode) const;
  /// All bucket cells for one vnode.
  [[nodiscard]] std::vector<std::uint64_t> digest_buckets(
      VnodeId vnode) const;
  /// Resident bytes currently attributed to one vnode's keyspace slice
  /// (tracked alongside the digest cells; 0 while digests are off).
  [[nodiscard]] std::uint64_t vnode_bytes(VnodeId vnode) const;
  /// Per-vnode resident bytes for every vnode; empty while digests are off.
  [[nodiscard]] std::vector<std::uint64_t> vnode_bytes_all() const;

  /// Bucket index of `key` within its vnode's digest row. Decorrelated
  /// from both ring placement and shard selection.
  [[nodiscard]] static std::uint32_t digest_bucket_of(std::string_view key,
                                                      std::uint32_t buckets);
  /// Digest of one item's replicated content (excludes LRU/cas/expiry
  /// bookkeeping, which legitimately differs between replicas).
  [[nodiscard]] static std::uint64_t item_digest(const Item& it);
  /// Order-independent digest of a write_all value list.
  [[nodiscard]] static std::uint64_t value_list_digest(
      const std::vector<SourceValue>& list);

 private:
  struct Shard;
  struct DigestTree;

  Status set_impl(std::string_view key, std::string_view value,
                  std::uint32_t flags, std::uint64_t ttl, int mode_raw);
  Status concat_impl(std::string_view key, std::string_view piece,
                     bool after);

  [[nodiscard]] Shard& shard_for(std::string_view key);
  [[nodiscard]] const Shard& shard_for(std::string_view key) const;
  [[nodiscard]] std::uint64_t clock_now() const;

  LocalStoreConfig config_;
  ClockFn clock_;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<DigestTree> digests_;
  std::atomic<std::uint64_t> ts_seq_{0};
  std::atomic<Timestamp> last_ts_{0};
};

}  // namespace sedna::store
