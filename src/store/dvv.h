// Dotted version vectors (Preguiça et al.): per-key causal clocks that
// detect true concurrency instead of guessing an order from wall-clock
// timestamps.
//
// A CausalRecord is the full causal state of one key:
//   * a VersionVector `clock` summarising every write this replica has
//     ever seen for the key (one (writer, max counter) entry per writer);
//   * a list of `siblings` — the values whose dots are *not* dominated by
//     any other retained write, i.e. the concurrent frontier. A causally
//     newer write replaces its ancestors; truly concurrent writes coexist
//     as siblings until a reader resolves them.
//
// Each sibling carries the unique `Dot` (writer, counter) minted by the
// coordinator that accepted it, plus the original LWW timestamp so the
// default resolver can keep byte-identical last-writer-wins behavior.
//
// merge() is a semilattice join: idempotent, commutative, associative —
// so replicas that exchange records in any order, any number of times,
// converge to the same state. That is the property the repair subsystem
// (read repair, hinted handoff, Merkle anti-entropy) relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/hash.h"
#include "common/types.h"

namespace sedna::store {

/// A dot: the globally unique identity of one write event, minted by the
/// coordinator as (its node id, its per-key counter + 1).
struct Dot {
  NodeId writer = kInvalidNode;
  std::uint64_t counter = 0;

  friend bool operator==(const Dot& a, const Dot& b) {
    return a.writer == b.writer && a.counter == b.counter;
  }
  friend bool operator<(const Dot& a, const Dot& b) {
    if (a.writer != b.writer) return a.writer < b.writer;
    return a.counter < b.counter;
  }
};

/// Per-key version vector: sorted (writer → max contiguous counter)
/// entries. Counters are per key, so vectors stay O(replicas) — only
/// nodes that coordinated a write to the key ever appear.
class VersionVector {
 public:
  [[nodiscard]] std::uint64_t get(NodeId node) const {
    const auto it = find(node);
    return it != entries_.end() && it->first == node ? it->second : 0;
  }

  /// Bumps `node`'s counter and returns the new value (the dot counter).
  std::uint64_t bump(NodeId node) {
    const auto it = find(node);
    if (it != entries_.end() && it->first == node) return ++it->second;
    entries_.insert(it, {node, 1});
    return 1;
  }

  /// True when this clock has seen `dot` (dominates or equals it).
  [[nodiscard]] bool includes(const Dot& dot) const {
    return get(dot.writer) >= dot.counter;
  }

  /// Pointwise max — the semilattice join. Returns true if *this grew.
  bool merge(const VersionVector& other) {
    bool changed = false;
    for (const auto& [node, counter] : other.entries_) {
      const auto it = find(node);
      if (it != entries_.end() && it->first == node) {
        if (counter > it->second) {
          it->second = counter;
          changed = true;
        }
      } else {
        entries_.insert(it, {node, counter});
        changed = true;
      }
    }
    return changed;
  }

  /// True when this clock dominates-or-equals `other` pointwise.
  [[nodiscard]] bool includes_all(const VersionVector& other) const {
    for (const auto& [node, counter] : other.entries_) {
      if (get(node) < counter) return false;
    }
    return true;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<std::pair<NodeId, std::uint64_t>>&
  entries() const {
    return entries_;
  }

  void encode(BinaryWriter& w) const {
    w.put_u32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto& [node, counter] : entries_) {
      w.put_u32(node);
      w.put_u64(counter);
    }
  }

  static VersionVector decode(BinaryReader& r) {
    VersionVector vv;
    const std::uint32_t n = r.get_u32();
    vv.entries_.reserve(std::min<std::uint32_t>(n, 256));
    NodeId prev = 0;
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      const NodeId node = r.get_u32();
      const std::uint64_t counter = r.get_u64();
      // Reject unsorted/duplicate wire data rather than silently
      // corrupting the semilattice invariants.
      if (i > 0 && node <= prev) {
        r.mark_failed();
        return {};
      }
      prev = node;
      vv.entries_.push_back({node, counter});
    }
    return vv;
  }

  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t d = 0x9ae16a3b2f90404fULL;
    for (const auto& [node, counter] : entries_) {
      d = hash_combine(d, node);
      d = hash_combine(d, counter);
    }
    return d;
  }

  friend bool operator==(const VersionVector& a, const VersionVector& b) {
    return a.entries_ == b.entries_;
  }

 private:
  [[nodiscard]] std::vector<std::pair<NodeId, std::uint64_t>>::iterator
  find(NodeId node) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), node,
        [](const auto& e, NodeId n) { return e.first < n; });
  }
  [[nodiscard]] std::vector<std::pair<NodeId, std::uint64_t>>::const_iterator
  find(NodeId node) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), node,
        [](const auto& e, NodeId n) { return e.first < n; });
  }

  std::vector<std::pair<NodeId, std::uint64_t>> entries_;
};

/// One retained concurrent value. `ts` is the write's LWW timestamp —
/// causally meaningless, but what the default resolver sorts on.
struct Sibling {
  std::string value;
  Timestamp ts = 0;
  std::uint32_t flags = 0;
  Dot dot;

  friend bool operator==(const Sibling& a, const Sibling& b) {
    return a.dot == b.dot && a.ts == b.ts && a.flags == b.flags &&
           a.value == b.value;
  }
};

/// Full causal state of one key. Empty record (no clock entries, no
/// siblings) means "never causally written" and costs nothing.
struct CausalRecord {
  VersionVector clock;
  /// Sorted by dot — a canonical order so two converged replicas hold
  /// byte-identical records.
  std::vector<Sibling> siblings;

  [[nodiscard]] bool empty() const {
    return siblings.empty() && clock.empty();
  }

  [[nodiscard]] bool has_dot(const Dot& dot) const {
    for (const auto& s : siblings) {
      if (s.dot == dot) return true;
    }
    return false;
  }

  /// Semilattice join with `other` (Preguiça et al. sync): keep each
  /// sibling unless the *other* record's clock has seen its dot without
  /// retaining it (meaning the other side knew it and superseded it).
  /// Returns true if *this* changed.
  bool merge(const CausalRecord& other) {
    std::vector<Sibling> out;
    out.reserve(siblings.size() + other.siblings.size());
    for (const auto& s : siblings) {
      if (!other.clock.includes(s.dot) || other.has_dot(s.dot)) {
        out.push_back(s);
      }
    }
    for (const auto& s : other.siblings) {
      if (!clock.includes(s.dot)) out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const Sibling& a, const Sibling& b) { return a.dot < b.dot; });
    const bool clock_changed = clock.merge(other.clock);
    const bool siblings_changed = out != siblings;
    if (siblings_changed) siblings = std::move(out);
    return clock_changed || siblings_changed;
  }

  /// Coordinator-side update for a client put carrying context `ctx`:
  /// discard the siblings the client had read (covered by ctx), mint a
  /// fresh dot under `coordinator`, and append the new value. Siblings
  /// *not* covered by ctx are concurrent with this write and survive.
  Dot update(const VersionVector& ctx, std::string value, Timestamp ts,
             std::uint32_t flags, NodeId coordinator) {
    std::erase_if(siblings,
                  [&ctx](const Sibling& s) { return ctx.includes(s.dot); });
    clock.merge(ctx);
    const Dot dot{coordinator, clock.bump(coordinator)};
    Sibling s;
    s.value = std::move(value);
    s.ts = ts;
    s.flags = flags;
    s.dot = dot;
    const auto pos = std::lower_bound(
        siblings.begin(), siblings.end(), s.dot,
        [](const Sibling& a, const Dot& d) { return a.dot < d; });
    siblings.insert(pos, std::move(s));
    return dot;
  }

  /// The sibling the default LWW resolver would pick: max by
  /// (ts, value hash, value, dot) — the same deterministic order the
  /// store's equal-timestamp tie-break uses, so a causal key read through
  /// the legacy read_latest path behaves like an LWW key.
  [[nodiscard]] const Sibling* winner() const {
    const Sibling* best = nullptr;
    for (const auto& s : siblings) {
      if (best == nullptr) {
        best = &s;
        continue;
      }
      if (s.ts != best->ts) {
        if (s.ts > best->ts) best = &s;
        continue;
      }
      const std::uint64_t sh = fnv1a64(s.value);
      const std::uint64_t bh = fnv1a64(best->value);
      if (sh != bh) {
        if (sh > bh) best = &s;
        continue;
      }
      if (s.value != best->value) {
        if (s.value > best->value) best = &s;
        continue;
      }
      if (best->dot < s.dot) best = &s;
    }
    return best;
  }

  /// Approximate resident bytes (0 for an empty record).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t n = clock.entries().size() * 12;
    for (const auto& s : siblings) n += s.value.size() + sizeof(Sibling);
    return n;
  }

  void encode(BinaryWriter& w) const {
    clock.encode(w);
    w.put_u32(static_cast<std::uint32_t>(siblings.size()));
    for (const auto& s : siblings) {
      w.put_string(s.value);
      w.put_u64(s.ts);
      w.put_u32(s.flags);
      w.put_u32(s.dot.writer);
      w.put_u64(s.dot.counter);
    }
  }

  static CausalRecord decode(BinaryReader& r) {
    CausalRecord rec;
    rec.clock = VersionVector::decode(r);
    const std::uint32_t n = r.get_u32();
    rec.siblings.reserve(std::min<std::uint32_t>(n, 256));
    for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
      Sibling s;
      s.value = r.get_string();
      s.ts = r.get_u64();
      s.flags = r.get_u32();
      s.dot.writer = r.get_u32();
      s.dot.counter = r.get_u64();
      rec.siblings.push_back(std::move(s));
    }
    return rec;
  }

  [[nodiscard]] std::string encode_string() const {
    BinaryWriter w(bytes() + 16);
    encode(w);
    return std::move(w).take();
  }

  static CausalRecord decode_string(std::string_view payload) {
    BinaryReader r(payload);
    CausalRecord rec = CausalRecord::decode(r);
    if (r.failed()) return {};
    return rec;
  }

  /// Content digest folded into the store's Merkle cells: covers clock
  /// and every sibling, so two replicas disagree on a causal key iff
  /// their digests differ.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t d = clock.digest();
    for (const auto& s : siblings) {
      d = hash_combine(d, fnv1a64(s.value));
      d = hash_combine(d, s.ts);
      d = hash_combine(d, s.flags);
      d = hash_combine(d, s.dot.writer);
      d = hash_combine(d, s.dot.counter);
    }
    return d;
  }

  friend bool operator==(const CausalRecord& a, const CausalRecord& b) {
    return a.clock == b.clock && a.siblings == b.siblings;
  }
};

}  // namespace sedna::store
