#include "store/local_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <charconv>

#include "common/hash.h"

namespace sedna::store {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Deterministic equal-timestamp tie-break: higher value hash wins, then
/// the lexicographically larger value. Writer identity is not carried on
/// every replication path (read repair, pulls, transfers), so the value
/// itself is the only tie-break input all replicas are guaranteed to
/// share — what matters is that *arrival order never decides*, or
/// replicas that saw two equal-ts writes in different orders would
/// permanently diverge.
bool value_wins_tie(std::string_view incoming, std::string_view stored) {
  const std::uint64_t ih = fnv1a64(incoming);
  const std::uint64_t sh = fnv1a64(stored);
  if (ih != sh) return ih > sh;
  return incoming > stored;
}

/// Siblings beyond the first on a causal item: the store-wide sum is the
/// `store.siblings` conflict gauge (0 while no true conflicts are
/// retained).
std::uint64_t sibling_excess(const Item& it) {
  const std::size_t n = it.causal.siblings.size();
  return n > 1 ? n - 1 : 0;
}

/// Points the item's LWW mirror at the causal record's deterministic
/// winner so legacy reads/scans/digests see causal keys.
void refresh_causal_mirror(Item& it) {
  const Sibling* w = it.causal.winner();
  if (w != nullptr) {
    it.latest = VersionedValue{w->value, w->ts, w->flags};
    it.has_latest = true;
  }
}

}  // namespace

/// Store-wide Merkle leaf cells: vnodes × buckets 64-bit accumulators.
/// Every insert/remove/mutation XOR-toggles the owning cell with the
/// item's content digest under the owning shard's lock, so a cell is the
/// XOR of the digests of the items currently in that (vnode, bucket)
/// slice — identical cells ⇒ identical replicated content.
struct LocalStore::DigestTree {
  DigestTree(std::uint32_t v, std::uint32_t b)
      : vnodes(v),
        buckets(b),
        cells(std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(v) * b)),
        vbytes(std::make_unique<std::atomic<std::uint64_t>[]>(v)) {
    const std::size_t n = static_cast<std::size_t>(v) * b;
    for (std::size_t i = 0; i < n; ++i) {
      cells[i].store(0, std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < v; ++i) {
      vbytes[i].store(0, std::memory_order_relaxed);
    }
  }

  void toggle(std::string_view key, std::uint64_t digest) {
    const auto vnode = static_cast<std::size_t>(ring_hash(key) % vnodes);
    const std::size_t bucket = digest_bucket_of(key, buckets);
    cells[vnode * buckets + bucket].fetch_xor(digest,
                                              std::memory_order_relaxed);
  }

  // Per-vnode resident-byte tallies, maintained on the same mutation
  // paths as the digest cells (so they track the replicated content
  // exactly). Feeds the imbalance row's per-vnode capacity column.
  void add_bytes(std::string_view key, std::uint64_t n) {
    vbytes[ring_hash(key) % vnodes].fetch_add(n, std::memory_order_relaxed);
  }
  void sub_bytes(std::string_view key, std::uint64_t n) {
    vbytes[ring_hash(key) % vnodes].fetch_sub(n, std::memory_order_relaxed);
  }

  std::uint32_t vnodes;
  std::uint32_t buckets;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  std::unique_ptr<std::atomic<std::uint64_t>[]> vbytes;
};

struct LocalStore::Shard {
  mutable std::mutex mu;
  std::vector<Item*> buckets;
  std::size_t item_count = 0;
  std::size_t bytes = 0;
  std::size_t budget = 0;  // 0 = unlimited
  Item* lru_head = nullptr;  // most recently used
  Item* lru_tail = nullptr;  // least recently used
  SlabAccounting slabs;
  StoreStats stats;
  std::unordered_map<std::string, ChangeRecord> dirty;
  bool track_changes = false;
  MonitoredPredicate monitored_pred;
  /// Borrowed from the owning store's digests_; null while digests are off.
  DigestTree* digests = nullptr;

  ~Shard() {
    for (Item* head : buckets) {
      while (head != nullptr) {
        Item* next = head->hash_next;
        delete head;
        head = next;
      }
    }
  }

  [[nodiscard]] std::size_t bucket_index(std::uint64_t hash) const {
    return hash & (buckets.size() - 1);
  }

  Item* find(std::string_view key, std::uint64_t hash) {
    for (Item* it = buckets[bucket_index(hash)]; it != nullptr;
         it = it->hash_next) {
      if (it->key == key) return it;
    }
    return nullptr;
  }

  void lru_unlink(Item* it) {
    if (it->lru_prev != nullptr) {
      it->lru_prev->lru_next = it->lru_next;
    } else {
      lru_head = it->lru_next;
    }
    if (it->lru_next != nullptr) {
      it->lru_next->lru_prev = it->lru_prev;
    } else {
      lru_tail = it->lru_prev;
    }
    it->lru_prev = it->lru_next = nullptr;
  }

  void lru_push_front(Item* it) {
    it->lru_prev = nullptr;
    it->lru_next = lru_head;
    if (lru_head != nullptr) lru_head->lru_prev = it;
    lru_head = it;
    if (lru_tail == nullptr) lru_tail = it;
  }

  void lru_touch(Item* it) {
    if (lru_head == it) return;
    lru_unlink(it);
    lru_push_front(it);
  }

  void account_insert(Item* it) {
    const std::size_t n = it->total_bytes();
    bytes += n;
    slabs.charge(n);
    if (digests != nullptr) {
      digests->toggle(it->key, LocalStore::item_digest(*it));
      digests->add_bytes(it->key, n);
    }
  }

  void account_remove(Item* it) {
    const std::size_t n = it->total_bytes();
    bytes -= std::min(bytes, n);
    slabs.release(n);
    if (digests != nullptr) {
      digests->toggle(it->key, LocalStore::item_digest(*it));
      digests->sub_bytes(it->key, n);
    }
  }

  /// Content digest of the item as it stands; 0 while digests are off.
  /// Capture *before* mutating in place, then hand to reaccount().
  [[nodiscard]] std::uint64_t pre_digest(const Item& it) const {
    return digests != nullptr ? LocalStore::item_digest(it) : 0;
  }

  /// Call with the item's *pre-mutation* size and digest; re-accounts
  /// (bytes, slabs, digest cell) afterwards.
  void reaccount(std::size_t old_total, std::uint64_t old_digest, Item* it) {
    bytes -= std::min(bytes, old_total);
    slabs.release(old_total);
    if (digests != nullptr) {
      digests->toggle(it->key, old_digest);
      digests->sub_bytes(it->key, old_total);
    }
    account_insert(it);
  }

  void unlink_from_bucket(Item* it, std::uint64_t hash) {
    Item** slot = &buckets[bucket_index(hash)];
    while (*slot != nullptr && *slot != it) slot = &(*slot)->hash_next;
    if (*slot == it) *slot = it->hash_next;
    it->hash_next = nullptr;
  }

  /// Fully removes and frees the item.
  void erase(Item* it) {
    unlink_from_bucket(it, bucket_hash(it->key));
    lru_unlink(it);
    account_remove(it);
    stats.siblings -= sibling_excess(*it);
    --item_count;
    delete it;
  }

  void maybe_grow() {
    if (item_count <= buckets.size() + buckets.size() / 4) return;
    std::vector<Item*> grown(buckets.size() * 2, nullptr);
    for (Item* head : buckets) {
      while (head != nullptr) {
        Item* next = head->hash_next;
        const std::size_t idx =
            bucket_hash(head->key) & (grown.size() - 1);
        head->hash_next = grown[idx];
        grown[idx] = head;
        head = next;
      }
    }
    buckets.swap(grown);
  }

  Item* insert_new(std::string_view key, std::uint64_t hash) {
    auto* it = new Item();
    it->key.assign(key);
    if (monitored_pred) it->monitored = monitored_pred(key);
    const std::size_t idx = bucket_index(hash);
    it->hash_next = buckets[idx];
    buckets[idx] = it;
    lru_push_front(it);
    ++item_count;
    ++stats.total_items;
    account_insert(it);
    maybe_grow();
    return it;
  }

  [[nodiscard]] bool should_capture(const Item& it) const {
    if (!track_changes) return false;
    if (!monitored_pred) return true;
    return it.monitored;
  }

  /// Records (coalescing) a change for the dirty table. `old_val` is the
  /// value before this shard-level mutation; records merge so a burst of
  /// writes yields one record spanning first-old to last-new.
  void record_change(Item& it, bool had_old, VersionedValue old_val,
                     bool deleted) {
    it.dirty = true;
    ++stats.dirty_events;
    auto [pos, inserted] = dirty.try_emplace(it.key);
    ChangeRecord& rec = pos->second;
    if (inserted) {
      rec.key = it.key;
      rec.had_old = had_old;
      rec.old_value = std::move(old_val);
    }
    rec.deleted = deleted;
    if (!deleted && it.has_latest) rec.new_value = it.latest;
  }

  void evict_to_budget() {
    if (budget == 0) return;
    while (bytes > budget && lru_tail != nullptr) {
      Item* victim = lru_tail;
      ++stats.evictions;
      erase(victim);
    }
  }

  [[nodiscard]] static bool is_expired(const Item& it, std::uint64_t now) {
    return it.expires_at != 0 && now >= it.expires_at;
  }

  /// find() plus lazy expiry.
  Item* find_live(std::string_view key, std::uint64_t hash,
                  std::uint64_t now) {
    Item* it = find(key, hash);
    if (it == nullptr) return nullptr;
    if (is_expired(*it, now)) {
      ++stats.expired;
      erase(it);
      return nullptr;
    }
    return it;
  }
};

LocalStore::LocalStore(LocalStoreConfig config, ClockFn clock)
    : config_(config), clock_(std::move(clock)) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(1, config_.shards));
  shard_mask_ = n - 1;
  shards_.reserve(n);
  const std::size_t per_shard_budget =
      config_.memory_budget_bytes == 0 ? 0 : config_.memory_budget_bytes / n;
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->buckets.assign(
        round_up_pow2(std::max<std::size_t>(
            8, config_.initial_buckets_per_shard)),
        nullptr);
    shard->budget = per_shard_budget;
    shard->track_changes = config_.track_changes;
    shards_.push_back(std::move(shard));
  }
}

LocalStore::~LocalStore() = default;

LocalStore::Shard& LocalStore::shard_for(std::string_view key) {
  return *shards_[mix64(bucket_hash(key)) & shard_mask_];
}
const LocalStore::Shard& LocalStore::shard_for(std::string_view key) const {
  return *shards_[mix64(bucket_hash(key)) & shard_mask_];
}

std::uint64_t LocalStore::clock_now() const {
  return clock_ ? clock_() : 0;
}

Timestamp LocalStore::next_timestamp() {
  const auto seq = static_cast<std::uint16_t>(
      ts_seq_.fetch_add(1, std::memory_order_relaxed));
  Timestamp candidate = make_timestamp(clock_now(), seq);
  // Strictly monotone even without a clock (or across a clock stall):
  // never hand out a timestamp at or below the previous one.
  Timestamp last = last_ts_.load(std::memory_order_relaxed);
  for (;;) {
    if (candidate <= last) candidate = last + 1;
    if (last_ts_.compare_exchange_weak(last, candidate,
                                       std::memory_order_relaxed)) {
      return candidate;
    }
  }
}

Status LocalStore::write_latest(std::string_view key, std::string_view value,
                                Timestamp ts, std::uint32_t flags,
                                std::uint64_t ttl) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t now = clock_now();
  const std::uint64_t h = bucket_hash(key);
  Item* it = s.find_live(key, h, now);
  if (it == nullptr) it = s.insert_new(key, h);

  if (it->has_latest && it->latest.ts >= ts) {
    // Idempotent replay: the identical write (same ts, same value) is a
    // success, not a conflict — coordinators and clients retry writes
    // with a pinned timestamp after partial failures.
    if (it->latest.ts == ts && it->latest.value == value) {
      return Status::Ok();
    }
    // Equal timestamps from different writers resolve by the
    // deterministic value tie-break, never by arrival order.
    if (it->latest.ts > ts || !value_wins_tie(value, it->latest.value)) {
      ++s.stats.set_outdated;
      return Status::Outdated();
    }
  }

  const bool capture = s.should_capture(*it);
  const bool had_old = it->has_latest;
  VersionedValue old_val = capture && had_old ? it->latest : VersionedValue{};

  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  it->latest = VersionedValue{std::string(value), ts, flags};
  it->has_latest = true;
  if (ttl != 0) it->expires_at = now + ttl;
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, had_old, std::move(old_val), false);
  s.evict_to_budget();
  return Status::Ok();
}

Status LocalStore::write_all(std::string_view key, NodeId source,
                             std::string_view value, Timestamp ts) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t h = bucket_hash(key);
  Item* it = s.find_live(key, h, clock_now());
  if (it == nullptr) it = s.insert_new(key, h);

  auto elem = std::find_if(
      it->value_list.begin(), it->value_list.end(),
      [source](const SourceValue& sv) { return sv.source == source; });

  if (elem != it->value_list.end() && elem->ts >= ts) {
    if (elem->ts == ts && elem->value == value) {
      return Status::Ok();  // idempotent replay (see write_latest)
    }
    // Same deterministic equal-ts tie-break as write_latest.
    if (elem->ts > ts || !value_wins_tie(value, elem->value)) {
      ++s.stats.set_outdated;
      return Status::Outdated();
    }
  }

  const bool capture = s.should_capture(*it);
  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  if (elem == it->value_list.end()) {
    it->value_list.push_back(SourceValue{source, std::string(value), ts});
  } else {
    elem->value.assign(value);
    elem->ts = ts;
  }
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, it->has_latest, it->latest, false);
  s.evict_to_budget();
  return Status::Ok();
}

Result<VersionedValue> LocalStore::read_latest(std::string_view key) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) {
    ++s.stats.get_misses;
    return Status::NotFound();
  }
  s.lru_touch(it);
  ++s.stats.get_hits;
  return it->latest;
}

Result<std::vector<SourceValue>> LocalStore::read_all(std::string_view key) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || it->value_list.empty()) {
    ++s.stats.get_misses;
    return Status::NotFound();
  }
  s.lru_touch(it);
  ++s.stats.get_hits;
  return it->value_list;
}

Result<CausalRecord> LocalStore::write_causal(std::string_view key,
                                              const VersionVector& ctx,
                                              std::string_view value,
                                              Timestamp ts,
                                              std::uint32_t flags,
                                              NodeId coordinator) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t now = clock_now();
  const std::uint64_t h = bucket_hash(key);
  Item* it = s.find_live(key, h, now);
  if (it == nullptr) it = s.insert_new(key, h);

  const bool capture = s.should_capture(*it);
  const bool had_old = it->has_latest;
  VersionedValue old_val = capture && had_old ? it->latest : VersionedValue{};

  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  const std::uint64_t old_excess = sibling_excess(*it);
  it->causal.update(ctx, std::string(value), ts, flags, coordinator);
  refresh_causal_mirror(*it);
  ++it->cas;
  s.stats.siblings += sibling_excess(*it);
  s.stats.siblings -= old_excess;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, had_old, std::move(old_val), false);
  s.evict_to_budget();
  return it->causal;
}

Status LocalStore::merge_causal(std::string_view key,
                                const CausalRecord& incoming,
                                bool* changed_out) {
  if (changed_out != nullptr) *changed_out = false;
  if (incoming.empty()) return Status::Ok();
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t now = clock_now();
  const std::uint64_t h = bucket_hash(key);
  Item* it = s.find_live(key, h, now);
  if (it == nullptr) it = s.insert_new(key, h);

  const bool capture = s.should_capture(*it);
  const bool had_old = it->has_latest;
  VersionedValue old_val = capture && had_old ? it->latest : VersionedValue{};

  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  const std::uint64_t old_excess = sibling_excess(*it);
  if (!it->causal.merge(incoming)) {
    // Idempotent re-delivery (retries, hint replay, anti-entropy pushes):
    // nothing moved, charge nothing.
    return Status::Ok();
  }
  ++s.stats.dvv_merges;
  refresh_causal_mirror(*it);
  ++it->cas;
  s.stats.siblings += sibling_excess(*it);
  s.stats.siblings -= old_excess;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, had_old, std::move(old_val), false);
  s.evict_to_budget();
  if (changed_out != nullptr) *changed_out = true;
  return Status::Ok();
}

Result<CausalRecord> LocalStore::read_causal(std::string_view key) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || it->causal.empty()) {
    ++s.stats.get_misses;
    return Status::NotFound();
  }
  s.lru_touch(it);
  ++s.stats.get_hits;
  return it->causal;
}

Status LocalStore::set(std::string_view key, std::string_view value,
                       std::uint32_t flags, std::uint64_t ttl) {
  return set_impl(key, value, flags, ttl, /*mode=kUnconditional*/ 0);
}

namespace {
enum class SetMode { kUnconditional, kAddOnly, kReplaceOnly };
}  // namespace

/// Shared body of set/add/replace: one critical section so add/replace
/// preconditions are atomic with the store (memcached semantics).
Status LocalStore::set_impl(std::string_view key, std::string_view value,
                            std::uint32_t flags, std::uint64_t ttl,
                            int mode_raw) {
  const auto mode = static_cast<SetMode>(mode_raw);
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t now = clock_now();
  const std::uint64_t h = bucket_hash(key);
  Item* it = s.find_live(key, h, now);
  const bool exists = it != nullptr && it->has_latest;
  if (mode == SetMode::kAddOnly && exists) return Status::AlreadyExists();
  if (mode == SetMode::kReplaceOnly && !exists) return Status::NotFound();
  if (it == nullptr) it = s.insert_new(key, h);

  const bool capture = s.should_capture(*it);
  const bool had_old = it->has_latest;
  VersionedValue old_val = capture && had_old ? it->latest : VersionedValue{};

  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  it->latest = VersionedValue{std::string(value), next_timestamp(), flags};
  it->has_latest = true;
  it->expires_at = ttl == 0 ? 0 : now + ttl;
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, had_old, std::move(old_val), false);
  s.evict_to_budget();
  return Status::Ok();
}

Status LocalStore::add(std::string_view key, std::string_view value,
                       std::uint32_t flags, std::uint64_t ttl) {
  return set_impl(key, value, flags, ttl,
                  static_cast<int>(SetMode::kAddOnly));
}

Status LocalStore::replace(std::string_view key, std::string_view value,
                           std::uint32_t flags, std::uint64_t ttl) {
  return set_impl(key, value, flags, ttl,
                  static_cast<int>(SetMode::kReplaceOnly));
}

Result<VersionedValue> LocalStore::get(std::string_view key) {
  return read_latest(key);
}

Result<std::pair<VersionedValue, std::uint64_t>> LocalStore::gets(
    std::string_view key) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) {
    ++s.stats.get_misses;
    return Status::NotFound();
  }
  s.lru_touch(it);
  ++s.stats.get_hits;
  return std::make_pair(it->latest, it->cas);
}

Status LocalStore::concat_impl(std::string_view key, std::string_view piece,
                               bool after) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) return Status::NotFound();
  const bool capture = s.should_capture(*it);
  VersionedValue old_val = capture ? it->latest : VersionedValue{};
  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  if (after) {
    it->latest.value.append(piece);
  } else {
    it->latest.value.insert(0, piece);
  }
  it->latest.ts = next_timestamp();
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, true, std::move(old_val), false);
  s.evict_to_budget();
  return Status::Ok();
}

Status LocalStore::append(std::string_view key, std::string_view suffix) {
  return concat_impl(key, suffix, /*after=*/true);
}

Status LocalStore::prepend(std::string_view key, std::string_view prefix) {
  return concat_impl(key, prefix, /*after=*/false);
}

Status LocalStore::cas(std::string_view key, std::string_view value,
                       std::uint64_t cas_token) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) {
    ++s.stats.cas_misses;
    return Status::NotFound();
  }
  if (it->cas != cas_token) {
    ++s.stats.cas_misses;
    return Status::Failure("cas mismatch");
  }
  const bool capture = s.should_capture(*it);
  VersionedValue old_val = capture ? it->latest : VersionedValue{};
  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  it->latest.value.assign(value);
  it->latest.ts = next_timestamp();
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.cas_hits;
  ++s.stats.sets;
  if (capture) s.record_change(*it, true, std::move(old_val), false);
  s.evict_to_budget();
  return Status::Ok();
}

Result<std::uint64_t> LocalStore::incr(std::string_view key,
                                       std::uint64_t delta) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) return Status::NotFound();
  std::uint64_t current = 0;
  const auto& v = it->latest.value;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), current);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    return Status::InvalidArgument("value is not a number");
  }
  current += delta;
  const bool capture = s.should_capture(*it);
  VersionedValue old_val = capture ? it->latest : VersionedValue{};
  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  it->latest.value = std::to_string(current);
  it->latest.ts = next_timestamp();
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, true, std::move(old_val), false);
  return current;
}

Result<std::uint64_t> LocalStore::decr(std::string_view key,
                                       std::uint64_t delta) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr || !it->has_latest) return Status::NotFound();
  std::uint64_t current = 0;
  const auto& v = it->latest.value;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), current);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    return Status::InvalidArgument("value is not a number");
  }
  current = current > delta ? current - delta : 0;  // memcached saturation
  const bool capture = s.should_capture(*it);
  VersionedValue old_val = capture ? it->latest : VersionedValue{};
  const std::size_t old_total = it->total_bytes();
  const std::uint64_t old_digest = s.pre_digest(*it);
  it->latest.value = std::to_string(current);
  it->latest.ts = next_timestamp();
  ++it->cas;
  s.reaccount(old_total, old_digest, it);
  s.lru_touch(it);
  ++s.stats.sets;
  if (capture) s.record_change(*it, true, std::move(old_val), false);
  return current;
}

Status LocalStore::del(std::string_view key) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  Item* it = s.find_live(key, bucket_hash(key), clock_now());
  if (it == nullptr) return Status::NotFound();
  if (s.should_capture(*it)) {
    s.record_change(*it, it->has_latest, it->latest, /*deleted=*/true);
  }
  ++s.stats.deletes;
  s.erase(it);
  return Status::Ok();
}

Status LocalStore::touch(std::string_view key, std::uint64_t ttl) {
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const std::uint64_t now = clock_now();
  Item* it = s.find_live(key, bucket_hash(key), now);
  if (it == nullptr) return Status::NotFound();
  it->expires_at = ttl == 0 ? 0 : now + ttl;
  s.lru_touch(it);
  return Status::Ok();
}

void LocalStore::set_track_changes(bool on) {
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    s->track_changes = on;
  }
}

void LocalStore::set_monitored_predicate(MonitoredPredicate pred) {
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    s->monitored_pred = pred;
    // Re-evaluate existing items against the new predicate.
    for (Item* head : s->buckets) {
      for (Item* it = head; it != nullptr; it = it->hash_next) {
        it->monitored = pred ? pred(it->key) : false;
      }
    }
  }
}

std::vector<ChangeRecord> LocalStore::drain_changes() {
  std::vector<ChangeRecord> out;
  for (auto& s : shards_) {
    std::unordered_map<std::string, ChangeRecord> taken;
    {
      std::lock_guard lock(s->mu);
      taken.swap(s->dirty);
      // Clear the Dirty column for swept items.
      for (auto& [key, rec] : taken) {
        Item* it = s->find(key, bucket_hash(key));
        if (it != nullptr) it->dirty = false;
      }
    }
    out.reserve(out.size() + taken.size());
    for (auto& [key, rec] : taken) out.push_back(std::move(rec));
  }
  return out;
}

std::size_t LocalStore::pending_changes() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    n += s->dirty.size();
  }
  return n;
}

std::size_t LocalStore::expire_sweep(std::size_t max_items) {
  const std::uint64_t now = clock_now();
  std::size_t removed = 0;
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    for (std::size_t b = 0; b < s->buckets.size() && removed < max_items;
         ++b) {
      Item* it = s->buckets[b];
      while (it != nullptr && removed < max_items) {
        Item* next = it->hash_next;
        if (Shard::is_expired(*it, now)) {
          ++s->stats.expired;
          s->erase(it);
          ++removed;
        }
        it = next;
      }
    }
  }
  return removed;
}

StoreStats LocalStore::stats() const {
  StoreStats total;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    StoreStats shard_stats = s->stats;
    shard_stats.curr_items = s->item_count;
    shard_stats.bytes = s->bytes;
    total += shard_stats;
  }
  return total;
}

std::size_t LocalStore::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    n += s->item_count;
  }
  return n;
}

std::uint64_t LocalStore::slab_charged_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    n += s->slabs.charged_bytes();
  }
  return n;
}

void LocalStore::clear() {
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    for (Item*& head : s->buckets) {
      while (head != nullptr) {
        Item* next = head->hash_next;
        // clear() bypasses Shard::erase, so keep the digest cells honest
        // here too.
        if (s->digests != nullptr) {
          s->digests->toggle(head->key, item_digest(*head));
          s->digests->sub_bytes(head->key, head->total_bytes());
        }
        delete head;
        head = next;
      }
      head = nullptr;
    }
    s->item_count = 0;
    s->bytes = 0;
    s->stats.siblings = 0;  // clear() bypasses Shard::erase
    s->lru_head = s->lru_tail = nullptr;
    s->dirty.clear();
    s->slabs = SlabAccounting{};
  }
}

void LocalStore::for_each(const std::function<void(const Item&)>& fn) const {
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    for (Item* head : s->buckets) {
      for (Item* it = head; it != nullptr; it = it->hash_next) fn(*it);
    }
  }
}

void LocalStore::enable_digests(std::uint32_t vnodes,
                                std::uint32_t buckets_per_vnode) {
  auto tree = std::make_shared<DigestTree>(
      std::max<std::uint32_t>(1, vnodes),
      std::max<std::uint32_t>(1, buckets_per_vnode));
  // Rebuild from current content (idempotent across node restarts: a
  // fresh tree starts at zero and existing items toggle in exactly once).
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    s->digests = tree.get();
    for (Item* head : s->buckets) {
      for (Item* it = head; it != nullptr; it = it->hash_next) {
        tree->toggle(it->key, item_digest(*it));
        tree->add_bytes(it->key, it->total_bytes());
      }
    }
  }
  digests_ = std::move(tree);
}

std::uint64_t LocalStore::vnode_bytes(VnodeId vnode) const {
  if (!digests_ || vnode >= digests_->vnodes) return 0;
  return digests_->vbytes[vnode].load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> LocalStore::vnode_bytes_all() const {
  std::vector<std::uint64_t> out;
  if (!digests_) return out;
  out.reserve(digests_->vnodes);
  for (std::uint32_t v = 0; v < digests_->vnodes; ++v) {
    out.push_back(digests_->vbytes[v].load(std::memory_order_relaxed));
  }
  return out;
}

bool LocalStore::digests_enabled() const { return digests_ != nullptr; }

std::uint32_t LocalStore::digest_buckets_per_vnode() const {
  return digests_ ? digests_->buckets : 0;
}

std::uint64_t LocalStore::digest_root(VnodeId vnode) const {
  if (!digests_ || vnode >= digests_->vnodes) return 0;
  // hash_combine chain (not a plain XOR) so bucket position matters and
  // coincidentally-cancelling buckets cannot fake a match.
  std::uint64_t root = mix64(static_cast<std::uint64_t>(vnode) + 1);
  const std::size_t base =
      static_cast<std::size_t>(vnode) * digests_->buckets;
  for (std::uint32_t b = 0; b < digests_->buckets; ++b) {
    root = hash_combine(
        root, digests_->cells[base + b].load(std::memory_order_relaxed));
  }
  return root;
}

std::vector<std::uint64_t> LocalStore::digest_buckets(VnodeId vnode) const {
  std::vector<std::uint64_t> out;
  if (!digests_ || vnode >= digests_->vnodes) return out;
  const std::size_t base =
      static_cast<std::size_t>(vnode) * digests_->buckets;
  out.reserve(digests_->buckets);
  for (std::uint32_t b = 0; b < digests_->buckets; ++b) {
    out.push_back(digests_->cells[base + b].load(std::memory_order_relaxed));
  }
  return out;
}

std::uint32_t LocalStore::digest_bucket_of(std::string_view key,
                                           std::uint32_t buckets) {
  // Salted + remixed so the digest-bucket split is decorrelated from both
  // ring placement (ring_hash) and shard/bucket selection (bucket_hash).
  return static_cast<std::uint32_t>(
      mix64(bucket_hash(key) ^ 0xa24baed4963ee407ULL) % buckets);
}

std::uint64_t LocalStore::item_digest(const Item& it) {
  // Covers only replicated content: key, latest (value, ts, flags) and
  // the per-source value list. LRU/cas/expiry bookkeeping legitimately
  // differs between healthy replicas and must not perturb the digest.
  std::uint64_t d = mix64(fnv1a64(it.key) ^ 0x2545f4914f6cdd1dULL);
  if (it.has_latest) {
    d = hash_combine(d, fnv1a64(it.latest.value));
    d = hash_combine(d, it.latest.ts);
    d = hash_combine(d, it.latest.flags);
  }
  d = hash_combine(d, value_list_digest(it.value_list));
  // Causal record folded only when present, so purely-LWW content keeps
  // its pre-causal digests (anti-entropy stays byte-compatible).
  if (!it.causal.empty()) d = hash_combine(d, it.causal.digest());
  return d;
}

std::uint64_t LocalStore::value_list_digest(
    const std::vector<SourceValue>& list) {
  // XOR of per-source entry digests: order-independent, because replicas
  // may have applied write_all updates from different sources in any
  // interleaving. Sources are unique within a list, so entries cannot
  // cancel each other.
  std::uint64_t acc = 0;
  for (const SourceValue& sv : list) {
    std::uint64_t e =
        mix64(static_cast<std::uint64_t>(sv.source) + 0x9e3779b97f4a7c15ULL);
    e = hash_combine(e, fnv1a64(sv.value));
    e = hash_combine(e, sv.ts);
    acc ^= e;
  }
  return acc;
}

void LocalStore::for_each_matching(
    const std::function<bool(std::string_view)>& pred,
    const std::function<void(const Item&)>& fn) const {
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    for (Item* head : s->buckets) {
      for (Item* it = head; it != nullptr; it = it->hash_next) {
        if (pred(it->key)) fn(*it);
      }
    }
  }
}

}  // namespace sedna::store
