// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the cluster is doing.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace sedna {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view msg) {
    if (!enabled(level)) return;
    static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                             "WARN", "ERROR", "OFF"};
    std::fprintf(stderr, "[%s] %.*s: %.*s\n",
                 kNames[static_cast<int>(level)],
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  }

 private:
  LogLevel level_ = LogLevel::kOff;
};

inline void log_info(std::string_view component, std::string_view msg) {
  Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(std::string_view component, std::string_view msg) {
  Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_debug(std::string_view component, std::string_view msg) {
  Logger::instance().log(LogLevel::kDebug, component, msg);
}
inline void log_error(std::string_view component, std::string_view msg) {
  Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace sedna
