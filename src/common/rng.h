// Deterministic random number generation for workloads and the simulator.
//
// All stochastic behaviour in the repository (service-time jitter, workload
// key choice, zipfian tweet authorship) flows through seeded Xoshiro256**
// instances so experiments and tests replay bit-identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace sedna {

/// Xoshiro256** by Blackman & Vigna. Small, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eda2012ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased variant is
    // fine for workload purposes; bias < 2^-64 * bound).
    const auto x = next();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (service times).
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log1p(-u);
  }

  /// Random lowercase-alphanumeric string of length n.
  std::string next_string(std::size_t n) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(n, '\0');
    for (auto& c : s) c = kAlphabet[next_below(sizeof(kAlphabet) - 1)];
    return s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Zipf-distributed generator over [0, n). Used by the micro-blogging
/// workload: a few authors produce most tweets, a few terms dominate
/// queries. Precomputes the harmonic CDF; O(log n) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double exponent, std::uint64_t seed)
      : rng_(seed), cdf_(n) {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  std::size_t next() {
    const double u = rng_.next_double();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t universe() const { return cdf_.size(); }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace sedna
