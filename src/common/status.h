// Lightweight Status / Result error-handling vocabulary.
//
// The paper's client API replies with a small closed set of outcomes
// ("ok", "outdated", "failure", plus internal "timeout" / "refuse"
// responses used by the failure detector, Section III.C/III.F). We model
// those directly as a status code rather than exceptions so that the
// simulated data path stays allocation-light.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sedna {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Write carried an older timestamp than the stored value (III.F).
  kOutdated,
  /// Generic failure; Sedna starts an async recovery task on this (III.F).
  kFailure,
  /// RPC deadline exceeded; treated as evidence of node failure (III.C).
  kTimeout,
  /// Node explicitly refused (e.g. not the owner of the vnode) (III.E).
  kRefused,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  /// Quorum could not be assembled (fewer than R/W healthy replies).
  kQuorumFailed,
  kOutOfMemory,
  kIoError,
  kCorruption,
  kUnavailable,
  /// Explicit load-shed: the node's admission queue was full, the request
  /// deadline had already expired, or the client's retry budget ran dry.
  /// Retryable — but only against the retry budget, so shed traffic can
  /// never amplify into more offered load than fresh traffic allows.
  kOverloaded,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kOutdated: return "outdated";
    case StatusCode::kFailure: return "failure";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kRefused: return "refused";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kQuorumFailed: return "quorum_failed";
    case StatusCode::kOutOfMemory: return "out_of_memory";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

/// Value-semantic status: a code plus an optional human-readable detail.
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status{}; }
  [[nodiscard]] static Status Outdated(std::string m = {}) {
    return {StatusCode::kOutdated, std::move(m)};
  }
  [[nodiscard]] static Status Failure(std::string m = {}) {
    return {StatusCode::kFailure, std::move(m)};
  }
  [[nodiscard]] static Status Timeout(std::string m = {}) {
    return {StatusCode::kTimeout, std::move(m)};
  }
  [[nodiscard]] static Status Refused(std::string m = {}) {
    return {StatusCode::kRefused, std::move(m)};
  }
  [[nodiscard]] static Status NotFound(std::string m = {}) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status AlreadyExists(std::string m = {}) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  [[nodiscard]] static Status InvalidArgument(std::string m = {}) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status QuorumFailed(std::string m = {}) {
    return {StatusCode::kQuorumFailed, std::move(m)};
  }
  [[nodiscard]] static Status OutOfMemory(std::string m = {}) {
    return {StatusCode::kOutOfMemory, std::move(m)};
  }
  [[nodiscard]] static Status IoError(std::string m = {}) {
    return {StatusCode::kIoError, std::move(m)};
  }
  [[nodiscard]] static Status Corruption(std::string m = {}) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  [[nodiscard]] static Status Unavailable(std::string m = {}) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status Overloaded(std::string m = {}) {
    return {StatusCode::kOverloaded, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] bool is(StatusCode c) const { return code_ == c; }

  [[nodiscard]] std::string to_string() const {
    std::string out{sedna::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Minimal expected<> stand-in.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}                 // NOLINT
  Result(Status status) : rep_(std::move(status)) {}          // NOLINT
  Result(StatusCode code) : rep_(Status{code}) {}             // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(rep_); }
  [[nodiscard]] T& value() & { return std::get<T>(rep_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(rep_)); }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace sedna
