// Hash functions used for ring partitioning and the local store.
//
// The paper hashes each key to an INTEGER and mods it onto a virtual node
// (Section III.B). We use 64-bit FNV-1a for the store's shard/bucket hash
// and a Murmur3-style finalizer-strengthened hash for ring placement, so
// the two layers are decorrelated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sedna {

/// 64-bit FNV-1a. Fast, decent avalanche for short keys like the paper's
/// 20-byte "test-00000000000000" keys.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Murmur3 fmix64 finalizer: turns a weakly-mixed value into one with full
/// avalanche. Used to decorrelate ring hashing from bucket hashing.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Ring hash: position of a key on the consistent-hash ring.
[[nodiscard]] constexpr std::uint64_t ring_hash(std::string_view key) {
  return mix64(fnv1a64(key) ^ 0x9e3779b97f4a7c15ULL);
}

/// Bucket hash: used by LocalStore for shard and bucket selection.
[[nodiscard]] constexpr std::uint64_t bucket_hash(std::string_view key) {
  return fnv1a64(key);
}

/// Combines two hashes (for composite keys, e.g. dataset/table paths).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace sedna
