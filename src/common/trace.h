// End-to-end request tracing over the simulated cluster.
//
// Every sim::Message carries a (TraceId, SpanId) pair; hosts propagate the
// pair client → coordinator → replicas → ZooKeeper and record spans (name,
// node, start/end sim-time, status, parent) into one Tracer per
// simulation. Because all timestamps are virtual clock readings and span
// ids are allocated in event order, two identically-seeded runs produce
// byte-identical dumps — traces are assertable test artifacts, not just
// operator output.
//
// The tracer is disabled by default: benches and long-running simulations
// pay nothing (begin() returns span id 0 and records nothing). Tests and
// the failure drill enable it around the window they want to explain.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace sedna {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// The pair stamped on messages and carried by hosts while they work on
/// behalf of a request. trace_id 0 means "no active trace".
struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

struct Span {
  TraceId trace_id = 0;
  SpanId id = 0;
  /// Parent span id; 0 for a trace's root span.
  SpanId parent = 0;
  std::string name;
  /// Node the work ran on (an RPC span lives on the *caller*).
  NodeId node = kInvalidNode;
  SimTime start_us = 0;
  SimTime end_us = 0;
  /// Outcome ("ok", "timeout", ...); empty while the span is open.
  std::string status;

  [[nodiscard]] bool finished() const { return !status.empty(); }
};

class Tracer {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opens a new trace with a root span. Returns {0,0} while disabled.
  TraceContext start_trace(const std::string& name, NodeId node,
                           SimTime now) {
    if (!enabled_) return {};
    const TraceId trace = next_trace_++;
    return TraceContext{trace, add_span(trace, 0, name, node, now)};
  }

  /// Opens a child span under `parent`. Returns 0 (a no-op id) while
  /// disabled or when the parent context carries no trace.
  SpanId begin(const TraceContext& parent, const std::string& name,
               NodeId node, SimTime now) {
    if (!enabled_ || !parent.active()) return 0;
    return add_span(parent.trace_id, parent.span_id, name, node, now);
  }

  /// Closes a span with an outcome. Safe on id 0 and on already-closed
  /// spans (first close wins, so a response beats its raced timeout).
  void end(SpanId span, SimTime now, const std::string& status = "ok") {
    if (span == 0 || span > spans_.size()) return;
    Span& s = spans_[span - 1];
    if (s.finished()) return;
    s.end_us = now;
    s.status = status;
  }

  /// Zero-duration annotation (e.g. a network drop).
  void instant(const TraceContext& parent, const std::string& name,
               NodeId node, SimTime now, const std::string& status = "ok") {
    end(begin(parent, name, node, now), now, status);
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] TraceId last_trace_id() const { return next_trace_ - 1; }
  void clear() { spans_.clear(); }

  /// Deterministic JSON dump: one object per span, in span-id order.
  [[nodiscard]] std::string dump_json() const {
    std::string out = "[";
    char buf[160];
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      const Span& s = spans_[i];
      std::snprintf(buf, sizeof buf,
                    "%s\n{\"trace\":%llu,\"span\":%llu,\"parent\":%llu,",
                    i == 0 ? "" : ",",
                    static_cast<unsigned long long>(s.trace_id),
                    static_cast<unsigned long long>(s.id),
                    static_cast<unsigned long long>(s.parent));
      out += buf;
      out += "\"name\":\"" + s.name + "\",";
      std::snprintf(buf, sizeof buf,
                    "\"node\":%u,\"start_us\":%llu,\"end_us\":%llu,", s.node,
                    static_cast<unsigned long long>(s.start_us),
                    static_cast<unsigned long long>(s.end_us));
      out += buf;
      out += "\"status\":\"" + (s.finished() ? s.status : "open") + "\"}";
    }
    out += "\n]\n";
    return out;
  }

  /// ASCII span tree for one trace; times are relative to the root span.
  [[nodiscard]] std::string render_tree(TraceId trace) const {
    // Children sorted by span id == start order (event order).
    std::map<SpanId, std::vector<const Span*>> children;
    const Span* root = nullptr;
    for (const Span& s : spans_) {
      if (s.trace_id != trace) continue;
      if (s.parent == 0) root = &s;
      children[s.parent].push_back(&s);
    }
    std::string out;
    if (root != nullptr) {
      render_node(*root, children, root->start_us, 0, out);
    }
    return out;
  }

  /// Every recorded trace, in trace-id order.
  [[nodiscard]] std::string render_all() const {
    std::string out;
    for (TraceId t = 1; t < next_trace_; ++t) {
      char head[48];
      std::snprintf(head, sizeof head, "--- trace %llu ---\n",
                    static_cast<unsigned long long>(t));
      out += head;
      out += render_tree(t);
    }
    return out;
  }

 private:
  SpanId add_span(TraceId trace, SpanId parent, const std::string& name,
                  NodeId node, SimTime now) {
    const SpanId id = next_span_++;
    spans_.push_back(Span{trace, id, parent, name, node, now, 0, {}});
    return id;
  }

  void render_node(const Span& s,
                   const std::map<SpanId, std::vector<const Span*>>& children,
                   SimTime origin, int depth, std::string& out) const {
    char buf[64];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += s.name;
    std::snprintf(buf, sizeof buf, " @%u [+%llu us", s.node,
                  static_cast<unsigned long long>(s.start_us - origin));
    out += buf;
    if (s.finished()) {
      std::snprintf(buf, sizeof buf, ", %llu us] %s\n",
                    static_cast<unsigned long long>(s.end_us - s.start_us),
                    s.status.c_str());
    } else {
      std::snprintf(buf, sizeof buf, "] open\n");
    }
    out += buf;
    const auto it = children.find(s.id);
    if (it == children.end()) return;
    for (const Span* child : it->second) {
      render_node(*child, children, origin, depth + 1, out);
    }
  }

  bool enabled_ = false;
  TraceId next_trace_ = 1;
  SpanId next_span_ = 1;
  /// Dense by id: spans_[id - 1], so end() is O(1).
  std::vector<Span> spans_;
};

}  // namespace sedna
