// End-to-end request tracing over the simulated cluster.
//
// Every sim::Message carries a (TraceId, SpanId) pair; hosts propagate the
// pair client → coordinator → replicas → ZooKeeper and record spans (name,
// node, start/end sim-time, status, parent) into one Tracer per
// simulation. Because all timestamps are virtual clock readings and span
// ids are allocated in event order, two identically-seeded runs produce
// byte-identical dumps — traces are assertable test artifacts, not just
// operator output.
//
// Spans carry a *stage* — which part of the request machinery the time
// belongs to (CPU queue wait, wire, replica service, ZooKeeper, retry,
// repair, migration, hint replay) — plus an optional free-text cause.
// The critical-path analyzer (common/critical_path.h) turns a finished
// span tree into a per-stage latency attribution.
//
// Retention is a deterministic two-tier policy instead of keep-everything:
//   * a bounded ring of the most recently finished traces, and
//   * a slowest-K-per-(operation, time window) reservoir, so the traces
//     that explain the tail survive long after the ring has moved on.
// A trace referenced by neither tier is evicted (spans freed, counters
// bumped); `set_on_trace_finished` lets aggregators observe every trace
// before eviction can touch it.
//
// The tracer is disabled by default: benches and long-running simulations
// pay nothing (begin() returns span id 0 and records nothing). Tests and
// the failure drill enable it around the window they want to explain.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sedna {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Which part of the request machinery a span's self-time belongs to.
/// The taxonomy follows the question an operator asks about a slow
/// request: was it queue wait, the wire, replica service, ZooKeeper,
/// retries, or background interference (repair / migration / hint
/// replay)?
enum class TraceStage : std::uint8_t {
  kUnknown = 0,     // untagged; reported as `unattributed`
  kQueue = 1,       // CPU queue wait behind earlier messages
  kNet = 2,         // wire time of a client-facing RPC
  kService = 3,     // handler execution + replica service waits
  kZk = 4,          // ZooKeeper round trips
  kRetry = 5,       // timed-out attempts + retry backoff sleeps
  kRepair = 6,      // read repair / anti-entropy / failure handling
  kMigration = 7,   // vnode migration protocol
  kHintReplay = 8,  // hinted-handoff replay
};

inline constexpr std::size_t kTraceStageCount = 9;

inline constexpr const char* to_string(TraceStage s) {
  switch (s) {
    case TraceStage::kQueue: return "queue";
    case TraceStage::kNet: return "net";
    case TraceStage::kService: return "service";
    case TraceStage::kZk: return "zk";
    case TraceStage::kRetry: return "retry";
    case TraceStage::kRepair: return "repair";
    case TraceStage::kMigration: return "migration";
    case TraceStage::kHintReplay: return "hint_replay";
    case TraceStage::kUnknown: break;
  }
  return "unattributed";
}

/// The pair stamped on messages and carried by hosts while they work on
/// behalf of a request. trace_id 0 means "no active trace".
struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

struct Span {
  TraceId trace_id = 0;
  SpanId id = 0;
  /// Parent span id; 0 for a trace's root span.
  SpanId parent = 0;
  std::string name;
  /// Node the work ran on (an RPC span lives on the *caller*).
  NodeId node = kInvalidNode;
  SimTime start_us = 0;
  SimTime end_us = 0;
  /// Outcome ("ok", "timeout", ...); empty while the span is open.
  std::string status;
  /// Latency-attribution stage for the span's self-time.
  TraceStage stage = TraceStage::kUnknown;
  /// Optional free-text cause annotation ("vnode=7 from=102", ...).
  std::string cause;

  [[nodiscard]] bool finished() const { return !status.empty(); }
};

/// Deterministic two-tier retention policy. The defaults are generous
/// enough that short test runs never evict; long-running benches stay
/// bounded. `max_spans` is the hard memory cap (satellite: a long sim
/// must not grow span storage without limit).
struct TraceRetentionPolicy {
  /// Most recently finished traces kept regardless of duration.
  std::size_t recent_traces = 512;
  /// Slowest traces kept per (operation, window) — the tail reservoir.
  std::size_t tail_per_window = 4;
  /// Reservoir window width (virtual microseconds).
  SimDuration window_us = 1'000'000;
  /// Windows kept per operation; older windows are dropped whole.
  std::size_t max_windows_per_op = 8;
  /// Hard cap on retained spans; oldest finished traces are force-evicted
  /// (from both tiers) once exceeded. 0 = uncapped.
  std::size_t max_spans = 262'144;
};

class Tracer {
 public:
  /// One retained trace: its spans in span-id (= event) order plus the
  /// summary fields the retention tiers key on.
  struct TraceRecord {
    std::vector<Span> spans;
    /// Root span name; the reservoir's "operation" key.
    std::string op;
    SimTime start_us = 0;
    /// Root span duration, set when the root ends.
    SimDuration duration_us = 0;
    /// Root span ended (children may still be open stragglers).
    bool finished = false;
    bool in_recent = false;
    bool in_reservoir = false;
  };

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void set_policy(const TraceRetentionPolicy& policy) { policy_ = policy; }
  [[nodiscard]] const TraceRetentionPolicy& policy() const { return policy_; }

  /// Called on every trace the moment its root span ends — before any
  /// retention decision, so aggregators see 100% of finished traces even
  /// when the tiers later evict them.
  void set_on_trace_finished(
      std::function<void(TraceId, const TraceRecord&)> fn) {
    on_trace_finished_ = std::move(fn);
  }

  /// Opens a new trace with a root span. Returns {0,0} while disabled.
  TraceContext start_trace(const std::string& name, NodeId node, SimTime now,
                           TraceStage stage = TraceStage::kUnknown) {
    if (!enabled_) return {};
    const TraceId trace = next_trace_++;
    return TraceContext{trace, add_span(trace, 0, name, node, now, stage)};
  }

  /// Opens a child span under `parent`. Returns 0 (a no-op id) while
  /// disabled, when the parent context carries no trace, or when the
  /// parent span's trace has already been evicted.
  SpanId begin(const TraceContext& parent, const std::string& name,
               NodeId node, SimTime now,
               TraceStage stage = TraceStage::kUnknown) {
    if (!enabled_ || !parent.active() || parent.span_id == 0) return 0;
    if (!span_index_.contains(parent.span_id)) return 0;
    return add_span(parent.trace_id, parent.span_id, name, node, now, stage);
  }

  /// Closes a span with an outcome. Safe on id 0 and on already-closed
  /// spans (first close wins, so a response beats its raced timeout).
  /// Closing a root span finalizes its trace: the finished hook fires and
  /// the retention tiers admit (or evict) it.
  void end(SpanId span, SimTime now, const std::string& status = "ok") {
    if (span == 0) return;
    const auto it = span_index_.find(span);
    if (it == span_index_.end()) return;
    const TraceId trace = it->second;
    Span* s = find_span(trace, span);
    if (s == nullptr || s->finished()) return;
    s->end_us = now;
    s->status = status;
    if (s->parent == 0) finalize_trace(trace);
  }

  /// Attaches a cause annotation ("vnode=7 from=102") to an open or
  /// closed span. No-op on id 0 / evicted spans.
  void annotate(SpanId span, const std::string& cause) {
    if (span == 0) return;
    const auto it = span_index_.find(span);
    if (it == span_index_.end()) return;
    Span* s = find_span(it->second, span);
    if (s != nullptr) s->cause = cause;
  }

  /// Zero-duration annotation (e.g. a network drop).
  void instant(const TraceContext& parent, const std::string& name,
               NodeId node, SimTime now, const std::string& status = "ok",
               TraceStage stage = TraceStage::kUnknown) {
    end(begin(parent, name, node, now, stage), now, status);
  }

  /// Every retained span, in span-id order (copy: the retention store is
  /// grouped per trace internally).
  [[nodiscard]] std::vector<Span> spans() const {
    std::vector<const Span*> ptrs = all_span_ptrs();
    std::vector<Span> out;
    out.reserve(ptrs.size());
    for (const Span* s : ptrs) out.push_back(*s);
    return out;
  }

  /// The retained record for one trace, or nullptr if unknown/evicted.
  [[nodiscard]] const TraceRecord* trace(TraceId id) const {
    const auto it = traces_.find(id);
    return it == traces_.end() ? nullptr : &it->second;
  }

  /// Retained finished traces, in trace-id order.
  [[nodiscard]] std::vector<TraceId> finished_trace_ids() const {
    std::vector<TraceId> out;
    for (const auto& [id, rec] : traces_) {
      if (rec.finished) out.push_back(id);
    }
    return out;
  }

  /// The reservoir tier: per operation (sorted), the retained tail traces
  /// ordered slowest-first (duration desc, trace id asc).
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<TraceId>>>
  tail_trace_ids() const {
    std::vector<std::pair<std::string, std::vector<TraceId>>> out;
    for (const auto& [op, windows] : reservoir_) {
      std::vector<TailEntry> merged;
      for (const auto& [window, entries] : windows) {
        merged.insert(merged.end(), entries.begin(), entries.end());
      }
      std::sort(merged.begin(), merged.end(), slower_first);
      std::vector<TraceId> ids;
      ids.reserve(merged.size());
      for (const TailEntry& e : merged) ids.push_back(e.trace);
      if (!ids.empty()) out.emplace_back(op, std::move(ids));
    }
    return out;
  }

  [[nodiscard]] TraceId last_trace_id() const { return next_trace_ - 1; }
  [[nodiscard]] std::size_t retained_spans() const { return live_spans_; }
  [[nodiscard]] std::size_t retained_traces() const { return traces_.size(); }
  [[nodiscard]] std::uint64_t evicted_spans() const { return evicted_spans_; }
  [[nodiscard]] std::uint64_t evicted_traces() const {
    return evicted_traces_;
  }

  void clear() {
    traces_.clear();
    span_index_.clear();
    recent_.clear();
    reservoir_.clear();
    live_spans_ = 0;
    evicted_spans_ = 0;
    evicted_traces_ = 0;
    next_trace_ = 1;
    next_span_ = 1;
  }

  /// Deterministic JSON dump: one object per retained span, in span-id
  /// order.
  [[nodiscard]] std::string dump_json() const {
    std::string out = "[";
    char buf[160];
    const std::vector<const Span*> ptrs = all_span_ptrs();
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      const Span& s = *ptrs[i];
      std::snprintf(buf, sizeof buf,
                    "%s\n{\"trace\":%llu,\"span\":%llu,\"parent\":%llu,",
                    i == 0 ? "" : ",",
                    static_cast<unsigned long long>(s.trace_id),
                    static_cast<unsigned long long>(s.id),
                    static_cast<unsigned long long>(s.parent));
      out += buf;
      out += "\"name\":\"" + s.name + "\",";
      std::snprintf(buf, sizeof buf,
                    "\"node\":%u,\"start_us\":%llu,\"end_us\":%llu,", s.node,
                    static_cast<unsigned long long>(s.start_us),
                    static_cast<unsigned long long>(s.end_us));
      out += buf;
      out += "\"stage\":\"" + std::string(to_string(s.stage)) + "\",";
      if (!s.cause.empty()) out += "\"cause\":\"" + s.cause + "\",";
      out += "\"status\":\"" + (s.finished() ? s.status : "open") + "\"}";
    }
    out += "\n]\n";
    return out;
  }

  /// ASCII span tree for one trace; times are relative to the root span.
  [[nodiscard]] std::string render_tree(TraceId trace) const {
    const auto it = traces_.find(trace);
    if (it == traces_.end()) return {};
    // Children sorted by span id == start order (event order).
    std::map<SpanId, std::vector<const Span*>> children;
    const Span* root = nullptr;
    for (const Span& s : it->second.spans) {
      if (s.parent == 0) root = &s;
      children[s.parent].push_back(&s);
    }
    std::string out;
    if (root != nullptr) {
      render_node(*root, children, root->start_us, 0, out);
    }
    return out;
  }

  /// Every retained trace, in trace-id order.
  [[nodiscard]] std::string render_all() const {
    std::string out;
    for (const auto& [t, rec] : traces_) {
      char head[48];
      std::snprintf(head, sizeof head, "--- trace %llu ---\n",
                    static_cast<unsigned long long>(t));
      out += head;
      out += render_tree(t);
    }
    return out;
  }

 private:
  struct TailEntry {
    SimDuration duration = 0;
    TraceId trace = 0;
  };

  static bool slower_first(const TailEntry& a, const TailEntry& b) {
    if (a.duration != b.duration) return a.duration > b.duration;
    return a.trace < b.trace;
  }

  SpanId add_span(TraceId trace, SpanId parent, const std::string& name,
                  NodeId node, SimTime now, TraceStage stage) {
    const SpanId id = next_span_++;
    TraceRecord& rec = traces_[trace];
    if (parent == 0 && rec.spans.empty()) {
      rec.op = name;
      rec.start_us = now;
    }
    rec.spans.push_back(Span{trace, id, parent, name, node, now, 0, {},
                             stage, {}});
    span_index_.emplace(id, trace);
    ++live_spans_;
    enforce_span_cap();
    return id;
  }

  Span* find_span(TraceId trace, SpanId id) {
    const auto it = traces_.find(trace);
    if (it == traces_.end()) return nullptr;
    auto& spans = it->second.spans;
    const auto sit = std::lower_bound(
        spans.begin(), spans.end(), id,
        [](const Span& s, SpanId v) { return s.id < v; });
    return (sit != spans.end() && sit->id == id) ? &*sit : nullptr;
  }

  [[nodiscard]] std::vector<const Span*> all_span_ptrs() const {
    std::vector<const Span*> ptrs;
    ptrs.reserve(live_spans_);
    for (const auto& [id, rec] : traces_) {
      for (const Span& s : rec.spans) ptrs.push_back(&s);
    }
    std::sort(ptrs.begin(), ptrs.end(),
              [](const Span* a, const Span* b) { return a->id < b->id; });
    return ptrs;
  }

  void finalize_trace(TraceId id) {
    auto it = traces_.find(id);
    if (it == traces_.end() || it->second.finished) return;
    TraceRecord& rec = it->second;
    rec.finished = true;
    const Span& root = rec.spans.front();
    rec.duration_us = root.end_us - root.start_us;
    if (on_trace_finished_) on_trace_finished_(id, rec);

    // Tier 1: recent ring. Admit before the reservoir so a trace the
    // reservoir rejects is still pinned by its ring slot.
    if (policy_.recent_traces > 0) {
      rec.in_recent = true;
      recent_.push_back(id);
    }

    // Tier 2: slowest-K reservoir keyed by (operation, window).
    if (policy_.tail_per_window > 0) {
      const std::uint64_t window =
          policy_.window_us > 0 ? rec.start_us / policy_.window_us : 0;
      const std::string op = rec.op;  // copy: eviction may drop `rec`
      auto& slot = reservoir_[op][window];
      slot.push_back(TailEntry{rec.duration_us, id});
      rec.in_reservoir = true;
      std::sort(slot.begin(), slot.end(), slower_first);
      if (slot.size() > policy_.tail_per_window) {
        const TraceId dropped = slot.back().trace;
        slot.pop_back();
        unreserve(dropped);
      }
      auto& windows = reservoir_[op];
      while (windows.size() > policy_.max_windows_per_op) {
        auto oldest = windows.begin();
        const std::vector<TailEntry> gone = std::move(oldest->second);
        windows.erase(oldest);
        for (const TailEntry& e : gone) unreserve(e.trace);
      }
    }

    // Trim the ring after both admissions so a fresh trace cannot be
    // evicted in between.
    while (recent_.size() > policy_.recent_traces) {
      const TraceId old = recent_.front();
      recent_.pop_front();
      auto oit = traces_.find(old);
      if (oit != traces_.end()) {
        oit->second.in_recent = false;
        maybe_evict(old);
      }
    }
  }

  void unreserve(TraceId id) {
    auto it = traces_.find(id);
    if (it == traces_.end()) return;
    it->second.in_reservoir = false;
    maybe_evict(id);
  }

  /// Evicts a finished trace referenced by neither tier.
  void maybe_evict(TraceId id) {
    auto it = traces_.find(id);
    if (it == traces_.end()) return;
    const TraceRecord& rec = it->second;
    if (!rec.finished || rec.in_recent || rec.in_reservoir) return;
    ++evicted_traces_;
    evicted_spans_ += rec.spans.size();
    live_spans_ -= rec.spans.size();
    for (const Span& s : rec.spans) span_index_.erase(s.id);
    traces_.erase(it);
  }

  /// Hard cap: force-evict the oldest finished traces (removing their
  /// tier references first) until the retained span count fits.
  void enforce_span_cap() {
    if (policy_.max_spans == 0 || live_spans_ <= policy_.max_spans) return;
    auto it = traces_.begin();
    while (live_spans_ > policy_.max_spans && it != traces_.end()) {
      auto cur = it++;
      TraceRecord& rec = cur->second;
      if (!rec.finished) continue;
      const TraceId id = cur->first;
      if (rec.in_recent) {
        rec.in_recent = false;
        const auto rit = std::find(recent_.begin(), recent_.end(), id);
        if (rit != recent_.end()) recent_.erase(rit);
      }
      if (rec.in_reservoir) {
        rec.in_reservoir = false;
        const auto oit = reservoir_.find(rec.op);
        if (oit != reservoir_.end()) {
          const std::uint64_t window =
              policy_.window_us > 0 ? rec.start_us / policy_.window_us : 0;
          const auto wit = oit->second.find(window);
          if (wit != oit->second.end()) {
            auto& slot = wit->second;
            slot.erase(std::remove_if(slot.begin(), slot.end(),
                                      [id](const TailEntry& e) {
                                        return e.trace == id;
                                      }),
                       slot.end());
            if (slot.empty()) oit->second.erase(wit);
          }
          if (oit->second.empty()) reservoir_.erase(oit);
        }
      }
      ++evicted_traces_;
      evicted_spans_ += rec.spans.size();
      live_spans_ -= rec.spans.size();
      for (const Span& s : rec.spans) span_index_.erase(s.id);
      traces_.erase(cur);
    }
  }

  void render_node(const Span& s,
                   const std::map<SpanId, std::vector<const Span*>>& children,
                   SimTime origin, int depth, std::string& out) const {
    char buf[64];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += s.name;
    std::snprintf(buf, sizeof buf, " @%u [+%llu us", s.node,
                  static_cast<unsigned long long>(s.start_us - origin));
    out += buf;
    if (s.finished()) {
      std::snprintf(buf, sizeof buf, ", %llu us] %s",
                    static_cast<unsigned long long>(s.end_us - s.start_us),
                    s.status.c_str());
    } else {
      std::snprintf(buf, sizeof buf, "] open");
    }
    out += buf;
    if (s.stage != TraceStage::kUnknown) {
      out += " (";
      out += to_string(s.stage);
      out += ")";
    }
    if (!s.cause.empty()) out += " {" + s.cause + "}";
    out += "\n";
    const auto it = children.find(s.id);
    if (it == children.end()) return;
    for (const Span* child : it->second) {
      render_node(*child, children, origin, depth + 1, out);
    }
  }

  bool enabled_ = false;
  TraceRetentionPolicy policy_;
  TraceId next_trace_ = 1;
  SpanId next_span_ = 1;
  /// Retention store: spans grouped per trace, trace-id ordered.
  std::map<TraceId, TraceRecord> traces_;
  /// SpanId → owning trace, for O(1)-ish end()/annotate(). Never
  /// iterated, so the unordered map cannot perturb determinism.
  std::unordered_map<SpanId, TraceId> span_index_;
  /// Tier 1: most recently finished traces, oldest first.
  std::deque<TraceId> recent_;
  /// Tier 2: op → window → slowest-K entries (sorted slowest first).
  std::map<std::string, std::map<std::uint64_t, std::vector<TailEntry>>>
      reservoir_;
  std::size_t live_spans_ = 0;
  std::uint64_t evicted_spans_ = 0;
  std::uint64_t evicted_traces_ = 0;
  std::function<void(TraceId, const TraceRecord&)> on_trace_finished_;
};

}  // namespace sedna
