// Counters and latency histograms used by benches and node instrumentation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sedna {

/// Monotone counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Log-bucketed histogram for latency-like quantities (microseconds).
/// Buckets are [2^i, 2^(i+1)); quantile estimates interpolate inside a
/// bucket. Cheap enough to record every simulated request.
///
/// Each bucket optionally keeps one *exemplar* — the trace id of a
/// representative request that landed there (largest value wins; ties
/// keep the earliest trace). Tail buckets thereby link straight from a
/// p99 number to a retained trace that explains it.
class Histogram {
 public:
  struct Exemplar {
    std::uint64_t value = 0;
    std::uint64_t trace = 0;
  };

  void record(std::uint64_t v) { record(v, 0); }

  /// Records a sample with the trace that produced it (0 = untraced).
  void record(std::uint64_t v, std::uint64_t trace) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[bucket_index(v)];
    if (trace != 0) offer_exemplar(bucket_index(v), Exemplar{v, trace});
  }

  /// Bucket index → exemplar, for populated buckets with a traced sample.
  [[nodiscard]] const std::map<std::size_t, Exemplar>& exemplars() const {
    return exemplars_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// q in [0, 1].
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (seen + buckets_[i] > target) {
        // Bucket i covers [2^i, 2^(i+1)); bucket 0 additionally absorbs
        // value 0, so its lower bound is 2^0 like every other bucket
        // rather than 0.0 (which dragged estimates below the smallest
        // recordable latency — simulated durations are clamped >= 1).
        const double lo = static_cast<double>(1ULL << i);
        const double hi = static_cast<double>(2ULL << i);
        const double frac =
            buckets_[i] == 0
                ? 0.0
                : static_cast<double>(target - seen) /
                      static_cast<double>(buckets_[i]);
        // Interpolation never needs to leave the observed range.
        return std::clamp(lo + frac * (hi - lo),
                          static_cast<double>(count_ ? min_ : 0),
                          static_cast<double>(max_));
      }
      seen += buckets_[i];
    }
    return static_cast<double>(max_);
  }

  void reset() { *this = Histogram{}; }

  void merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    for (const auto& [bucket, e] : other.exemplars_) {
      offer_exemplar(bucket, e);
    }
  }

 private:
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < 2) return 0;
    return static_cast<std::size_t>(63 - __builtin_clzll(v));
  }

  void offer_exemplar(std::size_t bucket, Exemplar e) {
    Exemplar& cur = exemplars_[bucket];
    if (cur.trace == 0 || e.value > cur.value ||
        (e.value == cur.value && e.trace < cur.trace)) {
      cur = e;
    }
  }

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = static_cast<std::uint64_t>(-1);
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, 64> buckets_{};
  std::map<std::size_t, Exemplar> exemplars_;
};

/// Named metric registry; one per node / per bench run. (For the
/// cluster-wide registry-of-registries see MetricsRegistry below.)
class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void reset() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Cluster-wide metrics registry: names each per-node MetricRegistry with
/// a stable label ("node-100", "client-1000", ...) and renders
/// deterministic aggregate views. Output ordering is (metric name, label),
/// both lexicographic, so dumps from identically-seeded runs are
/// byte-identical.
class MetricsRegistry {
 public:
  /// The registry must outlive this aggregator.
  void attach(std::string label, const MetricRegistry& reg) {
    members_.emplace_back(std::move(label), &reg);
  }

  /// Label-free sum of every attached registry.
  [[nodiscard]] MetricRegistry merged() const {
    MetricRegistry out;
    for (const auto& [label, reg] : members_) {
      for (const auto& [name, c] : reg->counters()) {
        out.counter(name).add(c.value());
      }
      for (const auto& [name, h] : reg->histograms()) {
        out.histogram(name).merge(h);
      }
    }
    return out;
  }

  /// Prometheus-style text exposition. Counters emit one sample per
  /// label; histograms emit p50/p95/p99 quantiles plus _sum and _count
  /// (summary convention).
  [[nodiscard]] std::string prometheus_text() const {
    std::map<std::string, std::map<std::string, const Counter*>> counters;
    std::map<std::string, std::map<std::string, const Histogram*>> histos;
    for (const auto& [label, reg] : members_) {
      for (const auto& [name, c] : reg->counters()) {
        counters[name][label] = &c;
      }
      for (const auto& [name, h] : reg->histograms()) {
        histos[name][label] = &h;
      }
    }
    std::string out;
    char buf[128];
    for (const auto& [name, by_label] : counters) {
      const std::string metric = prometheus_name(name);
      out += "# TYPE " + metric + " counter\n";
      for (const auto& [label, c] : by_label) {
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(c->value()));
        out += metric + "{node=\"" + escape_label_value(label) + "\"}" + buf;
      }
    }
    for (const auto& [name, by_label] : histos) {
      const std::string metric = prometheus_name(name);
      out += "# TYPE " + metric + " summary\n";
      for (const auto& [label, h] : by_label) {
        const std::string esc = escape_label_value(label);
        for (const double q : {0.5, 0.95, 0.99}) {
          std::snprintf(buf, sizeof buf, ",quantile=\"%g\"} %.6g\n", q,
                        h->quantile(q));
          out += metric + "{node=\"" + esc + "\"" + buf;
        }
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(h->sum()));
        out += metric + "_sum{node=\"" + esc + "\"}" + buf;
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(h->count()));
        out += metric + "_count{node=\"" + esc + "\"}" + buf;
        // Exemplar comments: the two highest populated buckets link the
        // tail of this series to retained traces. The exposition format
        // has no native exemplars for summaries, so these ride as
        // structured comments a scraper (and our promlint) can parse.
        const auto& exemplars = h->exemplars();
        int emitted = 0;
        for (auto it = exemplars.rbegin();
             it != exemplars.rend() && emitted < 2; ++it, ++emitted) {
          std::snprintf(
              buf, sizeof buf,
              " bucket_lo=%llu value=%llu trace_id=%llu\n",
              static_cast<unsigned long long>(1ULL << it->first),
              static_cast<unsigned long long>(it->second.value),
              static_cast<unsigned long long>(it->second.trace));
          out += "# exemplar " + metric + "{node=\"" + esc + "\"}" + buf;
        }
      }
    }
    return out;
  }

  /// Prometheus label-value escaping: backslash, double-quote and newline
  /// must be escaped or a hostile label breaks the exposition line format.
  static std::string escape_label_value(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out;
  }

 private:
  /// "coordinator.read_latency_us" → "sedna_coordinator_read_latency_us".
  static std::string prometheus_name(const std::string& name) {
    std::string out = "sedna_" + name;
    for (char& c : out) {
      if (c == '.' || c == '-') c = '_';
    }
    return out;
  }

  std::vector<std::pair<std::string, const MetricRegistry*>> members_;
};

}  // namespace sedna
