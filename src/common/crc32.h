// CRC-32 (IEEE polynomial, reflected) for WAL and snapshot record framing.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sedna {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(std::string_view data,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (unsigned char byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace sedna
