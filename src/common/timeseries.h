// Fixed-interval time-series ring buffer + declarative alert engine.
//
// TimeSeriesRecorder snapshots a set of named gauges (arbitrary
// double-returning callbacks — counter values, histogram quantiles,
// cluster-derived gauges) at fixed sim-clock intervals into a bounded
// ring. Because sampling is driven by the deterministic simulation clock
// and reads only deterministic state, the CSV export is byte-identical
// across identically-seeded runs.
//
// AlertEngine evaluates threshold rules with for-duration semantics over
// the newest samples: a rule fires after `for_samples` consecutive
// breaching samples and resolves after `clear_samples` consecutive
// non-breaching ones (hysteresis, so a flapping series does not spam
// transitions). Transitions are recorded as an event log and surfaced to
// an optional hook (used to emit trace events).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace sedna {

class TimeSeriesRecorder {
 public:
  struct Row {
    SimTime at = 0;
    std::vector<double> values;
  };

  explicit TimeSeriesRecorder(std::size_t capacity = 512)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Registers a gauge; call before the first sample(). Returns the
  /// series' column index.
  std::size_t add_series(std::string name, std::function<double()> probe) {
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    return names_.size() - 1;
  }

  /// Takes one snapshot of every registered series at time `at`.
  void sample(SimTime at) {
    Row row;
    row.at = at;
    row.values.reserve(probes_.size());
    for (const auto& probe : probes_) row.values.push_back(probe());
    if (rows_.size() < capacity_) {
      rows_.push_back(std::move(row));
    } else {
      rows_[next_] = std::move(row);
      next_ = (next_ + 1) % capacity_;
    }
    ++total_samples_;
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Samples taken over the recorder's lifetime (>= size() once wrapped).
  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }
  [[nodiscard]] const std::vector<std::string>& series_names() const {
    return names_;
  }

  /// Index of a named series, or npos.
  [[nodiscard]] std::size_t series_index(const std::string& name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    return npos;
  }

  /// Rows in chronological order; i = 0 is the oldest retained sample.
  [[nodiscard]] const Row& row(std::size_t i) const {
    return rows_[(next_ + i) % rows_.size()];
  }
  [[nodiscard]] SimTime time_at(std::size_t i) const { return row(i).at; }
  [[nodiscard]] double value_at(std::size_t i, std::size_t series) const {
    return row(i).values[series];
  }

  /// CSV export: header `time_us,<series...>`, one row per retained
  /// sample in chronological order. %.6g keeps the format stable.
  [[nodiscard]] std::string csv() const {
    std::string out = "time_us";
    for (const auto& name : names_) out += "," + name;
    out += "\n";
    char buf[64];
    for (std::size_t i = 0; i < size(); ++i) {
      const Row& r = row(i);
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(r.at));
      out += buf;
      for (const double v : r.values) {
        std::snprintf(buf, sizeof buf, ",%.6g", v);
        out += buf;
      }
      out += "\n";
    }
    return out;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> probes_;
  std::vector<Row> rows_;
  std::size_t next_ = 0;  // ring head once full
  std::uint64_t total_samples_ = 0;
};

// ---- alerting ---------------------------------------------------------------

enum class AlertOp : std::uint8_t { kGreaterThan, kLessThan };

struct AlertRule {
  std::string name;
  /// Series (by TimeSeriesRecorder name) the rule watches.
  std::string series;
  AlertOp op = AlertOp::kGreaterThan;
  double threshold = 0.0;
  /// Consecutive breaching samples before the rule fires.
  std::uint32_t for_samples = 1;
  /// Consecutive non-breaching samples before a firing rule resolves.
  std::uint32_t clear_samples = 1;
  std::string severity = "warning";
};

enum class AlertState : std::uint8_t { kInactive, kPending, kFiring };

struct AlertEvent {
  SimTime at = 0;
  std::string rule;
  bool fired = false;  // false → resolved
  double value = 0.0;
};

class AlertEngine {
 public:
  /// Called on every fire/resolve transition (e.g. to emit trace events).
  using TransitionHook =
      std::function<void(const AlertRule&, const AlertEvent&)>;

  void add_rule(AlertRule rule) {
    states_.push_back(RuleState{});
    rules_.push_back(std::move(rule));
  }

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Evaluates every rule against the newest sample in `recorder`.
  /// Call once per recorder sample, after it.
  void evaluate(const TimeSeriesRecorder& recorder, SimTime now) {
    if (recorder.size() == 0) return;
    const std::size_t newest = recorder.size() - 1;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      const AlertRule& rule = rules_[i];
      RuleState& st = states_[i];
      const std::size_t col = recorder.series_index(rule.series);
      if (col == TimeSeriesRecorder::npos) continue;
      const double v = recorder.value_at(newest, col);
      const bool breach = rule.op == AlertOp::kGreaterThan ? v > rule.threshold
                                                           : v < rule.threshold;
      if (breach) {
        st.clear_streak = 0;
        ++st.breach_streak;
        if (st.state != AlertState::kFiring) {
          st.state = st.breach_streak >= rule.for_samples ? AlertState::kFiring
                                                          : AlertState::kPending;
          if (st.state == AlertState::kFiring) transition(rule, now, true, v);
        }
      } else {
        st.breach_streak = 0;
        if (st.state == AlertState::kFiring) {
          ++st.clear_streak;
          if (st.clear_streak >= rule.clear_samples) {
            st.state = AlertState::kInactive;
            st.clear_streak = 0;
            transition(rule, now, false, v);
          }
        } else {
          st.state = AlertState::kInactive;
          st.clear_streak = 0;
        }
      }
    }
  }

  [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }
  [[nodiscard]] AlertState state(const std::string& name) const {
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].name == name) return states_[i].state;
    }
    return AlertState::kInactive;
  }
  [[nodiscard]] bool firing(const std::string& name) const {
    return state(name) == AlertState::kFiring;
  }
  [[nodiscard]] std::size_t firing_count() const {
    std::size_t n = 0;
    for (const auto& st : states_) n += st.state == AlertState::kFiring;
    return n;
  }
  /// Full fire/resolve transition history, oldest first.
  [[nodiscard]] const std::vector<AlertEvent>& events() const {
    return events_;
  }

  /// Human-readable transition log, one line per event.
  [[nodiscard]] std::string text() const {
    std::string out;
    char buf[160];
    for (const AlertEvent& e : events_) {
      std::snprintf(buf, sizeof buf, "[%10llu us] %-8s %s (value=%.6g)\n",
                    static_cast<unsigned long long>(e.at),
                    e.fired ? "FIRING" : "RESOLVED", e.rule.c_str(), e.value);
      out += buf;
    }
    return out;
  }

 private:
  struct RuleState {
    AlertState state = AlertState::kInactive;
    std::uint32_t breach_streak = 0;
    std::uint32_t clear_streak = 0;
  };

  void transition(const AlertRule& rule, SimTime now, bool fired, double v) {
    AlertEvent e{now, rule.name, fired, v};
    events_.push_back(e);
    if (hook_) hook_(rule, e);
  }

  std::vector<AlertRule> rules_;
  std::vector<RuleState> states_;
  std::vector<AlertEvent> events_;
  TransitionHook hook_;
};

}  // namespace sedna
