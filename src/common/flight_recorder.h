// Cluster flight recorder: a bounded, sim-clock-stamped journal of the
// *qualitative* events of a run — chaos injections, alert fire/resolve
// transitions, health transitions, shed bursts, migration phases, and
// auditor-detected consistency violations — in one causally-ordered
// place. Metrics answer "how much"; the flight recorder answers "what
// happened, in what order" when an operator reconstructs an incident.
//
// Design points:
//   * bounded ring: the newest `capacity` events are retained, oldest
//     evicted first, with an eviction counter so truncation is visible;
//   * sim-clock timestamps plus a monotone sequence number, so events
//     recorded at the same instant keep a total order and two
//     identically-seeded runs render byte-identical timelines;
//   * pure in-memory state: recording never touches the simulation, so
//     wiring the recorder into a seeded run cannot perturb the data path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>

#include "common/types.h"

namespace sedna {

struct FlightEvent {
  SimTime at = 0;
  /// Total order among same-instant events (assignment order).
  std::uint64_t seq = 0;
  /// Coarse family: "chaos", "alert", "health", "overload", "migration",
  /// "consistency". Free-form — used for grouping, never parsed.
  std::string category;
  /// Originator, e.g. "node-102", "monitor", "bench".
  std::string source;
  /// Short machine-stable label, e.g. "partition", "fired:replica-lag".
  std::string label;
  /// Optional human detail ("vnode=12 from=103").
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(SimTime at, std::string category, std::string source,
              std::string label, std::string detail = {}) {
    FlightEvent ev;
    ev.at = at;
    ev.seq = next_seq_++;
    ev.category = std::move(category);
    ev.source = std::move(source);
    ev.label = std::move(label);
    ev.detail = std::move(detail);
    events_.push_back(std::move(ev));
    if (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_;
    }
  }

  [[nodiscard]] const std::deque<FlightEvent>& events() const {
    return events_;
  }
  /// Lifetime events recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const { return next_seq_; }
  /// Events evicted by the ring bound.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() {
    events_.clear();
    // next_seq_/dropped_ keep counting: they are lifetime totals.
  }

  /// CSV export (stable column order; fields quoted when they contain
  /// delimiters). Deterministic: rows in recording order.
  [[nodiscard]] std::string csv() const {
    std::string out = "seq,at_us,category,source,label,detail\n";
    char buf[64];
    for (const FlightEvent& ev : events_) {
      std::snprintf(buf, sizeof buf, "%llu,%llu,",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<unsigned long long>(ev.at));
      out += buf;
      out += csv_field(ev.category);
      out += ',';
      out += csv_field(ev.source);
      out += ',';
      out += csv_field(ev.label);
      out += ',';
      out += csv_field(ev.detail);
      out += '\n';
    }
    return out;
  }

  /// Human-readable incident timeline (the render `incident_report()`
  /// exposes), matching the monitor log style.
  [[nodiscard]] std::string render(const std::string& title) const {
    std::string out = "=== incident timeline: " + title + " ===\n";
    char buf[96];
    if (dropped_ > 0) {
      std::snprintf(buf, sizeof buf,
                    "(%llu older event(s) evicted by the ring bound)\n",
                    static_cast<unsigned long long>(dropped_));
      out += buf;
    }
    for (const FlightEvent& ev : events_) {
      std::snprintf(buf, sizeof buf, "[%10llu us] %-11s %-9s %s",
                    static_cast<unsigned long long>(ev.at),
                    ev.category.c_str(), ev.source.c_str(),
                    ev.label.c_str());
      out += buf;
      if (!ev.detail.empty()) {
        out += ' ';
        out += ev.detail;
      }
      out += '\n';
    }
    if (events_.empty()) out += "(no events recorded)\n";
    return out;
  }

 private:
  static std::string csv_field(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

  std::size_t capacity_;
  std::deque<FlightEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sedna
