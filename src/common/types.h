// Core identifier and scalar types shared across all Sedna modules.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sedna {

/// Identifier of a real node (server) in the cluster. Dense, assigned at
/// cluster construction; also used as the message-source tag in write_all
/// value lists (paper Section III.F).
using NodeId = std::uint32_t;

/// Identifier of a virtual node: an index into the hash-ring slice table.
using VnodeId = std::uint32_t;

/// Logical timestamp attached to every stored value. Sedna resolves
/// concurrent writes by last-writer-wins on this timestamp (Section III.F).
/// In simulation this is the virtual clock in microseconds combined with a
/// per-node sequence number to break ties deterministically.
using Timestamp = std::uint64_t;

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in simulated microseconds.
using SimDuration = std::uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr VnodeId kInvalidVnode = static_cast<VnodeId>(-1);

/// Convenience literal helpers for simulated durations.
constexpr SimDuration sim_us(std::uint64_t v) { return v; }
constexpr SimDuration sim_ms(std::uint64_t v) { return v * 1000; }
constexpr SimDuration sim_sec(std::uint64_t v) { return v * 1000 * 1000; }

/// Composes a tie-broken timestamp: high bits are the clock reading, low
/// bits a writer-unique sequence so two writers at the same instant still
/// order deterministically.
constexpr Timestamp make_timestamp(SimTime now_us, std::uint16_t writer_seq) {
  return (now_us << 16) | writer_seq;
}

constexpr SimTime timestamp_clock(Timestamp ts) { return ts >> 16; }

}  // namespace sedna
