// Binary serialization for RPC payloads, WAL records and snapshots.
//
// Little-endian fixed-width integers, varint-free (messages are tiny and
// simplicity beats a few bytes), length-prefixed strings. The reader is
// bounds-checked and reports kCorruption instead of crashing on truncated
// or malformed input — WAL tail records after a crash are expected to be
// torn.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sedna {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_u16(std::uint16_t v) { put_fixed(v); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }
  void put_i64(std::int64_t v) { put_fixed(static_cast<std::uint64_t>(v)); }

  void put_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  void put_bytes_raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& items, Fn&& encode_one) {
    put_u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }

  [[nodiscard]] const std::string& data() const& { return buf_; }
  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_fixed(T v) {
    char tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(tmp, sizeof(T));
  }

  std::string buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool failed() const { return failed_; }
  /// Lets a decoder reject semantically invalid (not just truncated) data.
  void mark_failed() { failed_ = true; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return failed_ ? 0 : data_.size() - pos_;
  }

  std::uint8_t get_u8() {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  bool get_bool() { return get_u8() != 0; }

  std::uint16_t get_u16() { return get_fixed<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_fixed<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_fixed<std::uint64_t>(); }
  std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_fixed<std::uint64_t>());
  }

  double get_double() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    if (!ensure(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& decode_one) {
    const std::uint32_t n = get_u32();
    std::vector<T> items;
    // Guard against corrupted counts: each element needs >= 1 byte.
    if (failed_ || n > remaining()) {
      failed_ = true;
      return items;
    }
    items.reserve(n);
    for (std::uint32_t i = 0; i < n && !failed_; ++i) {
      items.push_back(decode_one(*this));
    }
    return items;
  }

  [[nodiscard]] Status status() const {
    return failed_ ? Status::Corruption("truncated or malformed buffer")
                   : Status::Ok();
  }

 private:
  bool ensure(std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  template <typename T>
  T get_fixed() {
    if (!ensure(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sedna
