// Critical-path latency attribution over finished span trees.
//
// Given one trace (the spans of a single client request, migration, ...),
// `attribute_trace` walks the tree *backwards* from the root span's end,
// follows the latest-ending child at every step, and charges each slice of
// wall-clock time to the stage of the span that was "responsible" for it.
// The walk telescopes exactly: the per-stage sums add up to the root
// span's duration, so coverage only drops below 1.0 when time lands on
// spans tagged TraceStage::kUnknown — reported as `unattributed`, never
// silently dropped. The repo-wide invariant (asserted by the failure
// drill and the attribution tests) is coverage ≥ 0.95 for every traced
// request.
//
// Two twists make the attribution match operator intuition:
//   * Failure reclassification: a span that ended in "timeout" /
//     "crashed" / "retry" charges its time to the `retry` stage no matter
//     what it was doing — the caller spent that time waiting on something
//     that never answered.
//   * Cause inheritance: once the walk enters a subtree whose stage is a
//     *cause* (zk, retry, repair, migration, hint_replay), the whole
//     subtree is charged to that cause. A ZooKeeper RPC issued from a
//     repair handler is repair time, not zk time: the mechanism below is
//     not interesting, the reason the request detoured is.
//
// `AttributionAggregator` folds many traces into per-stage Histograms and
// tail summaries; benches and the failure drill feed it from the Tracer's
// on_trace_finished hook so it sees every trace before retention can
// evict it.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace sedna {

/// Stage a span's time is charged to: failed spans become retry time.
inline TraceStage effective_stage(const Span& s) {
  // "overloaded" = the work was shed (admission queue full, deadline
  // expired, retry budget dry); the client time it cost is retry-cause
  // tail, same as a timeout.
  if (s.status == "timeout" || s.status == "crashed" ||
      s.status == "retry" || s.status == "overloaded") {
    return TraceStage::kRetry;
  }
  return s.stage;
}

/// Stages that taint their whole subtree (see header comment).
inline constexpr bool inherits_to_children(TraceStage s) {
  switch (s) {
    case TraceStage::kZk:
    case TraceStage::kRetry:
    case TraceStage::kRepair:
    case TraceStage::kMigration:
    case TraceStage::kHintReplay:
      return true;
    default:
      return false;
  }
}

/// Per-stage latency split of one or many traces.
struct StageBreakdown {
  std::array<std::uint64_t, kTraceStageCount> us{};
  /// Measured end-to-end time (root duration; summed across traces).
  std::uint64_t total_us = 0;

  [[nodiscard]] std::uint64_t stage_us(TraceStage s) const {
    return us[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t unattributed_us() const {
    return us[static_cast<std::size_t>(TraceStage::kUnknown)];
  }
  /// Fraction of end-to-end time charged to a named stage. Empty
  /// breakdowns are vacuously fully covered.
  [[nodiscard]] double coverage() const {
    if (total_us == 0) return 1.0;
    return 1.0 - static_cast<double>(unattributed_us()) /
                     static_cast<double>(total_us);
  }
  /// Named stage with the most charged time (ties break toward the
  /// lower-numbered stage); kUnknown when nothing was attributed.
  [[nodiscard]] TraceStage dominant() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < kTraceStageCount; ++i) {
      if (us[i] > (best == 0 ? 0 : us[best])) best = i;
    }
    return static_cast<TraceStage>(best);
  }
  void merge(const StageBreakdown& other) {
    for (std::size_t i = 0; i < kTraceStageCount; ++i) us[i] += other.us[i];
    total_us += other.total_us;
  }
};

/// Extracts the critical path of a finished trace and attributes the root
/// span's duration per stage. Unfinished traces yield an empty breakdown.
inline StageBreakdown attribute_trace(const std::vector<Span>& spans) {
  StageBreakdown out;
  if (spans.empty()) return out;
  const Span* root = nullptr;
  std::map<SpanId, std::vector<const Span*>> children;
  for (const Span& s : spans) {
    if (s.parent == 0) {
      if (root == nullptr) root = &s;
    } else {
      children[s.parent].push_back(&s);
    }
  }
  if (root == nullptr || !root->finished()) return out;
  // Latest-ending child first: the backward walk always follows the span
  // that was still running closest to the deadline.
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(), [](const Span* a, const Span* b) {
      if (a->end_us != b->end_us) return a->end_us > b->end_us;
      if (a->start_us != b->start_us) return a->start_us > b->start_us;
      return a->id > b->id;
    });
  }
  out.total_us = root->end_us - root->start_us;

  // Walks span `s` covering [s.start_us, hi]; charges gaps between
  // children to `s`'s own stage and recurses into each on-path child.
  auto walk = [&](auto&& self, const Span& s, SimTime hi,
                  TraceStage inherited) -> void {
    const TraceStage eff =
        inherited != TraceStage::kUnknown ? inherited : effective_stage(s);
    const TraceStage child_inherit =
        inherits_to_children(eff) ? eff : TraceStage::kUnknown;
    const std::size_t eff_idx = static_cast<std::size_t>(eff);
    SimTime t = hi;
    const auto it = children.find(s.id);
    if (it != children.end()) {
      for (const Span* c : it->second) {
        if (!c->finished()) continue;        // straggler still open
        if (c->end_us > t) continue;         // ends after the path point
        if (c->end_us <= s.start_us) break;  // sorted: rest end earlier too
        if (c->start_us >= c->end_us) continue;  // zero-width instant
        out.us[eff_idx] += t - c->end_us;    // gap above the child: ours
        self(self, *c, c->end_us, child_inherit);
        t = std::max(s.start_us, c->start_us);
        if (t <= s.start_us) break;
      }
    }
    if (t > s.start_us) out.us[eff_idx] += t - s.start_us;
  };
  walk(walk, *root, root->end_us, TraceStage::kUnknown);
  return out;
}

/// Folds per-trace breakdowns into per-stage distributions and tail
/// summaries. Deterministic: rows are kept in observation (= trace
/// finish) order and every tie-break is by trace id.
class AttributionAggregator {
 public:
  struct Row {
    TraceId trace = 0;
    std::uint64_t total_us = 0;
    StageBreakdown breakdown;
  };

  /// Feed from Tracer::set_on_trace_finished (optionally filtered by
  /// rec.op) or from any retained trace.
  void observe(TraceId id, const Tracer::TraceRecord& rec) {
    Row row;
    row.trace = id;
    row.breakdown = attribute_trace(rec.spans);
    row.total_us = row.breakdown.total_us;
    min_coverage_ = std::min(min_coverage_, row.breakdown.coverage());
    for (std::size_t i = 0; i < kTraceStageCount; ++i) {
      stage_hist_[i].record(row.breakdown.us[i]);
    }
    total_hist_.record(row.total_us);
    sum_.merge(row.breakdown);
    rows_.push_back(std::move(row));
  }

  [[nodiscard]] std::size_t count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  /// Worst per-trace coverage seen (1.0 when nothing observed yet).
  [[nodiscard]] double min_coverage() const { return min_coverage_; }
  [[nodiscard]] const StageBreakdown& sum() const { return sum_; }
  [[nodiscard]] std::uint64_t stage_p99(TraceStage s) const {
    return stage_hist_[static_cast<std::size_t>(s)].quantile(0.99);
  }
  [[nodiscard]] std::uint64_t total_p99() const {
    return total_hist_.quantile(0.99);
  }

  /// Merged breakdown of the slowest `frac` of observed traces (at least
  /// one). Dominance assertions use this rather than single traces so a
  /// lone jittered request cannot flip the verdict.
  [[nodiscard]] StageBreakdown tail(double frac) const {
    StageBreakdown out;
    if (rows_.empty()) return out;
    std::vector<const Row*> sorted;
    sorted.reserve(rows_.size());
    for (const Row& r : rows_) sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(), [](const Row* a, const Row* b) {
      if (a->total_us != b->total_us) return a->total_us > b->total_us;
      return a->trace < b->trace;
    });
    std::size_t take = static_cast<std::size_t>(
        static_cast<double>(sorted.size()) * frac + 0.999999);
    take = std::clamp<std::size_t>(take, 1, sorted.size());
    for (std::size_t i = 0; i < take; ++i) out.merge(sorted[i]->breakdown);
    return out;
  }
  [[nodiscard]] TraceStage tail_dominant(double frac) const {
    return tail(frac).dominant();
  }

  void reset() { *this = AttributionAggregator{}; }

 private:
  std::vector<Row> rows_;
  std::array<Histogram, kTraceStageCount> stage_hist_{};
  Histogram total_hist_;
  StageBreakdown sum_;
  double min_coverage_ = 1.0;
};

/// CSV header shared by the drill and bench attribution exports.
inline std::string attribution_csv_header() {
  std::string out = "trace,op,start_us,total_us";
  for (std::size_t i = 1; i < kTraceStageCount; ++i) {
    out += ",";
    out += to_string(static_cast<TraceStage>(i));
    out += "_us";
  }
  out += ",unattributed_us,coverage,dominant\n";
  return out;
}

/// One attribution_csv row for a finished trace.
inline std::string attribution_csv_row(TraceId id,
                                       const Tracer::TraceRecord& rec,
                                       const StageBreakdown& bd) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu,", static_cast<unsigned long long>(id));
  std::string out = buf;
  out += rec.op;
  std::snprintf(buf, sizeof buf, ",%llu,%llu",
                static_cast<unsigned long long>(rec.start_us),
                static_cast<unsigned long long>(bd.total_us));
  out += buf;
  for (std::size_t i = 1; i < kTraceStageCount; ++i) {
    std::snprintf(buf, sizeof buf, ",%llu",
                  static_cast<unsigned long long>(bd.us[i]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ",%llu,%.4f,",
                static_cast<unsigned long long>(bd.unattributed_us()),
                bd.coverage());
  out += buf;
  out += to_string(bd.dominant());
  out += "\n";
  return out;
}

}  // namespace sedna
