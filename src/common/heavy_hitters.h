// SpaceSaving top-k heavy-hitter sketch (Metwally, Agrawal, El Abbadi:
// "Efficient Computation of Frequent and Top-k Elements in Data Streams").
//
// Fixed-capacity frequency summary: tracked keys count exactly; when a new
// key arrives at capacity, the minimum-count entry is replaced and the new
// key inherits its count as an overestimation bound (`error`). Guarantees
// for any tracked key: count - error <= true frequency <= count, and every
// key with true frequency > N/capacity is tracked. Each node keeps one for
// hot-key detection (paper III.B records per-vnode frequency; this narrows
// a hot vnode down to the actual keys responsible).
//
// Deterministic by construction: entries live in an ordered map and the
// eviction victim is the (count, key)-lexicographic minimum, so
// identically-seeded runs produce identical sketches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sedna {

class SpaceSavingSketch {
 public:
  struct Entry {
    std::string key;
    /// Estimated frequency (upper bound on the true frequency).
    std::uint64_t count = 0;
    /// Overestimation bound: count - error <= true frequency.
    std::uint64_t error = 0;
  };

  explicit SpaceSavingSketch(std::size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(std::string_view key, std::uint64_t weight = 1) {
    total_ += weight;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.count += weight;
      return;
    }
    if (entries_.size() < capacity_) {
      entries_.emplace(std::string(key), Counts{weight, 0});
      return;
    }
    // Replace the minimum-count entry; ties broken by key order (map
    // iteration is sorted, so the first minimum seen is the smallest key).
    auto victim = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second.count < victim->second.count) victim = e;
    }
    const std::uint64_t floor = victim->second.count;
    entries_.erase(victim);
    entries_.emplace(std::string(key), Counts{floor + weight, floor});
  }

  /// Top `k` entries by (count desc, key asc) — the deterministic "hottest
  /// keys" answer.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> out = entries();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    if (out.size() > k) out.resize(k);
    return out;
  }

  /// Every tracked entry, in key order.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(entries_.size());
    for (const auto& [key, c] : entries_) {
      out.push_back(Entry{key, c.count, c.error});
    }
    return out;
  }

  [[nodiscard]] std::size_t tracked() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total weight recorded (tracked or not).
  [[nodiscard]] std::uint64_t total() const { return total_; }

  void clear() {
    entries_.clear();
    total_ = 0;
  }

 private:
  struct Counts {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::map<std::string, Counts, std::less<>> entries_;
};

}  // namespace sedna
