// Hierarchical key space: dataset / table / key.
//
// The paper stores flat key-value pairs but "extends the key field of data
// to support hierarchical data space" (Sections II.B.1, IV.C): monitors can
// watch a single pair, a Table (collection of pairs), or a Dataset
// (collection of tables). We encode the hierarchy into the key string as
// "dataset/table/key"; prefix matching gives containment.
#pragma once

#include <string>
#include <string_view>

namespace sedna {

class KeyPath {
 public:
  KeyPath() = default;
  KeyPath(std::string dataset, std::string table, std::string key)
      : dataset_(std::move(dataset)),
        table_(std::move(table)),
        key_(std::move(key)) {}

  /// Parses "dataset/table/key". Missing components stay empty:
  /// "ds/t" addresses a table; "ds" a dataset.
  [[nodiscard]] static KeyPath parse(std::string_view flat) {
    KeyPath p;
    const auto first = flat.find('/');
    if (first == std::string_view::npos) {
      p.dataset_ = std::string(flat);
      return p;
    }
    p.dataset_ = std::string(flat.substr(0, first));
    const auto rest = flat.substr(first + 1);
    const auto second = rest.find('/');
    if (second == std::string_view::npos) {
      p.table_ = std::string(rest);
      return p;
    }
    p.table_ = std::string(rest.substr(0, second));
    p.key_ = std::string(rest.substr(second + 1));
    return p;
  }

  [[nodiscard]] const std::string& dataset() const { return dataset_; }
  [[nodiscard]] const std::string& table() const { return table_; }
  [[nodiscard]] const std::string& key() const { return key_; }

  [[nodiscard]] bool is_dataset() const {
    return !dataset_.empty() && table_.empty();
  }
  [[nodiscard]] bool is_table() const {
    return !table_.empty() && key_.empty();
  }
  [[nodiscard]] bool is_pair() const { return !key_.empty(); }

  /// Flat wire representation, "dataset/table/key".
  [[nodiscard]] std::string flat() const {
    std::string out = dataset_;
    if (!table_.empty()) {
      out += '/';
      out += table_;
      if (!key_.empty()) {
        out += '/';
        out += key_;
      }
    }
    return out;
  }

  /// True when this path (a dataset, table, or pair) contains `other`.
  /// A pair contains only itself; a table contains its pairs; a dataset
  /// contains its tables' pairs.
  [[nodiscard]] bool contains(const KeyPath& other) const {
    if (dataset_ != other.dataset_) return false;
    if (is_dataset()) return true;
    if (table_ != other.table_) return false;
    if (is_table()) return true;
    return key_ == other.key_;
  }

  [[nodiscard]] KeyPath table_path() const {
    return KeyPath{dataset_, table_, {}};
  }
  [[nodiscard]] KeyPath dataset_path() const {
    return KeyPath{dataset_, {}, {}};
  }

  friend bool operator==(const KeyPath& a, const KeyPath& b) {
    return a.dataset_ == b.dataset_ && a.table_ == b.table_ &&
           a.key_ == b.key_;
  }

 private:
  std::string dataset_;
  std::string table_;
  std::string key_;
};

/// Builds the flat key "dataset/table/key" without constructing a KeyPath.
[[nodiscard]] inline std::string make_key(std::string_view dataset,
                                          std::string_view table,
                                          std::string_view key) {
  std::string out;
  out.reserve(dataset.size() + table.size() + key.size() + 2);
  out.append(dataset);
  out.push_back('/');
  out.append(table);
  out.push_back('/');
  out.append(key);
  return out;
}

}  // namespace sedna
