// Output routing for bench/example artifacts (CSV, prom dumps).
//
// Benches used to write their figures into the current directory, which
// in practice meant the repo root — regenerated ablation_*.csv churn in
// every diff. out_path() routes artifacts into one directory instead:
// $SEDNA_OUT_DIR if set, ./out otherwise (created on first use, and
// .gitignore'd).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

namespace sedna {

/// Directory bench/example artifacts land in. Creates it if missing.
[[nodiscard]] inline std::string out_dir() {
  const char* env = std::getenv("SEDNA_OUT_DIR");
  std::string dir = (env != nullptr && *env != '\0') ? env : "out";
  std::error_code ec;  // best effort: fopen will report real failures
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Full path for one artifact file, e.g. out_path("fig7a.csv") → "out/fig7a.csv".
[[nodiscard]] inline std::string out_path(const std::string& name) {
  return out_dir() + "/" + name;
}

}  // namespace sedna
