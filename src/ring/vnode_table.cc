#include "ring/vnode_table.h"

#include <algorithm>

#include "common/codec.h"

namespace sedna::ring {

std::vector<NodeId> VnodeTable::replicas_for_vnode(VnodeId v) const {
  std::vector<NodeId> result;
  result.reserve(replicas_);
  const std::uint32_t n = total_vnodes();
  for (std::uint32_t step = 0; step < n && result.size() < replicas_;
       ++step) {
    const NodeId owner_id = assignment_[(v + step) % n];
    if (owner_id == kInvalidNode) continue;
    if (std::find(result.begin(), result.end(), owner_id) == result.end()) {
      result.push_back(owner_id);
    }
  }
  return result;
}

std::unordered_map<NodeId, std::uint32_t> VnodeTable::counts() const {
  std::unordered_map<NodeId, std::uint32_t> counts;
  for (NodeId n : assignment_) {
    if (n != kInvalidNode) ++counts[n];
  }
  return counts;
}

std::vector<VnodeId> VnodeTable::vnodes_of(NodeId n) const {
  std::vector<VnodeId> result;
  for (std::uint32_t v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] == n) result.push_back(v);
  }
  return result;
}

std::vector<VnodeId> VnodeTable::replica_vnodes_of(NodeId n) const {
  std::vector<VnodeId> result;
  for (std::uint32_t v = 0; v < assignment_.size(); ++v) {
    const std::vector<NodeId> set = replicas_for_vnode(v);
    if (std::find(set.begin(), set.end(), n) != set.end()) {
      result.push_back(v);
    }
  }
  return result;
}

std::vector<NodeId> VnodeTable::nodes() const {
  std::vector<NodeId> result;
  for (const auto& [node, count] : counts()) result.push_back(node);
  std::sort(result.begin(), result.end());
  return result;
}

std::uint32_t VnodeTable::moved_vnodes(const VnodeTable& before,
                                       const VnodeTable& after) {
  std::uint32_t moved = 0;
  const std::uint32_t n = std::min(before.total_vnodes(),
                                   after.total_vnodes());
  for (std::uint32_t v = 0; v < n; ++v) {
    if (before.assignment_[v] != after.assignment_[v]) ++moved;
  }
  return moved;
}

std::string VnodeTable::serialize() const {
  BinaryWriter w(assignment_.size() * 4 + 16);
  w.put_u32(replicas_);
  w.put_u32(static_cast<std::uint32_t>(assignment_.size()));
  for (NodeId n : assignment_) w.put_u32(n);
  return std::move(w).take();
}

Result<VnodeTable> VnodeTable::deserialize(std::string_view bytes) {
  BinaryReader r(bytes);
  VnodeTable table;
  table.replicas_ = r.get_u32();
  const std::uint32_t n = r.get_u32();
  if (r.failed() || n > (1u << 24)) {
    return Status::Corruption("bad vnode table");
  }
  table.assignment_.resize(n, kInvalidNode);
  for (std::uint32_t v = 0; v < n; ++v) table.assignment_[v] = r.get_u32();
  if (r.failed()) return Status::Corruption("bad vnode table");
  return table;
}

}  // namespace sedna::ring
