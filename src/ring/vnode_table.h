// VnodeTable: the consistent-hash ring of Section III.B.
//
// The ring is divided into a fixed number of equal slices — virtual nodes.
// A key hashes to an integer and mods onto a vnode; the vnode's assigned
// real node stores the primary copy (r1) and the owners of the next
// distinct vnodes clockwise hold the replicas (r2, r3 in Fig. 3).
// The vnode count is fixed at cluster creation ("once it is set, we can
// not change it unless restart the Sedna cluster", Section III.D).
//
// The authoritative table lives in ZooKeeper (one znode per vnode); this
// class is the in-memory form every node caches locally — Sedna's
// zero-hop DHT routing state (Section VII).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/types.h"

namespace sedna::ring {

class VnodeTable {
 public:
  VnodeTable() = default;
  VnodeTable(std::uint32_t total_vnodes, std::uint32_t replicas)
      : replicas_(replicas),
        assignment_(total_vnodes, kInvalidNode) {}

  [[nodiscard]] std::uint32_t total_vnodes() const {
    return static_cast<std::uint32_t>(assignment_.size());
  }
  [[nodiscard]] std::uint32_t replicas() const { return replicas_; }

  [[nodiscard]] VnodeId vnode_for_key(std::string_view key) const {
    return static_cast<VnodeId>(ring_hash(key) % assignment_.size());
  }

  [[nodiscard]] NodeId owner(VnodeId v) const { return assignment_[v]; }
  void assign(VnodeId v, NodeId n) { assignment_[v] = n; }

  /// Replica set for a vnode: the owner of `v` (r1) plus the owners of the
  /// next vnodes clockwise, skipping repeats, until `replicas` distinct
  /// real nodes are found (or the ring is exhausted).
  [[nodiscard]] std::vector<NodeId> replicas_for_vnode(VnodeId v) const;

  [[nodiscard]] std::vector<NodeId> replicas_for_key(
      std::string_view key) const {
    return replicas_for_vnode(vnode_for_key(key));
  }

  /// vnode count per real node (the load view the imbalance table uses).
  [[nodiscard]] std::unordered_map<NodeId, std::uint32_t> counts() const;

  /// All vnodes assigned to `n`.
  [[nodiscard]] std::vector<VnodeId> vnodes_of(NodeId n) const;

  /// All vnodes whose replica set (primary or clockwise successor copies)
  /// includes `n` — the full set of vnodes the node holds data for, which
  /// is what anti-entropy must iterate (a node syncs every vnode it
  /// replicates, not just the ones it owns).
  [[nodiscard]] std::vector<VnodeId> replica_vnodes_of(NodeId n) const;

  /// Distinct real nodes present in the table.
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// Number of assignments that differ between two tables (for the
  /// minimal-movement property benches/tests).
  [[nodiscard]] static std::uint32_t moved_vnodes(const VnodeTable& before,
                                                  const VnodeTable& after);

  [[nodiscard]] std::string serialize() const;
  static Result<VnodeTable> deserialize(std::string_view bytes);

  friend bool operator==(const VnodeTable& a, const VnodeTable& b) {
    return a.replicas_ == b.replicas_ && a.assignment_ == b.assignment_;
  }

 private:
  std::uint32_t replicas_ = 3;
  std::vector<NodeId> assignment_;
};

}  // namespace sedna::ring
