#include "ring/rebalancer.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace sedna::ring {

namespace {

/// Sorted (count, node) view of holders; deterministic tie-break by id.
std::vector<std::pair<std::uint32_t, NodeId>> sorted_loads(
    const VnodeTable& table) {
  std::vector<std::pair<std::uint32_t, NodeId>> loads;
  // Use an ordered map for deterministic iteration.
  std::map<NodeId, std::uint32_t> counts;
  for (const auto& [node, count] : table.counts()) counts[node] = count;
  loads.reserve(counts.size());
  for (const auto& [node, count] : counts) loads.emplace_back(count, node);
  std::sort(loads.begin(), loads.end());
  return loads;
}

}  // namespace

VnodeTable Rebalancer::initial_assignment(std::uint32_t total_vnodes,
                                          std::uint32_t replicas,
                                          std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  VnodeTable table(total_vnodes, replicas);
  if (nodes.empty()) return table;
  // Block assignment (node0 gets [0, k), node1 [k, 2k)...) would put a
  // vnode's replica successors on the same real node run; interleaved
  // round-robin keeps clockwise successors on distinct nodes.
  for (std::uint32_t v = 0; v < total_vnodes; ++v) {
    table.assign(v, nodes[v % nodes.size()]);
  }
  return table;
}

std::vector<VnodeMove> Rebalancer::plan_join(const VnodeTable& table,
                                             NodeId joiner) {
  std::vector<VnodeMove> moves;
  auto loads = sorted_loads(table);
  if (loads.empty()) {
    // First node: claim everything.
    for (std::uint32_t v = 0; v < table.total_vnodes(); ++v) {
      moves.push_back({v, table.owner(v), joiner});
    }
    return moves;
  }
  const std::uint32_t n_after =
      static_cast<std::uint32_t>(loads.size()) + 1;
  const std::uint32_t target =
      (table.total_vnodes() + n_after - 1) / n_after;  // ceil

  // Steal from the most loaded first; spread steals across their vnodes
  // (every k-th vnode) so the joiner's slices stay scattered on the ring.
  // Per-victim steal budgets: donors may be drawn down to the *floor* of
  // the post-join average (ceil-capped budgets can strand the joiner well
  // below its fair share when total does not divide evenly).
  const std::uint32_t donor_floor = table.total_vnodes() / n_after;
  std::map<NodeId, std::uint32_t> budget;
  std::uint32_t stealable = 0;
  for (const auto& [count, victim] : loads) {
    const std::uint32_t surplus =
        count > donor_floor ? count - donor_floor : 0;
    budget[victim] = surplus;
    stealable += surplus;
  }
  const std::uint32_t want = std::min(target, stealable);
  if (want == 0) return moves;

  // Claim ring positions in golden-ratio order: a step coprime to the
  // ring size gives a low-discrepancy scatter, so the joiner's vnodes
  // never clump. Consecutive claimed vnodes would collapse the replica
  // walks of neighbouring slices onto the brand-new node all at once.
  const std::uint32_t n = table.total_vnodes();
  std::uint32_t step = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(0.6180339887 * n));
  while (std::gcd(step, n) != 1) ++step;

  std::uint32_t claimed = 0;
  std::uint32_t pos = 0;
  for (std::uint32_t k = 0; k < n && claimed < want;
       ++k, pos = (pos + step) % n) {
    const NodeId victim = table.owner(pos);
    const auto it = budget.find(victim);
    if (it == budget.end() || it->second == 0) continue;
    --it->second;
    moves.push_back({pos, victim, joiner});
    ++claimed;
  }
  return moves;
}

std::vector<VnodeMove> Rebalancer::plan_leave(const VnodeTable& table,
                                              NodeId leaver) {
  std::vector<VnodeMove> moves;
  const auto orphans = table.vnodes_of(leaver);
  if (orphans.empty()) return moves;

  // Min-heap behaviour over survivor loads via a sorted map we update.
  std::map<NodeId, std::uint32_t> counts;
  for (const auto& [node, count] : table.counts()) {
    if (node != leaver) counts[node] = count;
  }
  if (counts.empty()) return moves;  // nowhere to go

  for (VnodeId v : orphans) {
    auto coldest = counts.begin();
    for (auto it = counts.begin(); it != counts.end(); ++it) {
      if (it->second < coldest->second) coldest = it;
    }
    moves.push_back({v, leaver, coldest->first});
    ++coldest->second;
  }
  return moves;
}

std::vector<VnodeMove> Rebalancer::plan_rebalance(const VnodeTable& table,
                                                  std::uint32_t tolerance) {
  std::vector<VnodeMove> moves;
  std::map<NodeId, std::uint32_t> counts;
  for (const auto& [node, count] : table.counts()) counts[node] = count;
  if (counts.size() < 2) return moves;

  // Working copy of per-node vnode lists so repeated moves stay coherent.
  std::map<NodeId, std::vector<VnodeId>> holdings;
  for (const auto& [node, count] : counts) {
    holdings[node] = table.vnodes_of(node);
  }

  for (;;) {
    auto hottest = counts.begin();
    auto coldest = counts.begin();
    for (auto it = counts.begin(); it != counts.end(); ++it) {
      if (it->second > hottest->second) hottest = it;
      if (it->second < coldest->second) coldest = it;
    }
    if (hottest->second - coldest->second <= tolerance) break;
    auto& from_list = holdings[hottest->first];
    const VnodeId v = from_list.back();
    from_list.pop_back();
    holdings[coldest->first].push_back(v);
    moves.push_back({v, hottest->first, coldest->first});
    --hottest->second;
    ++coldest->second;
  }
  return moves;
}

void Rebalancer::apply(VnodeTable& table,
                       const std::vector<VnodeMove>& moves) {
  for (const auto& move : moves) table.assign(move.vnode, move.to);
}

}  // namespace sedna::ring
