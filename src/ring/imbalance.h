// Imbalance table (Section III.B): "We record all the virtual nodes'
// status including its capacity, read/write frequency. Besides, we also
// maintain a[n] imbalance table for all the real nodes computed from the
// virtual nodes' status. This information is calculated and stored
// locally, and periodically updated to [the] ZooKeeper cluster."
//
// Each real node aggregates its own vnode statuses into a compact
// RealNodeLoad row and pushes only that row — "quite small comparing with
// the virtual nodes number".
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace sedna::ring {

/// Per-vnode counters a node maintains locally.
struct VnodeStatus {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Local reads that found no value (miss on this vnode's slice).
  std::uint64_t misses = 0;

  VnodeStatus& operator+=(const VnodeStatus& o) {
    capacity_bytes += o.capacity_bytes;
    reads += o.reads;
    writes += o.writes;
    misses += o.misses;
    return *this;
  }
};

/// One vnode's counters inside a RealNodeLoad row: the per-vnode detail
/// the paper's rebalancer needs to pick which slice to move, not just
/// which node is hot.
struct VnodeLoadRow {
  VnodeId vnode = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;

  friend bool operator==(const VnodeLoadRow& a, const VnodeLoadRow& b) {
    return a.vnode == b.vnode && a.capacity_bytes == b.capacity_bytes &&
           a.reads == b.reads && a.writes == b.writes && a.misses == b.misses;
  }
};

/// One vnode's replication-lag row (consistency auditor gossip): how far
/// this coordinator believes the vnode's replicas lag behind, plus the
/// stale-tagged serves it issued since the previous report. Rides the
/// RealNodeLoad row as a trailing-optional section.
struct VnodeLagRow {
  VnodeId vnode = 0;
  std::uint64_t lag_us = 0;
  std::uint64_t stale_serves = 0;

  friend bool operator==(const VnodeLagRow& a, const VnodeLagRow& b) {
    return a.vnode == b.vnode && a.lag_us == b.lag_us &&
           a.stale_serves == b.stale_serves;
  }
};

/// One row of the imbalance table: a real node's aggregate plus the
/// per-vnode breakdown (only vnodes with activity are listed, so the row
/// stays "quite small comparing with the virtual nodes number").
struct RealNodeLoad {
  NodeId node = kInvalidNode;
  std::uint32_t vnode_count = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t misses = 0;
  std::vector<VnodeLoadRow> vnodes;
  /// Trailing-optional replication-lag section (consistency auditor):
  /// encoded only when non-empty, so rows from auditing-off nodes stay
  /// byte-identical with the legacy layout.
  std::vector<VnodeLagRow> lags;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(56 + vnodes.size() * 40);
    w.put_u32(node);
    w.put_u32(vnode_count);
    w.put_u64(capacity_bytes);
    w.put_u64(reads);
    w.put_u64(writes);
    w.put_u64(misses);
    w.put_u32(static_cast<std::uint32_t>(vnodes.size()));
    for (const VnodeLoadRow& v : vnodes) {
      w.put_u32(v.vnode);
      w.put_u64(v.capacity_bytes);
      w.put_u64(v.reads);
      w.put_u64(v.writes);
      w.put_u64(v.misses);
    }
    if (!lags.empty()) {
      w.put_u32(static_cast<std::uint32_t>(lags.size()));
      for (const VnodeLagRow& l : lags) {
        w.put_u32(l.vnode);
        w.put_u64(l.lag_us);
        w.put_u64(l.stale_serves);
      }
    }
    return std::move(w).take();
  }

  static Result<RealNodeLoad> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    RealNodeLoad row;
    row.node = r.get_u32();
    row.vnode_count = r.get_u32();
    row.capacity_bytes = r.get_u64();
    row.reads = r.get_u64();
    row.writes = r.get_u64();
    row.misses = r.get_u64();
    const std::uint32_t n = r.get_u32();
    if (r.failed()) return Status::Corruption("bad load row");
    row.vnodes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      VnodeLoadRow v;
      v.vnode = r.get_u32();
      v.capacity_bytes = r.get_u64();
      v.reads = r.get_u64();
      v.writes = r.get_u64();
      v.misses = r.get_u64();
      if (r.failed()) return Status::Corruption("bad vnode load row");
      row.vnodes.push_back(v);
    }
    if (!r.failed() && !r.exhausted()) {
      const std::uint32_t m = r.get_u32();
      if (r.failed()) return Status::Corruption("bad lag section");
      row.lags.reserve(m);
      for (std::uint32_t i = 0; i < m; ++i) {
        VnodeLagRow l;
        l.vnode = r.get_u32();
        l.lag_us = r.get_u64();
        l.stale_serves = r.get_u64();
        if (r.failed()) return Status::Corruption("bad lag row");
        row.lags.push_back(l);
      }
    }
    return row;
  }
};

/// The cluster-wide imbalance view, assembled from per-node rows.
class ImbalanceTable {
 public:
  void update(const RealNodeLoad& row) { rows_[row.node] = row; }
  void remove(NodeId node) { rows_.erase(node); }

  [[nodiscard]] const std::map<NodeId, RealNodeLoad>& rows() const {
    return rows_;
  }

  /// Coefficient of variation of a load dimension across nodes
  /// (0 = perfectly balanced). Dimension selected by pointer-to-member.
  template <typename T>
  [[nodiscard]] double imbalance(T RealNodeLoad::* field) const {
    // Degenerate tables (no nodes, a single node, or all-zero loads) are
    // balanced by definition; without these guards the CV math divides by
    // zero and reports NaN, which then poisons every comparison downstream.
    if (rows_.size() < 2) return 0.0;
    double sum = 0.0;
    for (const auto& [node, row] : rows_) {
      sum += static_cast<double>(row.*field);
    }
    const double mean = sum / static_cast<double>(rows_.size());
    if (mean == 0.0) return 0.0;
    double var = 0.0;
    for (const auto& [node, row] : rows_) {
      const double d = static_cast<double>(row.*field) - mean;
      var += d * d;
    }
    var /= static_cast<double>(rows_.size());
    const double cv = std::sqrt(var) / mean;
    return std::isfinite(cv) ? cv : 0.0;
  }

  [[nodiscard]] double capacity_imbalance() const {
    return imbalance(&RealNodeLoad::capacity_bytes);
  }
  [[nodiscard]] double vnode_imbalance() const {
    return imbalance(&RealNodeLoad::vnode_count);
  }
  [[nodiscard]] double write_imbalance() const {
    return imbalance(&RealNodeLoad::writes);
  }

  /// The most and least loaded nodes by capacity (rebalance candidates).
  [[nodiscard]] std::pair<NodeId, NodeId> hottest_coldest() const;

 private:
  std::map<NodeId, RealNodeLoad> rows_;
};

inline std::pair<NodeId, NodeId> ImbalanceTable::hottest_coldest() const {
  NodeId hot = kInvalidNode, cold = kInvalidNode;
  std::uint64_t hot_cap = 0, cold_cap = UINT64_MAX;
  for (const auto& [node, row] : rows_) {
    if (row.capacity_bytes >= hot_cap) {
      hot_cap = row.capacity_bytes;
      hot = node;
    }
    if (row.capacity_bytes < cold_cap) {
      cold_cap = row.capacity_bytes;
      cold = node;
    }
  }
  return {hot, cold};
}

}  // namespace sedna::ring
