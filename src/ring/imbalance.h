// Imbalance table (Section III.B): "We record all the virtual nodes'
// status including its capacity, read/write frequency. Besides, we also
// maintain a[n] imbalance table for all the real nodes computed from the
// virtual nodes' status. This information is calculated and stored
// locally, and periodically updated to [the] ZooKeeper cluster."
//
// Each real node aggregates its own vnode statuses into a compact
// RealNodeLoad row and pushes only that row — "quite small comparing with
// the virtual nodes number".
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace sedna::ring {

/// Per-vnode counters a node maintains locally.
struct VnodeStatus {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  VnodeStatus& operator+=(const VnodeStatus& o) {
    capacity_bytes += o.capacity_bytes;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

/// One row of the imbalance table: a real node's aggregate.
struct RealNodeLoad {
  NodeId node = kInvalidNode;
  std::uint32_t vnode_count = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] std::string encode() const {
    BinaryWriter w(40);
    w.put_u32(node);
    w.put_u32(vnode_count);
    w.put_u64(capacity_bytes);
    w.put_u64(reads);
    w.put_u64(writes);
    return std::move(w).take();
  }

  static Result<RealNodeLoad> decode(std::string_view bytes) {
    BinaryReader r(bytes);
    RealNodeLoad row;
    row.node = r.get_u32();
    row.vnode_count = r.get_u32();
    row.capacity_bytes = r.get_u64();
    row.reads = r.get_u64();
    row.writes = r.get_u64();
    if (r.failed()) return Status::Corruption("bad load row");
    return row;
  }
};

/// The cluster-wide imbalance view, assembled from per-node rows.
class ImbalanceTable {
 public:
  void update(const RealNodeLoad& row) { rows_[row.node] = row; }
  void remove(NodeId node) { rows_.erase(node); }

  [[nodiscard]] const std::map<NodeId, RealNodeLoad>& rows() const {
    return rows_;
  }

  /// Coefficient of variation of a load dimension across nodes
  /// (0 = perfectly balanced). Dimension selected by pointer-to-member.
  template <typename T>
  [[nodiscard]] double imbalance(T RealNodeLoad::* field) const {
    if (rows_.size() < 2) return 0.0;
    double sum = 0.0;
    for (const auto& [node, row] : rows_) {
      sum += static_cast<double>(row.*field);
    }
    const double mean = sum / static_cast<double>(rows_.size());
    if (mean == 0.0) return 0.0;
    double var = 0.0;
    for (const auto& [node, row] : rows_) {
      const double d = static_cast<double>(row.*field) - mean;
      var += d * d;
    }
    var /= static_cast<double>(rows_.size());
    return std::sqrt(var) / mean;
  }

  [[nodiscard]] double capacity_imbalance() const {
    return imbalance(&RealNodeLoad::capacity_bytes);
  }
  [[nodiscard]] double vnode_imbalance() const {
    return imbalance(&RealNodeLoad::vnode_count);
  }
  [[nodiscard]] double write_imbalance() const {
    return imbalance(&RealNodeLoad::writes);
  }

  /// The most and least loaded nodes by capacity (rebalance candidates).
  [[nodiscard]] std::pair<NodeId, NodeId> hottest_coldest() const;

 private:
  std::map<NodeId, RealNodeLoad> rows_;
};

inline std::pair<NodeId, NodeId> ImbalanceTable::hottest_coldest() const {
  NodeId hot = kInvalidNode, cold = kInvalidNode;
  std::uint64_t hot_cap = 0, cold_cap = UINT64_MAX;
  for (const auto& [node, row] : rows_) {
    if (row.capacity_bytes >= hot_cap) {
      hot_cap = row.capacity_bytes;
      hot = node;
    }
    if (row.capacity_bytes < cold_cap) {
      cold_cap = row.capacity_bytes;
      cold = node;
    }
  }
  return {hot, cold};
}

}  // namespace sedna::ring
