// Rebalancer: vnode assignment planning.
//
// Implements the cluster-membership flows of Sections III.B/III.D:
//   * initial assignment when the cluster first boots (nodes "ask for
//     virtual nodes and store them locally");
//   * join: a new node steals vnodes from the most loaded nodes until
//     loads level out — incremental scalability with minimal movement;
//   * leave/failure: the dead node's vnodes are spread over the least
//     loaded survivors;
//   * imbalance-driven rebalance: when the imbalance table reports skew
//     beyond a threshold, move just enough vnodes from hot to cold nodes.
//
// All plans are deterministic functions of their inputs (ties broken by
// id), so every node computes identical plans from identical ZooKeeper
// state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ring/vnode_table.h"

namespace sedna::ring {

struct VnodeMove {
  VnodeId vnode = kInvalidVnode;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const VnodeMove& a, const VnodeMove& b) {
    return a.vnode == b.vnode && a.from == b.from && a.to == b.to;
  }
};

class Rebalancer {
 public:
  /// Even round-robin assignment over `nodes` (sorted by id first).
  static VnodeTable initial_assignment(std::uint32_t total_vnodes,
                                       std::uint32_t replicas,
                                       std::vector<NodeId> nodes);

  /// Moves to level the table after `joiner` enters: the joiner receives
  /// ceil(total/(n+1)) vnodes taken from the currently largest holders.
  static std::vector<VnodeMove> plan_join(const VnodeTable& table,
                                          NodeId joiner);

  /// Moves reassigning every vnode of `leaver` to the least-loaded
  /// survivors.
  static std::vector<VnodeMove> plan_leave(const VnodeTable& table,
                                           NodeId leaver);

  /// Load-driven moves: while the spread between the largest and smallest
  /// holder exceeds `tolerance` vnodes, shift one vnode from the largest
  /// to the smallest.
  static std::vector<VnodeMove> plan_rebalance(const VnodeTable& table,
                                               std::uint32_t tolerance = 1);

  static void apply(VnodeTable& table, const std::vector<VnodeMove>& moves);
};

}  // namespace sedna::ring
