// TriggerRuntime: the per-node trigger engine (paper Section IV.C).
//
// "Once Sedna started, it will start several threads according to the
// data size to scan the Dirty and Monitored fields sequentially. Whenever
// [a] Dirty flag was found, that data piece will be sent to corresponding
// filters according [to] the monitor fields of that data piece."
//
// Mechanically: the runtime enables change capture on the node's
// LocalStore, sweeps the coalescing dirty table every scan interval, and
// routes each change through the hierarchy-aware monitor registry. A
// change fires a job only on the key's *primary* replica (otherwise every
// job would run three times, once per replica). Per-(job, key) flow
// control enforces the trigger interval: within the window only the
// freshest pending change survives.
//
// Action outputs (ResultWriter) loop back into the node's own coordinator
// path, so results are quorum-replicated and can cascade into downstream
// triggers — the Fig. 4 "Domino" composition.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/sedna_node.h"
#include "trigger/api.h"

namespace sedna::trigger {

struct TriggerRuntimeConfig {
  /// Dirty-table sweep cadence (the paper's scanner threads).
  SimDuration scan_interval = sim_ms(20);
  /// Modeled CPU cost of one user action execution.
  SimDuration action_cost_us = 20;
};

struct TriggerStats {
  std::uint64_t changes_seen = 0;
  std::uint64_t non_primary_skipped = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t coalesced = 0;   // changes merged into a pending activation
  std::uint64_t filtered_out = 0;
  std::uint64_t activations = 0;
  std::uint64_t emits = 0;
};

class TriggerRuntime {
 public:
  TriggerRuntime(cluster::SednaNode& node, TriggerRuntimeConfig config = {});
  ~TriggerRuntime();

  TriggerRuntime(const TriggerRuntime&) = delete;
  TriggerRuntime& operator=(const TriggerRuntime&) = delete;

  /// Registers a job until `timeout` of simulated time elapses
  /// (Listing 1: job.schedule(Timeout); 0 = no timeout).
  void schedule(std::shared_ptr<Job> job, SimDuration timeout = 0);
  void cancel(const std::string& job_name);

  /// Starts the periodic scanner (idempotent).
  void start();
  void stop();

  [[nodiscard]] const TriggerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t pending_activations() const;

 private:
  struct JobState {
    std::shared_ptr<Job> job;
    sim::TimerHandle expiry;
    /// Per-key flow control: when each key may fire again, plus the
    /// coalesced pending change (first-old .. last-new).
    struct KeyState {
      SimTime next_allowed = 0;
      bool has_pending = false;
      std::string old_value;
      bool had_old = false;
      std::string new_value;
      bool deleted = false;
    };
    std::map<std::string, KeyState> keys;
  };

  class NodeResultWriter;

  void scan();
  void dispatch(JobState& state, const store::ChangeRecord& change);
  void fire_due(JobState& state);
  void run_action(JobState& state, const std::string& key,
                  JobState::KeyState& ks);
  void refresh_monitored_predicate();

  cluster::SednaNode& node_;
  TriggerRuntimeConfig config_;
  std::map<std::string, JobState> jobs_;
  TriggerStats stats_;
  sim::TimerHandle scan_timer_;
  bool started_ = false;
};

}  // namespace sedna::trigger
