// Trigger programming model (paper Section IV, Listing 1).
//
// The user-facing vocabulary mirrors the paper's Java API:
//
//   class MyAction : public Action {
//     void action(const std::string& key,
//                 const std::vector<std::string>& values,
//                 ResultWriter& out) override { ... }
//   };
//   class MyFilter : public Filter {
//     bool assert_change(old_key, old_value, new_key, new_value) override;
//   };
//
//   DataHooks hooks;                       // what to monitor: a pair,
//   hooks.add("tweets");                   // a Table, or a whole Dataset
//   TriggerInput input{hooks, filter};     // (Section IV.C hierarchy)
//   TriggerOutput output;
//   auto job = std::make_shared<Job>(cfg, input, output, action);
//   runtime.schedule(job, timeout);        // Listing 1: job.schedule(T)
//
// Filters receive both the old and the new pair — "in lots of condition,
// the filter need to compare the difference between before and after the
// data updates", e.g. iterative-task stop conditions (Section IV.D).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/keypath.h"
#include "common/types.h"

namespace sedna::trigger {

/// User filter: decides whether an observed change activates the action.
/// Keep assert_change cheap — it runs for every swept change on every
/// hooked key ("the assert function should be as simple as possible").
class Filter {
 public:
  virtual ~Filter() = default;
  virtual bool assert_change(const std::string& old_key,
                             const std::string& old_value,
                             const std::string& new_key,
                             const std::string& new_value) = 0;
};

/// Accept-everything filter (the default when a job supplies none).
class PassAllFilter final : public Filter {
 public:
  bool assert_change(const std::string&, const std::string&,
                     const std::string&, const std::string&) override {
    return true;
  }
};

/// Filter from a lambda.
class FunctionFilter final : public Filter {
 public:
  using Fn = std::function<bool(const std::string&, const std::string&,
                                const std::string&, const std::string&)>;
  explicit FunctionFilter(Fn fn) : fn_(std::move(fn)) {}
  bool assert_change(const std::string& ok, const std::string& ov,
                     const std::string& nk, const std::string& nv) override {
    return fn_(ok, ov, nk, nv);
  }

 private:
  Fn fn_;
};

/// Output handle passed to actions: "Result provides a safe way for
/// programmers to write processing results into distributed storage
/// system paralleled" (Section IV.D). Writes issued here go through the
/// full replicated data path and may in turn fire downstream triggers.
class ResultWriter {
 public:
  virtual ~ResultWriter() = default;
  /// Replicated write_latest of (key, value).
  virtual void put(const std::string& key, const std::string& value) = 0;
  /// Replicated write_all (per-source value list) of (key, value);
  /// the source tag is this node's id.
  virtual void put_all(const std::string& key, const std::string& value) = 0;
  /// write_all with an explicit source tag. Lets actions accumulate
  /// independent list elements per logical entity (e.g. one posting per
  /// message id in an inverted index) instead of per physical node.
  virtual void put_all_tagged(const std::string& key,
                              const std::string& value,
                              std::uint32_t source_tag) = 0;
};

/// User action: the paper's action(Key, Iterator<Value>, Result).
/// `values` carries the key's current value(s): one element for
/// write_latest data, the per-source list for write_all data.
class Action {
 public:
  virtual ~Action() = default;
  virtual void action(const std::string& key,
                      const std::vector<std::string>& values,
                      ResultWriter& out) = 0;
};

/// Action from a lambda.
class FunctionAction final : public Action {
 public:
  using Fn = std::function<void(const std::string&,
                                const std::vector<std::string>&,
                                ResultWriter&)>;
  explicit FunctionAction(Fn fn) : fn_(std::move(fn)) {}
  void action(const std::string& key, const std::vector<std::string>& values,
              ResultWriter& out) override {
    fn_(key, values, out);
  }

 private:
  Fn fn_;
};

/// The monitored scope: any mix of pairs ("ds/t/k"), tables ("ds/t") and
/// datasets ("ds") — the extended hierarchical key space of Section IV.C.
class DataHooks {
 public:
  DataHooks& add(std::string_view path) {
    hooks_.push_back(KeyPath::parse(path));
    return *this;
  }

  [[nodiscard]] bool matches(const KeyPath& changed) const {
    for (const auto& hook : hooks_) {
      if (hook.contains(changed)) return true;
    }
    return false;
  }
  [[nodiscard]] bool matches(std::string_view flat_key) const {
    return matches(KeyPath::parse(flat_key));
  }

  [[nodiscard]] const std::vector<KeyPath>& hooks() const { return hooks_; }
  [[nodiscard]] bool empty() const { return hooks_.empty(); }

 private:
  std::vector<KeyPath> hooks_;
};

struct TriggerInput {
  DataHooks hooks;
  std::shared_ptr<Filter> filter;  // null => PassAllFilter
};

struct TriggerOutput {
  /// Informational label ("distributed file system" path in Fig. 4);
  /// actual writes name explicit keys through ResultWriter.
  std::string label;
};

/// A scheduled trigger job. Flow control (Section IV.B): at most one
/// activation per key per `trigger_interval`; changes arriving faster are
/// coalesced, which is what suppresses the ripple effect of trigger
/// cycles — "the filters will give every application default trigger
/// interval. If value changes during this interval, it would be safe to
/// discard them as the most fresh data matters most."
class Job {
 public:
  struct Config {
    std::string name;
    /// Minimum spacing between activations of the same key.
    SimDuration trigger_interval = sim_ms(100);
  };

  Job(Config config, TriggerInput input, TriggerOutput output,
      std::shared_ptr<Action> action)
      : config_(std::move(config)),
        input_(std::move(input)),
        output_(std::move(output)),
        action_(std::move(action)) {
    if (!input_.filter) input_.filter = std::make_shared<PassAllFilter>();
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const TriggerInput& input() const { return input_; }
  [[nodiscard]] const TriggerOutput& output() const { return output_; }
  [[nodiscard]] Filter& filter() const { return *input_.filter; }
  [[nodiscard]] Action& action() const { return *action_; }

 private:
  Config config_;
  TriggerInput input_;
  TriggerOutput output_;
  std::shared_ptr<Action> action_;
};

}  // namespace sedna::trigger
