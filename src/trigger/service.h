// TriggerService: cluster-wide job registration.
//
// A job definition must exist on every node — any node may be the primary
// replica for some of the hooked keys. This helper owns one TriggerRuntime
// per data node and broadcasts schedule/cancel (the moral equivalent of
// the paper's job submission through the cluster scheduler in Fig. 1).
#pragma once

#include <memory>
#include <vector>

#include "cluster/sedna_cluster.h"
#include "trigger/runtime.h"

namespace sedna::trigger {

class TriggerService {
 public:
  explicit TriggerService(cluster::SednaCluster& cluster,
                          TriggerRuntimeConfig config = {}) {
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      runtimes_.push_back(
          std::make_unique<TriggerRuntime>(cluster.node(i), config));
    }
  }

  /// Registers the job on every node (shared Action/Filter instances —
  /// user classes must be safe to invoke from any node; within the
  /// single-threaded simulation this is trivially true).
  void schedule(const std::shared_ptr<Job>& job, SimDuration timeout = 0) {
    for (auto& rt : runtimes_) rt->schedule(job, timeout);
  }

  void cancel(const std::string& job_name) {
    for (auto& rt : runtimes_) rt->cancel(job_name);
  }

  [[nodiscard]] TriggerStats aggregate_stats() const {
    TriggerStats total;
    for (const auto& rt : runtimes_) {
      const auto& s = rt->stats();
      total.changes_seen += s.changes_seen;
      total.non_primary_skipped += s.non_primary_skipped;
      total.unmatched += s.unmatched;
      total.coalesced += s.coalesced;
      total.filtered_out += s.filtered_out;
      total.activations += s.activations;
      total.emits += s.emits;
    }
    return total;
  }

  [[nodiscard]] std::size_t runtime_count() const { return runtimes_.size(); }
  [[nodiscard]] TriggerRuntime& runtime(std::size_t i) {
    return *runtimes_[i];
  }

 private:
  std::vector<std::unique_ptr<TriggerRuntime>> runtimes_;
};

}  // namespace sedna::trigger
