#include "trigger/runtime.h"

#include <algorithm>

namespace sedna::trigger {

/// Routes action outputs through the node's own coordinator path: the
/// write is quorum-replicated exactly like a client write and lands in
/// the dirty tables of its replica set, enabling trigger cascades.
class TriggerRuntime::NodeResultWriter final : public ResultWriter {
 public:
  NodeResultWriter(cluster::SednaNode& node, TriggerStats& stats)
      : node_(node), stats_(stats) {}

  void put(const std::string& key, const std::string& value) override {
    cluster::WriteRequest req;
    req.mode = cluster::WriteMode::kLatest;
    req.key = key;
    req.value = value;
    req.ts = node_.next_ts();
    req.source = node_.id();
    node_.call(node_.id(), cluster::kMsgClientWrite, req.encode(),
               [](const Status&, const std::string&) {});
    ++stats_.emits;
  }

  void put_all(const std::string& key, const std::string& value) override {
    put_all_tagged(key, value, node_.id());
  }

  void put_all_tagged(const std::string& key, const std::string& value,
                      std::uint32_t source_tag) override {
    cluster::WriteRequest req;
    req.mode = cluster::WriteMode::kAll;
    req.key = key;
    req.value = value;
    req.ts = node_.next_ts();
    req.source = source_tag;
    node_.call(node_.id(), cluster::kMsgClientWrite, req.encode(),
               [](const Status&, const std::string&) {});
    ++stats_.emits;
  }

 private:
  cluster::SednaNode& node_;
  TriggerStats& stats_;
};

TriggerRuntime::TriggerRuntime(cluster::SednaNode& node,
                               TriggerRuntimeConfig config)
    : node_(node), config_(config) {}

TriggerRuntime::~TriggerRuntime() { stop(); }

void TriggerRuntime::start() {
  if (started_) return;
  started_ = true;
  scan_timer_ = node_.sim().schedule_periodic(config_.scan_interval, [this] {
    node_.set_trace_context({});
    scan();
  });
}

void TriggerRuntime::stop() {
  scan_timer_.cancel();
  started_ = false;
}

void TriggerRuntime::schedule(std::shared_ptr<Job> job, SimDuration timeout) {
  const std::string name = job->config().name;
  JobState& state = jobs_[name];
  state.expiry.cancel();
  state.job = std::move(job);
  if (timeout > 0) {
    state.expiry = node_.sim().schedule(
        timeout, [this, name] { cancel(name); });
  }
  refresh_monitored_predicate();
  start();
}

void TriggerRuntime::cancel(const std::string& job_name) {
  const auto it = jobs_.find(job_name);
  if (it == jobs_.end()) return;
  it->second.expiry.cancel();
  jobs_.erase(it);
  refresh_monitored_predicate();
}

void TriggerRuntime::refresh_monitored_predicate() {
  auto& store = node_.local_store();
  if (jobs_.empty()) {
    store.set_track_changes(false);
    store.set_monitored_predicate({});
    return;
  }
  // Capture the hook sets by value: the predicate outlives individual
  // registrations and is replaced on every schedule/cancel.
  std::vector<DataHooks> hook_sets;
  hook_sets.reserve(jobs_.size());
  for (const auto& [name, state] : jobs_) {
    hook_sets.push_back(state.job->input().hooks);
  }
  store.set_track_changes(true);
  store.set_monitored_predicate(
      [hook_sets = std::move(hook_sets)](std::string_view key) {
        const KeyPath path = KeyPath::parse(key);
        return std::any_of(hook_sets.begin(), hook_sets.end(),
                           [&path](const DataHooks& hooks) {
                             return hooks.matches(path);
                           });
      });
}

void TriggerRuntime::scan() {
  if (!node_.alive() || !node_.ready()) return;
  auto changes = node_.local_store().drain_changes();
  const auto& table = node_.metadata().table();

  for (const auto& change : changes) {
    ++stats_.changes_seen;
    // Fire only on the key's primary replica: the same change lands on
    // all N replicas and must not run the job N times.
    if (table.total_vnodes() == 0 ||
        table.owner(table.vnode_for_key(change.key)) != node_.id()) {
      ++stats_.non_primary_skipped;
      continue;
    }
    const KeyPath path = KeyPath::parse(change.key);
    bool matched = false;
    for (auto& [name, state] : jobs_) {
      if (!state.job->input().hooks.matches(path)) continue;
      matched = true;
      dispatch(state, change);
    }
    if (!matched) ++stats_.unmatched;
  }

  for (auto& [name, state] : jobs_) fire_due(state);
}

void TriggerRuntime::dispatch(JobState& state,
                              const store::ChangeRecord& change) {
  auto& ks = state.keys[change.key];
  if (ks.has_pending) {
    // Coalesce: keep the original old side, overwrite the new side —
    // only the freshest data matters (Section IV.B).
    ++stats_.coalesced;
  } else {
    ks.has_pending = true;
    ks.had_old = change.had_old;
    ks.old_value = change.old_value.value;
  }
  ks.new_value = change.new_value.value;
  ks.deleted = change.deleted;
}

void TriggerRuntime::fire_due(JobState& state) {
  const SimTime now = node_.now();
  for (auto it = state.keys.begin(); it != state.keys.end();) {
    JobState::KeyState& ks = it->second;
    if (ks.has_pending && now >= ks.next_allowed) {
      run_action(state, it->first, ks);
      ks.has_pending = false;
      ks.old_value.clear();
      ks.new_value.clear();
      ks.next_allowed = now + state.job->config().trigger_interval;
      ++it;
    } else if (!ks.has_pending && now >= ks.next_allowed) {
      it = state.keys.erase(it);  // idle entry; keep the table small
    } else {
      ++it;
    }
  }
}

void TriggerRuntime::run_action(JobState& state, const std::string& key,
                                JobState::KeyState& ks) {
  Job& job = *state.job;
  if (!job.filter().assert_change(key, ks.had_old ? ks.old_value : "",
                                  key, ks.new_value)) {
    ++stats_.filtered_out;
    return;
  }
  ++stats_.activations;

  // Current values for the action: the per-source list when present,
  // otherwise the latest single value.
  std::vector<std::string> values;
  auto list = node_.local_store().read_all(key);
  if (list.ok()) {
    for (const auto& sv : list.value()) values.push_back(sv.value);
  } else {
    auto latest = node_.local_store().read_latest(key);
    if (latest.ok()) {
      values.push_back(latest->value);
    } else if (!ks.deleted) {
      values.push_back(ks.new_value);
    }
  }

  NodeResultWriter writer(node_, stats_);
  job.action().action(key, values, writer);
}

std::size_t TriggerRuntime::pending_activations() const {
  std::size_t n = 0;
  for (const auto& [name, state] : jobs_) {
    for (const auto& [key, ks] : state.keys) {
      if (ks.has_pending) ++n;
    }
  }
  return n;
}

}  // namespace sedna::trigger
