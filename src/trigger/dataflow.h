// Dataflow: a small declarative pipeline framework on top of triggers.
//
// The paper argues (Section IV.A, Fig. 4) that complex realtime jobs are
// compositions of triggers — "the interaction among these three triggers"
// forms the application — and that "it is easy to implement a programming
// framework for different kinds of realtime applications based on Sedna"
// (Section I). This header is that framework in miniature: stages declare
// which tables they read and write; the builder wires each stage into a
// Job hooked on its inputs, checks the read/write graph for the cycles
// that cause the Fig. 4 ripple effect, and deploys everything through a
// TriggerService.
//
//   dataflow::PipelineBuilder pipeline(triggers);
//   pipeline.stage("parse")
//       .reads("raw")
//       .writes("parsed")
//       .interval(sim_ms(50))
//       .action([](const StageContext& ctx) {
//         ctx.out().put("parsed/t/" + ctx.row(), transform(ctx.value()));
//       });
//   pipeline.stage("index").reads("parsed").writes("idx").action(...);
//   auto deployed = pipeline.deploy();   // refuses cyclic graphs unless
//                                        // allow_cycles() was called
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/keypath.h"
#include "common/status.h"
#include "trigger/service.h"

namespace sedna::trigger::dataflow {

/// What a stage action receives: the changed row and an output handle.
class StageContext {
 public:
  StageContext(const std::string& key, const std::vector<std::string>& values,
               ResultWriter& out)
      : key_(key), values_(values), out_(out) {}

  /// Full flat key of the changed pair ("dataset/table/row").
  [[nodiscard]] const std::string& key() const { return key_; }
  /// Just the row component.
  [[nodiscard]] std::string row() const { return KeyPath::parse(key_).key(); }
  /// Current value(s) of the pair (list for write_all data).
  [[nodiscard]] const std::vector<std::string>& values() const {
    return values_;
  }
  [[nodiscard]] std::string value() const {
    return values_.empty() ? std::string{} : values_[0];
  }
  [[nodiscard]] ResultWriter& out() const { return out_; }

 private:
  const std::string& key_;
  const std::vector<std::string>& values_;
  ResultWriter& out_;
};

using StageFn = std::function<void(const StageContext&)>;
using StageFilterFn =
    std::function<bool(const std::string& old_value,
                       const std::string& new_value)>;

class PipelineBuilder;

/// Fluent configuration of one pipeline stage.
class StageBuilder {
 public:
  StageBuilder& reads(std::string dataset_or_table) {
    reads_.push_back(std::move(dataset_or_table));
    return *this;
  }
  StageBuilder& writes(std::string dataset_or_table) {
    writes_.push_back(std::move(dataset_or_table));
    return *this;
  }
  StageBuilder& interval(SimDuration trigger_interval) {
    interval_ = trigger_interval;
    return *this;
  }
  StageBuilder& action(StageFn fn) {
    action_ = std::move(fn);
    return *this;
  }
  /// Optional stop condition, old-vs-new (the Listing 1 Filter).
  StageBuilder& until(StageFilterFn keep_running) {
    filter_ = std::move(keep_running);
    return *this;
  }

 private:
  friend class PipelineBuilder;
  explicit StageBuilder(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::vector<std::string> reads_;
  std::vector<std::string> writes_;
  SimDuration interval_ = sim_ms(100);
  StageFn action_;
  StageFilterFn filter_;
};

/// Handle to a deployed pipeline; cancels all its jobs on request.
class Pipeline {
 public:
  Pipeline(TriggerService& service, std::vector<std::string> job_names)
      : service_(service), job_names_(std::move(job_names)) {}

  void cancel() {
    for (const auto& name : job_names_) service_.cancel(name);
    job_names_.clear();
  }

  [[nodiscard]] std::size_t stage_count() const { return job_names_.size(); }

 private:
  TriggerService& service_;
  std::vector<std::string> job_names_;
};

class PipelineBuilder {
 public:
  explicit PipelineBuilder(TriggerService& service) : service_(service) {}

  StageBuilder& stage(std::string name) {
    stages_.push_back(StageBuilder(std::move(name)));
    return stages_.back();
  }

  /// Opt in to cyclic graphs (iterative tasks). Cycles are then permitted
  /// but every stage on a cycle must declare an `until` filter — an
  /// unguarded cycle is exactly the Fig. 4 flood.
  PipelineBuilder& allow_cycles() {
    allow_cycles_ = true;
    return *this;
  }

  /// True when some stage's writes feed (directly or transitively) back
  /// into its own reads.
  [[nodiscard]] bool has_cycle() const;

  /// Validates the graph and schedules one Job per stage. Fails with
  /// kInvalidArgument on: unnamed/duplicate stages, a stage without reads
  /// or action, or a cycle without allow_cycles() + until-filters.
  Result<Pipeline> deploy(SimDuration timeout = 0);

 private:
  [[nodiscard]] std::map<std::string, std::set<std::string>> edges() const;

  TriggerService& service_;
  std::deque<StageBuilder> stages_;  // deque: StageBuilder& stays valid as stages are added
  bool allow_cycles_ = false;
};

inline std::map<std::string, std::set<std::string>> PipelineBuilder::edges()
    const {
  // Stage A → stage B when some write-path of A is read by B (prefix
  // containment in either direction links them).
  std::map<std::string, std::set<std::string>> graph;
  for (const auto& a : stages_) {
    for (const auto& b : stages_) {
      bool linked = false;
      for (const auto& w : a.writes_) {
        for (const auto& r : b.reads_) {
          const KeyPath wp = KeyPath::parse(w);
          const KeyPath rp = KeyPath::parse(r);
          if (wp.contains(rp) || rp.contains(wp)) linked = true;
        }
      }
      if (linked) graph[a.name_].insert(b.name_);
    }
  }
  return graph;
}

inline bool PipelineBuilder::has_cycle() const {
  const auto graph = edges();
  // Iterative DFS with colors.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const auto& next : it->second) {
        if (color[next] == 1) return true;
        if (color[next] == 0 && visit(next)) return true;
      }
    }
    color[node] = 2;
    return false;
  };
  for (const auto& s : stages_) {
    if (color[s.name_] == 0 && visit(s.name_)) return true;
  }
  return false;
}

inline Result<Pipeline> PipelineBuilder::deploy(SimDuration timeout) {
  std::set<std::string> names;
  for (const auto& s : stages_) {
    if (s.name_.empty() || !names.insert(s.name_).second) {
      return Status::InvalidArgument("unnamed or duplicate stage");
    }
    if (s.reads_.empty()) {
      return Status::InvalidArgument("stage '" + s.name_ + "' reads nothing");
    }
    if (!s.action_) {
      return Status::InvalidArgument("stage '" + s.name_ + "' has no action");
    }
  }
  if (has_cycle()) {
    if (!allow_cycles_) {
      return Status::InvalidArgument(
          "pipeline graph is cyclic (ripple risk); call allow_cycles() "
          "and add until() stop conditions");
    }
    for (const auto& s : stages_) {
      if (!s.filter_) {
        return Status::InvalidArgument(
            "cyclic pipeline requires an until() filter on every stage "
            "(missing on '" + s.name_ + "')");
      }
    }
  }

  std::vector<std::string> job_names;
  for (const auto& s : stages_) {
    Job::Config jc;
    jc.name = "dataflow/" + s.name_;
    jc.trigger_interval = s.interval_;
    DataHooks hooks;
    for (const auto& r : s.reads_) hooks.add(r);
    std::shared_ptr<Filter> filter;
    if (s.filter_) {
      filter = std::make_shared<FunctionFilter>(
          [keep = s.filter_](const std::string&, const std::string& ov,
                             const std::string&, const std::string& nv) {
            return keep(ov, nv);
          });
    }
    auto action = std::make_shared<FunctionAction>(
        [fn = s.action_](const std::string& key,
                         const std::vector<std::string>& values,
                         ResultWriter& out) {
          fn(StageContext(key, values, out));
        });
    service_.schedule(std::make_shared<Job>(
                          jc, TriggerInput{hooks, std::move(filter)},
                          TriggerOutput{}, std::move(action)),
                      timeout);
    job_names.push_back(jc.name);
  }
  return Pipeline(service_, std::move(job_names));
}

}  // namespace sedna::trigger::dataflow
