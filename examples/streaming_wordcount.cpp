// Streaming word count on the dataflow framework — the canonical
// MapReduce-style job, restated the Sedna way (Section II.A.2: "once data
// arrived, we need to process it immediately and generate new results",
// without writing intermediates to local disk between phases).
//
// Pipeline:
//   stage "tokenize":  reads docs/**      for every new document, emit one
//                                         tagged list element per word
//                                         occurrence into counts/words/<w>
//   stage "milestone": reads counts/**    when a word's occurrence list
//                                         crosses a power of ten, publish
//                                         a milestone row (cascaded stage)
//
// The dashboard then reads live counters while documents keep streaming —
// no barrier, no batch boundary, results visible within a trigger scan.
#include <cstdio>
#include <map>
#include <sstream>

#include "cluster/admin.h"
#include "cluster/sedna_cluster.h"
#include "trigger/dataflow.h"
#include "workload/tweets.h"

using namespace sedna;
using namespace sedna::cluster;
using namespace sedna::trigger;

int main() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 512;
  SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("== streaming word count (dataflow pipeline) ==\n");

  TriggerService triggers(cluster);
  dataflow::PipelineBuilder pipeline(triggers);
  pipeline.stage("tokenize")
      .reads("docs")
      .writes("counts")
      .interval(sim_ms(20))
      .action([](const dataflow::StageContext& ctx) {
        std::istringstream in(ctx.value());
        std::string word;
        std::uint32_t pos = 0;
        const auto doc_id = static_cast<std::uint32_t>(
            std::stoul(ctx.row()));
        while (in >> word) {
          // One list element per (document, position): the counter is the
          // list's cardinality, accumulated without read-modify-write.
          ctx.out().put_all_tagged("counts/words/" + word, "1",
                                   doc_id * 64 + pos);
          ++pos;
        }
      });
  pipeline.stage("milestone")
      .reads("counts")
      .writes("milestones")
      .interval(sim_ms(100))
      .action([](const dataflow::StageContext& ctx) {
        const std::size_t n = ctx.values().size();
        if (n == 10 || n == 100 || n == 1000) {
          ctx.out().put("milestones/words/" + ctx.row(),
                        std::to_string(n));
        }
      });

  auto deployed = pipeline.deploy();
  if (!deployed.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployed.status().to_string().c_str());
    return 1;
  }
  std::printf("pipeline deployed: %zu stages, acyclic\n",
              deployed->stage_count());

  // Stream documents (zipf-worded text) and keep ground truth.
  auto& producer = cluster.make_client();
  workload::TweetGenerator gen;
  std::map<std::string, int> truth;
  constexpr int kDocs = 300;
  for (int d = 0; d < kDocs; ++d) {
    const auto tweet = gen.next();
    std::istringstream in(tweet.text);
    std::string w;
    while (in >> w) ++truth[w];
    cluster.write_latest(producer, "docs/stream/" + std::to_string(d),
                         tweet.text);
  }
  cluster.run_for(sim_sec(2));  // pipeline drains

  // The dashboard: live counters vs ground truth.
  auto& dashboard = cluster.make_client();
  int exact = 0, milestones = 0, checked = 0;
  std::vector<std::pair<int, std::string>> top;
  for (const auto& [word, count] : truth) {
    auto counter = cluster.read_all(dashboard, "counts/words/" + word);
    const int counted = counter.ok() ? static_cast<int>(counter->size()) : 0;
    ++checked;
    if (counted == count) ++exact;
    top.emplace_back(count, word);
    if (cluster.read_latest(dashboard, "milestones/words/" + word).ok()) {
      ++milestones;
    }
  }
  std::sort(top.rbegin(), top.rend());

  std::printf("\ntop words (live counter vs stream truth):\n");
  for (std::size_t i = 0; i < 8 && i < top.size(); ++i) {
    auto counter =
        cluster.read_all(dashboard, "counts/words/" + top[i].second);
    std::printf("  %-8s counted=%4zu actual=%4d\n", top[i].second.c_str(),
                counter.ok() ? counter->size() : 0, top[i].first);
  }
  std::printf("\ncounters exact for %d/%d words; %d milestone alerts\n",
              exact, checked, milestones);

  ClusterInspector(cluster).print();

  const bool ok = exact == checked && milestones > 0;
  std::printf("%s\n", ok ? "streaming word count consistent"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
