// Failure drill: an operational walkthrough of Sedna's fault-handling
// story (paper Sections III.C–III.E and Table I) with live commentary.
//
// Timeline:
//   t0  boot 3 ZK + 6 data nodes, load 500 keys
//   t1  crash a data node            → reads keep succeeding (quorum)
//   t2  ZooKeeper session expires    → ephemeral liveness marker vanishes
//   t3  reads touch affected keys    → read-triggered vnode recovery
//   t4  re-replication completes     → back to 3 live copies per key
//   t5  crash a ZooKeeper *follower* → data path unaffected
//   t6  crash the ZooKeeper *leader* → next member leads; writes continue
//   t7  restart the data node        → it rejoins and serves again
//   t8  trace one read under a fresh replica crash → the span tree shows
//       the replica timeout, the client retry and the read repair
//
// A ClusterMonitor watches the whole drill: killing the node must fire
// the heartbeat-loss and replica-lag alerts and walk its health state to
// suspect/dead; the restart plus hinted-handoff replay must resolve both
// alerts and return the node to healthy. The monitor's time series is
// dumped to failure_drill_timeseries.csv (byte-deterministic, diffed by
// the CI determinism gate).
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>

#include "cluster/admin.h"
#include "cluster/monitor.h"
#include "cluster/sedna_cluster.h"
#include "common/critical_path.h"
#include "common/outdir.h"
#include "common/trace.h"
#include "workload/kv_workload.h"

using namespace sedna;
using namespace sedna::cluster;

namespace {

void banner(SednaCluster& cluster, const char* msg) {
  std::printf("[t=%7.1f ms] %s\n", cluster.sim().now() / 1000.0, msg);
}

std::size_t live_copies(SednaCluster& cluster, const std::string& key) {
  std::size_t copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& node = cluster.node(i);
    if (node.alive() && node.local_store().read_latest(key).ok()) ++copies;
  }
  return copies;
}

}  // namespace

int main() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 256;
  // The drill's recovery story is hinted handoff + read repair, and t8
  // hollows a replica via crash+restart to trace that repair; restart
  // hydration would refill it first, so keep it off here (the scenario
  // suite's rolling restart covers hydration).
  cfg.node_template.restart_hydration = false;
  SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  banner(cluster, "cluster up: 3 zk members + 6 data nodes, N=3 R=2 W=2");
  auto& monitor = cluster.enable_monitor();
  banner(cluster, "monitor attached: 500ms sampling, health + alert rules");

  // Critical-path attribution plumbing: every client op trace is
  // attributed the moment it finishes (before retention can evict it),
  // so the aggregate sees 100% of traced requests while the tracer's
  // memory stays bounded.
  Tracer& tracer = cluster.sim().tracer();
  AttributionAggregator agg;
  std::string attribution_csv = attribution_csv_header();
  tracer.set_on_trace_finished(
      [&](TraceId id, const Tracer::TraceRecord& rec) {
        if (rec.op.rfind("client.", 0) != 0) return;
        agg.observe(id, rec);
        attribution_csv +=
            attribution_csv_row(id, rec, agg.rows().back().breakdown);
      });

  auto& client = cluster.make_client();
  workload::KvWorkload wl;
  constexpr int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    if (!cluster.write_latest(client, wl.key(i), "payload").ok()) return 1;
  }
  banner(cluster, "loaded 500 keys (each on 3 replicas)");

  auto survey = [&](const char* label) {
    int ok = 0;
    for (int i = 0; i < kKeys; ++i) {
      if (cluster.read_latest(client, wl.key(i)).ok()) ++ok;
    }
    std::printf("[t=%7.1f ms]   %s: %d/%d keys readable\n",
                cluster.sim().now() / 1000.0, label, ok, kKeys);
    return ok;
  };

  // ---- t1: data node crash ----------------------------------------------
  const NodeId crashed_id = cluster.node(2).id();
  cluster.crash_node(2);
  banner(cluster, "CRASH data node (one replica of ~half the keys gone)");
  // Trace the whole kill window: the attribution verdict must pin the
  // tail on retry/hint_replay time, not on healthy service time.
  tracer.set_enabled(true);
  // Write into the outage window: replica sets that include the dead node
  // miss one copy, so coordinators queue hints against it — the backlog
  // the replica-lag alert watches until handoff replays it at t7.
  int hinted_ok = 0;
  for (int i = 0; i < 100; ++i) {
    if (cluster.write_latest(client, "hinted-" + std::to_string(i), "v")
            .ok()) {
      ++hinted_ok;
    }
  }
  std::printf("[t=%7.1f ms]   %d/100 writes accepted during the outage "
              "(third copies owed as hints)\n",
              cluster.sim().now() / 1000.0, hinted_ok);
  const int during = survey("during outage, before session expiry");
  tracer.set_enabled(false);
  const std::size_t outage_n = agg.count();
  const double outage_cov = agg.min_coverage();
  const TraceStage outage_dom = agg.tail_dominant(0.10);
  const StageBreakdown outage_tail = agg.tail(0.10);
  std::printf("[t=%7.1f ms]   attribution, kill window: %zu client ops, "
              "slowest-10%% dominant=%s (retry=%llums service=%llums), "
              "min coverage=%.4f\n",
              cluster.sim().now() / 1000.0, outage_n,
              to_string(outage_dom),
              static_cast<unsigned long long>(
                  outage_tail.stage_us(TraceStage::kRetry) / 1000),
              static_cast<unsigned long long>(
                  outage_tail.stage_us(TraceStage::kService) / 1000),
              outage_cov);
  agg.reset();

  // ---- t2/t3: expiry + read-triggered recovery ----------------------------
  cluster.run_for(sim_sec(3));
  banner(cluster, "zookeeper session expired; ephemeral znode removed");
  survey("touch everything (triggers per-vnode recovery)");
  cluster.run_for(sim_sec(3));
  // A second pass drives read repair over the reshaped replica sets.
  survey("touch again (read repair backfills new replicas)");
  cluster.run_for(sim_sec(3));

  // ---- t4: verify re-replication -----------------------------------------
  int fully = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (live_copies(cluster, wl.key(i)) >= 3) ++fully;
  }
  std::printf("[t=%7.1f ms]   %d/%d keys back to 3 live copies\n",
              cluster.sim().now() / 1000.0, fully, kKeys);
  std::uint64_t recoveries = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    recoveries += cluster.node(i)
                      .metrics()
                      .counter("failure.recoveries_completed")
                      .value();
  }
  std::printf("[t=%7.1f ms]   vnode recoveries executed: %llu\n",
              cluster.sim().now() / 1000.0,
              static_cast<unsigned long long>(recoveries));

  // ---- t5: zk follower crash ----------------------------------------------
  cluster.zk_member(2).crash();
  banner(cluster, "CRASH zookeeper follower (ensemble keeps quorum 2/3)");
  const int after_zkf = survey("data path during zk follower outage");

  // ---- t6: zk leader crash --------------------------------------------------
  cluster.zk_member(0).crash();
  banner(cluster, "CRASH zookeeper leader (member 1 takes over)");
  cluster.run_for(sim_sec(2));
  int writes_ok = 0;
  for (int i = 0; i < 50; ++i) {
    if (cluster.write_latest(client, "post-failover-" + std::to_string(i),
                             "v").ok()) {
      ++writes_ok;
    }
  }
  std::printf("[t=%7.1f ms]   %d/50 writes succeeded under new zk leader "
              "(leader now: member %d)\n",
              cluster.sim().now() / 1000.0, writes_ok,
              cluster.zk_member(1).is_leader() ? 1 : -1);

  // ---- t7: data node restart --------------------------------------------
  cluster.zk_member(0).restart();
  cluster.zk_member(2).restart();
  // Give the rejoined members a ping round to tree-sync from the member
  // that held the data; node 2's new session must not land on an
  // empty-state member.
  cluster.run_for(sim_sec(1));
  cluster.restart_node(2);
  // Long enough for every coordinator's hint backoff (max 5s ± jitter) to
  // elapse, replay its queue into node 2, and let the replica-lag alert
  // observe an empty backlog for its clear window.
  cluster.run_for(sim_sec(8));
  banner(cluster, "restarted the crashed members; node 2 rejoined, "
                  "hinted writes replayed");
  // Trace the recovered cluster: the dominant tail cause must have
  // flipped back from retry to plain service time.
  tracer.set_enabled(true);
  const int final_ok = survey("final survey");
  tracer.set_enabled(false);
  const std::size_t recovered_n = agg.count();
  const double recovered_cov = agg.min_coverage();
  const TraceStage recovered_dom = agg.tail_dominant(0.10);
  const StageBreakdown recovered_tail = agg.tail(0.10);
  std::printf("[t=%7.1f ms]   attribution, recovered: %zu client ops, "
              "slowest-10%% dominant=%s (service=%lluus net=%lluus "
              "retry=%lluus), min coverage=%.4f\n",
              cluster.sim().now() / 1000.0, recovered_n,
              to_string(recovered_dom),
              static_cast<unsigned long long>(
                  recovered_tail.stage_us(TraceStage::kService)),
              static_cast<unsigned long long>(
                  recovered_tail.stage_us(TraceStage::kNet)),
              static_cast<unsigned long long>(
                  recovered_tail.stage_us(TraceStage::kRetry)),
              recovered_cov);
  agg.reset();
  {
    ClusterInspector peek(cluster);
    std::printf("\n--- tail traces retained by the reservoir ---\n%s",
                peek.tail_report().c_str());
  }
  std::printf("tracer retention: %zu traces / %zu spans retained, "
              "%llu traces / %llu spans evicted\n",
              tracer.retained_traces(), tracer.retained_spans(),
              static_cast<unsigned long long>(tracer.evicted_traces()),
              static_cast<unsigned long long>(tracer.evicted_spans()));
  const bool retention_bounded =
      tracer.retained_traces() <= tracer.policy().recent_traces +
                                      tracer.policy().tail_per_window *
                                          tracer.policy().max_windows_per_op *
                                          8 &&
      tracer.evicted_traces() > 0;
  // Reset the store (keeps the attribution CSV: it was fed by the
  // finished hook) so t8's single-trace walkthrough stays readable.
  tracer.clear();

  // ---- t8: trace one degraded read end to end ----------------------------
  // Pick a key with three distinct replicas, hollow the third (crash +
  // restart wipes its RAM copy), kill the primary, then read with the
  // tracer on: the span tree must show the timeout on the dead primary,
  // the client's retry to the second replica, and the read repair that
  // backfills the hollowed one.
  auto index_of = [&](NodeId id) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      if (cluster.node(i).id() == id) idx = i;
    }
    return idx;
  };
  std::string traced_key;
  std::vector<NodeId> reps;
  for (int i = 0; i < 1000 && traced_key.empty(); ++i) {
    const std::string candidate = "traced-" + std::to_string(i);
    auto r = client.metadata().table().replicas_for_key(candidate);
    if (r.size() == 3 && r[0] != r[1] && r[1] != r[2] && r[0] != r[2]) {
      traced_key = candidate;
      reps = r;
    }
  }
  if (traced_key.empty() ||
      !cluster.write_latest(client, traced_key, "traced-value").ok()) {
    std::fprintf(stderr, "trace setup failed\n");
    return 1;
  }
  cluster.crash_node(index_of(reps[2]));
  cluster.restart_node(index_of(reps[2]));  // rejoins with an empty store
  cluster.crash_node(index_of(reps[0]));
  banner(cluster, "CRASH primary replica + hollow a second one; tracing ON");

  cluster.sim().tracer().set_enabled(true);
  const auto traced = cluster.read_latest(client, traced_key);
  cluster.run_for(sim_ms(50));  // let the read repair round-trip finish
  cluster.sim().tracer().set_enabled(false);

  ClusterInspector inspector(cluster);
  std::printf("\n--- span tree for the degraded read ---\n%s",
              inspector.trace_report().c_str());
  const std::string tree = inspector.trace_report();
  const bool tree_ok = traced.ok() && traced->value == "traced-value" &&
                       tree.find("client.read.attempt#1") !=
                           std::string::npos &&
                       tree.find("timeout") != std::string::npos &&
                       tree.find("coord.read_repair") != std::string::npos;
  std::printf("--- cluster metrics (excerpt) ---\n");
  const std::string metrics = inspector.metrics_text();
  for (const char* needle :
       {"sedna_client_read_retries", "sedna_coordinator_read_repairs",
        "sedna_failure_suspicions"}) {
    std::size_t pos = metrics.find(needle);
    while (pos != std::string::npos) {
      const std::size_t end = metrics.find('\n', pos);
      std::printf("%s\n", metrics.substr(pos, end - pos).c_str());
      pos = metrics.find(needle, end);
    }
  }

  // ---- monitor verdict: kill → detect → repair → resolve ------------------
  std::printf("\n--- monitor dashboard ---\n%s", monitor.dashboard().c_str());
  {
    std::FILE* csv = std::fopen(sedna::out_path("failure_drill_timeseries.csv").c_str(), "w");
    if (csv != nullptr) {
      std::fputs(monitor.timeseries_csv().c_str(), csv);
      std::fclose(csv);
      std::printf("time series written to failure_drill_timeseries.csv "
                  "(%zu samples)\n",
                  monitor.recorder().size());
    }
    csv = std::fopen(sedna::out_path("failure_drill_attribution.csv").c_str(), "w");
    if (csv != nullptr) {
      std::fputs(attribution_csv.c_str(), csv);
      std::fclose(csv);
      std::printf("per-trace attribution written to "
                  "failure_drill_attribution.csv\n");
    }
    std::FILE* prom = std::fopen(sedna::out_path("failure_drill_metrics.prom").c_str(), "w");
    if (prom != nullptr) {
      std::fputs(inspector.metrics_text().c_str(), prom);
      std::fclose(prom);
      std::printf("metrics exposition (with exemplars) written to "
                  "failure_drill_metrics.prom\n");
    }
  }
  bool hb_fired = false, hb_resolved = false;
  bool lag_fired = false, lag_resolved = false;
  for (const AlertEvent& e : monitor.alerts().events()) {
    if (e.rule == "heartbeat-loss") (e.fired ? hb_fired : hb_resolved) = true;
    if (e.rule == "replica-lag") (e.fired ? lag_fired : lag_resolved) = true;
  }
  bool saw_suspect = false, saw_dead = false, back_healthy = false;
  for (const HealthTransition& t : monitor.health_log()) {
    if (t.node != crashed_id) continue;
    if (t.to == HealthState::kSuspect) saw_suspect = true;
    if (t.to == HealthState::kDead) saw_dead = true;
    if (saw_dead && t.to == HealthState::kHealthy) back_healthy = true;
  }
  const bool monitor_ok = hb_fired && hb_resolved && lag_fired &&
                          lag_resolved && saw_suspect && saw_dead &&
                          back_healthy;
  std::printf("monitor timeline: heartbeat-loss fired=%d resolved=%d, "
              "replica-lag fired=%d resolved=%d, node-%u "
              "suspect=%d dead=%d back-healthy=%d\n",
              hb_fired, hb_resolved, lag_fired, lag_resolved, crashed_id,
              saw_suspect, saw_dead, back_healthy);

  const bool attribution_ok =
      outage_n > 0 && recovered_n > 0 &&
      (outage_dom == TraceStage::kRetry ||
       outage_dom == TraceStage::kHintReplay) &&
      recovered_dom == TraceStage::kService && outage_cov >= 0.95 &&
      recovered_cov >= 0.95 && retention_bounded;
  std::printf("attribution verdict: kill-window dominant=%s, recovered "
              "dominant=%s, worst per-trace coverage=%.4f -> %s\n",
              to_string(outage_dom), to_string(recovered_dom),
              std::min(outage_cov, recovered_cov),
              attribution_ok ? "pass" : "FAIL");
  const bool ok = during == kKeys && after_zkf == kKeys &&
                  final_ok == kKeys && writes_ok == 50 &&
                  fully >= kKeys * 9 / 10 && recoveries > 0 && tree_ok &&
                  monitor_ok && attribution_ok;
  std::printf("\n%s\n", ok ? "drill passed: no read was ever lost, "
                             "recovery and failover worked, alerts fired "
                             "and resolved on schedule"
                           : "DRILL FAILED");
  return ok ? 0 : 1;
}
