// Realtime analytics — the introduction's motivating workload ("Facebook's
// Realtime Analytics ... need to read and analysis data generated in
// realtime"): a click/view event stream is aggregated by a trigger into
// per-URL counters that a dashboard reads while events keep arriving.
//
// Layout:
//   events/views/<seq>     = url                (the firehose, write_latest)
//   stats/views/<url>      = value list, one element per counted event
//                            (cardinality = the view counter; blind,
//                            lock-free accumulation via write_all tags)
//   stats/spikes/<url>     = written by a second trigger when a URL
//                            crosses a threshold — an alert feed.
#include <cstdio>
#include <map>
#include <string>

#include "cluster/sedna_cluster.h"
#include "common/rng.h"
#include "trigger/service.h"

using namespace sedna;

int main() {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 512;
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("== realtime analytics on Sedna triggers ==\n");

  trigger::TriggerService triggers(cluster);

  // Aggregator: every event appends one tagged element to its URL's
  // counter list. No read-modify-write, no locks — concurrent primaries
  // never conflict (Section III.F's lock-free writes).
  {
    trigger::Job::Config jc;
    jc.name = "aggregate";
    jc.trigger_interval = sim_ms(10);
    trigger::DataHooks hooks;
    hooks.add("events/views");
    auto action = std::make_shared<trigger::FunctionAction>(
        [](const std::string& key, const std::vector<std::string>& values,
           trigger::ResultWriter& out) {
          if (values.empty()) return;
          const std::string url = values[0];
          const std::string seq = KeyPath::parse(key).key();
          out.put_all_tagged(
              "stats/views/" + url, "1",
              static_cast<std::uint32_t>(std::stoul(seq)));
        });
    triggers.schedule(std::make_shared<trigger::Job>(
        jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
        action));
  }

  // Spike detector: a second trigger cascaded off the counters table,
  // filtered to fire only when a counter crosses 100 views.
  {
    trigger::Job::Config jc;
    jc.name = "spike";
    jc.trigger_interval = sim_ms(100);
    trigger::DataHooks hooks;
    hooks.add("stats/views");
    auto action = std::make_shared<trigger::FunctionAction>(
        [](const std::string& key, const std::vector<std::string>& values,
           trigger::ResultWriter& out) {
          if (values.size() < 100) return;  // threshold on the counter
          const std::string url = KeyPath::parse(key).key();
          out.put("stats/spikes/" + url,
                  "HOT: " + std::to_string(values.size()) + " views");
        });
    triggers.schedule(std::make_shared<trigger::Job>(
        jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
        action));
  }

  // The firehose: zipf-distributed URL popularity, 1500 events.
  auto& firehose = cluster.make_client();
  ZipfGenerator url_pick(20, 1.2, 99);
  constexpr int kEvents = 1500;
  std::map<std::string, int> truth;
  std::printf("streaming %d view events across 20 urls...\n", kEvents);
  for (int i = 0; i < kEvents; ++i) {
    const std::string url = "url" + std::to_string(url_pick.next());
    ++truth[url];
    cluster.write_latest(firehose, "events/views/" + std::to_string(i),
                         url);
  }
  cluster.run_for(sim_sec(2));  // let aggregation + spike detection drain

  // The dashboard: read the live counters, compare with ground truth.
  auto& dashboard = cluster.make_client();
  std::printf("\n%-8s %10s %10s %8s\n", "url", "counted", "actual", "hot?");
  int checked = 0, exact = 0, hot_urls = 0;
  for (const auto& [url, actual] : truth) {
    auto counter = cluster.read_all(dashboard, "stats/views/" + url);
    const int counted = counter.ok() ? static_cast<int>(counter->size()) : 0;
    auto spike = cluster.read_latest(dashboard, "stats/spikes/" + url);
    const bool hot = spike.ok();
    if (hot) ++hot_urls;
    ++checked;
    if (counted == actual) ++exact;
    if (actual >= 50) {
      std::printf("%-8s %10d %10d %8s\n", url.c_str(), counted, actual,
                  hot ? "HOT" : "");
    }
  }
  std::printf("...(urls under 50 views elided)\n");
  std::printf("\ncounters exact for %d/%d urls; %d url(s) flagged hot\n",
              exact, checked, hot_urls);

  const bool ok = exact == checked && hot_urls >= 1;
  std::printf("%s\n", ok ? "realtime aggregation consistent with the stream"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
