// Micro-blogging realtime search engine — the paper's Section V use case,
// end to end on the simulated cluster.
//
// Data layout (hierarchical keys, Section IV.C):
//   tweets/msgs/<id>            = "author|retweets|text"   (crawler, step 2)
//   social/follows/<user>       = value list of followees  (crawler)
//   index/terms/<word>          = value list of postings   (indexer trigger)
//                                 each posting tagged by message id:
//                                 "msgid|author|retweets"
//   authority/users/<user>      = value list, one entry per authored tweet
//                                 (relationship trigger; list size = the
//                                 author's "specialty" signal)
//
// Jobs (Section V: "there are different trigger based jobs"):
//   * indexer    — monitors tweets/msgs, parses text, updates the
//                  inverted index table;
//   * authority  — monitors tweets/msgs, maintains per-author activity
//                  used as the specialty ranking factor.
//
// Query (steps 6–7): read the posting list for each query term, join,
// rank by  w1·social-connection(searcher, author) + w2·retweets +
// w3·author-specialty  — the three factors of Section V.
//
// The run prints the crawl→searchable latency, the paper's "time between
// (1) and (7)" freshness requirement.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "cluster/sedna_cluster.h"
#include "trigger/service.h"
#include "workload/tweets.h"

using namespace sedna;

namespace {

struct Posting {
  std::uint32_t msg_id = 0;
  std::uint32_t author = 0;
  std::uint32_t retweets = 0;
};

Posting parse_posting(const std::string& s) {
  Posting p;
  std::sscanf(s.c_str(), "%u|%u|%u", &p.msg_id, &p.author, &p.retweets);
  return p;
}

std::vector<std::string> split_words(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream in(text);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

}  // namespace

int main() {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 512;
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("== Sedna micro-blogging search engine (paper Section V) ==\n");

  // ---- trigger jobs (the "Process layer") -------------------------------
  trigger::TriggerService triggers(cluster);
  {
    // Indexer: monitors the tweets table; for each new message, parses the
    // text and appends one posting per word to the inverted index.
    trigger::Job::Config jc;
    jc.name = "indexer";
    jc.trigger_interval = sim_ms(20);
    trigger::DataHooks hooks;
    hooks.add("tweets/msgs");
    auto action = std::make_shared<trigger::FunctionAction>(
        [](const std::string& key, const std::vector<std::string>& values,
           trigger::ResultWriter& out) {
          if (values.empty()) return;
          const std::string msg_id = KeyPath::parse(key).key();
          Posting p{};
          char text[256] = {0};
          std::sscanf(values[0].c_str(), "%u|%u|%255[^\n]", &p.author,
                      &p.retweets, text);
          const std::string posting = msg_id + "|" +
                                      std::to_string(p.author) + "|" +
                                      std::to_string(p.retweets);
          for (const auto& word : split_words(text)) {
            out.put_all_tagged(
                "index/terms/" + word, posting,
                static_cast<std::uint32_t>(std::stoul(msg_id)));
          }
        });
    triggers.schedule(std::make_shared<trigger::Job>(
        jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
        action));
  }
  {
    // Authority job: maintains per-author activity (the "specialty of the
    // relative messages' author" ranking factor).
    trigger::Job::Config jc;
    jc.name = "authority";
    jc.trigger_interval = sim_ms(20);
    trigger::DataHooks hooks;
    hooks.add("tweets/msgs");
    auto action = std::make_shared<trigger::FunctionAction>(
        [](const std::string& key, const std::vector<std::string>& values,
           trigger::ResultWriter& out) {
          if (values.empty()) return;
          std::uint32_t author = 0;
          std::sscanf(values[0].c_str(), "%u|", &author);
          const std::string msg_id = KeyPath::parse(key).key();
          out.put_all_tagged(
              "authority/users/" + std::to_string(author), "1",
              static_cast<std::uint32_t>(std::stoul(msg_id)));
        });
    triggers.schedule(std::make_shared<trigger::Job>(
        jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
        action));
  }

  // ---- the crawler (steps 1–3): tweets + social graph -------------------
  auto& crawler = cluster.make_client();
  workload::TweetGenerator gen;
  constexpr int kTweets = 400;

  std::printf("crawling %d tweets and the follower graph...\n", kTweets);
  std::map<std::uint32_t, workload::Tweet> tweets_by_id;
  const SimTime crawl_start = cluster.sim().now();
  for (int i = 0; i < kTweets; ++i) {
    const workload::Tweet t = gen.next();
    tweets_by_id[static_cast<std::uint32_t>(t.id)] = t;
    const std::string value = std::to_string(t.author) + "|" +
                              std::to_string(t.retweets) + "|" + t.text;
    cluster.write_latest(crawler,
                         "tweets/msgs/" + std::to_string(t.id), value);
  }
  // Social connections stored with write_all: one list element per
  // followee (paper: "not only ... the messages but also ... the social
  // connection information, it will store this data into Sedna using
  // write_all api").
  std::set<std::uint32_t> users;
  for (const auto& [id, t] : tweets_by_id) users.insert(t.author);
  for (std::uint32_t user : users) {
    for (std::uint32_t followee : gen.followees(user)) {
      // Tag = followee id: the list accumulates the user's full follow set.
      cluster::SednaClient& c = crawler;
      std::optional<Status> done;
      // write_all with an explicit source requires the tagged path; reuse
      // the trigger-writer convention by writing via a trigger-less key:
      // here the client tags with its own id per followee key instead.
      c.write_all("social/follows/" + std::to_string(user) + "/" +
                      std::to_string(followee),
                  "1", [&](const Status& st) { done = st; });
      cluster.run_until([&] { return done.has_value(); });
    }
  }

  // ---- let the triggers index everything --------------------------------
  cluster.run_for(sim_ms(800));
  const double index_latency_ms =
      (cluster.sim().now() - crawl_start) / 1000.0;

  // ---- the searcher (steps 6–7) ------------------------------------------
  auto& searcher_client = cluster.make_client();
  const std::uint32_t searcher = 3;  // a fairly active user

  // Load the searcher's follow set for the social-connection factor.
  std::set<std::uint32_t> follows;
  for (std::uint32_t followee : gen.followees(searcher)) {
    follows.insert(followee);
  }

  const std::vector<std::string> query_terms = {
      workload::TweetGenerator::word(0), workload::TweetGenerator::word(3)};
  std::printf("\nsearch by user %u for: ", searcher);
  for (const auto& term : query_terms) std::printf("\"%s\" ", term.c_str());
  std::printf("\n");

  const SimTime query_start = cluster.sim().now();
  std::map<std::uint32_t, Posting> hits;
  for (const auto& term : query_terms) {
    auto postings = cluster.read_all(searcher_client, "index/terms/" + term);
    if (!postings.ok()) continue;
    for (const auto& sv : postings.value()) {
      const Posting p = parse_posting(sv.value);
      hits[p.msg_id] = p;
    }
  }

  // Rank: w1 * social + w2 * retweets + w3 * author specialty.
  struct Ranked {
    double score;
    Posting posting;
  };
  std::vector<Ranked> ranked;
  for (const auto& [msg_id, p] : hits) {
    double specialty = 0;
    auto authority = cluster.read_all(
        searcher_client, "authority/users/" + std::to_string(p.author));
    if (authority.ok()) {
      specialty = static_cast<double>(authority->size());
    }
    const double social = follows.contains(p.author) ? 1.0 : 0.0;
    const double score = 50.0 * social + 1.0 * p.retweets + 2.0 * specialty;
    ranked.push_back({score, p});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.score > b.score; });
  const double query_latency_ms =
      (cluster.sim().now() - query_start) / 1000.0;

  std::printf("%zu matching messages; top 5:\n", ranked.size());
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    const auto& r = ranked[i];
    const auto& tweet = tweets_by_id[r.posting.msg_id];
    std::printf("  #%zu score=%5.1f msg=%u author=%u%s retweets=%u "
                "text=\"%s\"\n",
                i + 1, r.score, r.posting.msg_id, r.posting.author,
                follows.contains(r.posting.author) ? "(followed)" : "",
                r.posting.retweets, tweet.text.c_str());
  }

  const auto stats = triggers.aggregate_stats();
  std::printf("\ncrawl -> searchable latency: %.0f ms (simulated); "
              "query latency: %.1f ms\n", index_latency_ms,
              query_latency_ms);
  std::printf("trigger activations=%llu emits=%llu\n",
              static_cast<unsigned long long>(stats.activations),
              static_cast<unsigned long long>(stats.emits));

  const bool ok = !ranked.empty() && stats.activations > 0;
  std::printf("\n%s\n", ok ? "realtime search pipeline working"
                           : "PIPELINE FAILED");
  return ok ? 0 : 1;
}
