// Quickstart: boot a simulated Sedna deployment, use all four data APIs
// of Section III.F, and register a first trigger (Section IV).
//
//   ./examples/quickstart
//
// Everything runs in a deterministic discrete-event simulation of the
// paper's 9-server testbed; "time" below is simulated time.
#include <cstdio>

#include "cluster/sedna_cluster.h"
#include "trigger/service.h"

using namespace sedna;

int main() {
  // 1. A cluster: 3 ZooKeeper members + 6 data nodes, N=3 R=2 W=2.
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 512;
  std::printf("booting: %u zk members, %u data nodes, %u vnodes, "
              "N=%u R=%u W=%u\n",
              cfg.zk_members, cfg.data_nodes, cfg.cluster.total_vnodes,
              cfg.cluster.replicas, cfg.cluster.read_quorum,
              cfg.cluster.write_quorum);
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("cluster ready at t=%.1f ms (simulated)\n\n",
              cluster.sim().now() / 1000.0);

  // 2. A client with its own lease-cached copy of the vnode table.
  auto& client = cluster.make_client();

  // 3. write_latest / read_latest: last-writer-wins single values.
  cluster.write_latest(client, "profiles/users/alice", "alice v1");
  cluster.write_latest(client, "profiles/users/alice", "alice v2");
  auto latest = cluster.read_latest(client, "profiles/users/alice");
  std::printf("read_latest(profiles/users/alice) -> \"%s\" (ts=%llu)\n",
              latest.ok() ? latest->value.c_str() : "?",
              latest.ok() ? static_cast<unsigned long long>(latest->ts) : 0);

  // 4. write_all / read_all: one value per source, no lock, no conflict
  //    (Section III.F — concurrent writers never block each other).
  auto& second_client = cluster.make_client();
  cluster.write_all(client, "inbox/alice/today", "msg from client A");
  cluster.write_all(second_client, "inbox/alice/today", "msg from client B");
  auto all = cluster.read_all(client, "inbox/alice/today");
  std::printf("read_all(inbox/alice/today) -> %zu values:\n",
              all.ok() ? all->size() : 0);
  if (all.ok()) {
    for (const auto& sv : all.value()) {
      std::printf("  [source %u] \"%s\"\n", sv.source, sv.value.c_str());
    }
  }

  // 5. A trigger: watch the "inbox" dataset; on every change, write a
  //    notification row. The job runs once per change on the key's
  //    primary replica — not once per replica.
  trigger::TriggerService triggers(cluster);
  trigger::Job::Config jc;
  jc.name = "notify";
  jc.trigger_interval = sim_ms(50);
  trigger::DataHooks hooks;
  hooks.add("inbox");  // a whole dataset (Section IV.C hierarchy)
  auto action = std::make_shared<trigger::FunctionAction>(
      [](const std::string& key, const std::vector<std::string>& values,
         trigger::ResultWriter& out) {
        std::printf("  [trigger] %s changed (%zu values) -> writing "
                    "notification\n", key.c_str(), values.size());
        out.put("notifications/alice/latest", "you have new mail");
      });
  triggers.schedule(std::make_shared<trigger::Job>(
      jc, trigger::TriggerInput{hooks, {}}, trigger::TriggerOutput{},
      action));

  std::printf("\nwriting into the watched dataset...\n");
  cluster.write_all(client, "inbox/alice/today", "another message");
  cluster.run_for(sim_ms(300));

  auto note = cluster.read_latest(client, "notifications/alice/latest");
  std::printf("read_latest(notifications/alice/latest) -> \"%s\"\n",
              note.ok() ? note->value.c_str() : "?");

  const auto stats = triggers.aggregate_stats();
  std::printf("\ntrigger stats: %llu change(s) seen, %llu activation(s), "
              "%llu emit(s)\n",
              static_cast<unsigned long long>(stats.changes_seen),
              static_cast<unsigned long long>(stats.activations),
              static_cast<unsigned long long>(stats.emits));
  std::printf("done at t=%.1f ms (simulated)\n", cluster.sim().now() / 1000.0);
  return note.ok() ? 0 : 1;
}
