// Iterative computation as a trigger loop — the paper's "Domino" pattern
// (Section IV.A, Listing 1 and Fig. 4): a trigger whose output re-arms
// itself, with a Filter implementing the stop condition.
//
// The task: Newton iteration for sqrt(a), one round per trigger firing.
//   state key:  iterate/sqrt/<name>   value: "a|x_n|n"
//   trigger:    monitors iterate/sqrt; action writes x_{n+1} back to the
//               SAME key — which dirties it again and schedules the next
//               round (the loop body "implemented by the interaction
//               among these triggers").
//   filter:     the paper's assert(oldK, oldV, newK, newV) comparing the
//               value before/after: stop when |x_{n+1} - x_n| < eps.
#include <cmath>
#include <cstdio>

#include "cluster/sedna_cluster.h"
#include "trigger/service.h"

using namespace sedna;

namespace {

struct SqrtState {
  double a = 0;
  double x = 0;
  int n = 0;
};

SqrtState parse(const std::string& v) {
  SqrtState s;
  std::sscanf(v.c_str(), "%lf|%lf|%d", &s.a, &s.x, &s.n);
  return s;
}

std::string render(const SqrtState& s) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.12f|%.12f|%d", s.a, s.x, s.n);
  return buf;
}

/// Listing-1 style Filter subclass: the stop condition of the iterative
/// task, comparing old and new values.
class ConvergenceFilter final : public trigger::Filter {
 public:
  explicit ConvergenceFilter(double eps) : eps_(eps) {}
  bool assert_change(const std::string&, const std::string& old_value,
                     const std::string&, const std::string& new_value)
      override {
    if (old_value.empty()) return true;  // first round always runs
    const SqrtState before = parse(old_value);
    const SqrtState after = parse(new_value);
    return std::fabs(after.x - before.x) > eps_;  // keep iterating?
  }

 private:
  double eps_;
};

/// Listing-1 style Action subclass: one Newton step.
class NewtonAction final : public trigger::Action {
 public:
  void action(const std::string& key, const std::vector<std::string>& values,
              trigger::ResultWriter& out) override {
    if (values.empty()) return;
    SqrtState s = parse(values[0]);
    if (s.x <= 0) return;
    s.x = 0.5 * (s.x + s.a / s.x);
    ++s.n;
    out.put(key, render(s));  // re-arms the trigger: the Domino loop
  }
};

}  // namespace

int main() {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 256;
  cluster::SednaCluster cluster(cfg);
  if (!cluster.boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("== iterative tasks as trigger loops (Domino, Fig. 4) ==\n");

  trigger::TriggerService triggers(cluster);
  trigger::Job::Config jc;
  jc.name = "newton";
  jc.trigger_interval = sim_ms(20);
  trigger::DataHooks hooks;
  hooks.add("iterate/sqrt");
  auto job = std::make_shared<trigger::Job>(
      jc,
      trigger::TriggerInput{hooks, std::make_shared<ConvergenceFilter>(1e-9)},
      trigger::TriggerOutput{"iterate"}, std::make_shared<NewtonAction>());
  // Listing 1: job.schedule(Timeout) — a generous bound on total runtime.
  triggers.schedule(job, sim_sec(60));

  // Seed three independent iterative tasks.
  auto& client = cluster.make_client();
  const double inputs[] = {2.0, 1337.0, 9.0};
  for (double a : inputs) {
    SqrtState seed{a, a / 2 > 1 ? a / 2 : 1.0, 0};
    cluster.write_latest(client,
                         "iterate/sqrt/" + std::to_string(
                             static_cast<int>(a)),
                         render(seed));
  }

  // Let the loops run to convergence; each round takes one trigger
  // interval, so a couple of simulated seconds is plenty.
  cluster.run_for(sim_sec(5));

  bool all_ok = true;
  for (double a : inputs) {
    auto got = cluster.read_latest(
        client, "iterate/sqrt/" + std::to_string(static_cast<int>(a)));
    if (!got.ok()) {
      all_ok = false;
      continue;
    }
    const SqrtState s = parse(got->value);
    const double err = std::fabs(s.x - std::sqrt(a));
    std::printf("sqrt(%-6.0f) = %.9f after %2d trigger rounds "
                "(error %.2e)\n", a, s.x, s.n, err);
    if (err > 1e-6) all_ok = false;
  }

  const auto stats = triggers.aggregate_stats();
  std::printf("\ntrigger rounds executed: %llu; filtered (stop condition "
              "reached): %llu\n",
              static_cast<unsigned long long>(stats.activations),
              static_cast<unsigned long long>(stats.filtered_out));
  std::printf("%s\n", all_ok ? "all iterations converged and stopped"
                             : "ITERATION FAILED");
  return all_ok ? 0 : 1;
}
