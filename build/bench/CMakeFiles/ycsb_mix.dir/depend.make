# Empty dependencies file for ycsb_mix.
# This may be replaced when dependencies are built.
