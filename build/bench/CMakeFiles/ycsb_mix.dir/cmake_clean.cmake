file(REMOVE_RECURSE
  "CMakeFiles/ycsb_mix.dir/ycsb_mix.cc.o"
  "CMakeFiles/ycsb_mix.dir/ycsb_mix.cc.o.d"
  "ycsb_mix"
  "ycsb_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
