# Empty dependencies file for trigger_pipeline.
# This may be replaced when dependencies are built.
