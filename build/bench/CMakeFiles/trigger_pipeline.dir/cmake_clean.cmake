file(REMOVE_RECURSE
  "CMakeFiles/trigger_pipeline.dir/trigger_pipeline.cc.o"
  "CMakeFiles/trigger_pipeline.dir/trigger_pipeline.cc.o.d"
  "trigger_pipeline"
  "trigger_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
