file(REMOVE_RECURSE
  "CMakeFiles/hotkey_skew.dir/hotkey_skew.cc.o"
  "CMakeFiles/hotkey_skew.dir/hotkey_skew.cc.o.d"
  "hotkey_skew"
  "hotkey_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotkey_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
