# Empty compiler generated dependencies file for hotkey_skew.
# This may be replaced when dependencies are built.
