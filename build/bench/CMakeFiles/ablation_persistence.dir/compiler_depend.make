# Empty compiler generated dependencies file for ablation_persistence.
# This may be replaced when dependencies are built.
