# Empty dependencies file for fig8_multiclient.
# This may be replaced when dependencies are built.
