file(REMOVE_RECURSE
  "CMakeFiles/fig8_multiclient.dir/fig8_multiclient.cc.o"
  "CMakeFiles/fig8_multiclient.dir/fig8_multiclient.cc.o.d"
  "fig8_multiclient"
  "fig8_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
