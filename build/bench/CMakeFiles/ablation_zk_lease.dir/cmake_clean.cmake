file(REMOVE_RECURSE
  "CMakeFiles/ablation_zk_lease.dir/ablation_zk_lease.cc.o"
  "CMakeFiles/ablation_zk_lease.dir/ablation_zk_lease.cc.o.d"
  "ablation_zk_lease"
  "ablation_zk_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zk_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
