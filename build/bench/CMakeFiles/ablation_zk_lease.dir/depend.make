# Empty dependencies file for ablation_zk_lease.
# This may be replaced when dependencies are built.
