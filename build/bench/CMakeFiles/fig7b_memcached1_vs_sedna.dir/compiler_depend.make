# Empty compiler generated dependencies file for fig7b_memcached1_vs_sedna.
# This may be replaced when dependencies are built.
