file(REMOVE_RECURSE
  "CMakeFiles/fig7a_memcached3_vs_sedna.dir/fig7a_memcached3_vs_sedna.cc.o"
  "CMakeFiles/fig7a_memcached3_vs_sedna.dir/fig7a_memcached3_vs_sedna.cc.o.d"
  "fig7a_memcached3_vs_sedna"
  "fig7a_memcached3_vs_sedna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_memcached3_vs_sedna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
