# Empty compiler generated dependencies file for fig7a_memcached3_vs_sedna.
# This may be replaced when dependencies are built.
