file(REMOVE_RECURSE
  "CMakeFiles/sedna_cluster.dir/metadata.cc.o"
  "CMakeFiles/sedna_cluster.dir/metadata.cc.o.d"
  "CMakeFiles/sedna_cluster.dir/sedna_client.cc.o"
  "CMakeFiles/sedna_cluster.dir/sedna_client.cc.o.d"
  "CMakeFiles/sedna_cluster.dir/sedna_cluster.cc.o"
  "CMakeFiles/sedna_cluster.dir/sedna_cluster.cc.o.d"
  "CMakeFiles/sedna_cluster.dir/sedna_node.cc.o"
  "CMakeFiles/sedna_cluster.dir/sedna_node.cc.o.d"
  "libsedna_cluster.a"
  "libsedna_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
