# Empty dependencies file for sedna_cluster.
# This may be replaced when dependencies are built.
