
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/metadata.cc" "src/cluster/CMakeFiles/sedna_cluster.dir/metadata.cc.o" "gcc" "src/cluster/CMakeFiles/sedna_cluster.dir/metadata.cc.o.d"
  "/root/repo/src/cluster/sedna_client.cc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_client.cc.o" "gcc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_client.cc.o.d"
  "/root/repo/src/cluster/sedna_cluster.cc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_cluster.cc.o" "gcc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_cluster.cc.o.d"
  "/root/repo/src/cluster/sedna_node.cc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_node.cc.o" "gcc" "src/cluster/CMakeFiles/sedna_cluster.dir/sedna_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sedna_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/sedna_store.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/sedna_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/sedna_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/sedna_ring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
