file(REMOVE_RECURSE
  "libsedna_cluster.a"
)
