file(REMOVE_RECURSE
  "libsedna_zk.a"
)
