file(REMOVE_RECURSE
  "CMakeFiles/sedna_zk.dir/zk_client.cc.o"
  "CMakeFiles/sedna_zk.dir/zk_client.cc.o.d"
  "CMakeFiles/sedna_zk.dir/zk_server.cc.o"
  "CMakeFiles/sedna_zk.dir/zk_server.cc.o.d"
  "CMakeFiles/sedna_zk.dir/znode_tree.cc.o"
  "CMakeFiles/sedna_zk.dir/znode_tree.cc.o.d"
  "libsedna_zk.a"
  "libsedna_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
