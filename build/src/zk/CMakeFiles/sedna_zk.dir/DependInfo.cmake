
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zk/zk_client.cc" "src/zk/CMakeFiles/sedna_zk.dir/zk_client.cc.o" "gcc" "src/zk/CMakeFiles/sedna_zk.dir/zk_client.cc.o.d"
  "/root/repo/src/zk/zk_server.cc" "src/zk/CMakeFiles/sedna_zk.dir/zk_server.cc.o" "gcc" "src/zk/CMakeFiles/sedna_zk.dir/zk_server.cc.o.d"
  "/root/repo/src/zk/znode_tree.cc" "src/zk/CMakeFiles/sedna_zk.dir/znode_tree.cc.o" "gcc" "src/zk/CMakeFiles/sedna_zk.dir/znode_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sedna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
