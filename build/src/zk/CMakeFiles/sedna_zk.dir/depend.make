# Empty dependencies file for sedna_zk.
# This may be replaced when dependencies are built.
