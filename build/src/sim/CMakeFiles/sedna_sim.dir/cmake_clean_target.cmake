file(REMOVE_RECURSE
  "libsedna_sim.a"
)
