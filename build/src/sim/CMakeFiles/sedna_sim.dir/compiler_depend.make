# Empty compiler generated dependencies file for sedna_sim.
# This may be replaced when dependencies are built.
