file(REMOVE_RECURSE
  "CMakeFiles/sedna_sim.dir/network.cc.o"
  "CMakeFiles/sedna_sim.dir/network.cc.o.d"
  "libsedna_sim.a"
  "libsedna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
