# Empty compiler generated dependencies file for sedna_trigger.
# This may be replaced when dependencies are built.
