file(REMOVE_RECURSE
  "libsedna_trigger.a"
)
