file(REMOVE_RECURSE
  "CMakeFiles/sedna_trigger.dir/runtime.cc.o"
  "CMakeFiles/sedna_trigger.dir/runtime.cc.o.d"
  "libsedna_trigger.a"
  "libsedna_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
