# Empty compiler generated dependencies file for sedna_ring.
# This may be replaced when dependencies are built.
