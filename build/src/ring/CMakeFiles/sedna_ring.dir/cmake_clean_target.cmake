file(REMOVE_RECURSE
  "libsedna_ring.a"
)
