file(REMOVE_RECURSE
  "CMakeFiles/sedna_ring.dir/rebalancer.cc.o"
  "CMakeFiles/sedna_ring.dir/rebalancer.cc.o.d"
  "CMakeFiles/sedna_ring.dir/vnode_table.cc.o"
  "CMakeFiles/sedna_ring.dir/vnode_table.cc.o.d"
  "libsedna_ring.a"
  "libsedna_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
