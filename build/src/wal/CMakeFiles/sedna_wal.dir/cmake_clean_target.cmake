file(REMOVE_RECURSE
  "libsedna_wal.a"
)
