file(REMOVE_RECURSE
  "CMakeFiles/sedna_wal.dir/persistence.cc.o"
  "CMakeFiles/sedna_wal.dir/persistence.cc.o.d"
  "CMakeFiles/sedna_wal.dir/snapshot.cc.o"
  "CMakeFiles/sedna_wal.dir/snapshot.cc.o.d"
  "CMakeFiles/sedna_wal.dir/wal.cc.o"
  "CMakeFiles/sedna_wal.dir/wal.cc.o.d"
  "libsedna_wal.a"
  "libsedna_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
