# Empty compiler generated dependencies file for sedna_wal.
# This may be replaced when dependencies are built.
