file(REMOVE_RECURSE
  "CMakeFiles/sedna_store.dir/local_store.cc.o"
  "CMakeFiles/sedna_store.dir/local_store.cc.o.d"
  "libsedna_store.a"
  "libsedna_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
