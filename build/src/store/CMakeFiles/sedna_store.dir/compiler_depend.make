# Empty compiler generated dependencies file for sedna_store.
# This may be replaced when dependencies are built.
