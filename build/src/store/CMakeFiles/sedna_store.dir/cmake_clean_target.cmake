file(REMOVE_RECURSE
  "libsedna_store.a"
)
