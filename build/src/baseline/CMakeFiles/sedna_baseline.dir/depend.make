# Empty dependencies file for sedna_baseline.
# This may be replaced when dependencies are built.
