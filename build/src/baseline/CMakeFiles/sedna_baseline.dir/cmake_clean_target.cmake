file(REMOVE_RECURSE
  "libsedna_baseline.a"
)
