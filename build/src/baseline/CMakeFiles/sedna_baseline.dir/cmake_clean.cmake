file(REMOVE_RECURSE
  "CMakeFiles/sedna_baseline.dir/memcache.cc.o"
  "CMakeFiles/sedna_baseline.dir/memcache.cc.o.d"
  "libsedna_baseline.a"
  "libsedna_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
