file(REMOVE_RECURSE
  "CMakeFiles/iterative_triggers.dir/iterative_triggers.cpp.o"
  "CMakeFiles/iterative_triggers.dir/iterative_triggers.cpp.o.d"
  "iterative_triggers"
  "iterative_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
