# Empty compiler generated dependencies file for iterative_triggers.
# This may be replaced when dependencies are built.
