file(REMOVE_RECURSE
  "CMakeFiles/microblog_search.dir/microblog_search.cpp.o"
  "CMakeFiles/microblog_search.dir/microblog_search.cpp.o.d"
  "microblog_search"
  "microblog_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microblog_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
