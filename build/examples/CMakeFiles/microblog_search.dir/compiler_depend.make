# Empty compiler generated dependencies file for microblog_search.
# This may be replaced when dependencies are built.
