
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/microblog_search.cpp" "examples/CMakeFiles/microblog_search.dir/microblog_search.cpp.o" "gcc" "examples/CMakeFiles/microblog_search.dir/microblog_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sedna_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trigger/CMakeFiles/sedna_trigger.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/sedna_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/sedna_store.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/sedna_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/sedna_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sedna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
