file(REMOVE_RECURSE
  "CMakeFiles/realtime_analytics.dir/realtime_analytics.cpp.o"
  "CMakeFiles/realtime_analytics.dir/realtime_analytics.cpp.o.d"
  "realtime_analytics"
  "realtime_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
