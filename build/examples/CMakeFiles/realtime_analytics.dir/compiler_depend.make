# Empty compiler generated dependencies file for realtime_analytics.
# This may be replaced when dependencies are built.
