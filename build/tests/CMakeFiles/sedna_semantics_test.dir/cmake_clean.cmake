file(REMOVE_RECURSE
  "CMakeFiles/sedna_semantics_test.dir/sedna_semantics_test.cc.o"
  "CMakeFiles/sedna_semantics_test.dir/sedna_semantics_test.cc.o.d"
  "sedna_semantics_test"
  "sedna_semantics_test.pdb"
  "sedna_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedna_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
