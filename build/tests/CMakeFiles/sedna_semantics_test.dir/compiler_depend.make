# Empty compiler generated dependencies file for sedna_semantics_test.
# This may be replaced when dependencies are built.
