file(REMOVE_RECURSE
  "CMakeFiles/trigger_unit_test.dir/trigger_unit_test.cc.o"
  "CMakeFiles/trigger_unit_test.dir/trigger_unit_test.cc.o.d"
  "trigger_unit_test"
  "trigger_unit_test.pdb"
  "trigger_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
