# Empty dependencies file for trigger_unit_test.
# This may be replaced when dependencies are built.
