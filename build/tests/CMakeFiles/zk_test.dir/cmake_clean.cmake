file(REMOVE_RECURSE
  "CMakeFiles/zk_test.dir/zk_test.cc.o"
  "CMakeFiles/zk_test.dir/zk_test.cc.o.d"
  "zk_test"
  "zk_test.pdb"
  "zk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
