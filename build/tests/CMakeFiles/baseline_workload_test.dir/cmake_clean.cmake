file(REMOVE_RECURSE
  "CMakeFiles/baseline_workload_test.dir/baseline_workload_test.cc.o"
  "CMakeFiles/baseline_workload_test.dir/baseline_workload_test.cc.o.d"
  "baseline_workload_test"
  "baseline_workload_test.pdb"
  "baseline_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
