# Empty dependencies file for zk_fault_test.
# This may be replaced when dependencies are built.
