file(REMOVE_RECURSE
  "CMakeFiles/zk_fault_test.dir/zk_fault_test.cc.o"
  "CMakeFiles/zk_fault_test.dir/zk_fault_test.cc.o.d"
  "zk_fault_test"
  "zk_fault_test.pdb"
  "zk_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zk_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
