# Empty dependencies file for scan_ttl_test.
# This may be replaced when dependencies are built.
