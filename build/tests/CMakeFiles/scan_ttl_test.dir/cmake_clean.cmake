file(REMOVE_RECURSE
  "CMakeFiles/scan_ttl_test.dir/scan_ttl_test.cc.o"
  "CMakeFiles/scan_ttl_test.dir/scan_ttl_test.cc.o.d"
  "scan_ttl_test"
  "scan_ttl_test.pdb"
  "scan_ttl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_ttl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
