file(REMOVE_RECURSE
  "CMakeFiles/quorum_property_test.dir/quorum_property_test.cc.o"
  "CMakeFiles/quorum_property_test.dir/quorum_property_test.cc.o.d"
  "quorum_property_test"
  "quorum_property_test.pdb"
  "quorum_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
