# Empty dependencies file for cluster_extensions_test.
# This may be replaced when dependencies are built.
