file(REMOVE_RECURSE
  "CMakeFiles/cluster_extensions_test.dir/cluster_extensions_test.cc.o"
  "CMakeFiles/cluster_extensions_test.dir/cluster_extensions_test.cc.o.d"
  "cluster_extensions_test"
  "cluster_extensions_test.pdb"
  "cluster_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
