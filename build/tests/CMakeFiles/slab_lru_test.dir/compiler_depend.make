# Empty compiler generated dependencies file for slab_lru_test.
# This may be replaced when dependencies are built.
