file(REMOVE_RECURSE
  "CMakeFiles/slab_lru_test.dir/slab_lru_test.cc.o"
  "CMakeFiles/slab_lru_test.dir/slab_lru_test.cc.o.d"
  "slab_lru_test"
  "slab_lru_test.pdb"
  "slab_lru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slab_lru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
