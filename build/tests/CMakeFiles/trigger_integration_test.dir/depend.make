# Empty dependencies file for trigger_integration_test.
# This may be replaced when dependencies are built.
