file(REMOVE_RECURSE
  "CMakeFiles/trigger_integration_test.dir/trigger_integration_test.cc.o"
  "CMakeFiles/trigger_integration_test.dir/trigger_integration_test.cc.o.d"
  "trigger_integration_test"
  "trigger_integration_test.pdb"
  "trigger_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
