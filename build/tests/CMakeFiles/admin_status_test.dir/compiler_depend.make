# Empty compiler generated dependencies file for admin_status_test.
# This may be replaced when dependencies are built.
