file(REMOVE_RECURSE
  "CMakeFiles/admin_status_test.dir/admin_status_test.cc.o"
  "CMakeFiles/admin_status_test.dir/admin_status_test.cc.o.d"
  "admin_status_test"
  "admin_status_test.pdb"
  "admin_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
