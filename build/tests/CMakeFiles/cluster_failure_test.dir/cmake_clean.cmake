file(REMOVE_RECURSE
  "CMakeFiles/cluster_failure_test.dir/cluster_failure_test.cc.o"
  "CMakeFiles/cluster_failure_test.dir/cluster_failure_test.cc.o.d"
  "cluster_failure_test"
  "cluster_failure_test.pdb"
  "cluster_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
