# Empty dependencies file for protocol_metadata_test.
# This may be replaced when dependencies are built.
