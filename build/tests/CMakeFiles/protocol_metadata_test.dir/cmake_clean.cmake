file(REMOVE_RECURSE
  "CMakeFiles/protocol_metadata_test.dir/protocol_metadata_test.cc.o"
  "CMakeFiles/protocol_metadata_test.dir/protocol_metadata_test.cc.o.d"
  "protocol_metadata_test"
  "protocol_metadata_test.pdb"
  "protocol_metadata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
