file(REMOVE_RECURSE
  "CMakeFiles/cluster_persistence_test.dir/cluster_persistence_test.cc.o"
  "CMakeFiles/cluster_persistence_test.dir/cluster_persistence_test.cc.o.d"
  "cluster_persistence_test"
  "cluster_persistence_test.pdb"
  "cluster_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
