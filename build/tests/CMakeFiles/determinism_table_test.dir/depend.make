# Empty dependencies file for determinism_table_test.
# This may be replaced when dependencies are built.
