file(REMOVE_RECURSE
  "CMakeFiles/determinism_table_test.dir/determinism_table_test.cc.o"
  "CMakeFiles/determinism_table_test.dir/determinism_table_test.cc.o.d"
  "determinism_table_test"
  "determinism_table_test.pdb"
  "determinism_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
