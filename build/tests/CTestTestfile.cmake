# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cluster_integration_test[1]_include.cmake")
include("/root/repo/build/tests/trigger_integration_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/zk_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/quorum_property_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_failure_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_workload_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/trigger_unit_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_metadata_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_table_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/zk_fault_test[1]_include.cmake")
include("/root/repo/build/tests/admin_status_test[1]_include.cmake")
include("/root/repo/build/tests/scan_ttl_test[1]_include.cmake")
include("/root/repo/build/tests/slab_lru_test[1]_include.cmake")
include("/root/repo/build/tests/sedna_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/store_model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_persistence_test[1]_include.cmake")
