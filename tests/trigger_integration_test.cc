// End-to-end trigger tests on the simulated cluster: activation on the
// primary replica only, interval coalescing, filters, cascades (Fig. 4),
// and ripple suppression of trigger cycles (Section IV.B).
#include <gtest/gtest.h>

#include <atomic>

#include "cluster/sedna_cluster.h"
#include "trigger/service.h"

namespace sedna::trigger {
namespace {

using cluster::SednaCluster;
using cluster::SednaClusterConfig;

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

struct Recorder {
  std::vector<std::pair<std::string, std::vector<std::string>>> calls;
};

std::shared_ptr<Job> recording_job(const std::string& name,
                                   const std::string& hook,
                                   std::shared_ptr<Recorder> rec,
                                   SimDuration interval = sim_ms(50),
                                   std::shared_ptr<Filter> filter = {}) {
  Job::Config jc;
  jc.name = name;
  jc.trigger_interval = interval;
  DataHooks hooks;
  hooks.add(hook);
  auto action = std::make_shared<FunctionAction>(
      [rec](const std::string& key, const std::vector<std::string>& values,
            ResultWriter&) { rec->calls.emplace_back(key, values); });
  return std::make_shared<Job>(jc, TriggerInput{hooks, std::move(filter)},
                               TriggerOutput{}, action);
}

TEST(Trigger, FiresOncePerChangeDespiteReplication) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  triggers.schedule(recording_job("watch", "tweets", rec));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "tweets/t1/m1", "hello").ok());
  cluster.run_for(sim_ms(300));

  ASSERT_EQ(rec->calls.size(), 1u);
  EXPECT_EQ(rec->calls[0].first, "tweets/t1/m1");
  ASSERT_EQ(rec->calls[0].second.size(), 1u);
  EXPECT_EQ(rec->calls[0].second[0], "hello");
}

TEST(Trigger, TableAndPairHooksMatchHierarchically) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto table_rec = std::make_shared<Recorder>();
  auto pair_rec = std::make_shared<Recorder>();
  triggers.schedule(recording_job("table", "ds/t1", table_rec));
  triggers.schedule(recording_job("pair", "ds/t1/k1", pair_rec));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "ds/t1/k1", "a").ok());
  ASSERT_TRUE(cluster.write_latest(client, "ds/t1/k2", "b").ok());
  ASSERT_TRUE(cluster.write_latest(client, "ds/t2/k1", "c").ok());
  cluster.run_for(sim_ms(300));

  EXPECT_EQ(table_rec->calls.size(), 2u);  // k1 and k2, not t2
  EXPECT_EQ(pair_rec->calls.size(), 1u);   // only the exact pair
}

TEST(Trigger, BurstWithinIntervalCoalescesToFreshest) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  triggers.schedule(recording_job("watch", "t", rec, sim_ms(500)));

  auto& client = cluster.make_client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "t/x/k",
                                     "v" + std::to_string(i)).ok());
  }
  cluster.run_for(sim_sec(2));

  // All ten writes landed inside one or two trigger intervals; far fewer
  // than ten activations, and the last one saw the freshest value.
  ASSERT_GE(rec->calls.size(), 1u);
  EXPECT_LE(rec->calls.size(), 3u);
  EXPECT_EQ(rec->calls.back().second.at(0), "v9");
}

TEST(Trigger, FilterBlocksActivations) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  auto filter = std::make_shared<FunctionFilter>(
      [](const std::string&, const std::string&, const std::string&,
         const std::string& new_value) { return new_value == "keep"; });
  triggers.schedule(recording_job("watch", "t", rec, sim_ms(20), filter));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/drop-me", "drop").ok());
  cluster.run_for(sim_ms(200));
  ASSERT_TRUE(cluster.write_latest(client, "t/x/keep-me", "keep").ok());
  cluster.run_for(sim_ms(200));

  ASSERT_EQ(rec->calls.size(), 1u);
  EXPECT_EQ(rec->calls[0].first, "t/x/keep-me");
}

TEST(Trigger, FilterSeesOldAndNewValues) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  // Stop-condition style filter: fire only when the value actually grew.
  auto filter = std::make_shared<FunctionFilter>(
      [](const std::string&, const std::string& old_value,
         const std::string&, const std::string& new_value) {
        return new_value.size() > old_value.size();
      });
  triggers.schedule(recording_job("watch", "t", rec, sim_ms(20), filter));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "aa").ok());
  cluster.run_for(sim_ms(100));
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "aaaa").ok());
  cluster.run_for(sim_ms(100));
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "bb").ok());  // shrank
  cluster.run_for(sim_ms(100));

  EXPECT_EQ(rec->calls.size(), 2u);
}

TEST(Trigger, CascadeAcrossJobs) {
  // Fig. 4 left: trigger A's output pushes forward trigger C.
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);

  auto rec = std::make_shared<Recorder>();
  {
    Job::Config jc;
    jc.name = "stage-a";
    jc.trigger_interval = sim_ms(20);
    DataHooks hooks;
    hooks.add("input");
    auto action = std::make_shared<FunctionAction>(
        [](const std::string& key, const std::vector<std::string>& values,
           ResultWriter& out) {
          out.put("stage/t/" + KeyPath::parse(key).key(),
                  values.empty() ? "" : values[0] + "!");
        });
    triggers.schedule(std::make_shared<Job>(jc, TriggerInput{hooks, {}},
                                            TriggerOutput{}, action));
  }
  triggers.schedule(recording_job("stage-b", "stage", rec, sim_ms(20)));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "input/t/k", "data").ok());
  cluster.run_for(sim_sec(1));

  ASSERT_EQ(rec->calls.size(), 1u);
  EXPECT_EQ(rec->calls[0].first, "stage/t/k");
  EXPECT_EQ(rec->calls[0].second.at(0), "data!");
}

TEST(Trigger, RippleCycleIsSuppressedByInterval) {
  // Fig. 4 right: A -> C -> A cycles would double activation frequency
  // every round; the per-key trigger interval bounds it.
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);

  auto ping_count = std::make_shared<int>(0);
  {
    Job::Config jc;
    jc.name = "ping";
    jc.trigger_interval = sim_ms(100);
    DataHooks hooks;
    hooks.add("ping");
    auto action = std::make_shared<FunctionAction>(
        [ping_count](const std::string&, const std::vector<std::string>& v,
                     ResultWriter& out) {
          ++*ping_count;
          out.put("pong/t/k", v.empty() ? "x" : v[0]);
        });
    triggers.schedule(std::make_shared<Job>(jc, TriggerInput{hooks, {}},
                                            TriggerOutput{}, action));
  }
  {
    Job::Config jc;
    jc.name = "pong";
    jc.trigger_interval = sim_ms(100);
    DataHooks hooks;
    hooks.add("pong");
    auto action = std::make_shared<FunctionAction>(
        [](const std::string&, const std::vector<std::string>& v,
           ResultWriter& out) {
          out.put("ping/t/k", v.empty() ? "x" : v[0] + "y");
        });
    triggers.schedule(std::make_shared<Job>(jc, TriggerInput{hooks, {}},
                                            TriggerOutput{}, action));
  }

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "ping/t/k", "go").ok());
  cluster.run_for(sim_sec(2));

  // 2 seconds / 100 ms interval = at most ~20 activations of "ping", not
  // the exponential flood an unthrottled cycle would produce.
  EXPECT_GE(*ping_count, 5);
  EXPECT_LE(*ping_count, 25);
}

TEST(Trigger, JobTimeoutUnregisters) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  triggers.schedule(recording_job("watch", "t", rec), sim_ms(500));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k1", "v").ok());
  cluster.run_for(sim_sec(1));  // job expires
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k2", "v").ok());
  cluster.run_for(sim_ms(300));

  ASSERT_EQ(rec->calls.size(), 1u);
  EXPECT_EQ(rec->calls[0].first, "t/x/k1");
}

TEST(Trigger, DeleteProducesChangeButNoGhostValues) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto rec = std::make_shared<Recorder>();
  triggers.schedule(recording_job("watch", "t", rec, sim_ms(10)));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v").ok());
  cluster.run_for(sim_ms(100));
  ASSERT_EQ(rec->calls.size(), 1u);

  // Local deletion on the primary (there is no client delete API in the
  // paper; exercise the store-level path).
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    cluster.node(i).local_store().del("t/x/k");
  }
  cluster.run_for(sim_ms(100));
  ASSERT_EQ(rec->calls.size(), 2u);
  EXPECT_TRUE(rec->calls[1].second.empty());
}

}  // namespace
}  // namespace sedna::trigger
