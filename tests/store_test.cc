// Unit and property tests for the LocalStore engine: memcached surface,
// Sedna LWW / value-list semantics, expiry, LRU eviction, slab accounting,
// dirty-table change capture, and thread safety.
#include <gtest/gtest.h>

#include <thread>

#include "store/local_store.h"

namespace sedna::store {
namespace {

// ---- write_latest / read_latest (Section III.F) ----------------------------

TEST(WriteLatest, StoresAndReads) {
  LocalStore store;
  EXPECT_TRUE(store.write_latest("k", "v", 10).ok());
  auto got = store.read_latest("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
  EXPECT_EQ(got->ts, 10u);
}

TEST(WriteLatest, NewerTimestampWins) {
  LocalStore store;
  ASSERT_TRUE(store.write_latest("k", "old", 10).ok());
  ASSERT_TRUE(store.write_latest("k", "new", 20).ok());
  EXPECT_EQ(store.read_latest("k")->value, "new");
}

TEST(WriteLatest, OlderTimestampRejectedAsOutdated) {
  LocalStore store;
  ASSERT_TRUE(store.write_latest("k", "new", 20).ok());
  const Status st = store.write_latest("k", "old", 10);
  EXPECT_TRUE(st.is(StatusCode::kOutdated));
  EXPECT_EQ(store.read_latest("k")->value, "new");
  EXPECT_EQ(store.stats().set_outdated, 1u);
}

TEST(WriteLatest, EqualTimestampResolvesByValueTieBreakNotArrivalOrder) {
  // Equal timestamps from different writers resolve by the deterministic
  // value tie-break (hash, then value) — never by arrival order, or
  // replicas seeing the two writes in different orders would diverge
  // (tests/dvv_test.cc sweeps every delivery permutation).
  LocalStore a, b;
  ASSERT_TRUE(a.write_latest("k", "a", 10).ok());
  const bool b_wins = a.write_latest("k", "b", 10).ok();
  ASSERT_TRUE(b.write_latest("k", "b", 10).ok());
  const bool a_wins = b.write_latest("k", "a", 10).ok();
  EXPECT_NE(b_wins, a_wins);  // exactly one value wins the tie
  EXPECT_EQ(a.read_latest("k")->value, b.read_latest("k")->value);
  // The losing side of the tie is still a rejected conflict.
  EXPECT_EQ(a.stats().set_outdated + b.stats().set_outdated, 1u);
}

TEST(ReadLatest, MissingKeyIsNotFound) {
  LocalStore store;
  EXPECT_TRUE(store.read_latest("nope").status().is(StatusCode::kNotFound));
  EXPECT_EQ(store.stats().get_misses, 1u);
}

// ---- write_all / read_all ---------------------------------------------------

TEST(WriteAll, OneElementPerSource) {
  LocalStore store;
  ASSERT_TRUE(store.write_all("k", 1, "from-1", 10).ok());
  ASSERT_TRUE(store.write_all("k", 2, "from-2", 11).ok());
  auto list = store.read_all("k");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

TEST(WriteAll, SameSourceUpdatesInPlaceWhenNewer) {
  LocalStore store;
  ASSERT_TRUE(store.write_all("k", 1, "v1", 10).ok());
  ASSERT_TRUE(store.write_all("k", 1, "v2", 20).ok());
  auto list = store.read_all("k");
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].value, "v2");
  EXPECT_EQ((*list)[0].ts, 20u);
}

TEST(WriteAll, SameSourceOlderTimestampIsOutdated) {
  LocalStore store;
  ASSERT_TRUE(store.write_all("k", 1, "v2", 20).ok());
  EXPECT_TRUE(store.write_all("k", 1, "v1", 10).is(StatusCode::kOutdated));
  EXPECT_EQ(store.read_all("k")->at(0).value, "v2");
}

TEST(WriteAll, OtherSourcesUnaffectedByOutdatedWrite) {
  LocalStore store;
  ASSERT_TRUE(store.write_all("k", 1, "a", 100).ok());
  ASSERT_TRUE(store.write_all("k", 2, "b", 5).ok());  // older ts, new source
  EXPECT_EQ(store.read_all("k")->size(), 2u);
}

TEST(WriteAll, LatestAndListCoexistOnOneKey) {
  LocalStore store;
  ASSERT_TRUE(store.write_latest("k", "single", 5).ok());
  ASSERT_TRUE(store.write_all("k", 1, "listed", 6).ok());
  EXPECT_EQ(store.read_latest("k")->value, "single");
  EXPECT_EQ(store.read_all("k")->size(), 1u);
}

// ---- memcached surface ------------------------------------------------------

TEST(McSet, UnconditionalOverwrite) {
  LocalStore store;
  EXPECT_TRUE(store.set("k", "a").ok());
  EXPECT_TRUE(store.set("k", "b").ok());
  EXPECT_EQ(store.get("k")->value, "b");
}

TEST(McSet, AutoTimestampsIncrease) {
  LocalStore store;
  store.set("k", "a");
  const Timestamp t1 = store.get("k")->ts;
  store.set("k", "b");
  EXPECT_GT(store.get("k")->ts, t1);
}

TEST(McAdd, FailsIfPresent) {
  LocalStore store;
  EXPECT_TRUE(store.add("k", "a").ok());
  EXPECT_TRUE(store.add("k", "b").is(StatusCode::kAlreadyExists));
  EXPECT_EQ(store.get("k")->value, "a");
}

TEST(McReplace, FailsIfAbsent) {
  LocalStore store;
  EXPECT_TRUE(store.replace("k", "a").is(StatusCode::kNotFound));
  store.set("k", "a");
  EXPECT_TRUE(store.replace("k", "b").ok());
  EXPECT_EQ(store.get("k")->value, "b");
}

TEST(McCas, SucceedsWithFreshToken) {
  LocalStore store;
  store.set("k", "a");
  auto got = store.gets("k");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(store.cas("k", "b", got->second).ok());
  EXPECT_EQ(store.get("k")->value, "b");
  EXPECT_EQ(store.stats().cas_hits, 1u);
}

TEST(McCas, FailsWithStaleToken) {
  LocalStore store;
  store.set("k", "a");
  auto got = store.gets("k");
  store.set("k", "b");  // bumps the cas token
  EXPECT_FALSE(store.cas("k", "c", got->second).ok());
  EXPECT_EQ(store.get("k")->value, "b");
  EXPECT_EQ(store.stats().cas_misses, 1u);
}

TEST(McCas, MissingKeyIsNotFound) {
  LocalStore store;
  EXPECT_TRUE(store.cas("k", "v", 1).is(StatusCode::kNotFound));
}

TEST(McIncrDecr, NumericStrings) {
  LocalStore store;
  store.set("n", "10");
  EXPECT_EQ(store.incr("n", 5).value(), 15u);
  EXPECT_EQ(store.decr("n", 3).value(), 12u);
  EXPECT_EQ(store.get("n")->value, "12");
}

TEST(McDecr, SaturatesAtZeroLikeMemcached) {
  LocalStore store;
  store.set("n", "3");
  EXPECT_EQ(store.decr("n", 100).value(), 0u);
}

TEST(McIncr, NonNumericRejected) {
  LocalStore store;
  store.set("n", "abc");
  EXPECT_TRUE(store.incr("n", 1).status().is(StatusCode::kInvalidArgument));
}

TEST(McIncr, TrailingGarbageRejected) {
  LocalStore store;
  store.set("n", "12x");
  EXPECT_FALSE(store.incr("n", 1).ok());
}

TEST(McDelete, RemovesKey) {
  LocalStore store;
  store.set("k", "v");
  EXPECT_TRUE(store.del("k").ok());
  EXPECT_FALSE(store.get("k").ok());
  EXPECT_TRUE(store.del("k").is(StatusCode::kNotFound));
  EXPECT_EQ(store.stats().deletes, 1u);
}

// ---- expiry -----------------------------------------------------------------

struct FakeClock {
  std::uint64_t now = 0;
};

TEST(Expiry, ItemExpiresLazily) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  store.set("k", "v", 0, /*ttl=*/100);
  clock.now = 50;
  EXPECT_TRUE(store.get("k").ok());
  clock.now = 100;
  EXPECT_FALSE(store.get("k").ok());
  EXPECT_EQ(store.stats().expired, 1u);
}

TEST(Expiry, TouchExtendsLife) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  store.set("k", "v", 0, 100);
  clock.now = 90;
  EXPECT_TRUE(store.touch("k", 100).ok());
  clock.now = 150;
  EXPECT_TRUE(store.get("k").ok());  // now expires at 190
  clock.now = 190;
  EXPECT_FALSE(store.get("k").ok());
}

TEST(Expiry, ZeroTtlNeverExpires) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  store.set("k", "v");
  clock.now = UINT32_MAX;
  EXPECT_TRUE(store.get("k").ok());
}

TEST(Expiry, SweepReclaimsProactively) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  for (int i = 0; i < 100; ++i) {
    store.set("k" + std::to_string(i), "v", 0, 10);
  }
  clock.now = 11;
  EXPECT_EQ(store.expire_sweep(), 100u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(Expiry, SweepHonoursLimit) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  for (int i = 0; i < 100; ++i) {
    store.set("k" + std::to_string(i), "v", 0, 10);
  }
  clock.now = 11;
  EXPECT_EQ(store.expire_sweep(30), 30u);
  EXPECT_EQ(store.size(), 70u);
}

TEST(Expiry, ExpiredSlotReusableForWriteLatest) {
  FakeClock clock;
  LocalStore store({}, [&clock] { return clock.now; });
  store.set("k", "old", 0, 10);
  clock.now = 20;
  // Lazy expiry removes the item, so even an older LWW timestamp lands.
  EXPECT_TRUE(store.write_latest("k", "new", 1).ok());
  EXPECT_EQ(store.read_latest("k")->value, "new");
}

// ---- LRU eviction / memory accounting ---------------------------------------

TEST(Eviction, StaysUnderBudget) {
  LocalStoreConfig cfg;
  cfg.shards = 1;
  cfg.memory_budget_bytes = 16 * 1024;
  LocalStore store(cfg);
  for (int i = 0; i < 2000; ++i) {
    store.set("key-" + std::to_string(i), std::string(32, 'v'));
  }
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_LE(store.stats().bytes, 16u * 1024u);
  EXPECT_LT(store.size(), 2000u);
}

TEST(Eviction, RecentlyUsedSurvive) {
  LocalStoreConfig cfg;
  cfg.shards = 1;
  cfg.memory_budget_bytes = 64 * 1024;
  LocalStore store(cfg);
  store.set("hot", "v");
  for (int i = 0; i < 4000; ++i) {
    store.set("cold-" + std::to_string(i), std::string(64, 'v'));
    store.get("hot");  // keep it at the LRU head
  }
  EXPECT_TRUE(store.get("hot").ok());
}

TEST(Eviction, UnlimitedBudgetNeverEvicts) {
  LocalStore store;
  for (int i = 0; i < 5000; ++i) {
    store.set("k" + std::to_string(i), std::string(100, 'v'));
  }
  EXPECT_EQ(store.stats().evictions, 0u);
  EXPECT_EQ(store.size(), 5000u);
}

TEST(Accounting, BytesTrackValueGrowth) {
  LocalStore store;
  store.set("k", "small");
  const auto small = store.stats().bytes;
  store.set("k", std::string(1000, 'x'));
  const auto big = store.stats().bytes;
  EXPECT_GT(big, small + 900);
  store.set("k", "small");
  EXPECT_LT(store.stats().bytes, big);
}

TEST(Accounting, SlabChargesAtLeastPayload) {
  LocalStore store;
  for (int i = 0; i < 100; ++i) {
    store.set("k" + std::to_string(i), std::string(200, 'v'));
  }
  EXPECT_GE(store.slab_charged_bytes(), store.stats().bytes);
}

TEST(Accounting, DeleteReleasesBytes) {
  LocalStore store;
  store.set("k", std::string(1000, 'v'));
  const auto before = store.stats().bytes;
  store.del("k");
  EXPECT_LT(store.stats().bytes, before);
  EXPECT_EQ(store.stats().bytes, 0u);
}

// ---- change capture (dirty table, Section IV.C) ------------------------------

TEST(Changes, DisabledByDefault) {
  LocalStore store;
  store.set("k", "v");
  EXPECT_EQ(store.pending_changes(), 0u);
}

TEST(Changes, CapturesOldAndNew) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.write_latest("k", "v1", 1);
  store.write_latest("k", "v2", 2);
  auto changes = store.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].key, "k");
  EXPECT_FALSE(changes[0].had_old);  // first write created the key
  EXPECT_EQ(changes[0].new_value.value, "v2");  // coalesced to freshest
}

TEST(Changes, CoalesceSpansFirstOldToLastNew) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.write_latest("k", "base", 1);
  (void)store.drain_changes();
  store.write_latest("k", "mid", 2);
  store.write_latest("k", "final", 3);
  auto changes = store.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(changes[0].had_old);
  EXPECT_EQ(changes[0].old_value.value, "base");
  EXPECT_EQ(changes[0].new_value.value, "final");
}

TEST(Changes, DrainClearsTable) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set("k", "v");
  EXPECT_EQ(store.drain_changes().size(), 1u);
  EXPECT_EQ(store.drain_changes().size(), 0u);
}

TEST(Changes, DeleteRecorded) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set("k", "v");
  (void)store.drain_changes();
  store.del("k");
  auto changes = store.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(changes[0].deleted);
}

TEST(Changes, MonitoredPredicateFilters) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set_monitored_predicate([](std::string_view key) {
    return key.starts_with("watched/");
  });
  store.set("watched/k", "v");
  store.set("ignored/k", "v");
  auto changes = store.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].key, "watched/k");
}

TEST(Changes, PredicateReevaluatedOnExistingItems) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set_monitored_predicate([](std::string_view) { return false; });
  store.set("k", "v1");
  EXPECT_EQ(store.drain_changes().size(), 0u);
  store.set_monitored_predicate([](std::string_view) { return true; });
  store.set("k", "v2");
  EXPECT_EQ(store.drain_changes().size(), 1u);
}

TEST(Changes, OutdatedWritesProduceNoChange) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.write_latest("k", "v", 100);
  (void)store.drain_changes();
  store.write_latest("k", "stale", 50);
  EXPECT_EQ(store.pending_changes(), 0u);
}

// ---- iteration / misc ---------------------------------------------------------

TEST(Iteration, ForEachVisitsEverything) {
  LocalStore store;
  for (int i = 0; i < 50; ++i) store.set("k" + std::to_string(i), "v");
  std::size_t visited = 0;
  store.for_each([&](const Item&) { ++visited; });
  EXPECT_EQ(visited, 50u);
}

TEST(Iteration, ForEachMatchingFilters) {
  LocalStore store;
  store.set("a/1", "v");
  store.set("a/2", "v");
  store.set("b/1", "v");
  std::size_t visited = 0;
  store.for_each_matching(
      [](std::string_view key) { return key.starts_with("a/"); },
      [&](const Item&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

TEST(Misc, ClearEmptiesEverything) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set("k", "v");
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.pending_changes(), 0u);
  EXPECT_FALSE(store.get("k").ok());
  EXPECT_TRUE(store.set("k", "again").ok());
}

TEST(Misc, NextTimestampMonotone) {
  LocalStore store;
  Timestamp prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = store.next_timestamp();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Misc, ManyKeysTriggerBucketGrowth) {
  LocalStoreConfig cfg;
  cfg.shards = 1;
  cfg.initial_buckets_per_shard = 8;
  LocalStore store(cfg);
  for (int i = 0; i < 10000; ++i) {
    store.set("grow-" + std::to_string(i), "v");
  }
  EXPECT_EQ(store.size(), 10000u);
  for (int i = 0; i < 10000; i += 997) {
    EXPECT_TRUE(store.get("grow-" + std::to_string(i)).ok());
  }
}

// ---- shard-count parameterized sweep -----------------------------------------

class ShardSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardSweep, RoundTripAcrossShardCounts) {
  LocalStoreConfig cfg;
  cfg.shards = GetParam();
  LocalStore store(cfg);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store.write_latest("key-" + std::to_string(i),
                                   "value-" + std::to_string(i),
                                   static_cast<Timestamp>(i + 1)).ok());
  }
  for (int i = 0; i < 1000; ++i) {
    auto got = store.read_latest("key-" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "value-" + std::to_string(i));
  }
  EXPECT_EQ(store.size(), 1000u);
}

TEST_P(ShardSweep, StatsAggregateAcrossShards) {
  LocalStoreConfig cfg;
  cfg.shards = GetParam();
  LocalStore store(cfg);
  for (int i = 0; i < 100; ++i) store.set("k" + std::to_string(i), "v");
  for (int i = 0; i < 100; ++i) store.get("k" + std::to_string(i));
  EXPECT_EQ(store.stats().sets, 100u);
  EXPECT_EQ(store.stats().get_hits, 100u);
  EXPECT_EQ(store.stats().curr_items, 100u);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

// ---- concurrency --------------------------------------------------------------

TEST(Concurrency, ParallelSetsAllLand) {
  LocalStoreConfig cfg;
  cfg.shards = 16;
  LocalStore store(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.set("t" + std::to_string(t) + "-" + std::to_string(i), "v");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Concurrency, LwwIsRaceFreePerKey) {
  LocalStore store;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 1000; ++i) {
        const auto ts = static_cast<Timestamp>(i * kThreads + t + 1);
        store.write_latest("contended", "w" + std::to_string(ts), ts);
      }
    });
  }
  for (auto& th : threads) th.join();
  // The winner must be the globally maximal timestamp.
  auto got = store.read_latest("contended");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ts, static_cast<Timestamp>(1000 * kThreads));
  EXPECT_EQ(got->value, "w" + std::to_string(1000 * kThreads));
}

TEST(Concurrency, CasLosesExactlyNMinus1PerRound) {
  LocalStore store;
  store.set("counter", "0");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {  // classic CAS loop
          auto got = store.gets("counter");
          const auto current = std::stoull(got->first.value);
          if (store.cas("counter", std::to_string(current + 1),
                        got->second).ok()) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.get("counter")->value,
            std::to_string(kThreads * kIncrements));
}

}  // namespace
}  // namespace sedna::store
