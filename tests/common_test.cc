// Unit tests for src/common: status/result, hashing, codec, crc32, rng,
// keypath hierarchy, metrics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/keypath.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"

namespace sedna {
namespace {

// ---- Status / Result ------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status st = Status::Outdated("stale write");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.is(StatusCode::kOutdated));
  EXPECT_EQ(st.message(), "stale write");
  EXPECT_EQ(st.to_string(), "outdated: stale write");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Timeout("a"), Status::Timeout("b"));
  EXPECT_FALSE(Status::Timeout() == Status::Refused());
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultT, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultT, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultT, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

// ---- Hashing ---------------------------------------------------------------

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  // And is stable for a known input.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, DeterministicAcrossCalls) {
  EXPECT_EQ(ring_hash("test-000001"), ring_hash("test-000001"));
  EXPECT_EQ(bucket_hash("k"), bucket_hash("k"));
}

TEST(Hash, RingAndBucketAreDecorrelated) {
  // The two hash layers must not agree, or shard choice correlates with
  // vnode choice.
  int same_low_bits = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if ((ring_hash(key) & 0xff) == (bucket_hash(key) & 0xff)) {
      ++same_low_bits;
    }
  }
  EXPECT_LT(same_low_bits, 30);  // ~1000/256 expected by chance
}

TEST(Hash, RingHashSpreadsUniformly) {
  // Chi-square-ish sanity over 64 buckets.
  std::vector<int> buckets(64, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    ++buckets[ring_hash("test-" + std::to_string(i)) % 64];
  }
  for (int count : buckets) {
    EXPECT_GT(count, n / 64 / 2);
    EXPECT_LT(count, n / 64 * 2);
  }
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x123456789abcdefULL);
    const std::uint64_t b = mix64(0x123456789abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

// ---- Timestamps -------------------------------------------------------------

TEST(Timestamp, ClockDominatesSequence) {
  EXPECT_LT(make_timestamp(100, 0xffff), make_timestamp(101, 0));
  EXPECT_LT(make_timestamp(100, 1), make_timestamp(100, 2));
}

TEST(Timestamp, ClockRecoverable) {
  EXPECT_EQ(timestamp_clock(make_timestamp(123456, 42)), 123456u);
}

// ---- Codec ------------------------------------------------------------------

TEST(Codec, ScalarRoundTrip) {
  BinaryWriter w;
  w.put_u8(0xab);
  w.put_bool(true);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_double(3.25);
  BinaryReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_double(), 3.25);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.failed());
}

TEST(Codec, StringRoundTripIncludingEmbeddedNul) {
  BinaryWriter w;
  const std::string s("a\0b\0c", 5);
  w.put_string(s);
  w.put_string("");
  BinaryReader r(w.data());
  EXPECT_EQ(r.get_string(), s);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.failed());
}

TEST(Codec, VectorRoundTrip) {
  BinaryWriter w;
  const std::vector<std::string> items = {"x", "yy", "zzz"};
  w.put_vector(items, [](BinaryWriter& out, const std::string& s) {
    out.put_string(s);
  });
  BinaryReader r(w.data());
  const auto back = r.get_vector<std::string>(
      [](BinaryReader& in) { return in.get_string(); });
  EXPECT_EQ(back, items);
}

TEST(Codec, TruncatedBufferFailsGracefully) {
  BinaryWriter w;
  w.put_u64(7);
  BinaryReader r(std::string_view(w.data()).substr(0, 3));
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.status().ok());
}

TEST(Codec, CorruptStringLengthFails) {
  BinaryWriter w;
  w.put_u32(1000000);  // claims a megabyte that is not there
  BinaryReader r(w.data());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.failed());
}

TEST(Codec, CorruptVectorCountFails) {
  BinaryWriter w;
  w.put_u32(0xffffffff);
  BinaryReader r(w.data());
  const auto items = r.get_vector<std::string>(
      [](BinaryReader& in) { return in.get_string(); });
  EXPECT_TRUE(items.empty());
  EXPECT_TRUE(r.failed());
}

TEST(Codec, ReaderStopsAtFirstFailure) {
  BinaryReader r("ab");
  (void)r.get_u64();
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.get_u32(), 0u);  // still failed, still safe
  EXPECT_EQ(r.remaining(), 0u);
}

// ---- CRC32 ------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);  // standard check value
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const std::uint32_t before = crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

// ---- RNG --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, StringHasRequestedLengthAndAlphabet) {
  Rng rng(5);
  const std::string s = rng.next_string(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
  }
}

TEST(Zipf, FirstRankDominates) {
  ZipfGenerator zipf(1000, 1.2, 9);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.next()];
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], 1000);
}

TEST(Zipf, CoversUniverse) {
  ZipfGenerator zipf(4, 0.5, 10);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(zipf.next());
  EXPECT_EQ(seen.size(), 4u);
}

// ---- KeyPath ----------------------------------------------------------------

TEST(KeyPath, ParsesThreeLevels) {
  const KeyPath p = KeyPath::parse("ds/table/key");
  EXPECT_EQ(p.dataset(), "ds");
  EXPECT_EQ(p.table(), "table");
  EXPECT_EQ(p.key(), "key");
  EXPECT_TRUE(p.is_pair());
  EXPECT_FALSE(p.is_table());
}

TEST(KeyPath, ParsesPartialLevels) {
  EXPECT_TRUE(KeyPath::parse("ds").is_dataset());
  EXPECT_TRUE(KeyPath::parse("ds/t").is_table());
}

TEST(KeyPath, KeyMayContainSlashes) {
  const KeyPath p = KeyPath::parse("ds/t/a/b/c");
  EXPECT_EQ(p.key(), "a/b/c");
}

TEST(KeyPath, FlatRoundTrip) {
  for (const char* s : {"ds", "ds/t", "ds/t/k", "ds/t/k/with/slashes"}) {
    EXPECT_EQ(KeyPath::parse(s).flat(), s);
  }
}

TEST(KeyPath, ContainmentHierarchy) {
  const KeyPath dataset = KeyPath::parse("ds");
  const KeyPath table = KeyPath::parse("ds/t");
  const KeyPath pair = KeyPath::parse("ds/t/k");
  EXPECT_TRUE(dataset.contains(pair));
  EXPECT_TRUE(dataset.contains(table));
  EXPECT_TRUE(table.contains(pair));
  EXPECT_TRUE(pair.contains(pair));
  EXPECT_FALSE(pair.contains(table));
  EXPECT_FALSE(table.contains(KeyPath::parse("ds/other/k")));
  EXPECT_FALSE(dataset.contains(KeyPath::parse("other/t/k")));
}

TEST(KeyPath, MakeKeyComposes) {
  EXPECT_EQ(make_key("a", "b", "c"), "a/b/c");
}

// ---- Metrics ----------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Counter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramBasicStats) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 100}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
}

TEST(Metrics, HistogramQuantilesAreMonotone) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) h.record(rng.next_below(100000));
  double prev = 0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Uniform distribution: the median falls within its log2 bucket.
  const double median = h.quantile(0.5);
  EXPECT_GT(median, 25000.0);
  EXPECT_LT(median, 100000.0);
}

TEST(Metrics, HistogramMerge) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Metrics, RegistryIsNameKeyed) {
  MetricRegistry reg;
  reg.counter("x").add(3);
  reg.counter("x").add(2);
  reg.histogram("lat").record(5);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

// Exact pinned quantile values. Bucket i covers [2^i, 2^(i+1)); the
// estimate interpolates target rank within the bucket and clamps to the
// observed [min, max]. In particular bucket 0's lower bound is 1.0, not
// 0.0 — a histogram of all-equal small values must not report a quantile
// below the smallest recorded value.
TEST(Metrics, HistogramQuantilePinnedValues) {
  Histogram ones;
  for (int i = 0; i < 4; ++i) ones.record(1);
  EXPECT_DOUBLE_EQ(ones.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ones.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(ones.quantile(1.0), 1.0);

  Histogram tens;  // 16..25: all land in bucket [16, 32)
  for (std::uint64_t v = 16; v <= 25; ++v) tens.record(v);
  EXPECT_DOUBLE_EQ(tens.quantile(0.0), 16.0);
  // target rank 4 of 10 in-bucket → 16 + 0.4 * 16.
  EXPECT_DOUBLE_EQ(tens.quantile(0.5), 22.4);
  // Interpolation would reach 30.4; clamped to the observed max.
  EXPECT_DOUBLE_EQ(tens.quantile(1.0), 25.0);

  Histogram skewed;  // {1, 1, 100}: median interpolates inside bucket 0
  skewed.record(1);
  skewed.record(1);
  skewed.record(100);
  EXPECT_DOUBLE_EQ(skewed.quantile(0.5), 1.5);

  Histogram spread;  // {2, 2, 4, 8}: rank 1 of 2 in bucket [2, 4)
  for (std::uint64_t v : {2, 2, 4, 8}) spread.record(v);
  EXPECT_DOUBLE_EQ(spread.quantile(0.5), 3.0);

  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Metrics, MetricsRegistryMergesAndRendersPrometheusText) {
  MetricRegistry a, b;
  a.counter("ops").add(3);
  b.counter("ops").add(4);
  b.counter("client.write_retries").add(1);
  for (std::uint64_t v = 16; v <= 25; ++v) a.histogram("lat").record(v);

  MetricsRegistry registry;
  registry.attach("node-1", a);
  registry.attach("node-2", b);

  const MetricRegistry merged = registry.merged();
  EXPECT_EQ(merged.counters().at("ops").value(), 7u);
  EXPECT_EQ(merged.counters().at("client.write_retries").value(), 1u);
  EXPECT_EQ(merged.histograms().at("lat").count(), 10u);

  const std::string text = registry.prometheus_text();
  // Counters: one TYPE header, one labeled sample per member, and metric
  // names sanitized to the Prometheus charset.
  EXPECT_NE(text.find("# TYPE sedna_ops counter\n"
                      "sedna_ops{node=\"node-1\"} 3\n"
                      "sedna_ops{node=\"node-2\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_client_write_retries{node=\"node-2\"} 1\n"),
            std::string::npos);
  // Histograms render as summaries: pinned quantiles plus sum/count.
  EXPECT_NE(text.find("# TYPE sedna_lat summary\n"), std::string::npos);
  EXPECT_NE(text.find("sedna_lat{node=\"node-1\",quantile=\"0.5\"} 22.4\n"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_lat{node=\"node-1\",quantile=\"0.99\"} 25\n"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_lat_sum{node=\"node-1\"} 205\n"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_lat_count{node=\"node-1\"} 10\n"),
            std::string::npos);
}

// ---- Tracing ----------------------------------------------------------------

TEST(Trace, DisabledTracerIsFreeAndRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  const TraceContext root = t.start_trace("op", 1, 10);
  EXPECT_FALSE(root.active());
  EXPECT_EQ(t.begin(root, "child", 1, 11), 0u);
  t.end(0, 12);  // safe no-op
  EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, SpanTreeRecordsParentageAndOutcomes) {
  Tracer t;
  t.set_enabled(true);
  const TraceContext root = t.start_trace("client.op", 1000, 100);
  ASSERT_TRUE(root.active());
  const SpanId rpc = t.begin(root, "rpc.call", 1000, 105);
  const SpanId remote =
      t.begin(TraceContext{root.trace_id, rpc}, "server.work", 100, 120);
  t.end(remote, 140);
  t.end(rpc, 150, "ok");
  t.instant(root, "note", 1000, 155, "dropped");
  t.end(root.span_id, 160);

  ASSERT_EQ(t.spans().size(), 4u);
  const auto& spans = t.spans();
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root.span_id);
  EXPECT_EQ(spans[2].parent, rpc);
  EXPECT_EQ(spans[2].node, 100u);
  EXPECT_EQ(spans[3].status, "dropped");
  EXPECT_EQ(spans[3].start_us, spans[3].end_us);

  // First close wins: a raced second close must not overwrite.
  t.end(rpc, 999, "timeout");
  EXPECT_EQ(spans[1].status, "ok");
  EXPECT_EQ(spans[1].end_us, 150u);

  const std::string tree = t.render_tree(root.trace_id);
  EXPECT_NE(tree.find("client.op @1000 [+0 us, 60 us] ok"),
            std::string::npos);
  EXPECT_NE(tree.find("  rpc.call @1000 [+5 us, 45 us] ok"),
            std::string::npos);
  EXPECT_NE(tree.find("    server.work @100 [+20 us, 20 us] ok"),
            std::string::npos);

  const std::string json = t.dump_json();
  EXPECT_NE(json.find("\"name\":\"rpc.call\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"dropped\""), std::string::npos);
}

TEST(Trace, OpenSpansRenderAsOpen) {
  Tracer t;
  t.set_enabled(true);
  const TraceContext root = t.start_trace("op", 1, 10);
  (void)t.begin(root, "stuck", 1, 12);
  EXPECT_NE(t.render_tree(root.trace_id).find("stuck @1 [+2 us] open"),
            std::string::npos);
  EXPECT_NE(t.dump_json().find("\"status\":\"open\""), std::string::npos);
}

}  // namespace
}  // namespace sedna
