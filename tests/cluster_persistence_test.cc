// Persistence wired through the full cluster: nodes running the WAL
// strategy recover their pre-crash state from disk on restart — the
// paper's answer to "the power shortage of the cluster" (Section III.C:
// "we can still recover the data from lost by the periodic data
// flushing"), plus ensemble-size generality sweeps.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

class PersistentClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sedna_cluster_persist_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SednaClusterConfig config() {
    SednaClusterConfig cfg;
    cfg.zk_members = 3;
    cfg.data_nodes = 6;
    cfg.cluster.total_vnodes = 128;
    cfg.node_template.persistence.mode = wal::PersistMode::kWal;
    cfg.node_template.persistence.dir = dir_.string();
    // Durability at ack: without per-write sync, "crashing" a simulated
    // node leaves stdio-buffered records in limbo (the host process
    // survives, the simulated one does not).
    cfg.node_template.persistence.sync_each_write = true;
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(PersistentClusterTest, WalFilesAppearPerNode) {
  SednaCluster cluster(config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "w" + std::to_string(i),
                                     "v").ok());
  }
  std::size_t wal_files = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir_)) {
    if (entry.path().filename() == "wal.log" &&
        std::filesystem::file_size(entry.path()) > 0) {
      ++wal_files;
    }
  }
  EXPECT_EQ(wal_files, 6u);  // every node logged its replica writes
}

TEST_F(PersistentClusterTest, RestartedNodeRecoversFromWal) {
  SednaCluster cluster(config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "p" + std::to_string(i),
                                     "durable").ok());
  }
  cluster.run_for(sim_ms(50));
  const std::size_t items_before = cluster.node(4).local_store().size();
  ASSERT_GT(items_before, 0u);

  // Crash wipes the in-memory store entirely...
  cluster.crash_node(4);
  EXPECT_EQ(cluster.node(4).local_store().size(), 0u);

  // ...restart replays the local WAL before rejoining.
  cluster.restart_node(4);
  EXPECT_TRUE(cluster.node(4).ready());
  EXPECT_EQ(cluster.node(4).local_store().size(), items_before);
  EXPECT_GT(cluster.node(4)
                .metrics()
                .counter("persistence.recovered_records")
                .value(),
            0u);

  // Everything readable cluster-wide.
  for (int i = 0; i < 100; ++i) {
    auto got = cluster.read_latest(client, "p" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "durable");
  }
}

TEST_F(PersistentClusterTest, WholeClusterPowerLossRecovers) {
  // The paper's power-shortage scenario: all replicas die at once; memory
  // is gone; the WALs bring the data back.
  SednaCluster cluster(config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "b" + std::to_string(i),
                                     "survives").ok());
  }
  cluster.run_for(sim_ms(50));

  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    cluster.crash_node(i);
  }
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    cluster.restart_node(i);
  }
  cluster.run_for(sim_sec(1));

  int recovered = 0;
  for (int i = 0; i < 60; ++i) {
    auto got = cluster.read_latest(client, "b" + std::to_string(i));
    if (got.ok() && got->value == "survives") ++recovered;
  }
  EXPECT_EQ(recovered, 60);
}

// ---- ensemble-size generality ---------------------------------------------------

class EnsembleSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EnsembleSizeSweep, ClusterWorksWithAnyOddEnsemble) {
  SednaClusterConfig cfg;
  cfg.zk_members = GetParam();
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 64;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "e" + std::to_string(i),
                                     "v").ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.read_latest(client, "e" + std::to_string(i)).ok());
  }
  // Exactly one leader regardless of ensemble size.
  int leaders = 0;
  for (std::uint32_t m = 0; m < cfg.zk_members; ++m) {
    if (cluster.zk_member(m).is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST_P(EnsembleSizeSweep, SurvivesMinorityMemberCrashes) {
  const std::uint32_t members = GetParam();
  if (members < 3) GTEST_SKIP() << "no crash tolerance with 1 member";
  SednaClusterConfig cfg;
  cfg.zk_members = members;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 64;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "before", "v").ok());

  // Crash a minority (floor((m-1)/2)) including the leader.
  const std::uint32_t kill = (members - 1) / 2;
  for (std::uint32_t m = 0; m < kill; ++m) cluster.zk_member(m).crash();
  cluster.run_for(sim_sec(2));

  ASSERT_TRUE(cluster.write_latest(client, "after", "v").ok());
  EXPECT_TRUE(cluster.read_latest(client, "before").ok());
  EXPECT_TRUE(cluster.read_latest(client, "after").ok());
}

INSTANTIATE_TEST_SUITE_P(Members, EnsembleSizeSweep,
                         ::testing::Values(1, 3, 5),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                           return "zk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sedna::cluster
