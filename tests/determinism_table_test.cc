// Determinism property of the whole simulated stack (identical seeds →
// bit-identical behaviour), the Table/Dataset wrappers, and the extra
// memcached-surface ops (append/prepend).
#include <gtest/gtest.h>

#include "cluster/admin.h"
#include "cluster/sedna_cluster.h"
#include "cluster/table.h"
#include "store/local_store.h"
#include "workload/open_loop.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  cfg.seed = seed;
  return cfg;
}

struct RunTrace {
  SimTime final_time = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::vector<std::size_t> store_sizes;
  std::vector<Timestamp> read_timestamps;

  friend bool operator==(const RunTrace& a, const RunTrace& b) {
    return a.final_time == b.final_time && a.messages == b.messages &&
           a.bytes == b.bytes && a.store_sizes == b.store_sizes &&
           a.read_timestamps == b.read_timestamps;
  }
};

RunTrace run_workload(std::uint64_t seed) {
  SednaCluster cluster(small_config(seed));
  EXPECT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cluster.write_latest(client, "det-" + std::to_string(i),
                                     "v" + std::to_string(i)).ok());
  }
  cluster.crash_node(1);
  RunTrace trace;
  for (int i = 0; i < 100; ++i) {
    auto got = cluster.read_latest(client, "det-" + std::to_string(i));
    trace.read_timestamps.push_back(got.ok() ? got->ts : 0);
  }
  cluster.run_for(sim_sec(1));
  trace.final_time = cluster.sim().now();
  trace.messages = cluster.network().messages_sent();
  trace.bytes = cluster.network().bytes_sent();
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    trace.store_sizes.push_back(cluster.node(i).local_store().size());
  }
  return trace;
}

TEST(Determinism, IdenticalSeedsReplayBitIdentically) {
  const RunTrace a = run_workload(1234);
  const RunTrace b = run_workload(1234);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const RunTrace a = run_workload(1);
  const RunTrace b = run_workload(2);
  // Jitter differs, so message timings and timestamps must differ.
  EXPECT_NE(a.read_timestamps, b.read_timestamps);
}

// ---- observability determinism ------------------------------------------------
//
// The tracing + metrics layer must not merely leave behaviour unchanged —
// its own dumps are part of the deterministic surface. For a fixed seed,
// the Prometheus text and the JSON span dump must be byte-identical
// across runs, including a crash, client retries and read repair.

struct ObservabilityDump {
  std::string metrics;
  std::string traces;
  std::string timeseries;
  std::string dashboard;
  std::string tail_report;
  std::string attribution;
  std::string incidents;
  std::string alerts;

  static ObservabilityDump from(const ClusterInspector& inspector) {
    return {inspector.metrics_text(),   inspector.trace_json(),
            inspector.timeseries_csv(), inspector.dashboard(),
            inspector.tail_report(),    inspector.attribution_csv(),
            inspector.incidents_csv(),  inspector.alerts_json()};
  }
};

void expect_dumps_equal(const ObservabilityDump& a, const ObservabilityDump& b,
                        std::uint64_t seed) {
  EXPECT_EQ(a.metrics, b.metrics) << "metrics diverged for seed " << seed;
  EXPECT_EQ(a.traces, b.traces) << "traces diverged for seed " << seed;
  EXPECT_EQ(a.timeseries, b.timeseries)
      << "time series diverged for seed " << seed;
  EXPECT_EQ(a.dashboard, b.dashboard)
      << "dashboard diverged for seed " << seed;
  EXPECT_EQ(a.tail_report, b.tail_report)
      << "tail report diverged for seed " << seed;
  EXPECT_EQ(a.attribution, b.attribution)
      << "attribution CSV diverged for seed " << seed;
  EXPECT_EQ(a.incidents, b.incidents)
      << "incident CSV diverged for seed " << seed;
  EXPECT_EQ(a.alerts, b.alerts) << "alerts JSON diverged for seed " << seed;
}

ObservabilityDump run_traced(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 5;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = seed;
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  auto& client = cluster.make_client();
  cluster.sim().tracer().set_enabled(true);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(cluster.write_latest(client, "obs-" + std::to_string(i),
                                     "v" + std::to_string(i)).ok());
  }
  cluster.crash_node(1);
  for (int i = 0; i < 30; ++i) {
    (void)cluster.read_latest(client, "obs-" + std::to_string(i));
  }
  cluster.run_for(sim_sec(1));
  return ObservabilityDump::from(ClusterInspector(cluster));
}

TEST(Determinism, ObservabilityDumpsAreByteIdenticalAcrossSeedSweep) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const ObservabilityDump a = run_traced(seed);
    const ObservabilityDump b = run_traced(seed);
    expect_dumps_equal(a, b, seed);
    // The dumps are non-trivial: real counters, spans, samples, health.
    EXPECT_NE(a.metrics.find("sedna_client_writes"), std::string::npos);
    EXPECT_NE(a.traces.find("client.write_latest"), std::string::npos);
    EXPECT_NE(a.timeseries.find("time_us,nodes_down"), std::string::npos);
    EXPECT_NE(a.dashboard.find("health:"), std::string::npos);
    EXPECT_NE(a.tail_report.find("tail traces by operation"),
              std::string::npos);
    EXPECT_NE(a.attribution.find("trace,op,start_us,total_us"),
              std::string::npos);
  }
}

// ---- auditor-enabled determinism ----------------------------------------------
//
// The consistency auditor adds read-side sampling, lag gossip rows and
// probe RPCs to the data path, and the flight recorder journals health
// and alert transitions. A partitioned, audited run — probes and all —
// must replay bit-identically across runs for every seed, including the
// incident CSV and the alerts JSON.

ObservabilityDump run_audited(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = seed;
  cfg.node_template.audit.enabled = true;
  cfg.node_template.audit.probe_sample_every = 4;
  cfg.node_template.degraded_reads = true;
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  MonitorConfig mon;
  mon.sample_interval = sim_ms(100);
  cluster.enable_monitor(mon);
  auto& client = cluster.make_client();
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(cluster.write_latest(client, "aud-" + std::to_string(i),
                                     "v" + std::to_string(i)).ok());
  }
  // Isolate one node so stale serves, lag rows and probe failures all
  // happen inside the window, then heal and let the probes drain.
  const std::vector<NodeId> ids = cluster.data_ids();
  for (std::size_t b = 1; b < ids.size(); ++b) {
    cluster.network().partition(ids[0], ids[b]);
  }
  for (int i = 0; i < 30; ++i) {
    (void)cluster.read_latest(client, "aud-" + std::to_string(i));
    (void)cluster.write_latest(client, "aud-" + std::to_string(i), "p");
  }
  cluster.network().heal_all();
  // A crash on top: guarantees journaled health transitions and lets
  // in-flight probes hit an unreachable replica.
  cluster.crash_node(2);
  cluster.run_for(sim_sec(2));
  return ObservabilityDump::from(ClusterInspector(cluster));
}

TEST(Determinism, AuditedRunsAreByteIdenticalAcrossSeedSweep) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const ObservabilityDump a = run_audited(seed);
    const ObservabilityDump b = run_audited(seed);
    expect_dumps_equal(a, b, seed);
    // The run exercised the auditor for real: audited reads and probe
    // rounds are in the metrics, the lag gauge is in the (order-stable)
    // CSV columns, and the flight recorder journaled the node health
    // transitions the partition caused.
    EXPECT_NE(a.metrics.find("sedna_audit_reads_audited"),
              std::string::npos);
    EXPECT_NE(a.metrics.find("sedna_audit_probe_rounds"),
              std::string::npos);
    EXPECT_NE(a.timeseries.find("replication_lag_max_us"),
              std::string::npos);
    EXPECT_NE(a.incidents.find("seq,at_us,category,source,label,detail"),
              std::string::npos);
    EXPECT_NE(a.incidents.find("health"), std::string::npos);
    EXPECT_NE(a.alerts.find("staleness-budget"), std::string::npos);
  }
}

// ---- rebalancer-enabled determinism ------------------------------------------
//
// The traffic rebalancer adds a leader-driven control loop (telemetry
// reads, migration RPCs, ZK cutover CAS) on top of the data path. The
// whole loop must stay on the deterministic surface: a skewed cluster
// with the rebalancer enabled replays bit-identically across runs for
// every seed, including its observability dumps.

ObservabilityDump run_rebalanced(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 32;
  cfg.seed = seed;
  // Skewed boot: two nodes own everything, so the rebalancer has real
  // migrations to run inside the measurement window.
  cfg.initial_owners = {100, 101};
  cfg.node_template.load_report_interval = sim_ms(500);
  cfg.node_template.traffic_rebalance_interval = sim_sec(2);
  cfg.node_template.traffic_rebalance.cv_trigger = 0.2;
  cfg.node_template.traffic_rebalance.vnode_cooldown = sim_sec(5);
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  // Trace the control loop too: migration span trees and their stage
  // attribution are part of the deterministic surface.
  cluster.sim().tracer().set_enabled(true);
  auto& client = cluster.make_client();
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 60; ++i) {
      (void)cluster.write_latest(client, "reb-" + std::to_string(i),
                                 "r" + std::to_string(round));
    }
    cluster.run_for(sim_ms(500));
  }
  cluster.run_for(sim_sec(2));
  return ObservabilityDump::from(ClusterInspector(cluster));
}

TEST(Determinism, RebalancerRunsAreByteIdenticalAcrossSeedSweep) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const ObservabilityDump a = run_rebalanced(seed);
    const ObservabilityDump b = run_rebalanced(seed);
    expect_dumps_equal(a, b, seed);
    // The run exercised the rebalancer for real: migrations completed and
    // the monitor recorded them in its (order-stable) CSV columns.
    EXPECT_NE(a.metrics.find("sedna_rebalance_migrations_completed"),
              std::string::npos);
    EXPECT_NE(a.timeseries.find("migrations_inflight"), std::string::npos);
  }
}

// ---- overloaded-path determinism ----------------------------------------------
//
// The overload defenses add new control flow everywhere on the hot path:
// priority-class admission at every host ingress queue, deadline checks
// at dequeue, client-side retry-budget token accounting, and degraded
// quorum-relaxed reads. All of it must stay on the deterministic
// surface even while the cluster is actively shedding: an open-loop
// pulse past saturation with every defense enabled replays
// bit-identically across runs for every seed, including the monitor's
// overload series and alert state embedded in the dumps.

ObservabilityDump run_overloaded(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = seed;
  cfg.node_template.host.max_ingress_queue = 24;
  cfg.node_template.degraded_reads = true;
  cfg.client_template.op_timeout_us = 30'000;
  cfg.client_template.max_attempts = 3;
  cfg.client_template.op_deadline_us = 90'000;
  cfg.client_template.retry_budget_capacity = 10.0;
  cfg.client_template.retry_budget_refill = 0.3;
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  MonitorConfig mon;
  mon.sample_interval = sim_ms(100);
  cluster.enable_monitor(mon);
  auto& client = cluster.make_client();
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster.write_latest(client, "ov-" + std::to_string(i),
                                     "v" + std::to_string(i)).ok());
  }
  // Open-loop pulse well past the 4-node service capacity, plus a crash
  // mid-pulse so retries contend with sheds for the remaining budget.
  workload::OpenLoopConfig load;
  load.curve = {{0, 1000}, {sim_ms(500), 6000}, {sim_ms(1500), 1000}};
  load.duration = sim_sec(3);
  workload::OpenLoopDriver driver(
      cluster.sim(), load,
      [&](std::uint64_t seq, const std::function<void(bool)>& done) {
        const std::string key =
            "ov-" + std::to_string(cluster.sim().rng().next_below(40));
        if (seq % 7 == 0) {
          client.write_latest(key, "p" + std::to_string(seq),
                              [done](const Status& st) { done(st.ok()); });
        } else {
          client.read_latest(key, [done](const auto& r) { done(r.ok()); });
        }
      });
  driver.start();
  cluster.sim().schedule(sim_ms(900), [&] { cluster.crash_node(2); });
  cluster.run_for(sim_sec(4));
  return ObservabilityDump::from(ClusterInspector(cluster));
}

TEST(Determinism, OverloadedRunsAreByteIdenticalAcrossSeedSweep) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const ObservabilityDump a = run_overloaded(seed);
    const ObservabilityDump b = run_overloaded(seed);
    expect_dumps_equal(a, b, seed);
    // The pulse really overloaded the cluster: hosts shed work and the
    // monitor's overload series recorded it.
    EXPECT_NE(a.metrics.find("sedna_node_shed"), std::string::npos);
    EXPECT_NE(a.timeseries.find("shed_rate"), std::string::npos);
  }
}

// ---- causal-versioning determinism --------------------------------------------
//
// DVV causal puts add sibling lists, dot minting, causal read repair and
// causal hint replay to the replica path. A conflict-heavy workload —
// two clients racing contextual RMWs on the same keys across a zone
// partition — must replay bit-identically across runs for every seed,
// including the sibling/dvv-merge monitor series embedded in the dumps.

ObservabilityDump run_causal_conflict(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = seed;
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  MonitorConfig mon;
  mon.sample_interval = sim_ms(100);
  cluster.enable_monitor(mon);
  cluster.sim().tracer().set_enabled(true);
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();

  const std::vector<NodeId> ids = cluster.data_ids();
  const std::size_t half = ids.size() / 2;

  // Contextual RMW: read the sibling frontier, write back superseding it.
  auto rmw = [](SednaClient* c, const std::string& key,
                const std::string& tag, std::size_t* done) {
    c->get_causal(key, [c, key, tag, done](
                           const Result<SednaClient::CausalRead>& r) {
      store::VersionVector ctx;
      std::string value = tag;
      if (r.ok()) {
        ctx = r->ctx;
        for (const auto& sib : r->siblings) value += "|" + sib.value;
      }
      c->put_causal(key, value, ctx,
                    [done](const Status&, const store::VersionVector&) {
                      ++*done;
                    });
    });
  };

  for (int round = 0; round < 6; ++round) {
    if (round == 2) {
      for (std::size_t a = 0; a < half; ++a) {
        for (std::size_t b = half; b < ids.size(); ++b) {
          cluster.network().partition(ids[a], ids[b]);
        }
      }
    }
    if (round == 4) cluster.network().heal_all();
    std::size_t done = 0;
    for (int k = 0; k < 8; ++k) {
      const std::string key = "cc-" + std::to_string(k);
      rmw(&c1, key, "a" + std::to_string(round), &done);
      rmw(&c2, key, "b" + std::to_string(round), &done);
    }
    cluster.run_until([&] { return done == 16; });
  }
  cluster.network().heal_all();
  cluster.run_for(sim_sec(1));
  return ObservabilityDump::from(ClusterInspector(cluster));
}

TEST(Determinism, CausalConflictRunsAreByteIdenticalAcrossSeedSweep) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const ObservabilityDump a = run_causal_conflict(seed);
    const ObservabilityDump b = run_causal_conflict(seed);
    expect_dumps_equal(a, b, seed);
    // The run exercised real causal machinery: the monitor's conflict
    // series exist (order-stable CSV columns) and causal joins happened.
    EXPECT_NE(a.timeseries.find("siblings"), std::string::npos);
    EXPECT_NE(a.timeseries.find("dvv_merges"), std::string::npos);
    EXPECT_NE(a.traces.find("client.put_causal"), std::string::npos);
  }
}

// ---- Table / Dataset wrappers -------------------------------------------------

TEST(TableApi, ComposesPathsAndRoundTrips) {
  SednaCluster cluster(small_config(7));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  Dataset tweets(client, "tweets");
  Table msgs = tweets.table("msgs");
  EXPECT_EQ(msgs.key_of("42"), "tweets/msgs/42");
  EXPECT_EQ(msgs.hook(), "tweets/msgs");
  EXPECT_EQ(tweets.hook(), "tweets");

  std::optional<Status> put_st;
  msgs.put("42", "hello", [&](const Status& st) { put_st = st; });
  cluster.run_until([&] { return put_st.has_value(); });
  ASSERT_TRUE(put_st->ok());

  // Visible through the raw client under the composed key.
  auto raw = cluster.read_latest(client, "tweets/msgs/42");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->value, "hello");

  std::optional<Result<store::VersionedValue>> got;
  msgs.get("42", [&](const Result<store::VersionedValue>& r) { got = r; });
  cluster.run_until([&] { return got.has_value(); });
  ASSERT_TRUE(got->ok());
  EXPECT_EQ((*got)->value, "hello");
}

TEST(TableApi, PutAllAccumulatesPerClient) {
  SednaCluster cluster(small_config(8));
  ASSERT_TRUE(cluster.boot().ok());
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();
  Table inbox1 = Dataset(c1, "mail").table("inbox");
  Table inbox2 = Dataset(c2, "mail").table("inbox");

  std::optional<Status> s1, s2;
  inbox1.put_all("alice", "m1", [&](const Status& st) { s1 = st; });
  inbox2.put_all("alice", "m2", [&](const Status& st) { s2 = st; });
  cluster.run_until([&] { return s1.has_value() && s2.has_value(); });

  std::optional<Result<std::vector<store::SourceValue>>> list;
  inbox1.get_all("alice",
                 [&](const Result<std::vector<store::SourceValue>>& r) {
                   list = r;
                 });
  cluster.run_until([&] { return list.has_value(); });
  ASSERT_TRUE(list->ok());
  EXPECT_EQ((*list)->size(), 2u);
}

}  // namespace
}  // namespace sedna::cluster

// ---- append / prepend (store surface) -------------------------------------------

namespace sedna::store {
namespace {

TEST(AppendPrepend, ConcatenateExistingValue) {
  LocalStore store;
  store.set("k", "middle");
  EXPECT_TRUE(store.append("k", "-end").ok());
  EXPECT_TRUE(store.prepend("k", "start-").ok());
  EXPECT_EQ(store.get("k")->value, "start-middle-end");
}

TEST(AppendPrepend, MissingKeyIsNotFound) {
  LocalStore store;
  EXPECT_TRUE(store.append("k", "x").is(StatusCode::kNotFound));
  EXPECT_TRUE(store.prepend("k", "x").is(StatusCode::kNotFound));
}

TEST(AppendPrepend, BumpsCasAndBytes) {
  LocalStore store;
  store.set("k", "v");
  const auto before = store.gets("k");
  const auto bytes_before = store.stats().bytes;
  ASSERT_TRUE(store.append("k", std::string(100, 'x')).ok());
  EXPECT_NE(store.gets("k")->second, before->second);
  EXPECT_GT(store.stats().bytes, bytes_before + 90);
}

TEST(AppendPrepend, ProducesChangeRecords) {
  LocalStoreConfig cfg;
  cfg.track_changes = true;
  LocalStore store(cfg);
  store.set("k", "a");
  (void)store.drain_changes();
  store.append("k", "b");
  auto changes = store.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].old_value.value, "a");
  EXPECT_EQ(changes[0].new_value.value, "ab");
}

}  // namespace
}  // namespace sedna::store
