// Tests for the persistence layer: WAL framing and replay, torn-tail and
// corruption tolerance, snapshots, and the PersistenceManager strategies.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "wal/persistence.h"
#include "wal/snapshot.h"
#include "wal/wal.h"

namespace sedna::wal {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("sedna_wal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] std::string dir() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

WalRecord make_record(WalRecord::Type type, const std::string& key,
                      const std::string& value, Timestamp ts) {
  WalRecord rec;
  rec.type = type;
  rec.key = key;
  rec.value = value;
  rec.ts = ts;
  return rec;
}

// ---- record codec ------------------------------------------------------------

TEST(WalRecord, EncodeDecodeRoundTrip) {
  WalRecord rec = make_record(WalRecord::Type::kWriteAll, "key", "value", 42);
  rec.source = 7;
  rec.flags = 3;
  auto back = WalRecord::decode(rec.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), rec);
}

TEST(WalRecord, DecodeRejectsTruncation) {
  const std::string bytes = make_record(WalRecord::Type::kDelete, "k", "", 1)
                                .encode();
  auto bad = WalRecord::decode(std::string_view(bytes).substr(0, 5));
  EXPECT_FALSE(bad.ok());
}

TEST(WalRecord, DecodeRejectsTrailingBytes) {
  std::string bytes =
      make_record(WalRecord::Type::kDelete, "k", "", 1).encode();
  bytes += "extra";
  EXPECT_FALSE(WalRecord::decode(bytes).ok());
}

TEST(WalRecord, DecodeRejectsUnknownType) {
  std::string bytes =
      make_record(WalRecord::Type::kDelete, "k", "", 1).encode();
  bytes[0] = 99;
  EXPECT_FALSE(WalRecord::decode(bytes).ok());
}

// ---- append / replay -----------------------------------------------------------

TEST(Wal, AppendAndReplay) {
  TempDir tmp;
  WriteAheadLog log(tmp.path("wal.log"));
  ASSERT_TRUE(log.open().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(log.append(make_record(WalRecord::Type::kWriteLatest,
                                       "k" + std::to_string(i),
                                       "v" + std::to_string(i),
                                       static_cast<Timestamp>(i + 1)))
                    .ok());
  }
  ASSERT_TRUE(log.sync().ok());
  EXPECT_EQ(log.records_appended(), 100u);

  std::vector<WalRecord> replayed;
  auto n = WriteAheadLog::replay(tmp.path("wal.log"),
                                 [&](const WalRecord& rec) {
                                   replayed.push_back(rec);
                                 });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 100u);
  EXPECT_EQ(replayed[0].key, "k0");
  EXPECT_EQ(replayed[99].value, "v99");
}

TEST(Wal, ReplayOfMissingFileIsEmptyNotError) {
  auto n = WriteAheadLog::replay("/nonexistent/wal.log",
                                 [](const WalRecord&) { FAIL(); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(Wal, TornTailStopsReplayCleanly) {
  TempDir tmp;
  {
    WriteAheadLog log(tmp.path("wal.log"));
    ASSERT_TRUE(log.open().ok());
    for (int i = 0; i < 10; ++i) {
      log.append(make_record(WalRecord::Type::kWriteLatest,
                             "k" + std::to_string(i), "v", 1));
    }
    log.sync();
  }
  // Tear the last record: drop the final 3 bytes.
  const auto size = std::filesystem::file_size(tmp.path("wal.log"));
  std::filesystem::resize_file(tmp.path("wal.log"), size - 3);

  std::size_t replayed = 0;
  auto n = WriteAheadLog::replay(tmp.path("wal.log"),
                                 [&](const WalRecord&) { ++replayed; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 9u);
  EXPECT_EQ(replayed, 9u);
}

TEST(Wal, CorruptPayloadStopsReplay) {
  TempDir tmp;
  {
    WriteAheadLog log(tmp.path("wal.log"));
    ASSERT_TRUE(log.open().ok());
    for (int i = 0; i < 5; ++i) {
      log.append(make_record(WalRecord::Type::kWriteLatest, "key", "val", 1));
    }
    log.sync();
  }
  // Flip a byte in the middle of the third record's payload.
  std::fstream f(tmp.path("wal.log"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(2 * 34 + 20);  // inside record #3 (each frame is 8 + 26 bytes)
  f.put('X');
  f.close();

  std::size_t replayed = 0;
  auto n = WriteAheadLog::replay(tmp.path("wal.log"),
                                 [&](const WalRecord&) { ++replayed; });
  ASSERT_TRUE(n.ok());
  EXPECT_LT(replayed, 5u);  // replay stopped at the corruption
}

TEST(Wal, ResetTruncates) {
  TempDir tmp;
  WriteAheadLog log(tmp.path("wal.log"));
  ASSERT_TRUE(log.open().ok());
  log.append(make_record(WalRecord::Type::kWriteLatest, "k", "v", 1));
  log.sync();
  ASSERT_TRUE(log.reset().ok());
  std::size_t replayed = 0;
  (void)WriteAheadLog::replay(tmp.path("wal.log"),
                              [&](const WalRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
  // And the log is usable afterwards.
  EXPECT_TRUE(
      log.append(make_record(WalRecord::Type::kWriteLatest, "k", "v", 2))
          .ok());
}

TEST(Wal, AppendAfterReopenExtends) {
  TempDir tmp;
  {
    WriteAheadLog log(tmp.path("wal.log"));
    ASSERT_TRUE(log.open().ok());
    log.append(make_record(WalRecord::Type::kWriteLatest, "k1", "v", 1));
  }
  {
    WriteAheadLog log(tmp.path("wal.log"));
    ASSERT_TRUE(log.open().ok());
    log.append(make_record(WalRecord::Type::kWriteLatest, "k2", "v", 2));
  }
  std::vector<std::string> keys;
  (void)WriteAheadLog::replay(tmp.path("wal.log"), [&](const WalRecord& r) {
    keys.push_back(r.key);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"k1", "k2"}));
}

// ---- snapshot -------------------------------------------------------------------

TEST(Snapshot, RoundTripAllItemKinds) {
  TempDir tmp;
  store::LocalStore source;
  source.write_latest("latest-key", "latest-value", 42, 7);
  source.write_all("list-key", 1, "from-1", 10);
  source.write_all("list-key", 2, "from-2", 11);
  ASSERT_TRUE(Snapshot::write(tmp.path("snap.bin"), source).ok());

  store::LocalStore restored;
  auto n = Snapshot::load(tmp.path("snap.bin"), restored);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);

  auto latest = restored.read_latest("latest-key");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, "latest-value");
  EXPECT_EQ(latest->ts, 42u);
  EXPECT_EQ(latest->flags, 7u);

  auto list = restored.read_all("list-key");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

TEST(Snapshot, MissingFileLoadsNothing) {
  store::LocalStore store;
  auto n = Snapshot::load("/nonexistent/snap.bin", store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(Snapshot, BadMagicRejected) {
  TempDir tmp;
  std::ofstream(tmp.path("snap.bin")) << "NOTASNAPSHOT....garbage";
  store::LocalStore store;
  EXPECT_FALSE(Snapshot::load(tmp.path("snap.bin"), store).ok());
}

TEST(Snapshot, OverwriteIsAtomic) {
  TempDir tmp;
  store::LocalStore v1;
  v1.set("gen", "1");
  ASSERT_TRUE(Snapshot::write(tmp.path("snap.bin"), v1).ok());
  store::LocalStore v2;
  v2.set("gen", "2");
  ASSERT_TRUE(Snapshot::write(tmp.path("snap.bin"), v2).ok());
  // No .tmp litter left behind.
  EXPECT_FALSE(std::filesystem::exists(tmp.path("snap.bin.tmp")));
  store::LocalStore restored;
  ASSERT_TRUE(Snapshot::load(tmp.path("snap.bin"), restored).ok());
  EXPECT_EQ(restored.get("gen")->value, "2");
}

// ---- persistence manager ---------------------------------------------------------

TEST(Persistence, NoneModeIsNoop) {
  store::LocalStore store;
  PersistenceConfig cfg;  // kNone
  PersistenceManager pm(cfg, store);
  ASSERT_TRUE(pm.start().ok());
  EXPECT_TRUE(pm.on_write_latest("k", "v", 1, 0).ok());
  auto n = pm.recover();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(Persistence, WalModeRecoversEverything) {
  TempDir tmp;
  {
    store::LocalStore store;
    PersistenceConfig cfg;
    cfg.mode = PersistMode::kWal;
    cfg.dir = tmp.dir();
    PersistenceManager pm(cfg, store);
    ASSERT_TRUE(pm.start().ok());
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(i);
      store.write_latest(key, "v", static_cast<Timestamp>(i + 1));
      pm.on_write_latest(key, "v", static_cast<Timestamp>(i + 1), 0);
    }
    // no clean shutdown: simulated crash
  }
  store::LocalStore restored;
  PersistenceConfig cfg;
  cfg.mode = PersistMode::kWal;
  cfg.dir = tmp.dir();
  PersistenceManager pm(cfg, restored);
  ASSERT_TRUE(pm.start().ok());
  auto n = pm.recover();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(restored.size(), 200u);
}

TEST(Persistence, WalModeRecoversDeletes) {
  TempDir tmp;
  {
    store::LocalStore store;
    PersistenceConfig cfg;
    cfg.mode = PersistMode::kWal;
    cfg.dir = tmp.dir();
    PersistenceManager pm(cfg, store);
    ASSERT_TRUE(pm.start().ok());
    store.write_latest("k", "v", 1);
    pm.on_write_latest("k", "v", 1, 0);
    store.del("k");
    pm.on_delete("k");
  }
  store::LocalStore restored;
  PersistenceConfig cfg;
  cfg.mode = PersistMode::kWal;
  cfg.dir = tmp.dir();
  PersistenceManager pm(cfg, restored);
  ASSERT_TRUE(pm.start().ok());
  ASSERT_TRUE(pm.recover().ok());
  EXPECT_FALSE(restored.get("k").ok());
}

TEST(Persistence, SnapshotBoundsWalReplay) {
  TempDir tmp;
  {
    store::LocalStore store;
    PersistenceConfig cfg;
    cfg.mode = PersistMode::kWal;
    cfg.dir = tmp.dir();
    cfg.snapshot_every_records = 50;
    PersistenceManager pm(cfg, store);
    ASSERT_TRUE(pm.start().ok());
    for (int i = 0; i < 120; ++i) {
      const std::string key = "k" + std::to_string(i);
      store.write_latest(key, "v", static_cast<Timestamp>(i + 1));
      pm.on_write_latest(key, "v", static_cast<Timestamp>(i + 1), 0);
    }
    EXPECT_GE(pm.snapshots_taken(), 2u);
    // The live log holds only the tail after the last snapshot.
    EXPECT_LT(pm.wal_records(), 50u);
  }
  store::LocalStore restored;
  PersistenceConfig cfg;
  cfg.mode = PersistMode::kWal;
  cfg.dir = tmp.dir();
  PersistenceManager pm(cfg, restored);
  ASSERT_TRUE(pm.start().ok());
  ASSERT_TRUE(pm.recover().ok());
  EXPECT_EQ(restored.size(), 120u);
}

TEST(Persistence, PeriodicFlushRecoversUpToLastSnapshot) {
  TempDir tmp;
  {
    store::LocalStore store;
    PersistenceConfig cfg;
    cfg.mode = PersistMode::kPeriodicFlush;
    cfg.dir = tmp.dir();
    PersistenceManager pm(cfg, store);
    ASSERT_TRUE(pm.start().ok());
    for (int i = 0; i < 60; ++i) {
      store.write_latest("k" + std::to_string(i), "v",
                         static_cast<Timestamp>(i + 1));
    }
    ASSERT_TRUE(pm.flush_snapshot().ok());
    for (int i = 60; i < 100; ++i) {  // written after the flush: lost
      store.write_latest("k" + std::to_string(i), "v",
                         static_cast<Timestamp>(i + 1));
    }
  }
  store::LocalStore restored;
  PersistenceConfig cfg;
  cfg.mode = PersistMode::kPeriodicFlush;
  cfg.dir = tmp.dir();
  PersistenceManager pm(cfg, restored);
  ASSERT_TRUE(pm.start().ok());
  ASSERT_TRUE(pm.recover().ok());
  EXPECT_EQ(restored.size(), 60u);
}

TEST(Persistence, RecoveredStateEqualsOriginal) {
  TempDir tmp;
  store::LocalStore original;
  {
    PersistenceConfig cfg;
    cfg.mode = PersistMode::kWal;
    cfg.dir = tmp.dir();
    PersistenceManager pm(cfg, original);
    ASSERT_TRUE(pm.start().ok());
    // Mixed workload: latest writes, value lists, overwrites, deletes.
    for (int i = 0; i < 50; ++i) {
      const std::string key = "mixed-" + std::to_string(i % 20);
      const auto ts = static_cast<Timestamp>(i + 1);
      if (i % 3 == 0) {
        original.write_all(key, i % 5, "list", ts);
        pm.on_write_all(key, i % 5, "list", ts);
      } else {
        original.write_latest(key, "v" + std::to_string(i), ts);
        pm.on_write_latest(key, "v" + std::to_string(i), ts, 0);
      }
      if (i % 11 == 10) {
        original.del(key);
        pm.on_delete(key);
      }
    }
  }
  store::LocalStore restored;
  PersistenceConfig cfg;
  cfg.mode = PersistMode::kWal;
  cfg.dir = tmp.dir();
  PersistenceManager pm(cfg, restored);
  ASSERT_TRUE(pm.start().ok());
  ASSERT_TRUE(pm.recover().ok());

  EXPECT_EQ(restored.size(), original.size());
  original.for_each([&](const store::Item& item) {
    if (item.has_latest) {
      auto got = restored.read_latest(item.key);
      ASSERT_TRUE(got.ok()) << item.key;
      EXPECT_EQ(got->value, item.latest.value);
      EXPECT_EQ(got->ts, item.latest.ts);
    }
    if (!item.value_list.empty()) {
      auto got = restored.read_all(item.key);
      ASSERT_TRUE(got.ok()) << item.key;
      EXPECT_EQ(got->size(), item.value_list.size());
    }
  });
}

}  // namespace
}  // namespace sedna::wal
