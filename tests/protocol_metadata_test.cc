// Tests for the Sedna wire protocol codecs and the MetadataCache
// (journal-driven refresh, adaptive-lease integration, bootstrap layout).
#include <gtest/gtest.h>

#include "cluster/metadata.h"
#include "cluster/protocol.h"
#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

// ---- protocol codecs -----------------------------------------------------------

TEST(Protocol, WriteRequestRoundTrip) {
  WriteRequest req;
  req.mode = WriteMode::kAll;
  req.key = "tweets/msgs/42";
  req.value = std::string("binary\0data", 11);
  req.ts = 0xdeadbeefcafeULL;
  req.flags = 9;
  req.source = 106;
  auto back = WriteRequest::decode(req.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->mode, req.mode);
  EXPECT_EQ(back->key, req.key);
  EXPECT_EQ(back->value, req.value);
  EXPECT_EQ(back->ts, req.ts);
  EXPECT_EQ(back->flags, req.flags);
  EXPECT_EQ(back->source, req.source);
}

TEST(Protocol, WriteReplyRoundTrip) {
  for (StatusCode code : {StatusCode::kOk, StatusCode::kOutdated,
                          StatusCode::kFailure}) {
    WriteReply rep;
    rep.status = code;
    auto back = WriteReply::decode(rep.encode());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->status, code);
  }
}

TEST(Protocol, ReadRequestReplyRoundTrip) {
  ReadRequest req;
  req.mode = ReadMode::kAll;
  req.key = "k";
  auto req_back = ReadRequest::decode(req.encode());
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back->mode, ReadMode::kAll);

  ReadReply rep;
  rep.status = StatusCode::kOk;
  rep.has_latest = true;
  rep.latest = {"value", 77, 1};
  rep.value_list = {{1, "a", 10}, {2, "b", 11}};
  auto rep_back = ReadReply::decode(rep.encode());
  ASSERT_TRUE(rep_back.ok());
  EXPECT_EQ(rep_back->latest, rep.latest);
  ASSERT_EQ(rep_back->value_list.size(), 2u);
  EXPECT_EQ(rep_back->value_list[1], rep.value_list[1]);
}

TEST(Protocol, FetchVnodeReplyRoundTrip) {
  FetchVnodeReply rep;
  TransferItem item;
  item.key = "k";
  item.has_latest = true;
  item.latest = {"v", 5, 0};
  item.value_list = {{3, "lv", 9}};
  rep.items.push_back(item);
  auto back = FetchVnodeReply::decode(rep.encode());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->items.size(), 1u);
  EXPECT_EQ(back->items[0].key, "k");
  EXPECT_EQ(back->items[0].latest.value, "v");
  ASSERT_EQ(back->items[0].value_list.size(), 1u);
  EXPECT_EQ(back->items[0].value_list[0].source, 3u);
}

TEST(Protocol, TakeoverAndPurgeRoundTrip) {
  TakeoverRequest take;
  take.vnode = 42;
  take.sources = {7, 8, 9};
  auto take_back = TakeoverRequest::decode(take.encode());
  ASSERT_TRUE(take_back.ok());
  EXPECT_EQ(take_back->vnode, 42u);
  EXPECT_EQ(take_back->sources, take.sources);

  PurgeVnodeRequest purge{11, 200};
  auto purge_back = PurgeVnodeRequest::decode(purge.encode());
  ASSERT_TRUE(purge_back.ok());
  EXPECT_EQ(purge_back->vnode, 11u);
  EXPECT_EQ(purge_back->new_owner, 200u);
}

TEST(Protocol, DecodersRejectTruncation) {
  WriteRequest req;
  req.key = "some-key";
  req.value = "some-value";
  const std::string bytes = req.encode();
  EXPECT_FALSE(
      WriteRequest::decode(std::string_view(bytes).substr(0, 4)).ok());
  EXPECT_FALSE(ReadReply::decode("x").ok());
  EXPECT_FALSE(FetchVnodeReply::decode("").ok());
}

TEST(Protocol, ClusterConfigRoundTripAndValidation) {
  ClusterConfig cfg;
  cfg.total_vnodes = 4096;
  cfg.replicas = 5;
  cfg.read_quorum = 3;
  cfg.write_quorum = 3;
  auto back = ClusterConfig::decode(cfg.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total_vnodes, 4096u);
  EXPECT_TRUE(back->quorum_valid());
}

TEST(Protocol, ZnodePathHelpers) {
  EXPECT_EQ(vnode_znode(7), "/sedna/vnodes/v000007");
  EXPECT_EQ(vnode_znode(123456), "/sedna/vnodes/v123456");
  EXPECT_EQ(real_node_znode(104), "/sedna/real_nodes/node-104");
}

// ---- MetadataCache against a live ensemble ---------------------------------------

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 64;
  return cfg;
}

TEST(Metadata, BootLoadsFullTable) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  const auto& meta = cluster.node(0).metadata();
  EXPECT_TRUE(meta.ready());
  EXPECT_EQ(meta.config().total_vnodes, 64u);
  EXPECT_EQ(meta.table().total_vnodes(), 64u);
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_NE(meta.table().owner(v), kInvalidNode);
  }
}

TEST(Metadata, AllPartiesAgreeAfterBoot) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const auto& reference = cluster.node(0).metadata().table();
  for (std::size_t i = 1; i < cluster.data_node_count(); ++i) {
    EXPECT_TRUE(cluster.node(i).metadata().table() == reference);
  }
  EXPECT_TRUE(client.metadata().table() == reference);
}

TEST(Metadata, JournalEntryPropagatesWithinLeases) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());

  // Write a reassignment directly: CAS the vnode znode + journal entry,
  // exactly what recovery does.
  auto& node = cluster.node(0);
  const VnodeId vnode = 5;
  const NodeId new_owner = cluster.node(3).id();
  bool done = false;
  BinaryWriter w;
  w.put_u32(new_owner);
  node.zk().set(vnode_znode(vnode), std::move(w).take(), -1,
                [&](const Result<zk::ZnodeStat>&) {
                  BinaryWriter jw;
                  jw.put_u32(vnode);
                  jw.put_u32(new_owner);
                  node.zk().create(std::string(kZkChanges) + "/c",
                                   std::move(jw).take(),
                                   zk::CreateMode::kPersistentSequential,
                                   [&](const Result<std::string>&) {
                                     done = true;
                                   });
                });
  cluster.run_until([&] { return done; });

  // Everyone converges via their lease-paced journal sync.
  cluster.run_for(sim_sec(20));
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).metadata().table().owner(vnode), new_owner)
        << "node " << i;
  }
}

TEST(Metadata, SyncsSkipAlreadySeenEntries) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& meta = cluster.node(0).metadata();
  const auto before = meta.vnodes_refreshed();
  cluster.run_for(sim_sec(20));  // many sync rounds, no changes
  EXPECT_EQ(meta.vnodes_refreshed(), before);
  EXPECT_GT(meta.syncs_run(), 0u);
}

TEST(Metadata, QuietPeriodsGrowTheLease) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& node = cluster.node(0);
  const SimDuration initial = node.zk().current_lease();
  cluster.run_for(sim_sec(30));  // nothing changes
  EXPECT_GT(node.zk().current_lease(), initial);
}

TEST(Metadata, ApplyLocalTakesEffectImmediately) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& meta = cluster.node(0).metadata();
  const NodeId target = cluster.node(2).id();
  meta.apply_local(7, target);
  EXPECT_EQ(meta.table().owner(7), target);
  // Out-of-range vnode is ignored, not UB.
  meta.apply_local(1 << 20, target);
}

}  // namespace
}  // namespace sedna::cluster
