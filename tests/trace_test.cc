// End-to-end tracing: span trees recorded for client operations must have
// the right shape — correct parentage across client → coordinator →
// replicas, and the failure machinery (replica timeout, client retry,
// read repair) visible as spans when a replica set is degraded.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/admin.h"
#include "cluster/sedna_cluster.h"
#include "common/trace.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  cfg.seed = seed;
  return cfg;
}

/// Spans of one trace, in span-id (event) order.
std::vector<Span> trace_spans(const Tracer& tracer, TraceId trace) {
  std::vector<Span> out;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id == trace) out.push_back(s);
  }
  return out;
}

const Span* find_span(const std::vector<Span>& spans,
                      const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Span*> children_of(const std::vector<Span>& spans,
                                     SpanId parent) {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.parent == parent) out.push_back(&s);
  }
  return out;
}

TEST(Tracing, HealthyWriteAndReadSpanTrees) {
  SednaCluster cluster(small_config(42));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  Tracer& tracer = cluster.sim().tracer();
  tracer.set_enabled(true);

  ASSERT_TRUE(cluster.write_latest(client, "traced", "v1").ok());

  // ---- write trace: client root → attempt → RPC → coordinator fan-out.
  {
    const auto& all = tracer.spans();
    ASSERT_FALSE(all.empty());
    const TraceId trace = all.front().trace_id;
    const auto spans = trace_spans(tracer, trace);

    const Span* root = find_span(spans, "client.write_latest");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent, 0u);
    EXPECT_EQ(root->node, client.id());
    EXPECT_EQ(root->status, "ok");

    const Span* attempt = find_span(spans, "client.write.attempt#0");
    ASSERT_NE(attempt, nullptr);
    EXPECT_EQ(attempt->parent, root->id);
    EXPECT_EQ(attempt->status, "ok");

    const Span* rpc = find_span(spans, "rpc.client_write");
    ASSERT_NE(rpc, nullptr);
    EXPECT_EQ(rpc->parent, attempt->id);
    EXPECT_EQ(rpc->node, client.id());  // RPC span lives on the caller
    EXPECT_EQ(rpc->status, "ok");

    const Span* coord = find_span(spans, "coord.write");
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->parent, rpc->id);
    EXPECT_NE(coord->node, client.id());
    EXPECT_EQ(coord->status, "ok");

    // N=3 replicas: the coordinator applies locally and calls the other
    // two; each remote apply shows up as a replica.write on that node.
    const auto coord_kids = children_of(spans, coord->id);
    int local = 0, remote = 0;
    for (const Span* k : coord_kids) {
      if (k->name == "coord.local_write") ++local;
      if (k->name == "rpc.replica_write") ++remote;
    }
    EXPECT_EQ(local, 1);
    EXPECT_EQ(remote, 2);
    int applied = 0;
    for (const Span& s : spans) {
      if (s.name == "replica.write") {
        ++applied;
        EXPECT_EQ(s.status, "ok");
      }
    }
    EXPECT_EQ(applied, 2);

    // The whole exchange is causally ordered on the virtual clock.
    EXPECT_LE(root->start_us, coord->start_us);
    EXPECT_LE(coord->end_us, root->end_us);
  }

  // ---- read trace: same shape on the read path.
  const TraceId before_read = tracer.last_trace_id();
  auto got = cluster.read_latest(client, "traced");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v1");
  {
    const auto spans = trace_spans(tracer, before_read + 1);
    const Span* root = find_span(spans, "client.read_latest");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->status, "ok");
    const Span* attempt = find_span(spans, "client.read.attempt#0");
    ASSERT_NE(attempt, nullptr);
    EXPECT_EQ(attempt->status, "ok");
    const Span* coord = find_span(spans, "coord.read");
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->status, "ok");
    // Healthy cluster: no retry attempt, no repair, no suspicion.
    EXPECT_EQ(find_span(spans, "client.read.attempt#1"), nullptr);
    EXPECT_EQ(find_span(spans, "coord.read_repair"), nullptr);
    EXPECT_EQ(find_span(spans, "failure.suspect"), nullptr);
  }
}

TEST(Tracing, CrashedReplicaReadShowsTimeoutRetryAndRepair) {
  SednaCluster cluster(small_config(7));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  // Find a key whose three replicas are distinct nodes.
  const auto& table = client.metadata().table();
  std::string key;
  std::vector<NodeId> replicas;
  for (int i = 0; i < 1000; ++i) {
    std::string candidate = "rkey-" + std::to_string(i);
    auto reps = table.replicas_for_key(candidate);
    if (reps.size() == 3 && reps[0] != reps[1] && reps[1] != reps[2] &&
        reps[0] != reps[2]) {
      key = std::move(candidate);
      replicas = std::move(reps);
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  auto index_of = [&](NodeId id) {
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      if (cluster.node(i).id() == id) return i;
    }
    return static_cast<std::size_t>(-1);
  };

  ASSERT_TRUE(cluster.write_latest(client, key, "precious").ok());

  // Hollow the third replica: crash+restart wipes its RAM store but
  // leaves it registered and serving (it will answer "not found").
  cluster.crash_node(index_of(replicas[2]));
  cluster.restart_node(index_of(replicas[2]));
  // Kill the primary outright: attempt#0 routes to it and must time out.
  cluster.crash_node(index_of(replicas[0]));

  Tracer& tracer = cluster.sim().tracer();
  tracer.set_enabled(true);

  auto got = cluster.read_latest(client, key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "precious");
  // The client settles before the repair's replica write round-trips;
  // run on a little so the repair span closes.
  cluster.run_for(sim_ms(50));

  const auto spans = trace_spans(tracer, 1);
  const Span* root = find_span(spans, "client.read_latest");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, "ok");

  // Attempt #0 targeted the dead primary and timed out client-side.
  const Span* a0 = find_span(spans, "client.read.attempt#0");
  ASSERT_NE(a0, nullptr);
  EXPECT_EQ(a0->parent, root->id);
  EXPECT_EQ(a0->status, "timeout");
  const auto a0_kids = children_of(spans, a0->id);
  ASSERT_FALSE(a0_kids.empty());
  EXPECT_EQ(a0_kids.front()->name, "rpc.client_read");
  EXPECT_EQ(a0_kids.front()->status, "timeout");

  // Attempt #1 is a sibling of #0 (both parent to the op root) and went
  // to the second replica, which coordinated successfully.
  const Span* a1 = find_span(spans, "client.read.attempt#1");
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1->parent, root->id);
  EXPECT_EQ(a1->status, "ok");

  const Span* coord = nullptr;
  for (const Span& s : spans) {
    if (s.name == "coord.read" && s.status == "ok") coord = &s;
  }
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->node, replicas[1]);

  // The coordinator's fan-out to the dead primary timed out...
  bool replica_timeout = false;
  for (const Span* k : children_of(spans, coord->id)) {
    if (k->name == "rpc.replica_read" && k->status == "timeout") {
      replica_timeout = true;
    }
  }
  EXPECT_TRUE(replica_timeout);

  // ...and the hollowed replica's stale answer triggered read repair,
  // pushing the fresh value back via a replica write under the repair
  // span — all within the same trace.
  const Span* repair = find_span(spans, "coord.read_repair");
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->parent, coord->id);
  EXPECT_EQ(repair->status, "ok");
  bool repair_write = false;
  for (const Span* k : children_of(spans, repair->id)) {
    if (k->name == "rpc.replica_write") repair_write = true;
  }
  EXPECT_TRUE(repair_write);

  // The rendered tree carries the same story for operators.
  ClusterInspector inspector(cluster);
  const std::string report = inspector.trace_report();
  EXPECT_NE(report.find("client.read_latest"), std::string::npos);
  EXPECT_NE(report.find("timeout"), std::string::npos);
  EXPECT_NE(report.find("coord.read_repair"), std::string::npos);
}

TEST(Tracing, DisabledTracerRecordsNothing) {
  SednaCluster cluster(small_config(3));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "k", "v").ok());
  ASSERT_TRUE(cluster.read_latest(client, "k").ok());
  EXPECT_TRUE(cluster.sim().tracer().spans().empty());
  EXPECT_EQ(cluster.sim().tracer().dump_json(), "[\n]\n");
}

}  // namespace
}  // namespace sedna::cluster
