// End-to-end tracing: span trees recorded for client operations must have
// the right shape — correct parentage across client → coordinator →
// replicas, and the failure machinery (replica timeout, client retry,
// read repair) visible as spans when a replica set is degraded.
//
// Also covered here: the critical-path analyzer (per-stage attribution
// telescopes to the end-to-end latency, failure reclassification, cause
// inheritance), the two-tier retention policy (recent ring + slowest-K
// reservoir, eviction counters, span cap), exemplar-linked histograms,
// the inspector's attribution surfaces, and migration trace propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cluster/admin.h"
#include "cluster/protocol.h"
#include "cluster/sedna_cluster.h"
#include "common/critical_path.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config(std::uint64_t seed) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  cfg.seed = seed;
  return cfg;
}

/// Spans of one trace, in span-id (event) order.
std::vector<Span> trace_spans(const Tracer& tracer, TraceId trace) {
  std::vector<Span> out;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id == trace) out.push_back(s);
  }
  return out;
}

const Span* find_span(const std::vector<Span>& spans,
                      const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Span*> children_of(const std::vector<Span>& spans,
                                     SpanId parent) {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.parent == parent) out.push_back(&s);
  }
  return out;
}

TEST(Tracing, HealthyWriteAndReadSpanTrees) {
  SednaCluster cluster(small_config(42));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  Tracer& tracer = cluster.sim().tracer();
  tracer.set_enabled(true);

  ASSERT_TRUE(cluster.write_latest(client, "traced", "v1").ok());

  // ---- write trace: client root → attempt → RPC → coordinator fan-out.
  {
    const auto& all = tracer.spans();
    ASSERT_FALSE(all.empty());
    const TraceId trace = all.front().trace_id;
    const auto spans = trace_spans(tracer, trace);

    const Span* root = find_span(spans, "client.write_latest");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent, 0u);
    EXPECT_EQ(root->node, client.id());
    EXPECT_EQ(root->status, "ok");

    const Span* attempt = find_span(spans, "client.write.attempt#0");
    ASSERT_NE(attempt, nullptr);
    EXPECT_EQ(attempt->parent, root->id);
    EXPECT_EQ(attempt->status, "ok");

    const Span* rpc = find_span(spans, "rpc.client_write");
    ASSERT_NE(rpc, nullptr);
    EXPECT_EQ(rpc->parent, attempt->id);
    EXPECT_EQ(rpc->node, client.id());  // RPC span lives on the caller
    EXPECT_EQ(rpc->status, "ok");

    const Span* coord = find_span(spans, "coord.write");
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->parent, rpc->id);
    EXPECT_NE(coord->node, client.id());
    EXPECT_EQ(coord->status, "ok");

    // N=3 replicas: the coordinator applies locally and calls the other
    // two; each remote apply shows up as a replica.write on that node.
    const auto coord_kids = children_of(spans, coord->id);
    int local = 0, remote = 0;
    for (const Span* k : coord_kids) {
      if (k->name == "coord.local_write") ++local;
      if (k->name == "rpc.replica_write") ++remote;
    }
    EXPECT_EQ(local, 1);
    EXPECT_EQ(remote, 2);
    int applied = 0;
    for (const Span& s : spans) {
      if (s.name == "replica.write") {
        ++applied;
        EXPECT_EQ(s.status, "ok");
      }
    }
    EXPECT_EQ(applied, 2);

    // The whole exchange is causally ordered on the virtual clock.
    EXPECT_LE(root->start_us, coord->start_us);
    EXPECT_LE(coord->end_us, root->end_us);
  }

  // ---- read trace: same shape on the read path.
  const TraceId before_read = tracer.last_trace_id();
  auto got = cluster.read_latest(client, "traced");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v1");
  {
    const auto spans = trace_spans(tracer, before_read + 1);
    const Span* root = find_span(spans, "client.read_latest");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->status, "ok");
    const Span* attempt = find_span(spans, "client.read.attempt#0");
    ASSERT_NE(attempt, nullptr);
    EXPECT_EQ(attempt->status, "ok");
    const Span* coord = find_span(spans, "coord.read");
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->status, "ok");
    // Healthy cluster: no retry attempt, no repair, no suspicion.
    EXPECT_EQ(find_span(spans, "client.read.attempt#1"), nullptr);
    EXPECT_EQ(find_span(spans, "coord.read_repair"), nullptr);
    EXPECT_EQ(find_span(spans, "failure.suspect"), nullptr);
  }
}

TEST(Tracing, CrashedReplicaReadShowsTimeoutRetryAndRepair) {
  SednaClusterConfig cfg = small_config(7);
  // This test hollows a replica via crash+restart to force a read
  // repair; restart hydration would refill it before it can answer
  // "not found", so keep it off here.
  cfg.node_template.restart_hydration = false;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  // Find a key whose three replicas are distinct nodes.
  const auto& table = client.metadata().table();
  std::string key;
  std::vector<NodeId> replicas;
  for (int i = 0; i < 1000; ++i) {
    std::string candidate = "rkey-" + std::to_string(i);
    auto reps = table.replicas_for_key(candidate);
    if (reps.size() == 3 && reps[0] != reps[1] && reps[1] != reps[2] &&
        reps[0] != reps[2]) {
      key = std::move(candidate);
      replicas = std::move(reps);
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  auto index_of = [&](NodeId id) {
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      if (cluster.node(i).id() == id) return i;
    }
    return static_cast<std::size_t>(-1);
  };

  ASSERT_TRUE(cluster.write_latest(client, key, "precious").ok());

  // Hollow the third replica: crash+restart wipes its RAM store but
  // leaves it registered and serving (it will answer "not found").
  cluster.crash_node(index_of(replicas[2]));
  cluster.restart_node(index_of(replicas[2]));
  // Kill the primary outright: attempt#0 routes to it and must time out.
  cluster.crash_node(index_of(replicas[0]));

  Tracer& tracer = cluster.sim().tracer();
  tracer.set_enabled(true);

  auto got = cluster.read_latest(client, key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "precious");
  // The client settles before the repair's replica write round-trips;
  // run on a little so the repair span closes.
  cluster.run_for(sim_ms(50));

  const auto spans = trace_spans(tracer, 1);
  const Span* root = find_span(spans, "client.read_latest");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, "ok");

  // Attempt #0 targeted the dead primary and timed out client-side.
  const Span* a0 = find_span(spans, "client.read.attempt#0");
  ASSERT_NE(a0, nullptr);
  EXPECT_EQ(a0->parent, root->id);
  EXPECT_EQ(a0->status, "timeout");
  const auto a0_kids = children_of(spans, a0->id);
  ASSERT_FALSE(a0_kids.empty());
  EXPECT_EQ(a0_kids.front()->name, "rpc.client_read");
  EXPECT_EQ(a0_kids.front()->status, "timeout");

  // Attempt #1 is a sibling of #0 (both parent to the op root) and went
  // to the second replica, which coordinated successfully.
  const Span* a1 = find_span(spans, "client.read.attempt#1");
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1->parent, root->id);
  EXPECT_EQ(a1->status, "ok");

  const Span* coord = nullptr;
  for (const Span& s : spans) {
    if (s.name == "coord.read" && s.status == "ok") coord = &s;
  }
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->node, replicas[1]);

  // The coordinator's fan-out to the dead primary timed out...
  bool replica_timeout = false;
  for (const Span* k : children_of(spans, coord->id)) {
    if (k->name == "rpc.replica_read" && k->status == "timeout") {
      replica_timeout = true;
    }
  }
  EXPECT_TRUE(replica_timeout);

  // ...and the hollowed replica's stale answer triggered read repair,
  // pushing the fresh value back via a replica write under the repair
  // span — all within the same trace.
  const Span* repair = find_span(spans, "coord.read_repair");
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->parent, coord->id);
  EXPECT_EQ(repair->status, "ok");
  bool repair_write = false;
  for (const Span* k : children_of(spans, repair->id)) {
    if (k->name == "rpc.replica_write") repair_write = true;
  }
  EXPECT_TRUE(repair_write);

  // The rendered tree carries the same story for operators.
  ClusterInspector inspector(cluster);
  const std::string report = inspector.trace_report();
  EXPECT_NE(report.find("client.read_latest"), std::string::npos);
  EXPECT_NE(report.find("timeout"), std::string::npos);
  EXPECT_NE(report.find("coord.read_repair"), std::string::npos);
}

// ---- critical-path analyzer --------------------------------------------

TEST(CriticalPath, TelescopesReclassifiesAndInheritsCauses) {
  Tracer t;
  t.set_enabled(true);
  // root (service) [0,1000]
  //   A (net)     [0,300]
  //   B (zk)      [300,500] with a service grandchild [350,450]
  //   C (service) [500,900] ended "timeout" -> reclassified as retry
  const TraceContext root = t.start_trace("op", 1, 0, TraceStage::kService);
  const SpanId a = t.begin(root, "a", 1, 0, TraceStage::kNet);
  t.end(a, 300);
  const SpanId b = t.begin(root, "b", 1, 300, TraceStage::kZk);
  const SpanId g = t.begin(TraceContext{root.trace_id, b}, "g", 2, 350,
                           TraceStage::kService);
  t.end(g, 450);
  t.end(b, 500);
  const SpanId c = t.begin(root, "c", 1, 500, TraceStage::kService);
  t.end(c, 900, "timeout");
  t.end(root.span_id, 1000);

  const Tracer::TraceRecord* rec = t.trace(root.trace_id);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->finished);
  const StageBreakdown bd = attribute_trace(rec->spans);
  EXPECT_EQ(bd.total_us, 1000u);
  EXPECT_EQ(bd.stage_us(TraceStage::kNet), 300u);
  // The zk cause taints its service grandchild: all 200us are zk time.
  EXPECT_EQ(bd.stage_us(TraceStage::kZk), 200u);
  // The timeout reclassifies C's 400us as retry time.
  EXPECT_EQ(bd.stage_us(TraceStage::kRetry), 400u);
  // Root's own gap [900,1000].
  EXPECT_EQ(bd.stage_us(TraceStage::kService), 100u);
  // Attribution telescopes exactly: nothing unattributed, coverage 1.
  EXPECT_EQ(bd.unattributed_us(), 0u);
  EXPECT_DOUBLE_EQ(bd.coverage(), 1.0);
  EXPECT_EQ(bd.dominant(), TraceStage::kRetry);
}

TEST(CriticalPath, UnknownStageTimeIsReportedNotDropped) {
  Tracer t;
  t.set_enabled(true);
  const TraceContext root = t.start_trace("op", 1, 0, TraceStage::kService);
  const SpanId mystery = t.begin(root, "mystery", 1, 0);  // kUnknown
  t.end(mystery, 90);
  t.end(root.span_id, 100);
  const StageBreakdown bd = attribute_trace(t.trace(root.trace_id)->spans);
  EXPECT_EQ(bd.total_us, 100u);
  EXPECT_EQ(bd.unattributed_us(), 90u);
  EXPECT_EQ(bd.stage_us(TraceStage::kService), 10u);
  EXPECT_NEAR(bd.coverage(), 0.1, 1e-9);
}

TEST(CriticalPath, AggregatorTailDominantAndCoverage) {
  Tracer t;
  t.set_enabled(true);
  AttributionAggregator agg;
  t.set_on_trace_finished([&](TraceId id, const Tracer::TraceRecord& rec) {
    agg.observe(id, rec);
  });
  // Nine fast service-dominant traces, one huge retry-dominant straggler:
  // the slowest-10% tail is exactly the straggler.
  for (int i = 0; i < 9; ++i) {
    const SimTime at = static_cast<SimTime>(i) * 1000;
    const TraceContext root =
        t.start_trace("op", 1, at, TraceStage::kService);
    t.end(root.span_id, at + 100);
  }
  const TraceContext slow =
      t.start_trace("op", 1, 50'000, TraceStage::kService);
  const SpanId r = t.begin(slow, "wait", 1, 50'000, TraceStage::kRetry);
  t.end(r, 59'000);
  t.end(slow.span_id, 60'000);

  EXPECT_EQ(agg.count(), 10u);
  EXPECT_DOUBLE_EQ(agg.min_coverage(), 1.0);
  EXPECT_EQ(agg.tail_dominant(0.10), TraceStage::kRetry);
  // The whole population is still service-heavy only in count, not time:
  // merged, retry also wins (9000us vs 9x100 + 1000us service).
  EXPECT_EQ(agg.sum().dominant(), TraceStage::kRetry);
  // Log-bucketed p99 over 9x100us + 1x10000us lands in the 100us bucket
  // (rank floor(0.99*(n-1)) = 8); the exact math is covered by the
  // histogram tests — here just pin that the fold records totals at all.
  EXPECT_GT(agg.total_p99(), 0u);
  EXPECT_GT(agg.stage_p99(TraceStage::kService), 0u);
}

// ---- retention ----------------------------------------------------------

TEST(TraceRetention, RecentRingPlusTailReservoirEvictTheRest) {
  Tracer t;
  TraceRetentionPolicy policy;
  policy.recent_traces = 4;
  policy.tail_per_window = 2;
  policy.window_us = 1'000'000;  // everything lands in window 0
  t.set_policy(policy);
  t.set_enabled(true);

  // Ten single-span traces of op "op", durations 100,200,...,1000.
  for (int i = 1; i <= 10; ++i) {
    const SimTime at = static_cast<SimTime>(i);
    const TraceContext root = t.start_trace("op", 1, at);
    t.end(root.span_id, at + static_cast<SimDuration>(i) * 100);
  }

  // Recent ring holds the newest four; the reservoir pins the two
  // slowest (traces 9 and 10, durations 900/1000); the rest is evicted.
  EXPECT_GT(t.evicted_traces(), 0u);
  EXPECT_GT(t.evicted_spans(), 0u);
  EXPECT_LE(t.retained_traces(), 6u);

  const auto tails = t.tail_trace_ids();
  ASSERT_EQ(tails.size(), 1u);
  EXPECT_EQ(tails[0].first, "op");
  ASSERT_EQ(tails[0].second.size(), 2u);
  EXPECT_EQ(tails[0].second[0], 10u);  // slowest first
  EXPECT_EQ(tails[0].second[1], 9u);

  // Trace 1 was evicted: no record, and a child span can no longer be
  // attached to its root (begin() refuses resurrected parents).
  EXPECT_EQ(t.trace(1), nullptr);
  EXPECT_EQ(t.begin(TraceContext{1, 1}, "late", 1, 99), 0u);
}

TEST(TraceRetention, SlowTraceSurvivesRingChurn) {
  Tracer t;
  TraceRetentionPolicy policy;
  policy.recent_traces = 2;
  policy.tail_per_window = 1;
  policy.window_us = 1'000'000'000;
  t.set_policy(policy);
  t.set_enabled(true);

  const TraceContext slow = t.start_trace("op", 1, 0);
  t.end(slow.span_id, 500'000);
  for (int i = 0; i < 20; ++i) {
    const SimTime at = 600'000 + static_cast<SimTime>(i) * 10;
    const TraceContext fast = t.start_trace("op", 1, at);
    t.end(fast.span_id, at + 5);
  }
  // Twenty fast traces churned through the 2-slot ring, but the slowest
  // trace is pinned by the reservoir.
  ASSERT_NE(t.trace(slow.trace_id), nullptr);
  EXPECT_TRUE(t.trace(slow.trace_id)->in_reservoir);
  EXPECT_GT(t.evicted_traces(), 0u);
}

TEST(TraceRetention, HardSpanCapForceEvictsOldestFinished) {
  Tracer t;
  TraceRetentionPolicy policy;
  policy.recent_traces = 1000;  // the ring alone would keep everything
  policy.max_spans = 8;
  t.set_policy(policy);
  t.set_enabled(true);

  for (int i = 0; i < 6; ++i) {
    const SimTime at = static_cast<SimTime>(i) * 10;
    const TraceContext root = t.start_trace("op", 1, at);
    const SpanId kid = t.begin(root, "kid", 1, at);
    t.end(kid, at + 1);
    t.end(root.span_id, at + 2);
  }
  EXPECT_LE(t.retained_spans(), 8u);
  EXPECT_GT(t.evicted_spans(), 0u);
}

TEST(TraceRetention, FinishedHookSeesEveryTraceBeforeEviction) {
  Tracer t;
  TraceRetentionPolicy policy;
  policy.recent_traces = 1;
  policy.tail_per_window = 1;
  t.set_policy(policy);
  t.set_enabled(true);
  std::size_t seen = 0;
  t.set_on_trace_finished(
      [&](TraceId, const Tracer::TraceRecord& rec) {
        EXPECT_TRUE(rec.finished);
        ++seen;
      });
  for (int i = 0; i < 5; ++i) {
    const SimTime at = static_cast<SimTime>(i) * 10;
    const TraceContext root = t.start_trace("op", 1, at);
    t.end(root.span_id, at + 1);
  }
  EXPECT_EQ(seen, 5u);
  EXPECT_LT(t.retained_traces(), 5u);
}

// ---- exemplar-linked histograms ----------------------------------------

TEST(Exemplars, TailBucketsKeepRepresentativeTraceIds) {
  Histogram h;
  h.record(10, 1);     // bucket of small values
  h.record(2000, 7);   // bucket [1024,2048)
  h.record(1500, 8);   // same bucket, smaller value: 2000 wins
  h.record(3000, 9);   // bucket [2048,4096)
  h.record(500);       // no trace id -> no exemplar
  const auto& ex = h.exemplars();
  ASSERT_GE(ex.size(), 3u);
  bool found_2000 = false, found_3000 = false;
  for (const auto& [bucket, e] : ex) {
    if (e.value == 2000) {
      found_2000 = true;
      EXPECT_EQ(e.trace, 7u);
    }
    if (e.value == 3000) {
      found_3000 = true;
      EXPECT_EQ(e.trace, 9u);
    }
    EXPECT_NE(e.value, 1500u);  // displaced by the larger 2000
    EXPECT_NE(e.value, 500u);   // untraced samples leave no exemplar
  }
  EXPECT_TRUE(found_2000);
  EXPECT_TRUE(found_3000);

  MetricRegistry reg;
  reg.histogram("lat_us").record(4000, 42);
  MetricsRegistry registry;
  registry.attach("n1", reg);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# exemplar sedna_lat_us{node=\"n1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("trace_id=42"), std::string::npos);
}

// ---- inspector surfaces -------------------------------------------------

TEST(Tracing, InspectorExportsAttributionTailReportAndEvictionCounters) {
  SednaCluster cluster(small_config(5));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  cluster.sim().tracer().set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        cluster.write_latest(client, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(cluster.read_latest(client, "k" + std::to_string(i)).ok());
  }
  cluster.sim().tracer().set_enabled(false);

  ClusterInspector inspector(cluster);
  const std::string csv = inspector.attribution_csv();
  EXPECT_EQ(csv.rfind(attribution_csv_header(), 0), 0u);
  EXPECT_NE(csv.find("client.read_latest"), std::string::npos);
  EXPECT_NE(csv.find(",service\n"), std::string::npos);

  const std::string tail = inspector.tail_report();
  EXPECT_NE(tail.find("op client.read_latest"), std::string::npos);
  EXPECT_NE(tail.find("dominant="), std::string::npos);

  const std::string metrics = inspector.metrics_text();
  EXPECT_NE(metrics.find("sedna_trace_evicted_spans{node=\"tracer\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("sedna_trace_evicted_traces{node=\"tracer\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# exemplar"), std::string::npos);

  // The analyzer invariant on real traffic: every traced request
  // attributes at least 95% of its end-to-end latency.
  AttributionAggregator agg;
  const Tracer& tracer = cluster.sim().tracer();
  for (const TraceId id : tracer.finished_trace_ids()) {
    const Tracer::TraceRecord* rec = tracer.trace(id);
    if (rec->op.rfind("client.", 0) == 0) agg.observe(id, *rec);
  }
  EXPECT_GT(agg.count(), 0u);
  EXPECT_GE(agg.min_coverage(), 0.95);
}

// ---- migration trace propagation ---------------------------------------

TEST(Tracing, MigrationIsOneSpanTreeAcrossAllPhases) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 32;
  cfg.seed = 2012;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  // A (vnode, destination) pair where the destination is outside the
  // vnode's replica set, plus a few keys so the snapshot moves bytes.
  const ring::VnodeTable table = cluster.node(0).metadata().table();
  VnodeId vnode = kInvalidVnode;
  NodeId from = kInvalidNode;
  std::size_t dst_idx = SIZE_MAX;
  for (VnodeId v = 0; v < table.total_vnodes() && dst_idx == SIZE_MAX;
       ++v) {
    const auto reps = table.replicas_for_vnode(v);
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      const NodeId cand = cluster.node(i).id();
      if (std::find(reps.begin(), reps.end(), cand) != reps.end()) continue;
      vnode = v;
      from = table.owner(v);
      dst_idx = i;
      break;
    }
  }
  ASSERT_NE(dst_idx, SIZE_MAX);
  int written = 0;
  for (int i = 0; i < 200000 && written < 5; ++i) {
    const std::string key = "mig-" + std::to_string(i);
    if (table.vnode_for_key(key) != vnode) continue;
    ASSERT_TRUE(cluster.write_latest(client, key, "v").ok());
    ++written;
  }
  ASSERT_EQ(written, 5);

  cluster.sim().tracer().set_enabled(true);
  std::optional<MigrateVnodeReply> out;
  cluster.node(dst_idx).begin_migration(
      vnode, from, [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  ASSERT_EQ(out->status, StatusCode::kOk);
  cluster.run_for(sim_sec(1));  // let the drain phase close
  cluster.sim().tracer().set_enabled(false);

  // Exactly one trace rooted at rebalance.migration, carrying every
  // phase and the data-plane RPCs in a single tree.
  const Tracer& tracer = cluster.sim().tracer();
  const auto spans = tracer.spans();
  int roots = 0;
  for (const Span& s : spans) {
    if (s.name == "rebalance.migration") ++roots;
  }
  EXPECT_EQ(roots, 1);
  const Span* root = find_span(spans, "rebalance.migration");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(root->stage, TraceStage::kMigration);
  EXPECT_EQ(root->status, "ok");
  EXPECT_NE(root->cause.find("vnode="), std::string::npos);

  for (const char* phase : {"migrate.snapshot", "migrate.catchup",
                            "migrate.cutover", "migrate.drain"}) {
    const Span* s = find_span(spans, phase);
    ASSERT_NE(s, nullptr) << phase;
    EXPECT_EQ(s->trace_id, root->trace_id) << phase;
    EXPECT_EQ(s->stage, TraceStage::kMigration) << phase;
    EXPECT_TRUE(s->finished()) << phase;
    EXPECT_EQ(s->status, "ok") << phase;
  }
  const Span* fetch = find_span(spans, "rpc.fetch_vnode");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->trace_id, root->trace_id);

  // The analyzer pins the whole migration on the migration stage.
  const StageBreakdown bd = attribute_trace(tracer.trace(root->trace_id)->spans);
  EXPECT_EQ(bd.dominant(), TraceStage::kMigration);
  EXPECT_GE(bd.coverage(), 0.95);
}

TEST(Tracing, DisabledTracerRecordsNothing) {
  SednaCluster cluster(small_config(3));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "k", "v").ok());
  ASSERT_TRUE(cluster.read_latest(client, "k").ok());
  EXPECT_TRUE(cluster.sim().tracer().spans().empty());
  EXPECT_EQ(cluster.sim().tracer().dump_json(), "[\n]\n");
}

}  // namespace
}  // namespace sedna::cluster
