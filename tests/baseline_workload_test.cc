// Tests for the memcached baseline (ketama ring, client modes) and the
// workload generators used by the figure benches.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "baseline/memcache.h"
#include "workload/closed_loop.h"
#include "workload/kv_workload.h"
#include "workload/tweets.h"

namespace sedna {
namespace {

// ---- Ketama ring ------------------------------------------------------------

TEST(Ketama, DeterministicMapping) {
  baseline::KetamaRing ring({1, 2, 3});
  EXPECT_EQ(ring.server_for("key"), ring.server_for("key"));
}

TEST(Ketama, ReplicaIndicesAreDistinctServers) {
  baseline::KetamaRing ring({1, 2, 3, 4});
  std::set<NodeId> picked;
  for (std::uint32_t r = 0; r < 3; ++r) {
    picked.insert(ring.server_for("some-key", r));
  }
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Ketama, SpreadsKeysAcrossServers) {
  baseline::KetamaRing ring({1, 2, 3, 4, 5});
  std::map<NodeId, int> counts;
  for (int i = 0; i < 5000; ++i) {
    ++counts[ring.server_for("key-" + std::to_string(i))];
  }
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [server, count] : counts) {
    EXPECT_GT(count, 500);
    EXPECT_LT(count, 2000);
  }
}

TEST(Ketama, RemovalMovesOnlyVictimKeys) {
  baseline::KetamaRing full({1, 2, 3, 4});
  baseline::KetamaRing reduced({1, 2, 3});
  int moved = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const NodeId before = full.server_for(key);
    const NodeId after = reduced.server_for(key);
    if (before != after) {
      ++moved;
      EXPECT_EQ(before, 4u);  // only keys of the removed server move
    }
  }
  EXPECT_GT(moved, n / 8);
  EXPECT_LT(moved, n / 2);
}

TEST(Ketama, EmptyRingReturnsInvalid) {
  baseline::KetamaRing ring({});
  EXPECT_EQ(ring.server_for("k"), kInvalidNode);
}

// ---- Memcache cluster end-to-end ---------------------------------------------

struct McFixture {
  McFixture() : net(simulation) {
    for (NodeId id = 10; id < 14; ++id) {
      servers.push_back(std::make_unique<baseline::MemcacheNode>(net, id));
      ids.push_back(id);
    }
    baseline::MemcacheClientConfig cfg;
    cfg.servers = ids;
    client = std::make_unique<baseline::MemcacheClient>(net, 100, cfg);
  }

  void run_until(const std::function<bool()>& pred) {
    while (!pred() && simulation.step()) {
    }
  }

  sim::Simulation simulation{5};
  sim::Network net;
  std::vector<std::unique_ptr<baseline::MemcacheNode>> servers;
  std::vector<NodeId> ids;
  std::unique_ptr<baseline::MemcacheClient> client;
};

TEST(Memcache, SetThenGet) {
  McFixture fx;
  std::optional<Status> set_st;
  fx.client->set("k", "v", [&](const Status& st) { set_st = st; });
  fx.run_until([&] { return set_st.has_value(); });
  ASSERT_TRUE(set_st->ok());

  std::optional<Result<std::string>> got;
  fx.client->get("k", [&](const Result<std::string>& r) { got = r; });
  fx.run_until([&] { return got.has_value(); });
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value(), "v");
}

TEST(Memcache, GetMissingIsNotFound) {
  McFixture fx;
  std::optional<Result<std::string>> got;
  fx.client->get("missing", [&](const Result<std::string>& r) { got = r; });
  fx.run_until([&] { return got.has_value(); });
  EXPECT_FALSE(got->ok());
  EXPECT_EQ(got->status().code(), StatusCode::kNotFound);
}

TEST(Memcache, SetNWritesNDistinctServers) {
  McFixture fx;
  std::optional<Status> st;
  fx.client->set_n("multi", "v", 3, [&](const Status& s) { st = s; });
  fx.run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st->ok());

  int copies = 0;
  for (auto& server : fx.servers) {
    if (server->local_store().get("multi").ok()) ++copies;
  }
  EXPECT_EQ(copies, 3);
}

TEST(Memcache, SetNIsSequentialNotParallel) {
  // The x3 writes must take ~3x the single-write latency — that is the
  // defining property of the Fig. 7(a) baseline.
  McFixture fx;
  std::optional<Status> st1;
  const SimTime t0 = fx.simulation.now();
  fx.client->set("k1", "v", [&](const Status& s) { st1 = s; });
  fx.run_until([&] { return st1.has_value(); });
  const SimTime single = fx.simulation.now() - t0;

  std::optional<Status> st3;
  const SimTime t1 = fx.simulation.now();
  fx.client->set_n("k3", "v", 3, [&](const Status& s) { st3 = s; });
  fx.run_until([&] { return st3.has_value(); });
  const SimTime triple = fx.simulation.now() - t1;

  EXPECT_GT(triple, 2 * single);
  EXPECT_LT(triple, 5 * single);
}

TEST(Memcache, NoReplicationMeansCrashLosesData) {
  // The contrast with Sedna: memcached's single copy dies with its server.
  McFixture fx;
  std::optional<Status> st;
  fx.client->set("fragile", "v", [&](const Status& s) { st = s; });
  fx.run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st->ok());

  const NodeId holder = fx.client->ring().server_for("fragile");
  for (auto& server : fx.servers) {
    if (server->id() == holder) server->crash();
  }
  std::optional<Result<std::string>> got;
  fx.client->get("fragile", [&](const Result<std::string>& r) { got = r; });
  fx.run_until([&] { return got.has_value(); });
  EXPECT_FALSE(got->ok());
}

// ---- Workloads -----------------------------------------------------------------

TEST(KvWorkload, KeysMatchPaperShape) {
  workload::KvWorkload wl;
  const std::string key = wl.key(0);
  EXPECT_EQ(key.substr(0, 5), "test-");
  EXPECT_EQ(key.size(), 19u);  // "test-" + 14 digits ≈ the paper's 20 B
  for (char c : key.substr(5)) EXPECT_TRUE(isdigit(c));
  EXPECT_EQ(wl.value().size(), 20u);
}

TEST(KvWorkload, KeysDeterministicAndDistinct) {
  workload::KvWorkload a, b;
  std::set<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(a.key(i), b.key(i));
    keys.insert(a.key(i));
  }
  EXPECT_GT(keys.size(), 9990u);  // collisions vanishingly rare
}

TEST(KvWorkload, SeedsChangeKeys) {
  workload::KvWorkload a({14, 20, 1});
  workload::KvWorkload b({14, 20, 2});
  EXPECT_NE(a.key(0), b.key(0));
}

TEST(ClosedLoop, RunsExactlyTotalOps) {
  sim::Simulation simulation;
  int issued = 0;
  bool completed = false;
  workload::ClosedLoopDriver driver(
      25, [&](std::uint64_t i, const std::function<void()>& done) {
        EXPECT_EQ(i, static_cast<std::uint64_t>(issued));
        ++issued;
        simulation.schedule(10, done);  // async completion
      });
  driver.start([&] { completed = true; });
  simulation.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(issued, 25);
  EXPECT_EQ(driver.completed(), 25u);
}

TEST(ClosedLoop, OneOutstandingOpAtATime) {
  sim::Simulation simulation;
  int in_flight = 0, max_in_flight = 0;
  workload::ClosedLoopDriver driver(
      10, [&](std::uint64_t, const std::function<void()>& done) {
        ++in_flight;
        max_in_flight = std::max(max_in_flight, in_flight);
        simulation.schedule(10, [&, done] {
          --in_flight;
          done();
        });
      });
  driver.start({});
  simulation.run();
  EXPECT_EQ(max_in_flight, 1);
}

TEST(Tweets, DeterministicAndZipfy) {
  workload::TweetGenerator a, b;
  std::map<std::uint32_t, int> author_counts;
  for (int i = 0; i < 500; ++i) {
    const auto ta = a.next();
    const auto tb = b.next();
    EXPECT_EQ(ta.text, tb.text);
    EXPECT_EQ(ta.author, tb.author);
    ++author_counts[ta.author];
  }
  // Zipf: the most prolific author dominates.
  int max_count = 0;
  for (const auto& [author, count] : author_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 50);
}

TEST(Tweets, FolloweesExcludeSelfAndAreStable) {
  workload::TweetGenerator gen;
  const auto f1 = gen.followees(7);
  const auto f2 = gen.followees(7);
  EXPECT_EQ(f1, f2);
  for (auto followee : f1) EXPECT_NE(followee, 7u);
  EXPECT_FALSE(f1.empty());
}

}  // namespace
}  // namespace sedna
