// promlint: a Prometheus text-exposition-format linter for the CI gate.
//
// Validates the .prom files the failure drill and the inspector emit:
//
//   * every line is a `# TYPE` declaration, a `# exemplar` comment
//     (our structured extension linking tail buckets to trace ids), or
//     a sample `name{label="value",...} <number>`;
//   * metric and label names match the Prometheus charsets;
//   * a family's `# TYPE` appears exactly once and before its samples;
//   * sample values parse as finite numbers;
//   * exemplar comments reference a declared family and carry the full
//     `bucket_lo=<u64> value=<u64> trace_id=<u64>` triple.
//
// Usage: promlint <file.prom> [more.prom ...]; exit 0 iff all clean.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

int errors = 0;

void fail(const std::string& file, int line, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: %s\n", file.c_str(), line, msg.c_str());
  ++errors;
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' ||
        s[0] == ':')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

bool parse_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  (void)v;
  return end != nullptr && *end == '\0';
}

/// Parses `name{k="v",...}` (labels optional); returns false on
/// malformed syntax, else fills `name` and validates label charsets.
bool parse_series(const std::string& file, int lineno,
                  const std::string& series, std::string* name) {
  const std::size_t brace = series.find('{');
  *name = series.substr(0, brace);
  if (!valid_metric_name(*name)) {
    fail(file, lineno, "bad metric name '" + *name + "'");
    return false;
  }
  if (brace == std::string::npos) return true;
  if (series.back() != '}') {
    fail(file, lineno, "unterminated label set");
    return false;
  }
  std::string labels = series.substr(brace + 1,
                                     series.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < labels.size()) {
    const std::size_t eq = labels.find('=', pos);
    if (eq == std::string::npos) {
      fail(file, lineno, "label without '='");
      return false;
    }
    const std::string lname = labels.substr(pos, eq - pos);
    if (!valid_label_name(lname)) {
      fail(file, lineno, "bad label name '" + lname + "'");
      return false;
    }
    if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
      fail(file, lineno, "label value must be quoted");
      return false;
    }
    std::size_t end = eq + 2;
    while (end < labels.size() &&
           (labels[end] != '"' || labels[end - 1] == '\\')) {
      ++end;
    }
    if (end >= labels.size()) {
      fail(file, lineno, "unterminated label value");
      return false;
    }
    pos = end + 1;
    if (pos < labels.size()) {
      if (labels[pos] != ',') {
        fail(file, lineno, "expected ',' between labels");
        return false;
      }
      ++pos;
    }
  }
  return true;
}

/// The base family of a sample name: strips the summary/counter
/// suffixes so `x_sum` / `x_count` match `# TYPE x summary`.
std::string family_of(const std::string& name,
                      const std::set<std::string>& declared) {
  if (declared.count(name)) return name;
  for (const char* suffix : {"_sum", "_count", "_bucket", "_total"}) {
    const std::size_t n = std::strlen(suffix);
    if (name.size() > n &&
        name.compare(name.size() - n, n, suffix) == 0) {
      const std::string base = name.substr(0, name.size() - n);
      if (declared.count(base)) return base;
    }
  }
  return name;
}

bool expect_kv(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  const std::string value = token.substr(prefix.size());
  if (value.empty()) return false;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void lint(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", file.c_str());
    ++errors;
    return;
  }
  std::set<std::string> declared;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ss(line.substr(7));
      std::string name, type, extra;
      ss >> name >> type;
      if (!valid_metric_name(name)) {
        fail(file, lineno, "bad metric name in TYPE: '" + name + "'");
      }
      if (type != "counter" && type != "gauge" && type != "summary" &&
          type != "histogram" && type != "untyped") {
        fail(file, lineno, "unknown metric type '" + type + "'");
      }
      if (ss >> extra) fail(file, lineno, "trailing junk after TYPE");
      if (!declared.insert(name).second) {
        fail(file, lineno, "duplicate TYPE for '" + name + "'");
      }
      continue;
    }
    if (line.rfind("# exemplar ", 0) == 0) {
      std::istringstream ss(line.substr(11));
      std::string series, b, v, t, extra;
      ss >> series >> b >> v >> t;
      std::string name;
      if (!parse_series(file, lineno, series, &name)) continue;
      if (!declared.count(family_of(name, declared))) {
        fail(file, lineno,
             "exemplar for undeclared family '" + name + "'");
      }
      if (!expect_kv(b, "bucket_lo") || !expect_kv(v, "value") ||
          !expect_kv(t, "trace_id")) {
        fail(file, lineno,
             "exemplar needs 'bucket_lo=<u64> value=<u64> "
             "trace_id=<u64>'");
      }
      if (ss >> extra) fail(file, lineno, "trailing junk after exemplar");
      continue;
    }
    if (line[0] == '#') continue;  // free-form comment (e.g. HELP)
    // Sample line: <series> <value>
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      fail(file, lineno, "sample line without value");
      continue;
    }
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    std::string name;
    if (!parse_series(file, lineno, series, &name)) continue;
    if (!declared.count(family_of(name, declared))) {
      fail(file, lineno,
           "sample before/without TYPE for family of '" + name + "'");
    }
    if (!parse_number(value)) {
      fail(file, lineno, "unparseable sample value '" + value + "'");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: promlint <file.prom> [...]\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) lint(argv[i]);
  if (errors == 0) {
    std::printf("promlint: %d file(s) clean\n", argc - 1);
    return 0;
  }
  std::fprintf(stderr, "promlint: %d error(s)\n", errors);
  return 1;
}
